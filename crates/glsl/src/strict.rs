//! GLSL ES 1.00 **Appendix A** restrictions ("Limitations for ES 2.0").
//!
//! Core ES 2 only guarantees shaders that fit a minimal control-flow
//! profile; anything richer is allowed to fail at compile time on real
//! low-end drivers — and on the VideoCore IV-class hardware the paper
//! targets, it does. GPGPU kernels that want to run *everywhere* must
//! stay inside this profile, so the framework can opt into enforcing it
//! ([`crate::compile_strict`]).
//!
//! Enforced rules (Appendix A §4–5):
//!
//! * only `for` loops — no `while` / `do-while`;
//! * the loop must declare exactly one index of type `float` or `int`,
//!   initialised with a constant expression;
//! * the condition must compare the index against a constant expression
//!   with one of `< <= > >= == !=`;
//! * the step must be `index++`, `index--`, `index += const` or
//!   `index -= const`;
//! * the body must not write to the index.
//!
//! "Constant expression" here means literals, other loop indices are
//! *not* allowed, and arithmetic over literals is folded.

use crate::ast::{
    AssignOp, BinOp, Expr, ExprKind, Function, Item, Stmt, StmtKind, TranslationUnit, UnOp,
};
use crate::error::CompileError;
use crate::span::Span;

/// Marker type describing the enforced profile (for documentation and
/// discoverability in the public API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrictProfile;

/// Validates a parsed unit against Appendix A.
///
/// # Errors
///
/// [`CompileError`] (phase `Check`) naming the first violation.
pub fn check_appendix_a(unit: &TranslationUnit) -> Result<(), CompileError> {
    for item in &unit.items {
        if let Item::Function(f) = item {
            check_function(f)?;
        }
    }
    Ok(())
}

fn check_function(f: &Function) -> Result<(), CompileError> {
    for stmt in &f.body {
        check_stmt(stmt)?;
    }
    Ok(())
}

fn check_stmt(stmt: &Stmt) -> Result<(), CompileError> {
    match &stmt.kind {
        StmtKind::While(..) => Err(CompileError::check(
            "appendix A: `while` loops are not supported by the minimum profile",
            stmt.span,
        )),
        StmtKind::DoWhile(..) => Err(CompileError::check(
            "appendix A: `do-while` loops are not supported by the minimum profile",
            stmt.span,
        )),
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            let index = check_for_header(init.as_deref(), cond.as_ref(), step.as_ref(), stmt.span)?;
            check_index_not_written(body, &index)?;
            check_stmt(body)
        }
        StmtKind::If(_, then, otherwise) => {
            check_stmt(then)?;
            if let Some(e) = otherwise {
                check_stmt(e)?;
            }
            Ok(())
        }
        StmtKind::Block(stmts) => {
            for s in stmts {
                check_stmt(s)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Validates the `for (init; cond; step)` header and returns the index
/// variable name.
fn check_for_header(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Expr>,
    span: Span,
) -> Result<String, CompileError> {
    // init: `type index = constant-expression`
    let index = match init.map(|s| &s.kind) {
        Some(StmtKind::Decl(decl)) if decl.vars.len() == 1 => {
            let d = &decl.vars[0];
            match &d.init {
                Some(e) if is_const_expr(e) => d.name.clone(),
                Some(_) => {
                    return Err(CompileError::check(
                        "appendix A: loop index must be initialised with a constant expression",
                        span,
                    ))
                }
                None => {
                    return Err(CompileError::check(
                        "appendix A: loop index must be initialised in the for header",
                        span,
                    ))
                }
            }
        }
        _ => {
            return Err(CompileError::check(
                "appendix A: for loops must declare exactly one index in the header",
                span,
            ))
        }
    };

    // cond: `index <op> constant-expression`
    match cond.map(|e| &e.kind) {
        Some(ExprKind::Binary(
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne,
            lhs,
            rhs,
        )) => {
            let index_on_left =
                matches!(&lhs.kind, ExprKind::Ident(n) if *n == index) && is_const_expr(rhs);
            let index_on_right =
                matches!(&rhs.kind, ExprKind::Ident(n) if *n == index) && is_const_expr(lhs);
            if !index_on_left && !index_on_right {
                return Err(CompileError::check(
                    "appendix A: loop condition must compare the index with a constant expression",
                    span,
                ));
            }
        }
        _ => {
            return Err(CompileError::check(
                "appendix A: loop condition must be a comparison of the index",
                span,
            ))
        }
    }

    // step: ++/-- or += / -= constant.
    let step_ok = match step.map(|e| &e.kind) {
        Some(ExprKind::Unary(
            UnOp::PreInc | UnOp::PostInc | UnOp::PreDec | UnOp::PostDec,
            inner,
        )) => matches!(&inner.kind, ExprKind::Ident(n) if *n == index),
        Some(ExprKind::Assign(AssignOp::AddAssign | AssignOp::SubAssign, lhs, rhs)) => {
            matches!(&lhs.kind, ExprKind::Ident(n) if *n == index) && is_const_expr(rhs)
        }
        _ => false,
    };
    if !step_ok {
        return Err(CompileError::check(
            "appendix A: loop step must be index++/--, or index +=/-= constant",
            span,
        ));
    }
    Ok(index)
}

/// A constant expression per Appendix A: literals combined with
/// arithmetic and unary sign.
fn is_const_expr(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::FloatLit(_) | ExprKind::IntLit(_) | ExprKind::BoolLit(_) => true,
        ExprKind::Unary(UnOp::Neg | UnOp::Plus, inner) => is_const_expr(inner),
        ExprKind::Binary(BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div, a, b) => {
            is_const_expr(a) && is_const_expr(b)
        }
        // Constructors of constants (e.g. `float(4)`) count.
        ExprKind::Call(name, args) => {
            matches!(name.as_str(), "float" | "int") && args.iter().all(is_const_expr)
        }
        _ => false,
    }
}

/// Rejects writes to the loop index anywhere in the body.
fn check_index_not_written(stmt: &Stmt, index: &str) -> Result<(), CompileError> {
    match &stmt.kind {
        StmtKind::Expr(e) => check_expr_no_write(e, index),
        StmtKind::Decl(decl) => {
            for d in &decl.vars {
                if let Some(init) = &d.init {
                    check_expr_no_write(init, index)?;
                }
            }
            Ok(())
        }
        StmtKind::If(c, then, otherwise) => {
            check_expr_no_write(c, index)?;
            check_index_not_written(then, index)?;
            if let Some(e) = otherwise {
                check_index_not_written(e, index)?;
            }
            Ok(())
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                check_index_not_written(s, index)?;
            }
            if let Some(c) = cond {
                check_expr_no_write(c, index)?;
            }
            if let Some(s) = step {
                check_expr_no_write(s, index)?;
            }
            check_index_not_written(body, index)
        }
        StmtKind::While(c, body) => {
            check_expr_no_write(c, index)?;
            check_index_not_written(body, index)
        }
        StmtKind::DoWhile(body, c) => {
            check_index_not_written(body, index)?;
            check_expr_no_write(c, index)
        }
        StmtKind::Return(Some(e)) => check_expr_no_write(e, index),
        StmtKind::Block(stmts) => {
            for s in stmts {
                check_index_not_written(s, index)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn check_expr_no_write(e: &Expr, index: &str) -> Result<(), CompileError> {
    match &e.kind {
        ExprKind::Assign(_, lhs, rhs) => {
            if expr_targets(lhs, index) {
                return Err(CompileError::check(
                    format!("appendix A: loop index `{index}` must not be written in the body"),
                    e.span,
                ));
            }
            check_expr_no_write(lhs, index)?;
            check_expr_no_write(rhs, index)
        }
        ExprKind::Unary(UnOp::PreInc | UnOp::PostInc | UnOp::PreDec | UnOp::PostDec, inner) => {
            if expr_targets(inner, index) {
                return Err(CompileError::check(
                    format!("appendix A: loop index `{index}` must not be written in the body"),
                    e.span,
                ));
            }
            check_expr_no_write(inner, index)
        }
        ExprKind::Unary(_, inner) => check_expr_no_write(inner, index),
        ExprKind::Binary(_, a, b) | ExprKind::Comma(a, b) => {
            check_expr_no_write(a, index)?;
            check_expr_no_write(b, index)
        }
        ExprKind::Ternary(c, a, b) => {
            check_expr_no_write(c, index)?;
            check_expr_no_write(a, index)?;
            check_expr_no_write(b, index)
        }
        ExprKind::Call(_, args) => {
            for a in args {
                check_expr_no_write(a, index)?;
            }
            Ok(())
        }
        ExprKind::Field(base, _) | ExprKind::Index(base, _) => check_expr_no_write(base, index),
        _ => Ok(()),
    }
}

fn expr_targets(e: &Expr, index: &str) -> bool {
    match &e.kind {
        ExprKind::Ident(n) => n == index,
        ExprKind::Field(base, _) | ExprKind::Index(base, _) => expr_targets(base, index),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn check_src(src: &str) -> Result<(), CompileError> {
        let unit = parser::parse(src).expect("parses");
        check_appendix_a(&unit)
    }

    #[test]
    fn canonical_gpgpu_loop_passes() {
        check_src(
            "void main() {\n\
               float acc = 0.0;\n\
               for (float i = 0.0; i < 16.0; i += 1.0) { acc = acc + i; }\n\
               for (int j = 0; j <= 8; j++) { acc = acc * 2.0; }\n\
               for (float k = 10.0; k > 0.0; k--) { acc = acc - 1.0; }\n\
             }",
        )
        .expect("appendix A conformant");
    }

    #[test]
    fn constant_arithmetic_bounds_pass() {
        check_src(
            "void main() {\n\
               for (float i = 0.0; i < 4.0 * 4.0; i += 1.0 + 1.0) { }\n\
               for (int j = int(0); 16 > j; j++) { }\n\
             }",
        )
        .expect("constant folding allowed");
    }

    #[test]
    fn while_loops_rejected() {
        let err =
            check_src("void main() { float i = 0.0; while (i < 4.0) { i += 1.0; } }").unwrap_err();
        assert!(err.message.contains("while"));
        let err = check_src("void main() { float i = 0.0; do { i += 1.0; } while (i < 4.0); }")
            .unwrap_err();
        assert!(err.message.contains("do-while"));
    }

    #[test]
    fn non_constant_bound_rejected() {
        let err = check_src(
            "uniform float u_n;\nvoid main() { for (float i = 0.0; i < u_n; i += 1.0) { } }",
        )
        .unwrap_err();
        assert!(err.message.contains("constant"));
        let err =
            check_src("void main() { float n = 4.0; for (float i = n; i < 8.0; i += 1.0) { } }")
                .unwrap_err();
        assert!(err.message.contains("constant"));
    }

    #[test]
    fn missing_header_pieces_rejected() {
        assert!(check_src("void main() { for (;;) { } }").is_err());
        assert!(check_src("void main() { float i; for (i = 0.0; i < 2.0; i++) { } }").is_err());
        assert!(check_src("void main() { for (float i = 0.0; i < 2.0; i *= 2.0) { } }").is_err());
        assert!(check_src("void main() { for (float i = 0.0; true; i++) { } }").is_err());
    }

    #[test]
    fn index_mutation_in_body_rejected() {
        let err = check_src("void main() { for (float i = 0.0; i < 9.0; i++) { i = 5.0; } }")
            .unwrap_err();
        assert!(err.message.contains("must not be written"));
        let err = check_src(
            "void main() { for (float i = 0.0; i < 9.0; i++) { if (i > 2.0) { i += 1.0; } } }",
        )
        .unwrap_err();
        assert!(err.message.contains("must not be written"));
        let err = check_src("void main() { for (float i = 0.0; i < 9.0; i++) { float x = i++; } }")
            .unwrap_err();
        assert!(err.message.contains("must not be written"));
        // Reading the index is fine.
        check_src("void main() { for (float i = 0.0; i < 9.0; i++) { float x = i * 2.0; } }")
            .expect("reads allowed");
    }

    #[test]
    fn nested_loops_check_both_indices() {
        check_src(
            "void main() {\n\
               for (float i = 0.0; i < 4.0; i++) {\n\
                 for (float j = 0.0; j < 4.0; j++) { float x = i + j; }\n\
               }\n\
             }",
        )
        .expect("nested conformant loops");
        let err = check_src(
            "void main() {\n\
               for (float i = 0.0; i < 4.0; i++) {\n\
                 for (float j = 0.0; j < 4.0; j++) { i += 1.0; }\n\
               }\n\
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("`i`"));
    }

    #[test]
    fn full_compile_strict_integration() {
        crate::compile_strict(
            crate::ShaderKind::Fragment,
            "precision highp float;\n\
             void main() {\n\
               float acc = 0.0;\n\
               for (float i = 0.0; i < 8.0; i += 1.0) { acc += i; }\n\
               gl_FragColor = vec4(acc);\n\
             }",
        )
        .expect("strict compile");
        let err = crate::compile_strict(
            crate::ShaderKind::Fragment,
            "precision highp float;\nuniform float u_n;\n\
             void main() {\n\
               float acc = 0.0;\n\
               for (float i = 0.0; i < u_n; i += 1.0) { acc += i; }\n\
               gl_FragColor = vec4(acc);\n\
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("appendix A"));
    }
}
