//! Execution environment: floating-point models, operation profiling,
//! texture access and interpreter limits.
//!
//! The paper (§V) observes that its float transformations are *exact on the
//! CPU* but only accurate to the 15 most significant mantissa bits on the
//! VideoCore IV. The cause is the GPU platform: transcendental functions
//! (`exp2`, `log2`, reciprocal, rsqrt) are produced by a Special Function
//! Unit (SFU) with reduced precision, and the float pack/unpack shaders rely
//! on exactly those functions. [`FloatModel`] lets the interpreter emulate
//! either behaviour so the experiment can be reproduced (experiment E2).

/// How the simulated GPU rounds floating-point results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FloatModel {
    /// IEEE-754 binary32 for everything (a "perfect" GPU; also what the
    /// paper's CPU-side verification uses).
    #[default]
    Exact,
    /// VideoCore IV-like: basic arithmetic (`+ - * /`) is correctly-rounded
    /// fp32, but SFU-produced transcendentals (`exp2`, `log2`, `pow`, `exp`,
    /// `log`, `sqrt`, `inversesqrt`, trigonometry) keep only
    /// [`VC4_SFU_MANTISSA_BITS`] mantissa bits.
    Vc4Sfu,
    /// A pessimistic `mediump`-only device: every operation result is
    /// rounded to a 10-bit mantissa (fp16-like significand, exponent left
    /// untouched). Useful to show why half-float extensions are "not
    /// enough" (§II, limitation 5).
    Mediump16,
}

/// Mantissa bits preserved by the modelled VideoCore IV SFU.
///
/// The QPU SFU produces ~16 good mantissa bits for `exp2`/`log2`
/// (documented in the VideoCore IV 3D architecture guide); two dependent
/// SFU operations land the end-to-end pack→unpack accuracy at ~15 bits,
/// matching the paper's measurement.
pub const VC4_SFU_MANTISSA_BITS: u32 = 16;

/// Relative magnitude of the modelled SFU approximation error (~2⁻¹⁷).
///
/// The SFU is a table-plus-interpolation unit: its results carry a
/// value-dependent relative error even where the mathematical result is
/// exactly representable (e.g. `exp2` of an integer). Pure output
/// truncation would let guard code sidestep the error entirely, which
/// real hardware does not allow — this term is what produces the paper's
/// 15-bit observation (experiment E2).
pub const VC4_SFU_REL_ERROR: f32 = 1.2e-5; // ≈ 2^-16.3

fn sfu_interpolation_noise(bits: u32) -> f32 {
    // Deterministic avalanche hash of the result bits → [-1, 1).
    let mut h = bits ^ 0x9E37_79B9;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^= h >> 16;
    let centered = (h as f64 / u32::MAX as f64) * 2.0 - 1.0;
    (centered * VC4_SFU_REL_ERROR as f64) as f32
}

impl FloatModel {
    /// Rounds a basic-arithmetic result (`+ - * /`).
    #[inline]
    pub fn round_alu(self, v: f32) -> f32 {
        match self {
            FloatModel::Exact | FloatModel::Vc4Sfu => v,
            FloatModel::Mediump16 => round_mantissa(v, 10),
        }
    }

    /// Rounds a transcendental (SFU) result.
    #[inline]
    pub fn round_sfu(self, v: f32) -> f32 {
        match self {
            FloatModel::Exact => v,
            FloatModel::Vc4Sfu => {
                if !v.is_finite() || v == 0.0 {
                    return v;
                }
                let noisy = v * (1.0 + sfu_interpolation_noise(v.to_bits()));
                round_mantissa(noisy, VC4_SFU_MANTISSA_BITS)
            }
            FloatModel::Mediump16 => round_mantissa(v, 10),
        }
    }
}

/// Rounds `v` to `bits` explicit mantissa bits (round-to-nearest-even on
/// the dropped bits). Leaves zeros, infinities and NaNs untouched.
pub fn round_mantissa(v: f32, bits: u32) -> f32 {
    if !v.is_finite() || v == 0.0 || bits >= 23 {
        return v;
    }
    let raw = v.to_bits();
    let drop = 23 - bits;
    let mask: u32 = (1 << drop) - 1;
    let tail = raw & mask;
    let half = 1u32 << (drop - 1);
    let mut kept = raw & !mask;
    // Round-to-nearest-even on the kept LSB.
    if tail > half || (tail == half && (kept >> drop) & 1 == 1) {
        kept = kept.wrapping_add(1 << drop);
    }
    f32::from_bits(kept)
}

/// Counters for work performed by shader invocations.
///
/// The rasteriser accumulates one profile per draw call; `gpes-perf` converts
/// it into VideoCore IV cycle estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpProfile {
    /// Basic ALU operations (`+ - * /`, comparisons, component-wise
    /// builtins count one op per component).
    pub alu_ops: u64,
    /// Special-function operations (`exp2`, `log2`, `pow`, trig, …).
    pub sfu_ops: u64,
    /// `texture2D` fetches.
    pub tex_fetches: u64,
    /// Taken branches / loop iterations (control-flow overhead proxy).
    pub branches: u64,
    /// User-defined function calls.
    pub calls: u64,
    /// Shader invocations merged into this profile.
    pub invocations: u64,
}

impl OpProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another profile's counts into this one.
    pub fn merge(&mut self, other: &OpProfile) {
        self.alu_ops += other.alu_ops;
        self.sfu_ops += other.sfu_ops;
        self.tex_fetches += other.tex_fetches;
        self.branches += other.branches;
        self.calls += other.calls;
        self.invocations += other.invocations;
    }

    /// Total of all counted operations (excluding `invocations`).
    pub fn total_ops(&self) -> u64 {
        self.alu_ops + self.sfu_ops + self.tex_fetches + self.branches + self.calls
    }

    /// Mean ALU ops per invocation (0 if nothing ran).
    pub fn alu_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.alu_ops as f64 / self.invocations as f64
        }
    }
}

/// Source of texels for `texture2D` during shader execution.
///
/// Implemented by the GLES2 simulator's texture-unit bindings. Coordinates
/// are normalised (ES 2 offers nothing else — limitation 4 of §II); the
/// implementation applies wrap modes and filtering and returns RGBA in
/// [0, 1] (eq. (1) of the paper).
pub trait TextureAccess {
    /// Samples texture `unit` at normalised coordinates `coord`.
    fn sample(&self, unit: u32, coord: [f32; 2]) -> [f32; 4];
}

/// A texture source with no bound textures: always samples opaque black,
/// which is what ES 2 mandates for incomplete textures.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTextures;

impl TextureAccess for NoTextures {
    fn sample(&self, _unit: u32, _coord: [f32; 2]) -> [f32; 4] {
        [0.0, 0.0, 0.0, 1.0]
    }
}

/// Interpreter resource limits (defence against runaway shaders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum iterations for any single loop.
    pub max_loop_iterations: u64,
    /// Maximum user-function call depth.
    pub max_call_depth: u32,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_loop_iterations: 16_000_000,
            max_call_depth: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_model_is_identity() {
        let m = FloatModel::Exact;
        for v in [0.0f32, 1.0, -2.5, std::f32::consts::PI, f32::MAX, 1e-30] {
            assert_eq!(m.round_alu(v).to_bits(), v.to_bits());
            assert_eq!(m.round_sfu(v).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn vc4_model_degrades_sfu_only() {
        let m = FloatModel::Vc4Sfu;
        let v = 1.0 + f32::EPSILON; // needs all 23 bits
        assert_eq!(m.round_alu(v), v, "ALU stays exact on VC4");
        // SFU results carry table-interpolation error + 16-bit rounding:
        // the low mantissa bits are gone, the high ones survive.
        let r = m.round_sfu(v);
        assert_ne!(r.to_bits(), v.to_bits());
        assert!((r - 1.0).abs() <= 2.0f32.powi(-15), "{r}");
        // Even exactly-representable results are perturbed (table unit).
        let p = m.round_sfu(1024.0);
        assert!((p / 1024.0 - 1.0).abs() <= 2.0f32.powi(-15));
    }

    #[test]
    fn vc4_sfu_noise_is_deterministic() {
        let m = FloatModel::Vc4Sfu;
        for v in [0.37f32, 123.5, 2.0f32.powi(20), 1.0e-12] {
            assert_eq!(m.round_sfu(v).to_bits(), m.round_sfu(v).to_bits());
            let rel = (m.round_sfu(v) / v - 1.0).abs();
            assert!(rel <= 2.0f32.powi(-15), "{v}: rel error {rel}");
        }
        // Zero and specials pass through.
        assert_eq!(m.round_sfu(0.0), 0.0);
        assert!(m.round_sfu(f32::NAN).is_nan());
        assert_eq!(m.round_sfu(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn round_mantissa_keeps_msbs() {
        // 1.5 = 1.1b — representable with 1 mantissa bit.
        assert_eq!(round_mantissa(1.5, 10), 1.5);
        // π needs many bits; rounding to 10 changes it but stays close.
        let pi = std::f32::consts::PI;
        let r = round_mantissa(pi, 10);
        assert_ne!(r, pi);
        assert!((r - pi).abs() / pi < 2.0_f32.powi(-10));
    }

    #[test]
    fn round_mantissa_special_values() {
        assert_eq!(round_mantissa(0.0, 10), 0.0);
        assert!(round_mantissa(f32::NAN, 10).is_nan());
        assert_eq!(round_mantissa(f32::INFINITY, 10), f32::INFINITY);
        assert_eq!(round_mantissa(-0.0, 10).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn round_mantissa_is_round_to_nearest_even() {
        // Value exactly halfway between two 1-bit-mantissa numbers.
        // 1.25 with 1 mantissa bit: candidates 1.0 (even) and 1.5 (odd).
        assert_eq!(round_mantissa(1.25, 1), 1.0);
        // 1.75 halfway between 1.5 and 2.0 → 2.0 (even).
        assert_eq!(round_mantissa(1.75, 1), 2.0);
    }

    #[test]
    fn profile_merge_and_totals() {
        let mut a = OpProfile {
            alu_ops: 10,
            sfu_ops: 2,
            tex_fetches: 3,
            branches: 1,
            calls: 1,
            invocations: 1,
        };
        let b = OpProfile {
            alu_ops: 5,
            invocations: 1,
            ..OpProfile::default()
        };
        a.merge(&b);
        assert_eq!(a.alu_ops, 15);
        assert_eq!(a.invocations, 2);
        assert_eq!(a.total_ops(), 15 + 2 + 3 + 1 + 1);
        assert_eq!(a.alu_per_invocation(), 7.5);
    }

    #[test]
    fn no_textures_returns_opaque_black() {
        assert_eq!(NoTextures.sample(0, [0.5, 0.5]), [0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn mediump_model_rounds_alu() {
        let m = FloatModel::Mediump16;
        let v = 1.0 + f32::EPSILON;
        assert_eq!(m.round_alu(v), 1.0);
    }
}
