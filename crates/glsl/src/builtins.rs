//! GLSL ES 1.00 builtin functions and type constructors.
//!
//! Two views are provided and must agree:
//!
//! * [`signature`] — static result-type computation used by the checker,
//! * [`call`] — dynamic evaluation used by the interpreter, threaded
//!   through the [`FloatModel`] so SFU-precision effects are modelled.

use crate::error::RuntimeError;
use crate::exec::{FloatModel, OpProfile, TextureAccess};
use crate::types::{Scalar, Type};
use crate::value::Value;

/// Evaluation context handed to builtins by the interpreter.
pub struct BuiltinCx<'a> {
    /// Float rounding model.
    pub model: FloatModel,
    /// Profile counters to update.
    pub profile: &'a mut OpProfile,
    /// Bound textures.
    pub textures: &'a dyn TextureAccess,
}

fn type_err(msg: impl Into<String>) -> RuntimeError {
    RuntimeError::Type {
        message: msg.into(),
    }
}

// ---------------------------------------------------------------------------
// Static signatures (used by sema)
// ---------------------------------------------------------------------------

fn is_gen(t: &Type) -> bool {
    matches!(t, Type::Float | Type::Vec2 | Type::Vec3 | Type::Vec4)
}

#[allow(dead_code)]
fn is_ivec(t: &Type) -> bool {
    matches!(t, Type::IVec2 | Type::IVec3 | Type::IVec4)
}

fn is_bvec(t: &Type) -> bool {
    matches!(t, Type::BVec2 | Type::BVec3 | Type::BVec4)
}

fn bvec_of_dim(dim: usize) -> Type {
    Type::vector_of(Scalar::Bool, dim).expect("bvec dim")
}

/// Whether `name` could dispatch to a builtin function or constructor for
/// *some* argument list — i.e. whether [`call`] can ever return `Some`
/// for it. Used by the bytecode lowerer, which must know statically when
/// a user call site can be intercepted by the builtin layer.
pub(crate) fn is_builtin_name(name: &str) -> bool {
    matches!(
        name,
        "radians"
            | "degrees"
            | "sin"
            | "cos"
            | "tan"
            | "asin"
            | "acos"
            | "atan"
            | "pow"
            | "exp"
            | "log"
            | "exp2"
            | "log2"
            | "sqrt"
            | "inversesqrt"
            | "abs"
            | "sign"
            | "floor"
            | "ceil"
            | "fract"
            | "mod"
            | "min"
            | "max"
            | "clamp"
            | "mix"
            | "step"
            | "smoothstep"
            | "length"
            | "distance"
            | "dot"
            | "cross"
            | "normalize"
            | "faceforward"
            | "reflect"
            | "refract"
            | "matrixCompMult"
            | "lessThan"
            | "lessThanEqual"
            | "greaterThan"
            | "greaterThanEqual"
            | "equal"
            | "notEqual"
            | "any"
            | "all"
            | "not"
            | "texture2D"
            | "texture2DProj"
            | "float"
            | "int"
            | "bool"
            | "vec2"
            | "vec3"
            | "vec4"
            | "ivec2"
            | "ivec3"
            | "ivec4"
            | "bvec2"
            | "bvec3"
            | "bvec4"
            | "mat2"
            | "mat3"
            | "mat4"
    )
}

/// Computes the result type of a builtin call, or `None` if `name` is not a
/// builtin or the argument types do not match any overload.
pub fn signature(name: &str, args: &[Type]) -> Option<Type> {
    use Type::*;
    let a0 = args.first();
    match name {
        // genType → genType
        "radians" | "degrees" | "sin" | "cos" | "tan" | "asin" | "acos" | "exp" | "log"
        | "exp2" | "log2" | "sqrt" | "inversesqrt" | "abs" | "sign" | "floor" | "ceil"
        | "fract" | "normalize" => match (args.len(), a0) {
            (1, Some(t)) if is_gen(t) => Some(t.clone()),
            _ => None,
        },
        "atan" => match args {
            [t] if is_gen(t) => Some(t.clone()),
            [y, x] if is_gen(y) && y == x => Some(y.clone()),
            _ => None,
        },
        "pow" => match args {
            [x, y] if is_gen(x) && x == y => Some(x.clone()),
            _ => None,
        },
        "mod" | "min" | "max" => match args {
            [x, y] if is_gen(x) && x == y => Some(x.clone()),
            [x, Float] if is_gen(x) => Some(x.clone()),
            _ => None,
        },
        "clamp" => match args {
            [x, a, b] if is_gen(x) && x == a && a == b => Some(x.clone()),
            [x, Float, Float] if is_gen(x) => Some(x.clone()),
            _ => None,
        },
        "mix" => match args {
            [x, y, a] if is_gen(x) && x == y && y == a => Some(x.clone()),
            [x, y, Float] if is_gen(x) && x == y => Some(x.clone()),
            _ => None,
        },
        "step" => match args {
            [e, x] if is_gen(e) && e == x => Some(x.clone()),
            [Float, x] if is_gen(x) => Some(x.clone()),
            _ => None,
        },
        "smoothstep" => match args {
            [a, b, x] if is_gen(x) && a == b && b == x => Some(x.clone()),
            [Float, Float, x] if is_gen(x) => Some(x.clone()),
            _ => None,
        },
        "length" => match args {
            [t] if is_gen(t) => Some(Float),
            _ => None,
        },
        "distance" | "dot" => match args {
            [a, b] if is_gen(a) && a == b => Some(Float),
            _ => None,
        },
        "cross" => match args {
            [Vec3, Vec3] => Some(Vec3),
            _ => None,
        },
        "faceforward" => match args {
            [n, i, r] if is_gen(n) && n == i && i == r => Some(n.clone()),
            _ => None,
        },
        "reflect" => match args {
            [i, n] if is_gen(i) && i == n => Some(i.clone()),
            _ => None,
        },
        "refract" => match args {
            [i, n, Float] if is_gen(i) && i == n => Some(i.clone()),
            _ => None,
        },
        "matrixCompMult" => match args {
            [a, b] if a.is_matrix() && a == b => Some(a.clone()),
            _ => None,
        },
        "lessThan" | "lessThanEqual" | "greaterThan" | "greaterThanEqual" => match args {
            [a, b] if a == b && (a.is_vector() && !is_bvec(a)) => Some(bvec_of_dim(a.dim()?)),
            _ => None,
        },
        "equal" | "notEqual" => match args {
            [a, b] if a == b && a.is_vector() => Some(bvec_of_dim(a.dim()?)),
            _ => None,
        },
        "any" | "all" => match args {
            [t] if is_bvec(t) => Some(Bool),
            _ => None,
        },
        "not" => match args {
            [t] if is_bvec(t) => Some(t.clone()),
            _ => None,
        },
        "texture2D" => match args {
            [Sampler2D, Vec2] | [Sampler2D, Vec2, Float] => Some(Vec4),
            _ => None,
        },
        "texture2DProj" => match args {
            [Sampler2D, Vec3] | [Sampler2D, Vec4] => Some(Vec4),
            _ => None,
        },
        _ => constructor_signature(name, args),
    }
}

/// Result type for type constructors (`vec4(...)`, `float(...)`, …).
fn constructor_signature(name: &str, args: &[Type]) -> Option<Type> {
    let target = match name {
        "float" => Type::Float,
        "int" => Type::Int,
        "bool" => Type::Bool,
        "vec2" => Type::Vec2,
        "vec3" => Type::Vec3,
        "vec4" => Type::Vec4,
        "ivec2" => Type::IVec2,
        "ivec3" => Type::IVec3,
        "ivec4" => Type::IVec4,
        "bvec2" => Type::BVec2,
        "bvec3" => Type::BVec3,
        "bvec4" => Type::BVec4,
        "mat2" => Type::Mat2,
        "mat3" => Type::Mat3,
        "mat4" => Type::Mat4,
        _ => return None,
    };
    if args.is_empty() {
        return None;
    }
    // All arguments must have numeric components.
    let mut total = 0usize;
    for a in args {
        total += a.component_count()?;
    }
    let needed = target.component_count().expect("constructible type");
    if target.is_matrix() {
        // mat(scalar) → diagonal; mat(mat) → resize; else exact components
        // (matrix arguments are only allowed in the single-argument form).
        let ok = (args.len() == 1 && (args[0].is_scalar() || args[0].is_matrix()))
            || (total == needed && args.iter().all(|a| !a.is_matrix()));
        return ok.then_some(target);
    }
    if target.is_scalar() {
        // Scalar conversions take one argument with ≥ 1 component.
        return (args.len() == 1).then_some(target);
    }
    // Vector: single scalar splat, single larger vector truncation, or
    // exact component total.
    let ok = (args.len() == 1 && (args[0].is_scalar() || total >= needed)) || total == needed;
    ok.then_some(target)
}

// ---------------------------------------------------------------------------
// Dynamic evaluation (used by the interpreter)
// ---------------------------------------------------------------------------

/// Float components + original shape for genType math.
struct Gen {
    comps: Vec<f32>,
    ty: Type,
}

fn gen_of(v: &Value) -> Result<Gen, RuntimeError> {
    match v {
        Value::Float(_) | Value::Vec2(_) | Value::Vec3(_) | Value::Vec4(_) => Ok(Gen {
            comps: v.float_components().expect("float-based"),
            ty: v.ty(),
        }),
        other => Err(type_err(format!(
            "expected float genType, found {}",
            other.ty()
        ))),
    }
}

fn gen_value(ty: &Type, comps: Vec<f32>) -> Value {
    match ty {
        Type::Float => Value::Float(comps[0]),
        Type::Vec2 => Value::Vec2([comps[0], comps[1]]),
        Type::Vec3 => Value::Vec3([comps[0], comps[1], comps[2]]),
        Type::Vec4 => Value::Vec4([comps[0], comps[1], comps[2], comps[3]]),
        _ => unreachable!("gen_value on non-genType"),
    }
}

fn map1(
    cx: &mut BuiltinCx<'_>,
    v: &Value,
    sfu: bool,
    f: impl Fn(f32) -> f32,
) -> Result<Value, RuntimeError> {
    // Scalar fast path, allocation-free.
    if let Value::Float(x) = v {
        if sfu {
            cx.profile.sfu_ops += 1;
            return Ok(Value::Float(cx.model.round_sfu(f(*x))));
        }
        cx.profile.alu_ops += 1;
        return Ok(Value::Float(cx.model.round_alu(f(*x))));
    }
    let g = gen_of(v)?;
    let n = g.comps.len() as u64;
    if sfu {
        cx.profile.sfu_ops += n;
    } else {
        cx.profile.alu_ops += n;
    }
    let round = |x: f32| {
        if sfu {
            cx.model.round_sfu(x)
        } else {
            cx.model.round_alu(x)
        }
    };
    let comps = g.comps.iter().map(|&x| round(f(x))).collect();
    Ok(gen_value(&g.ty, comps))
}

/// Component-wise binary map; `b` may be a scalar float broadcast.
fn map2(
    cx: &mut BuiltinCx<'_>,
    a: &Value,
    b: &Value,
    sfu: bool,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Value, RuntimeError> {
    // Scalar fast path, allocation-free.
    if let (Value::Float(x), Value::Float(y)) = (a, b) {
        if sfu {
            cx.profile.sfu_ops += 1;
            return Ok(Value::Float(cx.model.round_sfu(f(*x, *y))));
        }
        cx.profile.alu_ops += 1;
        return Ok(Value::Float(cx.model.round_alu(f(*x, *y))));
    }
    let ga = gen_of(a)?;
    let gb = gen_of(b)?;
    let n = ga.comps.len() as u64;
    if sfu {
        cx.profile.sfu_ops += n;
    } else {
        cx.profile.alu_ops += n;
    }
    let round = |x: f32| {
        if sfu {
            cx.model.round_sfu(x)
        } else {
            cx.model.round_alu(x)
        }
    };
    let comps: Vec<f32> = if gb.comps.len() == 1 && ga.comps.len() > 1 {
        ga.comps.iter().map(|&x| round(f(x, gb.comps[0]))).collect()
    } else if ga.comps.len() == gb.comps.len() {
        ga.comps
            .iter()
            .zip(&gb.comps)
            .map(|(&x, &y)| round(f(x, y)))
            .collect()
    } else {
        return Err(type_err(format!(
            "mismatched genType shapes {} and {}",
            ga.ty, gb.ty
        )));
    };
    Ok(gen_value(&ga.ty, comps))
}

fn map3(
    cx: &mut BuiltinCx<'_>,
    a: &Value,
    b: &Value,
    c: &Value,
    f: impl Fn(f32, f32, f32) -> f32,
) -> Result<Value, RuntimeError> {
    let ga = gen_of(a)?;
    let gb = gen_of(b)?;
    let gc = gen_of(c)?;
    let n = ga.comps.len();
    cx.profile.alu_ops += 2 * n as u64;
    let pick = |g: &Gen, i: usize| {
        if g.comps.len() == 1 {
            g.comps[0]
        } else {
            g.comps[i]
        }
    };
    if (gb.comps.len() != 1 && gb.comps.len() != n) || (gc.comps.len() != 1 && gc.comps.len() != n)
    {
        return Err(type_err("mismatched genType shapes in 3-ary builtin"));
    }
    let comps = (0..n)
        .map(|i| {
            cx.model
                .round_alu(f(ga.comps[i], pick(&gb, i), pick(&gc, i)))
        })
        .collect();
    Ok(gen_value(&ga.ty, comps))
}

/// GLSL `mod(x, y) = x - y * floor(x/y)`, computed in fp32 steps so the
/// float model applies as on hardware.
pub(crate) fn glsl_mod(x: f32, y: f32) -> f32 {
    x - y * (x / y).floor()
}

/// `exp2` with an exact fast path for integral arguments — powers of two
/// are exactly representable and the numeric transformations of §IV depend
/// on that exactness.
pub(crate) fn exp2_f32(x: f32) -> f32 {
    if x.fract() == 0.0 && (-149.0..=127.0).contains(&x) {
        let e = x as i32;
        if e >= -126 {
            f32::from_bits(((e + 127) as u32) << 23)
        } else {
            // Subnormal powers of two.
            f32::from_bits(1u32 << (149 + e) as u32)
        }
    } else {
        x.exp2()
    }
}

fn dot_comps(cx: &mut BuiltinCx<'_>, a: &[f32], b: &[f32]) -> f32 {
    cx.profile.alu_ops += (2 * a.len()) as u64;
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc = cx.model.round_alu(acc + cx.model.round_alu(x * y));
    }
    acc
}

fn relational(
    cx: &mut BuiltinCx<'_>,
    a: &Value,
    b: &Value,
    f: impl Fn(f32, f32) -> bool,
) -> Result<Value, RuntimeError> {
    let ca = a
        .numeric_components()
        .ok_or_else(|| type_err("relational builtin needs vector operands"))?;
    let cb = b
        .numeric_components()
        .ok_or_else(|| type_err("relational builtin needs vector operands"))?;
    if ca.len() != cb.len() || !(2..=4).contains(&ca.len()) {
        return Err(type_err("relational builtin operand shape mismatch"));
    }
    cx.profile.alu_ops += ca.len() as u64;
    let bools: Vec<bool> = ca.iter().zip(&cb).map(|(&x, &y)| f(x, y)).collect();
    Ok(match bools.len() {
        2 => Value::BVec2([bools[0], bools[1]]),
        3 => Value::BVec3([bools[0], bools[1], bools[2]]),
        _ => Value::BVec4([bools[0], bools[1], bools[2], bools[3]]),
    })
}

fn bvec_comps(v: &Value) -> Result<Vec<bool>, RuntimeError> {
    match v {
        Value::BVec2(b) => Ok(b.to_vec()),
        Value::BVec3(b) => Ok(b.to_vec()),
        Value::BVec4(b) => Ok(b.to_vec()),
        other => Err(type_err(format!("expected bvec, found {}", other.ty()))),
    }
}

/// Evaluates builtin `name` on `args`.
///
/// Returns `None` if `name` is not a builtin or constructor (the caller
/// then resolves a user-defined function).
pub fn call(
    name: &str,
    args: &[Value],
    cx: &mut BuiltinCx<'_>,
) -> Option<Result<Value, RuntimeError>> {
    use std::f32::consts::PI;
    let r = match (name, args) {
        ("radians", [x]) => map1(cx, x, false, |v| v * (PI / 180.0)),
        ("degrees", [x]) => map1(cx, x, false, |v| v * (180.0 / PI)),
        ("sin", [x]) => map1(cx, x, true, f32::sin),
        ("cos", [x]) => map1(cx, x, true, f32::cos),
        ("tan", [x]) => map1(cx, x, true, f32::tan),
        ("asin", [x]) => map1(cx, x, true, f32::asin),
        ("acos", [x]) => map1(cx, x, true, f32::acos),
        ("atan", [x]) => map1(cx, x, true, f32::atan),
        ("atan", [y, x]) => map2(cx, y, x, true, f32::atan2),
        ("pow", [x, y]) => map2(cx, x, y, true, f32::powf),
        ("exp", [x]) => map1(cx, x, true, f32::exp),
        ("log", [x]) => map1(cx, x, true, f32::ln),
        ("exp2", [x]) => map1(cx, x, true, exp2_f32),
        ("log2", [x]) => map1(cx, x, true, f32::log2),
        ("sqrt", [x]) => map1(cx, x, true, f32::sqrt),
        ("inversesqrt", [x]) => map1(cx, x, true, |v| 1.0 / v.sqrt()),
        ("abs", [x]) => map1(cx, x, false, f32::abs),
        ("sign", [x]) => map1(cx, x, false, |v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        }),
        ("floor", [x]) => map1(cx, x, false, f32::floor),
        ("ceil", [x]) => map1(cx, x, false, f32::ceil),
        ("fract", [x]) => map1(cx, x, false, |v| v - v.floor()),
        ("mod", [x, y]) => map2(cx, x, y, false, glsl_mod),
        ("min", [x, y]) => map2(cx, x, y, false, f32::min),
        ("max", [x, y]) => map2(cx, x, y, false, f32::max),
        ("clamp", [x, a, b]) => map3(cx, x, a, b, |v, lo, hi| v.max(lo).min(hi)),
        ("mix", [x, y, a]) => map3(cx, x, y, a, |p, q, t| p * (1.0 - t) + q * t),
        ("step", [e, x]) => {
            // step(edge, x): edge may be scalar with vector x.
            let ge = match gen_of(e) {
                Ok(g) => g,
                Err(e) => return Some(Err(e)),
            };
            let gx = match gen_of(x) {
                Ok(g) => g,
                Err(e) => return Some(Err(e)),
            };
            cx.profile.alu_ops += gx.comps.len() as u64;
            let pick = |i: usize| {
                if ge.comps.len() == 1 {
                    ge.comps[0]
                } else {
                    ge.comps[i]
                }
            };
            let comps = (0..gx.comps.len())
                .map(|i| if gx.comps[i] < pick(i) { 0.0 } else { 1.0 })
                .collect();
            Ok(gen_value(&gx.ty, comps))
        }
        ("smoothstep", [e0, e1, x]) => {
            let g0 = match gen_of(e0) {
                Ok(g) => g,
                Err(e) => return Some(Err(e)),
            };
            let g1 = match gen_of(e1) {
                Ok(g) => g,
                Err(e) => return Some(Err(e)),
            };
            let gx = match gen_of(x) {
                Ok(g) => g,
                Err(e) => return Some(Err(e)),
            };
            cx.profile.alu_ops += (5 * gx.comps.len()) as u64;
            let pick = |g: &Gen, i: usize| {
                if g.comps.len() == 1 {
                    g.comps[0]
                } else {
                    g.comps[i]
                }
            };
            let comps = (0..gx.comps.len())
                .map(|i| {
                    let (a, b, v) = (pick(&g0, i), pick(&g1, i), gx.comps[i]);
                    let t = ((v - a) / (b - a)).clamp(0.0, 1.0);
                    cx.model.round_alu(t * t * (3.0 - 2.0 * t))
                })
                .collect();
            Ok(gen_value(&gx.ty, comps))
        }
        ("length", [x]) => gen_of(x).map(|g| {
            let d = dot_comps(cx, &g.comps, &g.comps);
            cx.profile.sfu_ops += 1;
            Value::Float(cx.model.round_sfu(d.sqrt()))
        }),
        ("distance", [a, b]) => match (gen_of(a), gen_of(b)) {
            (Ok(ga), Ok(gb)) => {
                let diff: Vec<f32> = ga
                    .comps
                    .iter()
                    .zip(&gb.comps)
                    .map(|(&x, &y)| cx.model.round_alu(x - y))
                    .collect();
                let d = dot_comps(cx, &diff, &diff);
                cx.profile.sfu_ops += 1;
                Ok(Value::Float(cx.model.round_sfu(d.sqrt())))
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        },
        ("dot", [a, b]) => match (gen_of(a), gen_of(b)) {
            (Ok(ga), Ok(gb)) => Ok(Value::Float(dot_comps(cx, &ga.comps, &gb.comps))),
            (Err(e), _) | (_, Err(e)) => Err(e),
        },
        ("cross", [a, b]) => match (a, b) {
            (Value::Vec3(a), Value::Vec3(b)) => {
                cx.profile.alu_ops += 9;
                Ok(Value::Vec3([
                    cx.model.round_alu(a[1] * b[2] - a[2] * b[1]),
                    cx.model.round_alu(a[2] * b[0] - a[0] * b[2]),
                    cx.model.round_alu(a[0] * b[1] - a[1] * b[0]),
                ]))
            }
            _ => Err(type_err("cross requires two vec3 operands")),
        },
        ("normalize", [x]) => gen_of(x).map(|g| {
            let d = dot_comps(cx, &g.comps, &g.comps);
            cx.profile.sfu_ops += 1;
            let inv = cx.model.round_sfu(1.0 / d.sqrt());
            let comps = g
                .comps
                .iter()
                .map(|&c| cx.model.round_alu(c * inv))
                .collect();
            gen_value(&g.ty, comps)
        }),
        ("faceforward", [n, i, nref]) => match (gen_of(n), gen_of(i), gen_of(nref)) {
            (Ok(gn), Ok(gi), Ok(gr)) => {
                let d = dot_comps(cx, &gr.comps, &gi.comps);
                let comps = if d < 0.0 {
                    gn.comps
                } else {
                    gn.comps.iter().map(|&c| -c).collect()
                };
                Ok(gen_value(&gn.ty, comps))
            }
            _ => Err(type_err("faceforward requires genType operands")),
        },
        ("reflect", [i, n]) => match (gen_of(i), gen_of(n)) {
            (Ok(gi), Ok(gn)) => {
                let d = dot_comps(cx, &gn.comps, &gi.comps);
                let comps = gi
                    .comps
                    .iter()
                    .zip(&gn.comps)
                    .map(|(&iv, &nv)| cx.model.round_alu(iv - 2.0 * d * nv))
                    .collect();
                Ok(gen_value(&gi.ty, comps))
            }
            _ => Err(type_err("reflect requires genType operands")),
        },
        ("refract", [i, n, eta]) => match (gen_of(i), gen_of(n), eta.as_f32()) {
            (Ok(gi), Ok(gn), Some(eta)) => {
                let d = dot_comps(cx, &gn.comps, &gi.comps);
                let k = 1.0 - eta * eta * (1.0 - d * d);
                cx.profile.sfu_ops += 1;
                let comps = if k < 0.0 {
                    vec![0.0; gi.comps.len()]
                } else {
                    let s = eta * d + cx.model.round_sfu(k.sqrt());
                    gi.comps
                        .iter()
                        .zip(&gn.comps)
                        .map(|(&iv, &nv)| cx.model.round_alu(eta * iv - s * nv))
                        .collect()
                };
                Ok(gen_value(&gi.ty, comps))
            }
            _ => Err(type_err("refract requires (genType, genType, float)")),
        },
        ("matrixCompMult", [a, b]) => match (a, b) {
            (Value::Mat2(x), Value::Mat2(y)) => {
                cx.profile.alu_ops += 4;
                let mut m = [[0.0; 2]; 2];
                for c in 0..2 {
                    for r in 0..2 {
                        m[c][r] = cx.model.round_alu(x[c][r] * y[c][r]);
                    }
                }
                Ok(Value::Mat2(m))
            }
            (Value::Mat3(x), Value::Mat3(y)) => {
                cx.profile.alu_ops += 9;
                let mut m = [[0.0; 3]; 3];
                for c in 0..3 {
                    for r in 0..3 {
                        m[c][r] = cx.model.round_alu(x[c][r] * y[c][r]);
                    }
                }
                Ok(Value::Mat3(m))
            }
            (Value::Mat4(x), Value::Mat4(y)) => {
                cx.profile.alu_ops += 16;
                let mut m = [[0.0; 4]; 4];
                for c in 0..4 {
                    for r in 0..4 {
                        m[c][r] = cx.model.round_alu(x[c][r] * y[c][r]);
                    }
                }
                Ok(Value::Mat4(m))
            }
            _ => Err(type_err("matrixCompMult requires two equal matrices")),
        },
        ("lessThan", [a, b]) => relational(cx, a, b, |x, y| x < y),
        ("lessThanEqual", [a, b]) => relational(cx, a, b, |x, y| x <= y),
        ("greaterThan", [a, b]) => relational(cx, a, b, |x, y| x > y),
        ("greaterThanEqual", [a, b]) => relational(cx, a, b, |x, y| x >= y),
        ("equal", [a, b]) => match (a, b) {
            (Value::BVec2(x), Value::BVec2(y)) => Ok(Value::BVec2([x[0] == y[0], x[1] == y[1]])),
            (Value::BVec3(x), Value::BVec3(y)) => {
                Ok(Value::BVec3([x[0] == y[0], x[1] == y[1], x[2] == y[2]]))
            }
            (Value::BVec4(x), Value::BVec4(y)) => Ok(Value::BVec4([
                x[0] == y[0],
                x[1] == y[1],
                x[2] == y[2],
                x[3] == y[3],
            ])),
            _ => relational(cx, a, b, |x, y| x == y),
        },
        ("notEqual", [a, b]) => match (a, b) {
            (Value::BVec2(x), Value::BVec2(y)) => Ok(Value::BVec2([x[0] != y[0], x[1] != y[1]])),
            (Value::BVec3(x), Value::BVec3(y)) => {
                Ok(Value::BVec3([x[0] != y[0], x[1] != y[1], x[2] != y[2]]))
            }
            (Value::BVec4(x), Value::BVec4(y)) => Ok(Value::BVec4([
                x[0] != y[0],
                x[1] != y[1],
                x[2] != y[2],
                x[3] != y[3],
            ])),
            _ => relational(cx, a, b, |x, y| x != y),
        },
        ("any", [v]) => bvec_comps(v).map(|b| Value::Bool(b.iter().any(|&x| x))),
        ("all", [v]) => bvec_comps(v).map(|b| Value::Bool(b.iter().all(|&x| x))),
        ("not", [v]) => bvec_comps(v).map(|b| {
            let inv: Vec<bool> = b.iter().map(|&x| !x).collect();
            match inv.len() {
                2 => Value::BVec2([inv[0], inv[1]]),
                3 => Value::BVec3([inv[0], inv[1], inv[2]]),
                _ => Value::BVec4([inv[0], inv[1], inv[2], inv[3]]),
            }
        }),
        ("texture2D", [Value::Sampler(unit), Value::Vec2(coord)]) => {
            cx.profile.tex_fetches += 1;
            Ok(Value::Vec4(cx.textures.sample(*unit, *coord)))
        }
        ("texture2D", [Value::Sampler(unit), Value::Vec2(coord), Value::Float(_bias)]) => {
            // No mipmaps in this subset: the bias argument is ignored.
            cx.profile.tex_fetches += 1;
            Ok(Value::Vec4(cx.textures.sample(*unit, *coord)))
        }
        ("texture2DProj", [Value::Sampler(unit), v]) => match v {
            Value::Vec3(c) => {
                cx.profile.tex_fetches += 1;
                cx.profile.alu_ops += 2;
                Ok(Value::Vec4(
                    cx.textures.sample(*unit, [c[0] / c[2], c[1] / c[2]]),
                ))
            }
            Value::Vec4(c) => {
                cx.profile.tex_fetches += 1;
                cx.profile.alu_ops += 2;
                Ok(Value::Vec4(
                    cx.textures.sample(*unit, [c[0] / c[3], c[1] / c[3]]),
                ))
            }
            _ => Err(type_err("texture2DProj requires vec3 or vec4 coord")),
        },
        _ => return constructor(name, args, cx),
    };
    Some(r)
}

/// Evaluates a type constructor, or returns `None` if `name` is not one.
fn constructor(
    name: &str,
    args: &[Value],
    cx: &mut BuiltinCx<'_>,
) -> Option<Result<Value, RuntimeError>> {
    let target = match name {
        "float" => Type::Float,
        "int" => Type::Int,
        "bool" => Type::Bool,
        "vec2" => Type::Vec2,
        "vec3" => Type::Vec3,
        "vec4" => Type::Vec4,
        "ivec2" => Type::IVec2,
        "ivec3" => Type::IVec3,
        "ivec4" => Type::IVec4,
        "bvec2" => Type::BVec2,
        "bvec3" => Type::BVec3,
        "bvec4" => Type::BVec4,
        "mat2" => Type::Mat2,
        "mat3" => Type::Mat3,
        "mat4" => Type::Mat4,
        _ => return None,
    };
    Some(build(target, args, cx))
}

fn build(target: Type, args: &[Value], cx: &mut BuiltinCx<'_>) -> Result<Value, RuntimeError> {
    if args.is_empty() {
        return Err(type_err(format!("constructor {target}() needs arguments")));
    }
    // Matrix-from-matrix resize.
    if target.is_matrix() && args.len() == 1 {
        if let Some(src_cols) = match &args[0] {
            Value::Mat2(_) => Some(2usize),
            Value::Mat3(_) => Some(3),
            Value::Mat4(_) => Some(4),
            _ => None,
        } {
            let get = |c: usize, r: usize| -> f32 {
                let v = match &args[0] {
                    Value::Mat2(m) => {
                        if c < 2 && r < 2 {
                            Some(m[c][r])
                        } else {
                            None
                        }
                    }
                    Value::Mat3(m) => {
                        if c < 3 && r < 3 {
                            Some(m[c][r])
                        } else {
                            None
                        }
                    }
                    Value::Mat4(m) => {
                        if c < 4 && r < 4 {
                            Some(m[c][r])
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                v.unwrap_or(if c == r { 1.0 } else { 0.0 })
            };
            let _ = src_cols;
            return Ok(match target {
                Type::Mat2 => {
                    let mut m = [[0.0; 2]; 2];
                    for (c, col) in m.iter_mut().enumerate() {
                        for (r, cell) in col.iter_mut().enumerate() {
                            *cell = get(c, r);
                        }
                    }
                    Value::Mat2(m)
                }
                Type::Mat3 => {
                    let mut m = [[0.0; 3]; 3];
                    for (c, col) in m.iter_mut().enumerate() {
                        for (r, cell) in col.iter_mut().enumerate() {
                            *cell = get(c, r);
                        }
                    }
                    Value::Mat3(m)
                }
                _ => {
                    let mut m = [[0.0; 4]; 4];
                    for (c, col) in m.iter_mut().enumerate() {
                        for (r, cell) in col.iter_mut().enumerate() {
                            *cell = get(c, r);
                        }
                    }
                    Value::Mat4(m)
                }
            });
        }
    }

    let mut comps: Vec<f32> = Vec::new();
    for a in args {
        let mut c = a
            .numeric_components()
            .ok_or_else(|| type_err(format!("{} cannot be a constructor argument", a.ty())))?;
        comps.append(&mut c);
    }
    cx.profile.alu_ops += comps.len() as u64;

    if target.is_scalar() {
        if args.len() != 1 {
            return Err(type_err("scalar constructors take exactly one argument"));
        }
        let v = comps[0];
        return Ok(match target {
            Type::Float => Value::Float(v),
            // GLSL int() truncates toward zero.
            Type::Int => Value::Int(v as i32),
            _ => Value::Bool(v != 0.0),
        });
    }

    if target.is_matrix() {
        let dim = target.dim().expect("matrix dim");
        let needed = dim * dim;
        if comps.len() == 1 {
            // Diagonal matrix from one scalar.
            let s = comps[0];
            return Ok(match target {
                Type::Mat2 => Value::Mat2([[s, 0.0], [0.0, s]]),
                Type::Mat3 => Value::Mat3([[s, 0.0, 0.0], [0.0, s, 0.0], [0.0, 0.0, s]]),
                _ => Value::Mat4([
                    [s, 0.0, 0.0, 0.0],
                    [0.0, s, 0.0, 0.0],
                    [0.0, 0.0, s, 0.0],
                    [0.0, 0.0, 0.0, s],
                ]),
            });
        }
        if comps.len() != needed {
            return Err(type_err(format!(
                "{target} constructor needs {needed} components, got {}",
                comps.len()
            )));
        }
        return Ok(match target {
            Type::Mat2 => Value::Mat2([[comps[0], comps[1]], [comps[2], comps[3]]]),
            Type::Mat3 => Value::Mat3([
                [comps[0], comps[1], comps[2]],
                [comps[3], comps[4], comps[5]],
                [comps[6], comps[7], comps[8]],
            ]),
            _ => Value::Mat4([
                [comps[0], comps[1], comps[2], comps[3]],
                [comps[4], comps[5], comps[6], comps[7]],
                [comps[8], comps[9], comps[10], comps[11]],
                [comps[12], comps[13], comps[14], comps[15]],
            ]),
        });
    }

    // Vector target.
    let dim = target.dim().expect("vector dim");
    let scalar = target.scalar().expect("vector scalar");
    if comps.len() == 1 {
        let splat = vec![comps[0]; dim];
        return Ok(Value::from_components(scalar, &splat));
    }
    if comps.len() < dim {
        return Err(type_err(format!(
            "{target} constructor needs {dim} components, got {}",
            comps.len()
        )));
    }
    if comps.len() > dim && args.len() > 1 {
        return Err(type_err(format!(
            "{target} constructor given {} components",
            comps.len()
        )));
    }
    Ok(Value::from_components(scalar, &comps[..dim]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::NoTextures;

    /// Pins `is_builtin_name` to the dynamic dispatch table: every name
    /// it accepts must be dispatchable by `call` for at least one probe
    /// argument list, and names it rejects must never dispatch. (The
    /// bytecode lowerer relies on this agreement for out-parameter
    /// copy-back; `Vm::exec_call` additionally hard-errors on drift.)
    #[test]
    fn is_builtin_name_matches_call_dispatch() {
        let probes: [&[Value]; 8] = [
            &[Value::Float(0.5)],
            &[Value::Float(0.5), Value::Float(0.25)],
            &[Value::Float(0.5), Value::Float(0.25), Value::Float(0.75)],
            &[Value::Vec3([1.0, 0.0, 0.0]), Value::Vec3([0.0, 1.0, 0.0])],
            &[Value::Vec2([0.5, 0.5]), Value::Vec2([0.25, 0.75])],
            &[Value::BVec2([true, false])],
            &[Value::Sampler(0), Value::Vec2([0.5, 0.5])],
            &[
                Value::Vec4([1.0, 0.0, 0.0, 1.0]),
                Value::Vec4([0.0, 1.0, 0.0, 1.0]),
                Value::Float(0.5),
            ],
        ];
        let dispatches = |name: &str| {
            probes.iter().any(|args| {
                let mut profile = OpProfile::new();
                let mut cx = BuiltinCx {
                    model: FloatModel::Exact,
                    profile: &mut profile,
                    textures: &NoTextures,
                };
                call(name, args, &mut cx).is_some()
            })
        };
        let builtin_names = [
            "radians",
            "degrees",
            "sin",
            "cos",
            "tan",
            "asin",
            "acos",
            "atan",
            "pow",
            "exp",
            "log",
            "exp2",
            "log2",
            "sqrt",
            "inversesqrt",
            "abs",
            "sign",
            "floor",
            "ceil",
            "fract",
            "mod",
            "min",
            "max",
            "clamp",
            "mix",
            "step",
            "smoothstep",
            "length",
            "distance",
            "dot",
            "cross",
            "normalize",
            "faceforward",
            "reflect",
            "refract",
            "matrixCompMult",
            "lessThan",
            "lessThanEqual",
            "greaterThan",
            "greaterThanEqual",
            "equal",
            "notEqual",
            "any",
            "all",
            "not",
            "texture2D",
            "texture2DProj",
            "float",
            "int",
            "bool",
            "vec2",
            "vec3",
            "vec4",
            "ivec2",
            "ivec3",
            "ivec4",
            "bvec2",
            "bvec3",
            "bvec4",
            "mat2",
            "mat3",
            "mat4",
        ];
        for name in builtin_names {
            assert!(
                is_builtin_name(name),
                "`{name}` missing from is_builtin_name"
            );
            assert!(
                dispatches(name),
                "`{name}` claimed builtin but no probe dispatched — extend the probes"
            );
        }
        for name in [
            "kernel",
            "fetch_x",
            "helper",
            "main",
            "gpes_pack_float",
            "nosuch",
        ] {
            assert!(!is_builtin_name(name), "`{name}` wrongly claimed builtin");
            assert!(
                !dispatches(name),
                "`{name}` dispatched but is_builtin_name is false"
            );
        }
    }

    fn cx_eval(name: &str, args: &[Value]) -> Value {
        let mut profile = OpProfile::new();
        let mut cx = BuiltinCx {
            model: FloatModel::Exact,
            profile: &mut profile,
            textures: &NoTextures,
        };
        call(name, args, &mut cx)
            .unwrap_or_else(|| panic!("{name} is not a builtin"))
            .unwrap_or_else(|e| panic!("{name} failed: {e}"))
    }

    #[test]
    fn floor_and_mod_match_glsl() {
        assert_eq!(cx_eval("floor", &[Value::Float(2.7)]), Value::Float(2.0));
        assert_eq!(
            cx_eval("mod", &[Value::Float(7.0), Value::Float(4.0)]),
            Value::Float(3.0)
        );
        // GLSL mod of negative: mod(-1, 4) = 3 (unlike fmod).
        assert_eq!(
            cx_eval("mod", &[Value::Float(-1.0), Value::Float(4.0)]),
            Value::Float(3.0)
        );
    }

    #[test]
    fn exp2_is_exact_for_integers() {
        for e in [-126, -24, -1, 0, 1, 10, 24, 127] {
            let v = cx_eval("exp2", &[Value::Float(e as f32)]);
            assert_eq!(v, Value::Float(2.0f32.powi(e)), "exp2({e})");
        }
        // Subnormal power: 2^-140 = 2^9 ulps of the subnormal range.
        assert_eq!(
            cx_eval("exp2", &[Value::Float(-140.0)]),
            Value::Float(f32::from_bits(1 << 9))
        );
    }

    #[test]
    fn componentwise_on_vectors() {
        let v = cx_eval("abs", &[Value::Vec3([-1.0, 2.0, -3.0])]);
        assert_eq!(v, Value::Vec3([1.0, 2.0, 3.0]));
        let v = cx_eval("min", &[Value::Vec2([1.0, 5.0]), Value::Float(2.0)]);
        assert_eq!(v, Value::Vec2([1.0, 2.0]));
    }

    #[test]
    fn clamp_scalar_bounds_on_vector() {
        let v = cx_eval(
            "clamp",
            &[
                Value::Vec3([-1.0, 0.5, 2.0]),
                Value::Float(0.0),
                Value::Float(1.0),
            ],
        );
        assert_eq!(v, Value::Vec3([0.0, 0.5, 1.0]));
    }

    #[test]
    fn dot_and_length() {
        let v = cx_eval(
            "dot",
            &[Value::Vec3([1.0, 2.0, 3.0]), Value::Vec3([4.0, 5.0, 6.0])],
        );
        assert_eq!(v, Value::Float(32.0));
        let v = cx_eval("length", &[Value::Vec2([3.0, 4.0])]);
        assert_eq!(v, Value::Float(5.0));
    }

    #[test]
    fn cross_product() {
        let v = cx_eval(
            "cross",
            &[Value::Vec3([1.0, 0.0, 0.0]), Value::Vec3([0.0, 1.0, 0.0])],
        );
        assert_eq!(v, Value::Vec3([0.0, 0.0, 1.0]));
    }

    #[test]
    fn relational_builtins() {
        let v = cx_eval(
            "lessThan",
            &[Value::Vec2([1.0, 5.0]), Value::Vec2([2.0, 2.0])],
        );
        assert_eq!(v, Value::BVec2([true, false]));
        assert_eq!(cx_eval("any", std::slice::from_ref(&v)), Value::Bool(true));
        assert_eq!(cx_eval("all", &[v]), Value::Bool(false));
    }

    #[test]
    fn constructors() {
        assert_eq!(
            cx_eval("vec3", &[Value::Float(2.0)]),
            Value::Vec3([2.0, 2.0, 2.0])
        );
        assert_eq!(
            cx_eval(
                "vec4",
                &[
                    Value::Vec2([1.0, 2.0]),
                    Value::Float(3.0),
                    Value::Float(4.0)
                ]
            ),
            Value::Vec4([1.0, 2.0, 3.0, 4.0])
        );
        // Truncating constructor from a larger vector.
        assert_eq!(
            cx_eval("vec2", &[Value::Vec4([1.0, 2.0, 3.0, 4.0])]),
            Value::Vec2([1.0, 2.0])
        );
        assert_eq!(cx_eval("int", &[Value::Float(-2.9)]), Value::Int(-2));
        assert_eq!(cx_eval("float", &[Value::Int(7)]), Value::Float(7.0));
        assert_eq!(cx_eval("bool", &[Value::Float(0.0)]), Value::Bool(false));
    }

    #[test]
    fn matrix_constructors() {
        let m = cx_eval("mat2", &[Value::Float(3.0)]);
        assert_eq!(m, Value::Mat2([[3.0, 0.0], [0.0, 3.0]]));
        let m = cx_eval("mat2", &[Value::Vec2([1.0, 2.0]), Value::Vec2([3.0, 4.0])]);
        assert_eq!(m, Value::Mat2([[1.0, 2.0], [3.0, 4.0]]));
        // mat3 from mat2 pads with identity.
        let m2 = Value::Mat2([[1.0, 2.0], [3.0, 4.0]]);
        let m3 = cx_eval("mat3", &[m2]);
        assert_eq!(
            m3,
            Value::Mat3([[1.0, 2.0, 0.0], [3.0, 4.0, 0.0], [0.0, 0.0, 1.0]])
        );
    }

    #[test]
    fn signature_agreement_for_common_cases() {
        use Type::*;
        assert_eq!(signature("floor", &[Vec3]), Some(Vec3));
        assert_eq!(signature("mod", &[Vec4, Float]), Some(Vec4));
        assert_eq!(signature("dot", &[Vec3, Vec3]), Some(Float));
        assert_eq!(signature("texture2D", &[Sampler2D, Vec2]), Some(Vec4));
        assert_eq!(signature("lessThan", &[IVec2, IVec2]), Some(BVec2));
        assert_eq!(signature("vec4", &[Vec2, Float, Float]), Some(Vec4));
        assert_eq!(signature("mat2", &[Float]), Some(Mat2));
        assert_eq!(signature("float", &[Int]), Some(Float));
        // Mismatches:
        assert_eq!(signature("dot", &[Vec3, Vec2]), None);
        assert_eq!(signature("floor", &[Int]), None);
        assert_eq!(signature("vec3", &[Vec2]), None); // too few components
        assert_eq!(signature("nosuch", &[Float]), None);
    }

    #[test]
    fn sfu_counting() {
        let mut profile = OpProfile::new();
        let mut cx = BuiltinCx {
            model: FloatModel::Exact,
            profile: &mut profile,
            textures: &NoTextures,
        };
        call("exp2", &[Value::Vec2([1.0, 2.0])], &mut cx)
            .expect("builtin")
            .expect("ok");
        assert_eq!(profile.sfu_ops, 2);
        assert_eq!(profile.alu_ops, 0);
    }

    #[test]
    fn vc4_model_degrades_log2() {
        let mut profile = OpProfile::new();
        let mut cx = BuiltinCx {
            model: FloatModel::Vc4Sfu,
            profile: &mut profile,
            textures: &NoTextures,
        };
        let exact = 10.0f32.log2();
        let v = call("log2", &[Value::Float(10.0)], &mut cx)
            .expect("builtin")
            .expect("ok");
        let got = v.as_f32().expect("float");
        assert_ne!(got, exact);
        assert!((got - exact).abs() / exact < 2.0f32.powi(-15));
    }

    #[test]
    fn mix_interpolates() {
        let v = cx_eval(
            "mix",
            &[Value::Float(0.0), Value::Float(10.0), Value::Float(0.25)],
        );
        assert_eq!(v, Value::Float(2.5));
    }

    #[test]
    fn step_with_scalar_edge() {
        let v = cx_eval("step", &[Value::Float(0.5), Value::Vec2([0.2, 0.9])]);
        assert_eq!(v, Value::Vec2([0.0, 1.0]));
    }
}
