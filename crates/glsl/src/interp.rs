//! Tree-walking interpreter for checked shaders.
//!
//! One [`Interpreter`] instance executes many shader invocations (one per
//! vertex or fragment): uniforms persist across invocations, per-invocation
//! inputs are set with [`Interpreter::set_global`], and outputs are read
//! back with [`Interpreter::global`].

use crate::ast::*;
use crate::builtins::{self, BuiltinCx};
use crate::error::RuntimeError;
use crate::exec::{ExecLimits, FloatModel, OpProfile, TextureAccess};
use crate::intern::Interner;
use crate::ops;
use crate::sema::CompiledShader;
use crate::swizzle::swizzle_indices;
use crate::types::{Scalar, Type};
use crate::value::Value;
use std::collections::HashMap;

/// Control-flow outcome of a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Value>),
    Discard,
}

/// Executes invocations of one compiled shader.
pub struct Interpreter<'a> {
    shader: &'a CompiledShader,
    functions: HashMap<&'a str, Vec<&'a Function>>,
    model: FloatModel,
    limits: ExecLimits,
    textures: &'a dyn TextureAccess,
    profile: OpProfile,
    /// Interned identifiers (the resolver's structure, reused here): the
    /// scope stack stores ids, so resolution is one hash on the name
    /// followed by integer compares per scope entry.
    names: Interner,
    /// Scope stack; index 0 holds globals.
    scopes: Vec<Vec<(u32, Value)>>,
    /// Retired scope `Vec`s kept for reuse, so entering a block in the
    /// fragment hot loop does not reallocate.
    scope_pool: Vec<Vec<(u32, Value)>>,
    /// (index into globals, initial value) for mutable plain globals that
    /// must be re-initialised per invocation.
    reset_list: Vec<(usize, Value)>,
    call_depth: u32,
    discarded: bool,
    wrote_frag_color: bool,
    wrote_frag_data: bool,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter over a checked shader with the given texture
    /// bindings.
    ///
    /// # Errors
    ///
    /// Fails if a global initialiser itself fails to evaluate.
    pub fn new(
        shader: &'a CompiledShader,
        textures: &'a dyn TextureAccess,
    ) -> Result<Self, RuntimeError> {
        Self::with_model(shader, textures, FloatModel::Exact)
    }

    /// Like [`Interpreter::new`] with an explicit float model.
    ///
    /// # Errors
    ///
    /// Fails if a global initialiser itself fails to evaluate.
    pub fn with_model(
        shader: &'a CompiledShader,
        textures: &'a dyn TextureAccess,
        model: FloatModel,
    ) -> Result<Self, RuntimeError> {
        let mut functions: HashMap<&str, Vec<&Function>> = HashMap::new();
        for item in &shader.unit.items {
            if let Item::Function(f) = item {
                functions.entry(&f.name).or_default().push(f);
            }
        }
        let mut interp = Interpreter {
            shader,
            functions,
            model,
            limits: ExecLimits::default(),
            textures,
            profile: OpProfile::new(),
            names: Interner::new(),
            scopes: vec![Vec::new()],
            scope_pool: Vec::new(),
            reset_list: Vec::new(),
            call_depth: 0,
            discarded: false,
            wrote_frag_color: false,
            wrote_frag_data: false,
        };
        interp.init_globals()?;
        Ok(interp)
    }

    /// Replaces the execution limits.
    pub fn set_limits(&mut self, limits: ExecLimits) {
        self.limits = limits;
    }

    fn init_globals(&mut self) -> Result<(), RuntimeError> {
        // Stage builtins — the single table shared with the bytecode
        // lowerer, so both executors agree on what exists.
        for (name, ty) in crate::compile::builtin_globals(self.shader.kind) {
            let id = self.names.intern(name);
            self.scopes[0].push((id, Value::zero_of(&ty)));
        }
        // Copy the `&'a` shader reference out of `self` so the item walk
        // does not conflict with `eval`'s mutable borrow (no AST clone).
        let shader = self.shader;
        for item in &shader.unit.items {
            if let Item::Var(decl) = item {
                for var in &decl.vars {
                    let value = if let Some(init) = &var.init {
                        self.eval(init)?
                    } else {
                        Value::zero_of(&var.ty)
                    };
                    let index = self.scopes[0].len();
                    let id = self.names.intern(&var.name);
                    self.scopes[0].push((id, value.clone()));
                    if decl.storage == Storage::None {
                        self.reset_list.push((index, value));
                    }
                }
            }
        }
        Ok(())
    }

    /// Sets a global (uniform, attribute, varying or builtin input) by name.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unbound`] if no such global exists.
    pub fn set_global(&mut self, name: &str, value: Value) -> Result<(), RuntimeError> {
        if let Some(id) = self.names.get(name) {
            for (n, v) in self.scopes[0].iter_mut() {
                if *n == id {
                    *v = value;
                    return Ok(());
                }
            }
        }
        Err(RuntimeError::Unbound { name: name.into() })
    }

    /// Reads a global by name (used for `gl_Position`, varyings,
    /// `gl_FragColor` after a run).
    pub fn global(&self, name: &str) -> Option<&Value> {
        let id = self.names.get(name)?;
        self.scopes[0]
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, v)| v)
    }

    /// Whether the last invocation executed `discard`.
    pub fn discarded(&self) -> bool {
        self.discarded
    }

    /// Whether the last invocation wrote `gl_FragColor` / `gl_FragData`.
    pub fn wrote_outputs(&self) -> (bool, bool) {
        (self.wrote_frag_color, self.wrote_frag_data)
    }

    /// The fragment colour produced by the last invocation, honouring
    /// whether the shader used `gl_FragColor` or `gl_FragData[0]`.
    pub fn frag_color(&self) -> Option<[f32; 4]> {
        if self.wrote_frag_data {
            match self.global("gl_FragData") {
                Some(Value::Array(elems)) => elems.first().and_then(Value::as_vec4),
                _ => None,
            }
        } else {
            self.global("gl_FragColor").and_then(Value::as_vec4)
        }
    }

    /// Accumulated operation profile over all invocations so far.
    pub fn profile(&self) -> OpProfile {
        self.profile
    }

    /// Resets the accumulated profile and returns the previous counts.
    pub fn take_profile(&mut self) -> OpProfile {
        std::mem::take(&mut self.profile)
    }

    /// Runs `main()` once.
    ///
    /// # Errors
    ///
    /// Propagates any [`RuntimeError`] raised during evaluation.
    pub fn run_main(&mut self) -> Result<(), RuntimeError> {
        self.discarded = false;
        self.wrote_frag_color = false;
        self.wrote_frag_data = false;
        // Restore mutable plain globals to their initial values without
        // cloning the reset list itself; `clone_from` keeps any array
        // allocations alive across invocations.
        let globals = &mut self.scopes[0];
        for (index, value) in &self.reset_list {
            globals[*index].1.clone_from(value);
        }
        self.profile.invocations += 1;

        let main = self
            .functions
            .get("main")
            .and_then(|fs| fs.iter().find(|f| f.params.is_empty()))
            .copied()
            .ok_or(RuntimeError::Unbound {
                name: "main".into(),
            })?;
        self.push_scope();
        let flow = self.exec_block(&main.body);
        self.pop_scope();
        match flow? {
            Flow::Discard => {
                self.discarded = true;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // ---- statements ------------------------------------------------------

    /// Enters a lexical scope, reusing a pooled `Vec` where possible.
    fn push_scope(&mut self) {
        self.scopes.push(self.scope_pool.pop().unwrap_or_default());
    }

    /// Leaves a lexical scope, returning its `Vec` to the pool.
    fn pop_scope(&mut self) {
        if let Some(mut scope) = self.scopes.pop() {
            scope.clear();
            self.scope_pool.push(scope);
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, RuntimeError> {
        for stmt in stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Decl(decl) => {
                for var in &decl.vars {
                    let value = if let Some(init) = &var.init {
                        self.eval(init)?
                    } else {
                        Value::zero_of(&var.ty)
                    };
                    let id = self.names.intern(&var.name);
                    self.scopes
                        .last_mut()
                        .expect("scope stack non-empty")
                        .push((id, value));
                }
                Ok(Flow::Normal)
            }
            StmtKind::If(cond, then, els) => {
                self.profile.branches += 1;
                let c = self.eval_bool(cond)?;
                if c {
                    self.scoped_stmt(then)
                } else if let Some(els) = els {
                    self.scoped_stmt(els)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                let result = (|| {
                    if let Some(init) = init {
                        self.exec_stmt(init)?;
                    }
                    let mut iterations: u64 = 0;
                    loop {
                        if let Some(cond) = cond {
                            if !self.eval_bool(cond)? {
                                break;
                            }
                        }
                        iterations += 1;
                        self.profile.branches += 1;
                        if iterations > self.limits.max_loop_iterations {
                            return Err(RuntimeError::LoopLimit {
                                limit: self.limits.max_loop_iterations,
                                span: stmt.span,
                            });
                        }
                        match self.scoped_stmt(body)? {
                            Flow::Break => break,
                            Flow::Normal | Flow::Continue => {}
                            other => return Ok(other),
                        }
                        if let Some(step) = step {
                            self.eval(step)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.pop_scope();
                result
            }
            StmtKind::While(cond, body) => {
                let mut iterations: u64 = 0;
                while self.eval_bool(cond)? {
                    iterations += 1;
                    self.profile.branches += 1;
                    if iterations > self.limits.max_loop_iterations {
                        return Err(RuntimeError::LoopLimit {
                            limit: self.limits.max_loop_iterations,
                            span: stmt.span,
                        });
                    }
                    match self.scoped_stmt(body)? {
                        Flow::Break => break,
                        Flow::Normal | Flow::Continue => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile(body, cond) => {
                let mut iterations: u64 = 0;
                loop {
                    iterations += 1;
                    self.profile.branches += 1;
                    if iterations > self.limits.max_loop_iterations {
                        return Err(RuntimeError::LoopLimit {
                            limit: self.limits.max_loop_iterations,
                            span: stmt.span,
                        });
                    }
                    match self.scoped_stmt(body)? {
                        Flow::Break => break,
                        Flow::Normal | Flow::Continue => {}
                        other => return Ok(other),
                    }
                    if !self.eval_bool(cond)? {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Discard => Ok(Flow::Discard),
            StmtKind::Block(stmts) => {
                self.push_scope();
                let r = self.exec_block(stmts);
                self.pop_scope();
                r
            }
            StmtKind::Empty => Ok(Flow::Normal),
        }
    }

    fn scoped_stmt(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        self.push_scope();
        let r = self.exec_stmt(stmt);
        self.pop_scope();
        r
    }

    // ---- expressions -------------------------------------------------------

    fn eval_bool(&mut self, e: &Expr) -> Result<bool, RuntimeError> {
        self.eval(e)?.as_bool().ok_or_else(|| RuntimeError::Type {
            message: "condition did not evaluate to bool".into(),
        })
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        let id = self.names.get(name)?;
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.iter().rev().find(|(n, _)| *n == id))
            .map(|(_, v)| v)
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        match &e.kind {
            ExprKind::FloatLit(v) => Ok(Value::Float(*v)),
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::BoolLit(v) => Ok(Value::Bool(*v)),
            ExprKind::Ident(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| RuntimeError::Unbound { name: name.clone() }),
            ExprKind::Binary(op, a, b) => self.eval_binary(*op, a, b),
            ExprKind::Unary(op, inner) => self.eval_unary(*op, inner),
            ExprKind::Assign(op, lhs, rhs) => {
                let rhs_value = self.eval(rhs)?;
                let new_value = match op {
                    AssignOp::Assign => rhs_value,
                    other => {
                        let current = self.eval(lhs)?;
                        let bin = match other {
                            AssignOp::AddAssign => BinOp::Add,
                            AssignOp::SubAssign => BinOp::Sub,
                            AssignOp::MulAssign => BinOp::Mul,
                            AssignOp::DivAssign => BinOp::Div,
                            AssignOp::Assign => unreachable!(),
                        };
                        self.apply_binary(bin, current, rhs_value)?
                    }
                };
                self.assign_to(lhs, new_value.clone())?;
                Ok(new_value)
            }
            ExprKind::Ternary(cond, yes, no) => {
                self.profile.branches += 1;
                if self.eval_bool(cond)? {
                    self.eval(yes)
                } else {
                    self.eval(no)
                }
            }
            ExprKind::Call(name, args) => self.eval_call(name, args),
            ExprKind::Field(base, field) => {
                let bv = self.eval(base)?;
                let idx = swizzle_indices(field).ok_or_else(|| RuntimeError::Type {
                    message: format!("invalid swizzle `.{field}`"),
                })?;
                swizzle_read(&bv, &idx)
            }
            ExprKind::Index(base, index) => {
                let bv = self.eval(base)?;
                let i = self.eval_index(index)?;
                index_read(&bv, i)
            }
            ExprKind::Comma(a, b) => {
                self.eval(a)?;
                self.eval(b)
            }
        }
    }

    fn eval_index(&mut self, e: &Expr) -> Result<i64, RuntimeError> {
        match self.eval(e)? {
            Value::Int(i) => Ok(i as i64),
            other => Err(RuntimeError::Type {
                message: format!("index must be int, found {}", other.ty()),
            }),
        }
    }

    fn eval_unary(&mut self, op: UnOp, inner: &Expr) -> Result<Value, RuntimeError> {
        match op {
            UnOp::Plus => self.eval(inner),
            UnOp::Neg => {
                let v = self.eval(inner)?;
                self.negate(v)
            }
            UnOp::Not => {
                let v = self.eval(inner)?;
                v.as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or_else(|| RuntimeError::Type {
                        message: "`!` requires bool".into(),
                    })
            }
            UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                let old = self.eval(inner)?;
                let one = match old.ty().scalar() {
                    Some(Scalar::Int) => Value::Int(1),
                    _ => Value::Float(1.0),
                };
                let delta = if matches!(op, UnOp::PreInc | UnOp::PostInc) {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let new = self.apply_binary(delta, old.clone(), one)?;
                self.assign_to(inner, new.clone())?;
                if matches!(op, UnOp::PreInc | UnOp::PreDec) {
                    Ok(new)
                } else {
                    Ok(old)
                }
            }
        }
    }

    fn negate(&mut self, v: Value) -> Result<Value, RuntimeError> {
        ops::negate(v)
    }

    fn eval_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Value, RuntimeError> {
        // Short-circuit logic.
        match op {
            BinOp::And => {
                let av = self.eval_bool(a)?;
                return if !av {
                    Ok(Value::Bool(false))
                } else {
                    Ok(Value::Bool(self.eval_bool(b)?))
                };
            }
            BinOp::Or => {
                let av = self.eval_bool(a)?;
                return if av {
                    Ok(Value::Bool(true))
                } else {
                    Ok(Value::Bool(self.eval_bool(b)?))
                };
            }
            _ => {}
        }
        let (av, bv) = (self.eval(a)?, self.eval(b)?);
        self.apply_binary(op, av, bv)
    }

    fn apply_binary(&mut self, op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
        ops::apply_binary(self.model, &mut self.profile, op, a, b)
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> Result<Value, RuntimeError> {
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval(a)?);
        }
        // Builtins and constructors first (they cannot be shadowed).
        {
            let mut cx = BuiltinCx {
                model: self.model,
                profile: &mut self.profile,
                textures: self.textures,
            };
            if let Some(result) = builtins::call(name, &values, &mut cx) {
                return result;
            }
        }
        // User-defined function by exact argument types.
        let arg_types: Vec<Type> = values.iter().map(Value::ty).collect();
        let func: &Function = self
            .functions
            .get(name)
            .and_then(|fs| {
                fs.iter()
                    .find(|f| {
                        f.params.len() == arg_types.len()
                            && f.params.iter().zip(&arg_types).all(|(p, t)| &p.ty == t)
                    })
                    .copied()
            })
            .ok_or_else(|| RuntimeError::Unbound { name: name.into() })?;

        if self.call_depth >= self.limits.max_call_depth {
            return Err(RuntimeError::CallDepth {
                limit: self.limits.max_call_depth,
            });
        }
        self.call_depth += 1;
        self.profile.calls += 1;

        let mut frame: Vec<(u32, Value)> = Vec::with_capacity(func.params.len());
        for (param, value) in func.params.iter().zip(values.iter()) {
            let initial = match param.qual {
                ParamQual::In | ParamQual::InOut => value.clone(),
                ParamQual::Out => Value::zero_of(&param.ty),
            };
            frame.push((self.names.intern(&param.name), initial));
        }
        // Functions see only globals + their own frame (no caller locals).
        let saved_scopes = std::mem::take(&mut self.scopes);
        self.scopes.push(saved_scopes[0].clone());
        self.scopes.push(frame);

        let flow = self.exec_block(&func.body);

        let frame = self.scopes.pop().expect("call frame");
        let globals = self.scopes.pop().expect("globals frame");
        let mut outer = saved_scopes;
        outer[0] = globals;
        self.scopes = outer;
        self.call_depth -= 1;

        let flow = flow?;
        // Copy out/inout parameters back to the caller's lvalues.
        for ((param, slot), arg_expr) in func.params.iter().zip(&frame).zip(args) {
            if matches!(param.qual, ParamQual::Out | ParamQual::InOut) {
                self.assign_to(arg_expr, slot.1.clone())?;
            }
        }
        match flow {
            Flow::Return(Some(v)) => Ok(v),
            Flow::Return(None) | Flow::Normal => {
                if func.ret == Type::Void {
                    Ok(Value::Float(0.0)) // void result, never used
                } else {
                    Err(RuntimeError::Type {
                        message: format!("function `{name}` ended without returning a value"),
                    })
                }
            }
            Flow::Discard => Err(RuntimeError::Type {
                message: "discard inside a function is not supported by this subset".into(),
            }),
            _ => Err(RuntimeError::Type {
                message: "break/continue escaped a function body".into(),
            }),
        }
    }

    // ---- lvalues -----------------------------------------------------------

    fn assign_to(&mut self, lhs: &Expr, value: Value) -> Result<(), RuntimeError> {
        match &lhs.kind {
            ExprKind::Ident(name) => {
                if name == "gl_FragColor" {
                    self.wrote_frag_color = true;
                }
                if let Some(id) = self.names.get(name) {
                    for scope in self.scopes.iter_mut().rev() {
                        if let Some((_, slot)) = scope.iter_mut().rev().find(|(n, _)| *n == id) {
                            *slot = value;
                            return Ok(());
                        }
                    }
                }
                Err(RuntimeError::Unbound { name: name.clone() })
            }
            ExprKind::Field(base, field) => {
                let idx = swizzle_indices(field).ok_or_else(|| RuntimeError::Type {
                    message: format!("invalid swizzle `.{field}`"),
                })?;
                self.modify(base, &mut |bv| swizzle_write(bv, &idx, &value))
            }
            ExprKind::Index(base, index) => {
                if let ExprKind::Ident(n) = &base.kind {
                    if n == "gl_FragData" {
                        self.wrote_frag_data = true;
                    }
                }
                let i = self.eval_index(index)?;
                self.modify(base, &mut |bv| index_write(bv, i, &value))
            }
            _ => Err(RuntimeError::Type {
                message: "assignment target is not an lvalue".into(),
            }),
        }
    }

    /// Applies `f` to the storage slot denoted by lvalue expression `e`.
    fn modify(
        &mut self,
        e: &Expr,
        f: &mut dyn FnMut(&mut Value) -> Result<(), RuntimeError>,
    ) -> Result<(), RuntimeError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if name == "gl_FragColor" {
                    self.wrote_frag_color = true;
                }
                if name == "gl_FragData" {
                    self.wrote_frag_data = true;
                }
                // Find the slot without holding the borrow across `f`.
                if let Some(id) = self.names.get(name) {
                    for si in (0..self.scopes.len()).rev() {
                        if let Some(vi) = self.scopes[si].iter().rposition(|(n, _)| *n == id) {
                            return f(&mut self.scopes[si][vi].1);
                        }
                    }
                }
                Err(RuntimeError::Unbound { name: name.clone() })
            }
            ExprKind::Index(base, index) => {
                let i = self.eval_index(index)?;
                self.modify(base, &mut |bv| index_modify(bv, i, f))
            }
            ExprKind::Field(base, field) => {
                let idx = swizzle_indices(field).ok_or_else(|| RuntimeError::Type {
                    message: format!("invalid swizzle `.{field}`"),
                })?;
                self.modify(base, &mut |bv| {
                    let mut tmp = swizzle_read(bv, &idx)?;
                    f(&mut tmp)?;
                    swizzle_write(bv, &idx, &tmp)
                })
            }
            _ => Err(RuntimeError::Type {
                message: "expression is not an lvalue".into(),
            }),
        }
    }
}

// ---- free helpers -----------------------------------------------------------
// (The value-manipulation helpers shared with the bytecode VM live in
// `crate::ops`; thin aliases keep this module's call sites readable.)

use ops::{index_modify, index_read, index_write, swizzle_read, swizzle_write};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::NoTextures;
    use crate::parser::parse;
    use crate::sema::{check, ShaderKind};

    fn run_fragment(src: &str) -> [f32; 4] {
        run_fragment_with(src, FloatModel::Exact, &[])
    }

    fn run_fragment_with(src: &str, model: FloatModel, globals: &[(&str, Value)]) -> [f32; 4] {
        let shader = check(ShaderKind::Fragment, parse(src).expect("parse")).expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::with_model(&shader, &tex, model).expect("interpreter");
        for (name, value) in globals {
            interp.set_global(name, value.clone()).expect("set global");
        }
        interp.run_main().expect("run");
        interp.frag_color().expect("frag color")
    }

    const P: &str = "precision highp float;\n";

    #[test]
    fn writes_constant_color() {
        let c = run_fragment(&format!(
            "{P}void main() {{ gl_FragColor = vec4(0.1, 0.2, 0.3, 0.4); }}"
        ));
        assert_eq!(c, [0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn arithmetic_and_locals() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                float a = 2.0;
                float b = a * 3.0 + 1.0;
                gl_FragColor = vec4(b / 14.0, b - 7.0, a, 1.0);
            }}"
        ));
        assert_eq!(c, [0.5, 0.0, 2.0, 1.0]);
    }

    #[test]
    fn for_loop_accumulates() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                float s = 0.0;
                for (int i = 0; i < 10; i++) {{ s += 1.5; }}
                gl_FragColor = vec4(s, 0.0, 0.0, 1.0);
            }}"
        ));
        assert_eq!(c[0], 15.0);
    }

    #[test]
    fn while_break_continue() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                float s = 0.0;
                int i = 0;
                while (true) {{
                    i++;
                    if (i > 10) break;
                    if (i == 3) continue;
                    s += 1.0;
                }}
                gl_FragColor = vec4(s / 255.0, 0.0, 0.0, 1.0);
            }}"
        ));
        assert!((c[0] - 9.0 / 255.0).abs() < 1e-7);
    }

    #[test]
    fn uniforms_and_varyings() {
        let c = run_fragment_with(
            &format!(
                "{P}uniform float u_scale;\nvarying vec2 v_uv;\n\
                 void main() {{ gl_FragColor = vec4(v_uv * u_scale, 0.0, 1.0); }}"
            ),
            FloatModel::Exact,
            &[
                ("u_scale", Value::Float(2.0)),
                ("v_uv", Value::Vec2([0.25, 0.5])),
            ],
        );
        assert_eq!(c, [0.5, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn user_function_with_out_param() {
        let c = run_fragment(&format!(
            "{P}void split(float v, out float hi, out float lo) {{
                hi = floor(v);
                lo = fract(v);
            }}
            void main() {{
                float h; float l;
                split(3.25, h, l);
                gl_FragColor = vec4(h / 4.0, l, 0.0, 1.0);
            }}"
        ));
        assert_eq!(c, [0.75, 0.25, 0.0, 1.0]);
    }

    #[test]
    fn recursion_is_caught_by_depth_limit() {
        // GLSL ES forbids recursion; we detect it dynamically.
        let shader = check(
            ShaderKind::Fragment,
            parse(&format!(
                "{P}float f(float x) {{ return f(x) + 1.0; }}\n\
                 void main() {{ gl_FragColor = vec4(f(1.0)); }}"
            ))
            .expect("parse"),
        )
        .expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        let err = interp.run_main().unwrap_err();
        assert!(matches!(err, RuntimeError::CallDepth { .. }));
    }

    #[test]
    fn loop_limit_triggers() {
        let shader = check(
            ShaderKind::Fragment,
            parse(&format!(
                "{P}void main() {{ float s = 0.0; while (true) {{ s += 1.0; }} }}"
            ))
            .expect("parse"),
        )
        .expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.set_limits(ExecLimits {
            max_loop_iterations: 1000,
            max_call_depth: 8,
        });
        let err = interp.run_main().unwrap_err();
        assert!(matches!(err, RuntimeError::LoopLimit { .. }));
    }

    #[test]
    fn discard_is_reported() {
        let shader = check(
            ShaderKind::Fragment,
            parse(&format!("{P}void main() {{ discard; }}")).expect("parse"),
        )
        .expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.run_main().expect("run");
        assert!(interp.discarded());
    }

    #[test]
    fn frag_data_zero_is_alias_for_output() {
        let shader = check(
            ShaderKind::Fragment,
            parse(&format!(
                "{P}void main() {{ gl_FragData[0] = vec4(0.5, 0.25, 0.125, 1.0); }}"
            ))
            .expect("parse"),
        )
        .expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.run_main().expect("run");
        assert_eq!(interp.wrote_outputs(), (false, true));
        assert_eq!(interp.frag_color(), Some([0.5, 0.25, 0.125, 1.0]));
    }

    #[test]
    fn swizzle_write_through_lvalue() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                vec4 v = vec4(0.0);
                v.xz = vec2(0.5, 0.75);
                v.w = 1.0;
                gl_FragColor = v;
            }}"
        ));
        assert_eq!(c, [0.5, 0.0, 0.75, 1.0]);
    }

    #[test]
    fn matrix_vector_product() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                mat2 m = mat2(1.0, 2.0, 3.0, 4.0); // columns (1,2),(3,4)
                vec2 v = m * vec2(1.0, 1.0);       // rows: (1+3, 2+4)
                gl_FragColor = vec4(v / 8.0, 0.0, 1.0);
            }}"
        ));
        assert_eq!(c, [0.5, 0.75, 0.0, 1.0]);
    }

    #[test]
    fn int_arithmetic_loop_index_math() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                int acc = 0;
                for (int i = 1; i <= 4; i++) {{ acc = acc + i * i; }}
                gl_FragColor = vec4(float(acc) / 30.0, 0.0, 0.0, 1.0);
            }}"
        ));
        assert_eq!(c[0], 1.0);
    }

    #[test]
    fn array_read_write() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                float a[3];
                for (int i = 0; i < 3; i++) {{ a[i] = float(i) * 0.25; }}
                gl_FragColor = vec4(a[0], a[1], a[2], 1.0);
            }}"
        ));
        assert_eq!(c, [0.0, 0.25, 0.5, 1.0]);
    }

    #[test]
    fn runtime_array_index_out_of_bounds() {
        let shader = check(
            ShaderKind::Fragment,
            parse(&format!(
                "{P}uniform int u_i;\nvoid main() {{ float a[2]; gl_FragColor = vec4(a[u_i]); }}"
            ))
            .expect("parse"),
        )
        .expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.set_global("u_i", Value::Int(5)).expect("set");
        let err = interp.run_main().unwrap_err();
        assert!(matches!(err, RuntimeError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn profile_counts_work() {
        let shader = check(
            ShaderKind::Fragment,
            parse(&format!(
                "{P}void main() {{
                    float s = 0.0;
                    for (int i = 0; i < 4; i++) {{ s += exp2(float(i)); }}
                    gl_FragColor = vec4(s);
                }}"
            ))
            .expect("parse"),
        )
        .expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.run_main().expect("run");
        let p = interp.profile();
        assert_eq!(p.invocations, 1);
        assert_eq!(p.sfu_ops, 4); // one exp2 per iteration
        assert!(p.alu_ops > 8);
        assert!(p.branches >= 4);
    }

    #[test]
    fn short_circuit_does_not_divide_by_zero() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                float d = 0.0;
                bool ok = (d != 0.0) && (1.0 / d > 0.0);
                gl_FragColor = vec4(ok ? 1.0 : 0.0);
            }}"
        ));
        assert_eq!(c[0], 0.0);
    }

    #[test]
    fn globals_reset_between_invocations() {
        let shader = check(
            ShaderKind::Fragment,
            parse(&format!(
                "{P}float counter = 0.0;\n\
                 void main() {{ counter += 1.0; gl_FragColor = vec4(counter); }}"
            ))
            .expect("parse"),
        )
        .expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp.run_main().expect("run 1");
        let first = interp.frag_color().expect("color")[0];
        interp.run_main().expect("run 2");
        let second = interp.frag_color().expect("color")[0];
        assert_eq!(first, 1.0);
        assert_eq!(second, 1.0, "plain globals must reset per invocation");
    }

    #[test]
    fn vertex_shader_outputs_position_and_varyings() {
        let shader = check(
            ShaderKind::Vertex,
            parse(
                "attribute vec2 a_pos;\nvarying vec2 v_uv;\n\
                 void main() {\n\
                   v_uv = a_pos * 0.5 + 0.5;\n\
                   gl_Position = vec4(a_pos, 0.0, 1.0);\n\
                 }",
            )
            .expect("parse"),
        )
        .expect("check");
        let tex = NoTextures;
        let mut interp = Interpreter::new(&shader, &tex).expect("interp");
        interp
            .set_global("a_pos", Value::Vec2([-1.0, 1.0]))
            .expect("set");
        interp.run_main().expect("run");
        assert_eq!(
            interp.global("gl_Position"),
            Some(&Value::Vec4([-1.0, 1.0, 0.0, 1.0]))
        );
        assert_eq!(interp.global("v_uv"), Some(&Value::Vec2([0.0, 1.0])));
    }

    #[test]
    fn ternary_evaluates_single_branch() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                float x = 1.0;
                float r = (x > 0.0) ? 0.25 : (1.0 / 0.0);
                gl_FragColor = vec4(r);
            }}"
        ));
        assert_eq!(c[0], 0.25);
    }

    #[test]
    fn mediump_model_loses_precision() {
        let src = format!(
            "{P}void main() {{
                float a = 1.0;
                float b = a + 0.0001; // below mediump resolution near 1.0
                gl_FragColor = vec4(b - a, 0.0, 0.0, 1.0);
            }}"
        );
        let exact = run_fragment_with(&src, FloatModel::Exact, &[]);
        let medium = run_fragment_with(&src, FloatModel::Mediump16, &[]);
        assert!(exact[0] > 0.0);
        assert_eq!(medium[0], 0.0);
    }

    #[test]
    fn comma_operator_in_for() {
        let c = run_fragment(&format!(
            "{P}void main() {{
                float s = 0.0;
                int j = 0;
                for (int i = 0; i < 3; i++, j++) {{ s += 1.0; }}
                gl_FragColor = vec4(s / 3.0, float(j) / 3.0, 0.0, 1.0);
            }}"
        ));
        assert_eq!(c[0], 1.0);
        assert_eq!(c[1], 1.0);
    }
}
