//! Name interning shared by the bytecode resolver and the tree-walking
//! interpreter.
//!
//! The resolver ([`crate::compile`]) has always mapped identifiers to
//! numeric ids while lowering to slot-addressed bytecode; the interpreter
//! now reuses the same structure for its scope stack, so variable
//! resolution inside the oracle is one hash followed by integer
//! comparisons instead of repeated string compares per scope level.

use std::collections::HashMap;

/// A string-to-`u32` interner with stable ids and name recovery.
#[derive(Debug, Clone, Default)]
pub(crate) struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// The id for `name`, allocating one on first sight.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }

    /// The id for `name`, if it was ever interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Consumes the interner into its name table (id-indexed).
    pub fn into_names(self) -> Vec<String> {
        self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_recoverable() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.get("alpha"), Some(a));
        assert_eq!(i.get("gamma"), None);
        assert_eq!(i.into_names(), vec!["alpha".to_owned(), "beta".to_owned()]);
    }
}
