//! Swizzle-selector parsing (`.xyzw`, `.rgba`, `.stpq`).

/// Parses a swizzle selector into component indices.
///
/// Returns `None` if the selector is empty, longer than 4, mixes character
/// sets, or uses characters outside the three GLSL sets.
///
/// ```
/// use gpes_glsl::swizzle::swizzle_indices;
/// assert_eq!(swizzle_indices("xyz"), Some(vec![0, 1, 2]));
/// assert_eq!(swizzle_indices("rgba"), Some(vec![0, 1, 2, 3]));
/// assert_eq!(swizzle_indices("xr"), None); // mixed sets
/// ```
pub fn swizzle_indices(sel: &str) -> Option<Vec<usize>> {
    const SETS: [&str; 3] = ["xyzw", "rgba", "stpq"];
    if sel.is_empty() || sel.len() > 4 {
        return None;
    }
    let set = SETS
        .iter()
        .find(|set| sel.chars().all(|c| set.contains(c)))?;
    sel.chars().map(|c| set.find(c)).collect()
}

/// Whether a parsed swizzle may be used as an assignment target
/// (GLSL forbids repeated components on the left-hand side).
pub fn writable(indices: &[usize]) -> bool {
    let mut seen = [false; 4];
    for &i in indices {
        if i >= 4 || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_sets() {
        assert_eq!(swizzle_indices("x"), Some(vec![0]));
        assert_eq!(swizzle_indices("wzyx"), Some(vec![3, 2, 1, 0]));
        assert_eq!(swizzle_indices("ba"), Some(vec![2, 3]));
        assert_eq!(swizzle_indices("stpq"), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn rejects_mixed_and_invalid() {
        assert_eq!(swizzle_indices("xg"), None);
        assert_eq!(swizzle_indices("abc"), None);
        assert_eq!(swizzle_indices(""), None);
        assert_eq!(swizzle_indices("xxxxx"), None);
    }

    #[test]
    fn repeats_allowed_for_reads() {
        assert_eq!(swizzle_indices("xxy"), Some(vec![0, 0, 1]));
    }

    #[test]
    fn writability() {
        assert!(writable(&[0, 1, 2]));
        assert!(!writable(&[0, 0]));
        assert!(writable(&[3]));
    }
}
