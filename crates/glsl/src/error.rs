//! Compile-time and run-time error types for the GLSL ES subset.

use crate::span::Span;
use std::fmt;

/// The compilation phase an error was raised in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Preprocessing (`#define`, `#ifdef`, …).
    Preprocess,
    /// Tokenisation.
    Lex,
    /// Syntactic analysis.
    Parse,
    /// Semantic analysis / type checking.
    Check,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Preprocess => f.write_str("preprocess"),
            Phase::Lex => f.write_str("lex"),
            Phase::Parse => f.write_str("parse"),
            Phase::Check => f.write_str("check"),
        }
    }
}

/// Error produced while compiling a shader.
///
/// Mirrors the information a GLES2 driver would return from the shader info
/// log: the phase, a message and the source position.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Phase the error occurred in.
    pub phase: Phase,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Position in the shader source.
    pub span: Span,
}

impl CompileError {
    /// Creates a preprocessor error.
    pub fn preprocess(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            phase: Phase::Preprocess,
            message: message.into(),
            span,
        }
    }

    /// Creates a lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            phase: Phase::Lex,
            message: message.into(),
            span,
        }
    }

    /// Creates a parser error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            phase: Phase::Parse,
            message: message.into(),
            span,
        }
    }

    /// Creates a semantic-analysis error.
    pub fn check(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            phase: Phase::Check,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Error produced while interpreting a shader invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A loop exceeded the configured iteration budget.
    LoopLimit {
        /// The budget that was exceeded.
        limit: u64,
        /// Position of the loop.
        span: Span,
    },
    /// Call stack exceeded the configured depth.
    CallDepth {
        /// The configured limit.
        limit: u32,
    },
    /// A name was referenced that has no bound value (an interpreter or
    /// caller wiring bug, e.g. an unset uniform).
    Unbound {
        /// The name that was not bound.
        name: String,
    },
    /// Dynamic type mismatch that slipped past the checker (interpreter bug)
    /// or an operation on incompatible values.
    Type {
        /// Description of the mismatch.
        message: String,
    },
    /// Array or vector index out of bounds.
    IndexOutOfBounds {
        /// The index used.
        index: i64,
        /// The length of the indexed value.
        len: usize,
    },
    /// `main` returned without writing a required builtin output
    /// (`gl_Position` / `gl_FragColor`).
    MissingOutput {
        /// Name of the missing builtin.
        name: &'static str,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::LoopLimit { limit, span } => {
                write!(f, "loop at {span} exceeded iteration budget of {limit}")
            }
            RuntimeError::CallDepth { limit } => {
                write!(f, "call depth exceeded limit of {limit}")
            }
            RuntimeError::Unbound { name } => write!(f, "unbound identifier `{name}`"),
            RuntimeError::Type { message } => write!(f, "type error: {message}"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            RuntimeError::MissingOutput { name } => {
                write!(f, "shader main() did not write `{name}`")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_error_display_contains_phase_and_position() {
        let e = CompileError::parse("unexpected token", Span::new(0, 1, 2, 5));
        assert_eq!(e.to_string(), "parse error at 2:5: unexpected token");
    }

    #[test]
    fn runtime_error_display() {
        let e = RuntimeError::Unbound {
            name: "u_scale".into(),
        };
        assert_eq!(e.to_string(), "unbound identifier `u_scale`");
        let e = RuntimeError::IndexOutOfBounds { index: 9, len: 4 };
        assert_eq!(e.to_string(), "index 9 out of bounds for length 4");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
        assert_send_sync::<RuntimeError>();
    }
}
