//! Recursive-descent parser for the GLSL ES 1.00 subset.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};
use crate::types::{Precision, Type};

/// Parses a complete shader source into a [`TranslationUnit`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<TranslationUnit, CompileError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).translation_unit()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        &self.toks[(self.pos + offset).min(self.toks.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.toks[self.pos.min(self.toks.len() - 1)].kind.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn accept(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span, CompileError> {
        if self.peek() == kind {
            let sp = self.span();
            self.bump();
            Ok(sp)
        } else {
            Err(CompileError::parse(
                format!("expected {kind}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let sp = self.span();
                self.bump();
                Ok((name, sp))
            }
            other => Err(CompileError::parse(
                format!("expected identifier, found {other}"),
                self.span(),
            )),
        }
    }

    // ---- types and qualifiers -------------------------------------------

    fn peek_precision(&self) -> Option<Precision> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Highp) => Some(Precision::High),
            TokenKind::Keyword(Keyword::Mediump) => Some(Precision::Medium),
            TokenKind::Keyword(Keyword::Lowp) => Some(Precision::Low),
            _ => None,
        }
    }

    fn accept_precision(&mut self) -> Option<Precision> {
        let p = self.peek_precision();
        if p.is_some() {
            self.bump();
        }
        p
    }

    fn peek_type(&self) -> Option<Type> {
        self.peek_type_at(0)
    }

    fn peek_type_at(&self, offset: usize) -> Option<Type> {
        let kw = match self.peek_at(offset) {
            TokenKind::Keyword(kw) => *kw,
            _ => return None,
        };
        Some(match kw {
            Keyword::Void => Type::Void,
            Keyword::Float => Type::Float,
            Keyword::Int => Type::Int,
            Keyword::Bool => Type::Bool,
            Keyword::Vec2 => Type::Vec2,
            Keyword::Vec3 => Type::Vec3,
            Keyword::Vec4 => Type::Vec4,
            Keyword::Ivec2 => Type::IVec2,
            Keyword::Ivec3 => Type::IVec3,
            Keyword::Ivec4 => Type::IVec4,
            Keyword::Bvec2 => Type::BVec2,
            Keyword::Bvec3 => Type::BVec3,
            Keyword::Bvec4 => Type::BVec4,
            Keyword::Mat2 => Type::Mat2,
            Keyword::Mat3 => Type::Mat3,
            Keyword::Mat4 => Type::Mat4,
            Keyword::Sampler2D => Type::Sampler2D,
            _ => return None,
        })
    }

    fn expect_type(&mut self) -> Result<Type, CompileError> {
        if let Some(ty) = self.peek_type() {
            self.bump();
            Ok(ty)
        } else if matches!(self.peek(), TokenKind::Keyword(Keyword::SamplerCube)) {
            Err(CompileError::parse(
                "samplerCube is not supported by this GPGPU-oriented subset",
                self.span(),
            ))
        } else if matches!(self.peek(), TokenKind::Keyword(Keyword::Struct)) {
            Err(CompileError::parse(
                "struct types are not supported by this subset",
                self.span(),
            ))
        } else {
            Err(CompileError::parse(
                format!("expected type, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    /// Constant-folds an integer expression used as an array size.
    fn const_int(&self, expr: &Expr) -> Result<i64, CompileError> {
        match &expr.kind {
            ExprKind::IntLit(v) => Ok(*v as i64),
            ExprKind::Unary(UnOp::Neg, inner) => Ok(-self.const_int(inner)?),
            ExprKind::Unary(UnOp::Plus, inner) => self.const_int(inner),
            ExprKind::Binary(op, a, b) => {
                let (a, b) = (self.const_int(a)?, self.const_int(b)?);
                Ok(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0 {
                            return Err(CompileError::parse(
                                "division by zero in constant expression",
                                expr.span,
                            ));
                        }
                        a / b
                    }
                    _ => {
                        return Err(CompileError::parse(
                            "unsupported operator in constant expression",
                            expr.span,
                        ))
                    }
                })
            }
            _ => Err(CompileError::parse(
                "array size must be a constant integer expression",
                expr.span,
            )),
        }
    }

    fn array_suffix(&mut self, base: Type) -> Result<Type, CompileError> {
        if self.accept(&TokenKind::LBracket) {
            let size_expr = self.assignment_expr()?;
            self.expect(&TokenKind::RBracket)?;
            let size = self.const_int(&size_expr)?;
            if size <= 0 || size > 65536 {
                return Err(CompileError::parse(
                    format!("array size {size} out of range"),
                    size_expr.span,
                ));
            }
            Ok(Type::Array(Box::new(base), size as usize))
        } else {
            Ok(base)
        }
    }

    // ---- translation unit ------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit, CompileError> {
        let mut unit = TranslationUnit::default();
        while !matches!(self.peek(), TokenKind::Eof) {
            // Stray semicolons between items.
            if self.accept(&TokenKind::Semicolon) {
                continue;
            }
            unit.items.push(self.item()?);
        }
        Ok(unit)
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        // `precision <prec> <type> ;`
        if matches!(self.peek(), TokenKind::Keyword(Keyword::Precision)) {
            self.bump();
            let precision = self
                .accept_precision()
                .ok_or_else(|| CompileError::parse("expected precision qualifier", self.span()))?;
            let ty = self.expect_type()?;
            self.expect(&TokenKind::Semicolon)?;
            return Ok(Item::Precision(PrecisionDecl { precision, ty }));
        }
        // `invariant varying ...` — accept and ignore the invariant keyword.
        if matches!(self.peek(), TokenKind::Keyword(Keyword::Invariant)) {
            self.bump();
        }

        let storage = match self.peek() {
            TokenKind::Keyword(Keyword::Const) => {
                self.bump();
                Storage::Const
            }
            TokenKind::Keyword(Keyword::Attribute) => {
                self.bump();
                Storage::Attribute
            }
            TokenKind::Keyword(Keyword::Uniform) => {
                self.bump();
                Storage::Uniform
            }
            TokenKind::Keyword(Keyword::Varying) => {
                self.bump();
                Storage::Varying
            }
            _ => Storage::None,
        };
        let precision = self.accept_precision();
        let header_span = self.span();
        let ty = self.expect_type()?;

        // Function definition or prototype?
        if storage == Storage::None
            && matches!(self.peek(), TokenKind::Ident(_))
            && matches!(self.peek_at(1), TokenKind::LParen)
        {
            let (name, _) = self.expect_ident()?;
            let params = self.params()?;
            if self.accept(&TokenKind::Semicolon) {
                return Ok(Item::Prototype(Function {
                    name,
                    ret: ty,
                    params,
                    body: Vec::new(),
                    span: header_span,
                }));
            }
            let body = self.block_body()?;
            return Ok(Item::Function(Function {
                name,
                ret: ty,
                params,
                body,
                span: header_span,
            }));
        }

        let decl = self.declarators(storage, precision, ty)?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(Item::Var(decl))
    }

    fn params(&mut self) -> Result<Vec<Param>, CompileError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.accept(&TokenKind::RParen) {
            return Ok(params);
        }
        // `(void)` means no parameters.
        if matches!(self.peek(), TokenKind::Keyword(Keyword::Void))
            && matches!(self.peek_at(1), TokenKind::RParen)
        {
            self.bump();
            self.bump();
            return Ok(params);
        }
        loop {
            let qual = match self.peek() {
                TokenKind::Keyword(Keyword::In) => {
                    self.bump();
                    ParamQual::In
                }
                TokenKind::Keyword(Keyword::Out) => {
                    self.bump();
                    ParamQual::Out
                }
                TokenKind::Keyword(Keyword::Inout) => {
                    self.bump();
                    ParamQual::InOut
                }
                _ => ParamQual::In,
            };
            self.accept_precision();
            let base = self.expect_type()?;
            let (name, ty) = if let TokenKind::Ident(_) = self.peek() {
                let (name, _) = self.expect_ident()?;
                let ty = self.array_suffix(base)?;
                (name, ty)
            } else {
                (String::new(), base)
            };
            params.push(Param { name, ty, qual });
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(params)
    }

    fn declarators(
        &mut self,
        storage: Storage,
        precision: Option<Precision>,
        base: Type,
    ) -> Result<VarDecl, CompileError> {
        let mut vars = Vec::new();
        loop {
            let (name, span) = self.expect_ident()?;
            let ty = self.array_suffix(base.clone())?;
            let init = if self.accept(&TokenKind::Eq) {
                Some(self.assignment_expr()?)
            } else {
                None
            };
            vars.push(Declarator {
                name,
                ty,
                init,
                span,
            });
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        Ok(VarDecl {
            storage,
            precision,
            vars,
        })
    }

    // ---- statements -------------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.accept(&TokenKind::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(CompileError::parse("unterminated block", self.span()));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::LBrace => {
                let body = self.block_body()?;
                Ok(Stmt::new(StmtKind::Block(body), span))
            }
            TokenKind::Semicolon => {
                self.bump();
                Ok(Stmt::new(StmtKind::Empty, span))
            }
            TokenKind::Keyword(Keyword::Precision) => {
                // Block-scope precision statement: parse and ignore.
                self.bump();
                self.accept_precision();
                self.expect_type()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::new(StmtKind::Empty, span))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                let then = Box::new(self.statement()?);
                let els = if self.accept(&TokenKind::Keyword(Keyword::Else)) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Stmt::new(StmtKind::If(cond, then, els), span))
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = if self.accept(&TokenKind::Semicolon) {
                    None
                } else {
                    Some(Box::new(self.simple_statement()?))
                };
                let cond = if matches!(self.peek(), TokenKind::Semicolon) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&TokenKind::Semicolon)?;
                let step = if matches!(self.peek(), TokenKind::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt::new(
                    StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    span,
                ))
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt::new(StmtKind::While(cond, body), span))
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.statement()?);
                self.expect(&TokenKind::Keyword(Keyword::While))?;
                self.expect(&TokenKind::LParen)?;
                let cond = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::new(StmtKind::DoWhile(body, cond), span))
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semicolon) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::new(StmtKind::Return(value), span))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::new(StmtKind::Break, span))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::new(StmtKind::Continue, span))
            }
            TokenKind::Keyword(Keyword::Discard) => {
                self.bump();
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt::new(StmtKind::Discard, span))
            }
            _ => self.simple_statement(),
        }
    }

    /// A declaration or expression statement (used directly in `for` inits).
    fn simple_statement(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        let is_decl = matches!(self.peek(), TokenKind::Keyword(Keyword::Const))
            || self.peek_precision().is_some()
            || self.peek_type().is_some();
        if is_decl {
            let storage = if self.accept(&TokenKind::Keyword(Keyword::Const)) {
                Storage::Const
            } else {
                Storage::None
            };
            let precision = self.accept_precision();
            let ty = self.expect_type()?;
            let decl = self.declarators(storage, precision, ty)?;
            self.expect(&TokenKind::Semicolon)?;
            Ok(Stmt::new(StmtKind::Decl(decl), span))
        } else {
            let expr = self.expression()?;
            self.expect(&TokenKind::Semicolon)?;
            Ok(Stmt::new(StmtKind::Expr(expr), span))
        }
    }

    // ---- expressions -------------------------------------------------------

    /// Full expression, including the comma operator.
    fn expression(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.assignment_expr()?;
        while self.accept(&TokenKind::Comma) {
            let rhs = self.assignment_expr()?;
            let span = expr.span.to(rhs.span);
            expr = Expr::new(ExprKind::Comma(Box::new(expr), Box::new(rhs)), span);
        }
        Ok(expr)
    }

    fn assignment_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => AssignOp::Assign,
            TokenKind::PlusEq => AssignOp::AddAssign,
            TokenKind::MinusEq => AssignOp::SubAssign,
            TokenKind::StarEq => AssignOp::MulAssign,
            TokenKind::SlashEq => AssignOp::DivAssign,
            _ => return Ok(lhs),
        };
        let op_span = self.span();
        self.bump();
        if !lhs.is_lvalue() {
            return Err(CompileError::parse(
                "left-hand side of assignment is not an lvalue",
                op_span,
            ));
        }
        let rhs = self.assignment_expr()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr::new(
            ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            span,
        ))
    }

    fn ternary_expr(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary_expr(0)?;
        if self.accept(&TokenKind::Question) {
            let yes = self.assignment_expr()?;
            self.expect(&TokenKind::Colon)?;
            let no = self.assignment_expr()?;
            let span = cond.span.to(no.span);
            Ok(Expr::new(
                ExprKind::Ternary(Box::new(cond), Box::new(yes), Box::new(no)),
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, level: usize) -> Option<BinOp> {
        // Precedence levels, lowest first.
        const LEVELS: &[&[(TokenKind, BinOp)]] = &[];
        let _ = LEVELS;
        match (level, self.peek()) {
            (0, TokenKind::OrOr) => Some(BinOp::Or),
            (1, TokenKind::XorXor) => Some(BinOp::Xor),
            (2, TokenKind::AndAnd) => Some(BinOp::And),
            (3, TokenKind::EqEq) => Some(BinOp::Eq),
            (3, TokenKind::NotEq) => Some(BinOp::Ne),
            (4, TokenKind::Lt) => Some(BinOp::Lt),
            (4, TokenKind::Gt) => Some(BinOp::Gt),
            (4, TokenKind::Le) => Some(BinOp::Le),
            (4, TokenKind::Ge) => Some(BinOp::Ge),
            (5, TokenKind::Plus) => Some(BinOp::Add),
            (5, TokenKind::Minus) => Some(BinOp::Sub),
            (6, TokenKind::Star) => Some(BinOp::Mul),
            (6, TokenKind::Slash) => Some(BinOp::Div),
            _ => None,
        }
    }

    fn binary_expr(&mut self, level: usize) -> Result<Expr, CompileError> {
        if level > 6 {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Plus => Some(UnOp::Plus),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::PlusPlus => Some(UnOp::PreInc),
            TokenKind::MinusMinus => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary_expr()?;
            if matches!(op, UnOp::PreInc | UnOp::PreDec) && !inner.is_lvalue() {
                return Err(CompileError::parse(
                    "operand of ++/-- must be an lvalue",
                    span,
                ));
            }
            let full = span.to(inner.span);
            Ok(Expr::new(ExprKind::Unary(op, Box::new(inner)), full))
        } else {
            self.postfix_expr()
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expression()?;
                    let end = self.expect(&TokenKind::RBracket)?;
                    let span = expr.span.to(end);
                    expr = Expr::new(ExprKind::Index(Box::new(expr), Box::new(index)), span);
                }
                TokenKind::Dot => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = expr.span.to(fspan);
                    expr = Expr::new(ExprKind::Field(Box::new(expr), field), span);
                }
                TokenKind::PlusPlus => {
                    let sp = self.span();
                    self.bump();
                    if !expr.is_lvalue() {
                        return Err(CompileError::parse("operand of ++ must be an lvalue", sp));
                    }
                    let span = expr.span.to(sp);
                    expr = Expr::new(ExprKind::Unary(UnOp::PostInc, Box::new(expr)), span);
                }
                TokenKind::MinusMinus => {
                    let sp = self.span();
                    self.bump();
                    if !expr.is_lvalue() {
                        return Err(CompileError::parse("operand of -- must be an lvalue", sp));
                    }
                    let span = expr.span.to(sp);
                    expr = Expr::new(ExprKind::Unary(UnOp::PostDec, Box::new(expr)), span);
                }
                _ => return Ok(expr),
            }
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, CompileError> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.accept(&TokenKind::RParen) {
            return Ok(args);
        }
        // `f(void)` is an empty argument list.
        if matches!(self.peek(), TokenKind::Keyword(Keyword::Void))
            && matches!(self.peek_at(1), TokenKind::RParen)
        {
            self.bump();
            self.bump();
            return Ok(args);
        }
        loop {
            args.push(self.assignment_expr()?);
            if !self.accept(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), span))
            }
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), span))
            }
            TokenKind::BoolLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(v), span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if matches!(self.peek(), TokenKind::LParen) {
                    let args = self.call_args()?;
                    let end = self.prev_span();
                    Ok(Expr::new(ExprKind::Call(name, args), span.to(end)))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), span))
                }
            }
            TokenKind::Keyword(kw) => {
                // Type constructors: vec4(...), float(...), mat3(...)
                if let Some(ty) = self.peek_type() {
                    if ty != Type::Void && ty != Type::Sampler2D {
                        self.bump();
                        let args = self.call_args()?;
                        let end = self.prev_span();
                        return Ok(Expr::new(
                            ExprKind::Call(ty.glsl_name(), args),
                            span.to(end),
                        ));
                    }
                }
                Err(CompileError::parse(
                    format!("unexpected keyword `{kw}` in expression"),
                    span,
                ))
            }
            other => Err(CompileError::parse(
                format!("unexpected {other} in expression"),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> TranslationUnit {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"))
    }

    fn only_fn(unit: &TranslationUnit) -> &Function {
        unit.items
            .iter()
            .find_map(|i| match i {
                Item::Function(f) => Some(f),
                _ => None,
            })
            .expect("expected a function")
    }

    #[test]
    fn parses_minimal_fragment_shader() {
        let unit = parse_ok(
            "precision highp float;\n\
             void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }",
        );
        assert_eq!(unit.items.len(), 2);
        let f = only_fn(&unit);
        assert_eq!(f.name, "main");
        assert_eq!(f.ret, Type::Void);
        assert!(f.params.is_empty());
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_globals_with_qualifiers() {
        let unit = parse_ok(
            "uniform sampler2D u_tex;\n\
             attribute vec2 a_pos;\n\
             varying vec2 v_uv;\n\
             const float K = 2.5;\n\
             void main() {}",
        );
        let storages: Vec<Storage> = unit
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Var(d) => Some(d.storage),
                _ => None,
            })
            .collect();
        assert_eq!(
            storages,
            vec![
                Storage::Uniform,
                Storage::Attribute,
                Storage::Varying,
                Storage::Const
            ]
        );
    }

    #[test]
    fn parses_for_loop_with_decl_init() {
        let unit =
            parse_ok("void main() { float s = 0.0; for (int i = 0; i < 8; i++) { s += 1.0; } }");
        let f = only_fn(&unit);
        assert!(matches!(f.body[1].kind, StmtKind::For { .. }));
    }

    #[test]
    fn parses_swizzles_and_indexing() {
        let unit = parse_ok("void main() { vec4 c; c.xy = c.zw; c[0] = c.w; }");
        let f = only_fn(&unit);
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn parses_ternary_and_logic() {
        parse_ok("void main() { float x = true ? 1.0 : 0.0; bool b = x > 0.5 && x < 1.5; }");
    }

    #[test]
    fn parses_array_declaration() {
        let unit = parse_ok("void main() { float acc[4]; acc[0] = 1.0; }");
        let f = only_fn(&unit);
        if let StmtKind::Decl(d) = &f.body[0].kind {
            assert_eq!(d.vars[0].ty, Type::Array(Box::new(Type::Float), 4));
        } else {
            panic!("expected declaration");
        }
    }

    #[test]
    fn parses_const_expr_array_size() {
        let unit = parse_ok("void main() { float a[2 * 3 + 1]; }");
        let f = only_fn(&unit);
        if let StmtKind::Decl(d) = &f.body[0].kind {
            assert_eq!(d.vars[0].ty, Type::Array(Box::new(Type::Float), 7));
        } else {
            panic!("expected declaration");
        }
    }

    #[test]
    fn parses_function_with_out_params() {
        let unit = parse_ok(
            "void split(in float v, out float hi, inout float lo) { hi = v; lo += v; }\n\
             void main() {}",
        );
        let f = unit
            .items
            .iter()
            .find_map(|i| match i {
                Item::Function(f) if f.name == "split" => Some(f),
                _ => None,
            })
            .expect("split fn");
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].qual, ParamQual::In);
        assert_eq!(f.params[1].qual, ParamQual::Out);
        assert_eq!(f.params[2].qual, ParamQual::InOut);
    }

    #[test]
    fn parses_prototype_then_definition() {
        let unit = parse_ok("float f(float x);\nfloat f(float x) { return x; }\nvoid main() {}");
        let protos = unit
            .items
            .iter()
            .filter(|i| matches!(i, Item::Prototype(_)))
            .count();
        assert_eq!(protos, 1);
    }

    #[test]
    fn assignment_to_rvalue_is_error() {
        assert!(parse("void main() { 1.0 = 2.0; }").is_err());
        assert!(parse("void main() { f() = 2.0; }").is_err());
    }

    #[test]
    fn struct_is_rejected_with_clear_message() {
        let e = parse("struct S { float x; };").unwrap_err();
        assert!(e.message.contains("struct"));
    }

    #[test]
    fn multiple_declarators_share_type() {
        let unit = parse_ok("void main() { float a = 1.0, b, c = a; }");
        let f = only_fn(&unit);
        if let StmtKind::Decl(d) = &f.body[0].kind {
            assert_eq!(d.vars.len(), 3);
            assert!(d.vars[0].init.is_some());
            assert!(d.vars[1].init.is_none());
        } else {
            panic!("expected declaration");
        }
    }

    #[test]
    fn comma_operator_in_for_step() {
        parse_ok("void main() { int j = 0; for (int i = 0; i < 4; i++, j++) {} }");
    }

    #[test]
    fn while_and_do_while() {
        parse_ok("void main() { int i = 0; while (i < 3) { i++; } do { i--; } while (i > 0); }");
    }

    #[test]
    fn discard_statement() {
        let unit = parse_ok("void main() { if (true) discard; }");
        let f = only_fn(&unit);
        assert!(matches!(f.body[0].kind, StmtKind::If(..)));
    }

    #[test]
    fn nested_calls_and_constructors() {
        parse_ok("void main() { vec4 v = vec4(vec2(1.0, 2.0), floor(mod(7.0, 4.0)), 1.0); }");
    }

    #[test]
    fn precedence_mul_over_add() {
        let unit = parse_ok("void main() { float x = 1.0 + 2.0 * 3.0; }");
        let f = only_fn(&unit);
        if let StmtKind::Decl(d) = &f.body[0].kind {
            let init = d.vars[0].init.as_ref().expect("init");
            if let ExprKind::Binary(BinOp::Add, _, rhs) = &init.kind {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            } else {
                panic!("expected + at top");
            }
        }
    }

    #[test]
    fn unexpected_token_reports_position() {
        let e = parse("void main() { float x = ; }").unwrap_err();
        assert_eq!(e.span.line, 1);
        assert!(e.message.contains("unexpected"));
    }

    #[test]
    fn void_param_list() {
        let unit = parse_ok("void main(void) {}");
        assert!(only_fn(&unit).params.is_empty());
    }

    #[test]
    fn empty_statements_allowed() {
        parse_ok("void main() { ;; if (true) ; }");
    }
}
