//! Lowering checked shaders to slot-addressed bytecode.
//!
//! The tree-walking interpreter resolves every variable by string
//! comparison over a scope stack and re-walks the AST for every fragment.
//! This module performs all of that work **once per shader**: a resolver
//! pass interns names, assigns every global, parameter and local a numeric
//! slot, and flattens the statement tree into a compact instruction
//! sequence (`Insn`) executed by [`crate::vm::Vm`].
//!
//! The lowering is deliberately semantics-preserving to the point of
//! being boring: evaluation order, profile counting points, rounding and
//! error messages all mirror `interp.rs` exactly, so the VM can be
//! differentially tested against the tree-walker bit for bit.

use crate::ast::*;
use crate::builtins;
use crate::sema::{CompiledShader, ShaderKind};
use crate::span::Span;
use crate::swizzle::swizzle_indices;
use crate::types::Type;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Why a checked shader could not be lowered to bytecode.
///
/// Lowering is total for everything the semantic checker accepts except a
/// few pathological shapes (e.g. same-name function overloads that
/// disagree on `out` parameters); callers fall back to the tree-walking
/// interpreter in that case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot lower shader to bytecode: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

fn err(message: impl Into<String>) -> LowerError {
    LowerError {
        message: message.into(),
    }
}

/// A storage slot: globals live for the shader's lifetime, locals live in
/// the current frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotRef {
    /// Index into the VM's global table.
    Global(u32),
    /// Offset into the current frame.
    Local(u32),
}

/// One step of an lvalue path, walking outward from the root variable.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PathStep {
    /// `.xyz` — selector indices (first `len` entries valid).
    Swizzle { idx: [u8; 4], len: u8 },
    /// `[i]` — the index value is taken from the operand stack.
    Index,
}

/// A fully resolved store destination.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StoreDef {
    /// Root variable.
    pub root: SlotRef,
    /// Accessor path from the root (may be empty for plain assignment).
    pub path: Box<[PathStep]>,
    /// Number of `Index` steps in `path` (operands popped by the store).
    pub n_index: u8,
    /// Whether this store must set the `gl_FragColor`-written flag.
    pub wrote_color: bool,
    /// Whether this store must set the `gl_FragData`-written flag.
    pub wrote_data: bool,
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Insn {
    /// Push constant `consts[i]`.
    Const(u32),
    /// Push a copy of global slot `i`.
    LoadGlobal(u32),
    /// Push a copy of frame slot `i`.
    LoadLocal(u32),
    /// Pop into frame slot `i` (declarations and temporaries only — no
    /// output-flag bookkeeping).
    StoreLocal(u32),
    /// Pop into global slot `i` (global initialiser chunk only).
    StoreGlobalPop(u32),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,
    /// Unary negate.
    Neg,
    /// Logical not.
    Not,
    /// Non-short-circuit binary operator (arith/relational/`^^`).
    Binary(BinOp),
    /// Count one taken branch (emitted where the interpreter counts).
    Branch,
    /// Unconditional jump.
    Jump(u32),
    /// Pop a bool; jump if false. Errors on non-bool like `eval_bool`.
    JumpIfFalse(u32),
    /// Pop a bool; jump if true.
    JumpIfTrue(u32),
    /// Call `names[name]` with `argc` stacked arguments: builtins and
    /// constructors first, then the user overloads in `candidates`.
    /// Pushes `out`/`inout` parameter results (in parameter order) below
    /// the return value when `pushes_outs`.
    Call {
        /// Interned callee name.
        name: u32,
        /// Argument count.
        argc: u8,
        /// Function-table indices of same-name/same-arity user functions.
        candidates: Box<[u32]>,
        /// Whether the call site expects out-parameter values pushed.
        pushes_outs: bool,
    },
    /// Pop a value, add/subtract one (by its scalar category), push the
    /// result — the shared half of `++`/`--`.
    IncDec {
        /// `true` for `++`.
        inc: bool,
    },
    /// Pop a value, push the selected swizzle of it.
    Swizzle {
        /// Selector indices (first `len` valid).
        idx: [u8; 4],
        /// Selector length.
        len: u8,
    },
    /// Pop index then base, push `base[index]`.
    IndexOp,
    /// Pop `n_index` index operands and one value; write through the path.
    Store(Box<StoreDef>),
    /// Push a fresh loop-iteration counter.
    LoopEnter,
    /// Count one iteration: bump the counter, profile a branch, enforce
    /// the iteration limit (error cites `span`).
    LoopIter {
        /// Loop statement location for the `LoopLimit` error.
        span: Span,
    },
    /// Pop the loop-iteration counter.
    LoopExit,
    /// `discard` in `main`: set the flag and end the invocation.
    Discard,
    /// `discard` reached inside a user function (runtime error, matching
    /// the interpreter).
    ErrDiscardInFunction,
    /// `break`/`continue` escaped a function body (runtime error).
    ErrBreakInFunction,
    /// Return from a user function; the return value is on the stack.
    Ret,
    /// Non-void function fell off its end (runtime error citing the
    /// interned function name).
    ErrNoReturn(u32),
    /// End the invocation (main / initialiser chunk).
    Halt,
}

/// A compiled instruction sequence plus the frame space it needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Chunk {
    /// Instructions.
    pub code: Vec<Insn>,
    /// Number of frame slots (params + locals + temporaries).
    pub frame_size: u32,
}

/// A lowered user-defined function.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FuncDef {
    /// Interned name.
    pub name: u32,
    /// Parameter types and qualifiers, in order (types drive overload
    /// dispatch exactly like the interpreter's runtime-type match).
    pub params: Vec<(Type, ParamQual)>,
    /// Declared return type.
    pub ret: Type,
    /// Body chunk index.
    pub chunk: u32,
}

/// A global variable's metadata.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct GlobalDef {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A checked shader lowered to slot-addressed bytecode, ready to be
/// executed by [`crate::vm::Vm`]. Immutable and shareable across threads
/// (each rasteriser band runs its own `Vm` over the same `Executable`).
#[derive(Debug, Clone)]
pub struct Executable {
    /// Stage.
    pub(crate) kind: ShaderKind,
    /// Constant pool.
    pub(crate) consts: Vec<Value>,
    /// Interned names (callees, error messages).
    pub(crate) names: Vec<String>,
    /// Global slot metadata, in slot order.
    pub(crate) globals: Vec<GlobalDef>,
    /// Name → global slot (last declaration wins, like the scope scan).
    pub(crate) global_index: HashMap<String, u32>,
    /// Global slots holding plain mutable globals, re-initialised per
    /// invocation.
    pub(crate) reset_slots: Vec<u32>,
    /// All chunks; `chunks[0]` evaluates global initialisers.
    pub(crate) chunks: Vec<Chunk>,
    /// Index of the `main` chunk.
    pub(crate) main_chunk: u32,
    /// Lowered user functions.
    pub(crate) functions: Vec<FuncDef>,
}

impl Executable {
    /// The shader stage this executable was lowered from.
    pub fn kind(&self) -> ShaderKind {
        self.kind
    }

    /// Resolves a global (uniform, attribute, varying or builtin) to its
    /// slot, for allocation-free per-fragment stores via
    /// [`crate::vm::Vm::set_slot`].
    pub fn global_slot(&self, name: &str) -> Option<u32> {
        self.global_index.get(name).copied()
    }

    /// Number of global slots.
    pub fn global_count(&self) -> usize {
        self.globals.len()
    }

    /// Total number of lowered instructions (diagnostics only).
    pub fn code_len(&self) -> usize {
        self.chunks.iter().map(|c| c.code.len()).sum()
    }
}

/// Lowers a checked shader into an [`Executable`].
///
/// # Errors
///
/// [`LowerError`] for the few constructs the bytecode tier does not
/// support (see the type's docs); callers should fall back to the
/// tree-walking interpreter.
pub fn lower(shader: &CompiledShader) -> Result<Executable, LowerError> {
    Lowerer::new(shader).lower()
}

/// Lowers a checked shader into a reference-counted [`Executable`] ready
/// for cross-context (and cross-thread) sharing.
///
/// An `Executable` is immutable after lowering — all mutable execution
/// state lives in the [`crate::vm::Vm`] frame — so one lowered program can
/// back any number of concurrently running VMs. This is the handle shape
/// the process-wide program cache stores: link once, share everywhere.
///
/// # Errors
///
/// As [`lower`].
pub fn lower_shared(shader: &CompiledShader) -> Result<std::sync::Arc<Executable>, LowerError> {
    lower(shader).map(std::sync::Arc::new)
}

/// Builtin globals per stage, mirroring `Interpreter::init_globals`.
pub(crate) fn builtin_globals(kind: ShaderKind) -> Vec<(&'static str, Type)> {
    match kind {
        ShaderKind::Vertex => vec![("gl_Position", Type::Vec4), ("gl_PointSize", Type::Float)],
        ShaderKind::Fragment => vec![
            ("gl_FragColor", Type::Vec4),
            ("gl_FragData", Type::Array(Box::new(Type::Vec4), 1)),
            ("gl_FragCoord", Type::Vec4),
            ("gl_FrontFacing", Type::Bool),
            ("gl_PointCoord", Type::Vec2),
        ],
    }
}

struct Lowerer<'a> {
    shader: &'a CompiledShader,
    consts: Vec<Value>,
    interner: crate::intern::Interner,
    globals: Vec<GlobalDef>,
    global_index: HashMap<String, u32>,
    reset_slots: Vec<u32>,
    chunks: Vec<Chunk>,
    functions: Vec<FuncDef>,
    /// name → function-table indices, in definition order.
    fn_candidates: HashMap<String, Vec<u32>>,
    /// AST bodies pending compilation, parallel to `functions`.
    fn_bodies: Vec<&'a Function>,
}

impl<'a> Lowerer<'a> {
    fn new(shader: &'a CompiledShader) -> Self {
        Lowerer {
            shader,
            consts: Vec::new(),
            interner: crate::intern::Interner::new(),
            globals: Vec::new(),
            global_index: HashMap::new(),
            reset_slots: Vec::new(),
            chunks: Vec::new(),
            functions: Vec::new(),
            fn_candidates: HashMap::new(),
            fn_bodies: Vec::new(),
        }
    }

    fn intern(&mut self, name: &str) -> u32 {
        self.interner.intern(name)
    }

    fn add_const(&mut self, v: Value) -> u32 {
        // Dedup by exact bit equality for the common scalar cases.
        for (i, existing) in self.consts.iter().enumerate() {
            let same = match (existing, &v) {
                (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
                (Value::Int(a), Value::Int(b)) => a == b,
                (Value::Bool(a), Value::Bool(b)) => a == b,
                _ => false,
            };
            if same {
                return i as u32;
            }
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn lower(mut self) -> Result<Executable, LowerError> {
        // Globals: stage builtins first (same order as the interpreter),
        // then declared globals in item order.
        for (name, ty) in builtin_globals(self.shader.kind) {
            let slot = self.globals.len() as u32;
            self.globals.push(GlobalDef {
                name: (*name).to_owned(),
                ty: ty.clone(),
            });
            self.global_index.insert((*name).to_owned(), slot);
        }
        for item in &self.shader.unit.items {
            if let Item::Var(decl) = item {
                for var in &decl.vars {
                    let slot = self.globals.len() as u32;
                    self.globals.push(GlobalDef {
                        name: var.name.clone(),
                        ty: var.ty.clone(),
                    });
                    self.global_index.insert(var.name.clone(), slot);
                    if decl.storage == Storage::None {
                        self.reset_slots.push(slot);
                    }
                }
            }
        }

        // Function headers (bodies may call functions defined later).
        for item in &self.shader.unit.items {
            if let Item::Function(f) = item {
                let idx = self.functions.len() as u32;
                let name = self.intern(&f.name);
                self.functions.push(FuncDef {
                    name,
                    params: f.params.iter().map(|p| (p.ty.clone(), p.qual)).collect(),
                    ret: f.ret.clone(),
                    chunk: 0, // patched below
                });
                self.fn_candidates
                    .entry(f.name.clone())
                    .or_default()
                    .push(idx);
                self.fn_bodies.push(f);
            }
        }

        // Chunk 0: global initialisers.
        let init_chunk = self.lower_init_chunk()?;
        debug_assert_eq!(init_chunk, 0);

        // Function bodies.
        for fi in 0..self.fn_bodies.len() {
            let f = self.fn_bodies[fi];
            let chunk = self.lower_function(f)?;
            self.functions[fi].chunk = chunk;
        }

        // main().
        let main = self
            .fn_bodies
            .iter()
            .find(|f| f.name == "main" && f.params.is_empty())
            .copied()
            .ok_or_else(|| err("no main() function"))?;
        let main_chunk = self.lower_main(main)?;

        Ok(Executable {
            kind: self.shader.kind,
            consts: self.consts,
            names: self.interner.into_names(),
            globals: self.globals,
            global_index: self.global_index,
            reset_slots: self.reset_slots,
            chunks: self.chunks,
            main_chunk,
            functions: self.functions,
        })
    }

    fn lower_init_chunk(&mut self) -> Result<u32, LowerError> {
        // Copy the shader reference out first: it lives for 'a, so the
        // item walk does not conflict with the compiler's &mut borrow
        // (and no AST cloning is needed).
        let shader = self.shader;
        let mut cc = ChunkCompiler::new(self, CompileCx::Init);
        for item in &shader.unit.items {
            if let Item::Var(decl) = item {
                for var in &decl.vars {
                    if let Some(init) = &var.init {
                        cc.expr(init)?;
                    } else {
                        let c = cc.lo.add_const(Value::zero_of(&var.ty));
                        cc.emit(Insn::Const(c));
                    }
                    let slot = cc.lo.global_index[&var.name];
                    cc.emit(Insn::StoreGlobalPop(slot));
                }
            }
        }
        cc.emit(Insn::Halt);
        Ok(cc.finish())
    }

    fn lower_function(&mut self, f: &Function) -> Result<u32, LowerError> {
        let name_idx = self.intern(&f.name);
        let ret_void = f.ret == Type::Void;
        let mut cc = ChunkCompiler::new(self, CompileCx::Function);
        cc.ret_void = ret_void;
        cc.fn_name = name_idx;
        cc.push_scope();
        for p in &f.params {
            let slot = cc.alloc_slot();
            cc.declare(&p.name, slot);
        }
        for stmt in &f.body {
            cc.stmt(stmt)?;
        }
        // Fall-through return.
        if ret_void {
            let dummy = cc.lo.add_const(Value::Float(0.0));
            cc.emit(Insn::Const(dummy));
            cc.emit(Insn::Ret);
        } else {
            cc.emit(Insn::ErrNoReturn(name_idx));
        }
        cc.pop_scope();
        Ok(cc.finish())
    }

    fn lower_main(&mut self, main: &Function) -> Result<u32, LowerError> {
        let mut cc = ChunkCompiler::new(self, CompileCx::Main);
        cc.push_scope();
        for stmt in &main.body {
            cc.stmt(stmt)?;
        }
        cc.emit(Insn::Halt);
        cc.pop_scope();
        Ok(cc.finish())
    }
}

/// What kind of chunk is being compiled (changes `discard`, `return`,
/// `break` semantics, mirroring the interpreter's `Flow` handling).
#[derive(Clone, Copy, PartialEq, Eq)]
enum CompileCx {
    Init,
    Main,
    Function,
}

struct LoopCtx {
    /// Jump-site indices to patch to the loop exit.
    breaks: Vec<usize>,
    /// Jump-site indices to patch to the continue point.
    continues: Vec<usize>,
}

struct ChunkCompiler<'l, 'a> {
    lo: &'l mut Lowerer<'a>,
    cx: CompileCx,
    code: Vec<Insn>,
    scopes: Vec<Vec<(String, u32)>>,
    next_slot: u32,
    frame_size: u32,
    loops: Vec<LoopCtx>,
    /// Whether the enclosing function returns `void` (Function chunks).
    ret_void: bool,
    /// Interned name of the enclosing function (Function chunks).
    fn_name: u32,
}

impl<'l, 'a> ChunkCompiler<'l, 'a> {
    fn new(lo: &'l mut Lowerer<'a>, cx: CompileCx) -> Self {
        ChunkCompiler {
            lo,
            cx,
            code: Vec::new(),
            scopes: Vec::new(),
            next_slot: 0,
            frame_size: 0,
            loops: Vec::new(),
            ret_void: true,
            fn_name: 0,
        }
    }

    fn finish(self) -> u32 {
        let idx = self.lo.chunks.len() as u32;
        self.lo.chunks.push(Chunk {
            code: self.code,
            frame_size: self.frame_size,
        });
        idx
    }

    fn emit(&mut self, insn: Insn) -> usize {
        self.code.push(insn);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Insn::Jump(t) | Insn::JumpIfFalse(t) | Insn::JumpIfTrue(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    // ---- slots & scopes --------------------------------------------------

    fn alloc_slot(&mut self) -> u32 {
        let s = self.next_slot;
        self.next_slot += 1;
        self.frame_size = self.frame_size.max(self.next_slot);
        s
    }

    fn declare(&mut self, name: &str, slot: u32) {
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .push((name.to_owned(), slot));
    }

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope to pop");
        // Slots of this scope become reusable.
        self.next_slot -= scope.len() as u32;
    }

    /// Resolves a name exactly like the interpreter's scope scan:
    /// innermost scope first, later declarations shadow earlier ones,
    /// then globals.
    fn resolve(&self, name: &str) -> Option<SlotRef> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, slot)) = scope.iter().rev().find(|(n, _)| n == name) {
                return Some(SlotRef::Local(*slot));
            }
        }
        self.lo.global_index.get(name).copied().map(SlotRef::Global)
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match &stmt.kind {
            StmtKind::Expr(e) => self.expr_stmt(e),
            StmtKind::Decl(decl) => {
                for var in &decl.vars {
                    if let Some(init) = &var.init {
                        self.expr(init)?;
                    } else {
                        let c = self.lo.add_const(Value::zero_of(&var.ty));
                        self.emit(Insn::Const(c));
                    }
                    // Resolve the initialiser before the name becomes
                    // visible (matches the interpreter's push-after-eval).
                    let slot = self.alloc_slot();
                    self.declare(&var.name, slot);
                    self.emit(Insn::StoreLocal(slot));
                }
                Ok(())
            }
            StmtKind::If(cond, then, els) => {
                self.emit(Insn::Branch);
                self.expr(cond)?;
                let to_else = self.emit(Insn::JumpIfFalse(0));
                self.scoped_stmt(then)?;
                match els {
                    Some(els) => {
                        let to_end = self.emit(Insn::Jump(0));
                        let else_at = self.here();
                        self.patch(to_else, else_at);
                        self.scoped_stmt(els)?;
                        let end = self.here();
                        self.patch(to_end, end);
                    }
                    None => {
                        let end = self.here();
                        self.patch(to_else, end);
                    }
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                self.emit(Insn::LoopEnter);
                let top = self.here();
                let cond_exit = match cond {
                    Some(cond) => {
                        self.expr(cond)?;
                        Some(self.emit(Insn::JumpIfFalse(0)))
                    }
                    None => None,
                };
                self.emit(Insn::LoopIter { span: stmt.span });
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.scoped_stmt(body)?;
                let cont_at = self.here();
                if let Some(step) = step {
                    self.expr_stmt(step)?;
                }
                self.emit(Insn::Jump(top));
                let exit = self.here();
                let ctx = self.loops.pop().expect("loop ctx");
                for at in ctx.breaks {
                    self.patch(at, exit);
                }
                for at in ctx.continues {
                    self.patch(at, cont_at);
                }
                if let Some(at) = cond_exit {
                    self.patch(at, exit);
                }
                self.emit(Insn::LoopExit);
                self.pop_scope();
                Ok(())
            }
            StmtKind::While(cond, body) => {
                self.emit(Insn::LoopEnter);
                let top = self.here();
                self.expr(cond)?;
                let cond_exit = self.emit(Insn::JumpIfFalse(0));
                self.emit(Insn::LoopIter { span: stmt.span });
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.scoped_stmt(body)?;
                self.emit(Insn::Jump(top));
                let exit = self.here();
                let ctx = self.loops.pop().expect("loop ctx");
                for at in ctx.breaks {
                    self.patch(at, exit);
                }
                for at in ctx.continues {
                    self.patch(at, top);
                }
                self.patch(cond_exit, exit);
                self.emit(Insn::LoopExit);
                Ok(())
            }
            StmtKind::DoWhile(body, cond) => {
                self.emit(Insn::LoopEnter);
                let top = self.here();
                self.emit(Insn::LoopIter { span: stmt.span });
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.scoped_stmt(body)?;
                let cont_at = self.here();
                self.expr(cond)?;
                self.emit(Insn::JumpIfTrue(top));
                let exit = self.here();
                let ctx = self.loops.pop().expect("loop ctx");
                for at in ctx.breaks {
                    self.patch(at, exit);
                }
                for at in ctx.continues {
                    self.patch(at, cont_at);
                }
                self.emit(Insn::LoopExit);
                Ok(())
            }
            StmtKind::Return(value) => {
                match self.cx {
                    CompileCx::Function => {
                        // `return;` in a non-void function reproduces the
                        // interpreter's fall-off error; `return e;` pushes
                        // the value.
                        match value {
                            Some(e) => {
                                self.expr(e)?;
                                self.emit(Insn::Ret);
                            }
                            None if self.ret_void => {
                                let dummy = self.lo.add_const(Value::Float(0.0));
                                self.emit(Insn::Const(dummy));
                                self.emit(Insn::Ret);
                            }
                            None => {
                                // `return;` in a non-void function ends
                                // it without a value — same runtime error
                                // as falling off the end.
                                let name = self.fn_name;
                                self.emit(Insn::ErrNoReturn(name));
                            }
                        }
                    }
                    CompileCx::Main | CompileCx::Init => {
                        if let Some(e) = value {
                            self.expr(e)?;
                            self.emit(Insn::Pop);
                        }
                        self.emit(Insn::Halt);
                    }
                }
                Ok(())
            }
            StmtKind::Break => {
                if let Some(_ctx) = self.loops.last() {
                    let at = self.emit(Insn::Jump(0));
                    self.loops.last_mut().expect("loop").breaks.push(at);
                } else if self.cx == CompileCx::Function {
                    self.emit(Insn::ErrBreakInFunction);
                } else {
                    // Break at main's top level ends the invocation
                    // (matches the interpreter's Flow handling).
                    self.emit(Insn::Halt);
                }
                Ok(())
            }
            StmtKind::Continue => {
                if let Some(_ctx) = self.loops.last() {
                    let at = self.emit(Insn::Jump(0));
                    self.loops.last_mut().expect("loop").continues.push(at);
                } else if self.cx == CompileCx::Function {
                    self.emit(Insn::ErrBreakInFunction);
                } else {
                    self.emit(Insn::Halt);
                }
                Ok(())
            }
            StmtKind::Discard => {
                match self.cx {
                    CompileCx::Main => self.emit(Insn::Discard),
                    _ => self.emit(Insn::ErrDiscardInFunction),
                };
                Ok(())
            }
            StmtKind::Block(stmts) => {
                self.push_scope();
                for s in stmts {
                    self.stmt(s)?;
                }
                self.pop_scope();
                Ok(())
            }
            StmtKind::Empty => Ok(()),
        }
    }

    fn scoped_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        self.push_scope();
        self.stmt(stmt)?;
        self.pop_scope();
        Ok(())
    }

    /// An expression evaluated for effect only: assignments and inc/dec
    /// skip the result duplication, everything else evaluates then pops.
    fn expr_stmt(&mut self, e: &Expr) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::Assign(..)
            | ExprKind::Unary(UnOp::PreInc, _)
            | ExprKind::Unary(UnOp::PreDec, _)
            | ExprKind::Unary(UnOp::PostInc, _)
            | ExprKind::Unary(UnOp::PostDec, _) => self.expr_value(e, false),
            ExprKind::Comma(a, b) => {
                self.expr_stmt(a)?;
                self.expr_stmt(b)
            }
            _ => {
                self.expr(e)?;
                self.emit(Insn::Pop);
                Ok(())
            }
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<(), LowerError> {
        self.expr_value(e, true)
    }

    /// Compiles `e`; leaves its value on the stack iff `for_value`.
    fn expr_value(&mut self, e: &Expr, for_value: bool) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::FloatLit(v) => {
                let c = self.lo.add_const(Value::Float(*v));
                self.emit(Insn::Const(c));
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::IntLit(v) => {
                let c = self.lo.add_const(Value::Int(*v));
                self.emit(Insn::Const(c));
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::BoolLit(v) => {
                let c = self.lo.add_const(Value::Bool(*v));
                self.emit(Insn::Const(c));
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::Ident(name) => {
                match self.resolve(name) {
                    Some(SlotRef::Local(s)) => self.emit(Insn::LoadLocal(s)),
                    Some(SlotRef::Global(s)) => self.emit(Insn::LoadGlobal(s)),
                    None => return Err(err(format!("unbound identifier `{name}`"))),
                };
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::Binary(op, a, b) => {
                match op {
                    BinOp::And => {
                        self.expr(a)?;
                        let j1 = self.emit(Insn::JumpIfFalse(0));
                        self.expr(b)?;
                        let j2 = self.emit(Insn::JumpIfFalse(0));
                        let t = self.lo.add_const(Value::Bool(true));
                        self.emit(Insn::Const(t));
                        let to_end = self.emit(Insn::Jump(0));
                        let false_at = self.here();
                        self.patch(j1, false_at);
                        self.patch(j2, false_at);
                        let f = self.lo.add_const(Value::Bool(false));
                        self.emit(Insn::Const(f));
                        let end = self.here();
                        self.patch(to_end, end);
                    }
                    BinOp::Or => {
                        self.expr(a)?;
                        let j1 = self.emit(Insn::JumpIfTrue(0));
                        self.expr(b)?;
                        let j2 = self.emit(Insn::JumpIfTrue(0));
                        let f = self.lo.add_const(Value::Bool(false));
                        self.emit(Insn::Const(f));
                        let to_end = self.emit(Insn::Jump(0));
                        let true_at = self.here();
                        self.patch(j1, true_at);
                        self.patch(j2, true_at);
                        let t = self.lo.add_const(Value::Bool(true));
                        self.emit(Insn::Const(t));
                        let end = self.here();
                        self.patch(to_end, end);
                    }
                    _ => {
                        self.expr(a)?;
                        self.expr(b)?;
                        self.emit(Insn::Binary(*op));
                    }
                }
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::Unary(op, inner) => {
                match op {
                    UnOp::Plus => {
                        self.expr(inner)?;
                        self.discard_if(!for_value);
                    }
                    UnOp::Neg => {
                        self.expr(inner)?;
                        self.emit(Insn::Neg);
                        self.discard_if(!for_value);
                    }
                    UnOp::Not => {
                        self.expr(inner)?;
                        self.emit(Insn::Not);
                        self.discard_if(!for_value);
                    }
                    UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                        let inc = matches!(op, UnOp::PreInc | UnOp::PostInc);
                        let post = matches!(op, UnOp::PostInc | UnOp::PostDec);
                        self.expr(inner)?; // old value (index exprs eval #1)
                        if post && for_value {
                            self.emit(Insn::Dup); // keep old as result
                        }
                        self.emit(Insn::IncDec { inc });
                        if !post && for_value {
                            self.emit(Insn::Dup); // keep new as result
                        }
                        self.store_lvalue(inner)?; // index exprs eval #2
                    }
                }
                Ok(())
            }
            ExprKind::Assign(op, lhs, rhs) => {
                self.expr(rhs)?;
                if let Some(bin) = compound_op(*op) {
                    self.expr(lhs)?; // current value (index exprs eval #1)
                    self.emit(Insn::Swap);
                    self.emit(Insn::Binary(bin));
                }
                if for_value {
                    self.emit(Insn::Dup);
                }
                self.store_lvalue(lhs)?;
                Ok(())
            }
            ExprKind::Ternary(cond, yes, no) => {
                self.emit(Insn::Branch);
                self.expr(cond)?;
                let to_else = self.emit(Insn::JumpIfFalse(0));
                self.expr(yes)?;
                let to_end = self.emit(Insn::Jump(0));
                let else_at = self.here();
                self.patch(to_else, else_at);
                self.expr(no)?;
                let end = self.here();
                self.patch(to_end, end);
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::Call(name, args) => {
                self.call(name, args)?;
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::Field(base, field) => {
                self.expr(base)?;
                let (idx, len) = swizzle_of(field)?;
                self.emit(Insn::Swizzle { idx, len });
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::Index(base, index) => {
                self.expr(base)?;
                self.expr(index)?;
                self.emit(Insn::IndexOp);
                self.discard_if(!for_value);
                Ok(())
            }
            ExprKind::Comma(a, b) => {
                self.expr(a)?;
                self.emit(Insn::Pop);
                self.expr_value(b, for_value)
            }
        }
    }

    fn discard_if(&mut self, pop: bool) {
        if pop {
            self.emit(Insn::Pop);
        }
    }

    /// Emits the index-expression evaluations and the `Store` for an
    /// lvalue; expects the value to store on top of the stack on entry.
    fn store_lvalue(&mut self, lhs: &Expr) -> Result<(), LowerError> {
        let (root_name, path) = flatten_lvalue(lhs)?;
        let root = self
            .resolve(root_name)
            .ok_or_else(|| err(format!("unbound assignment target `{root_name}`")))?;
        // Evaluate index expressions outermost-first, mirroring the
        // interpreter's assign_to/modify recursion order.
        let mut n_index = 0usize;
        let mut steps: Vec<PathStep> = Vec::with_capacity(path.len());
        for step in &path {
            match step {
                LvStep::Swizzle(field) => {
                    let (idx, len) = swizzle_of(field)?;
                    steps.push(PathStep::Swizzle { idx, len });
                }
                LvStep::Index(_) => {
                    steps.push(PathStep::Index);
                    n_index += 1;
                }
            }
        }
        if n_index > 8 {
            return Err(err("lvalue path nests more than 8 indexed accesses"));
        }
        let n_index = n_index as u8;
        for step in path.iter().rev() {
            if let LvStep::Index(e) = step {
                self.expr(e)?;
            }
        }
        let wrote_color = root_name == "gl_FragColor";
        let wrote_data = root_name == "gl_FragData" && !steps.is_empty();
        self.emit(Insn::Store(Box::new(StoreDef {
            root,
            path: steps.into_boxed_slice(),
            n_index,
            wrote_color,
            wrote_data,
        })));
        Ok(())
    }

    /// Compiles a call expression, including static out-parameter
    /// copy-back.
    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(), LowerError> {
        if args.len() > u8::MAX as usize {
            // `Insn::Call` carries an 8-bit arity; fall back to the
            // interpreter rather than truncating.
            return Err(err(format!(
                "call to `{name}` has more than {} arguments",
                u8::MAX
            )));
        }
        for a in args {
            self.expr(a)?;
        }
        let name_idx = self.lo.intern(name);
        let candidates: Box<[u32]> = self
            .lo
            .fn_candidates
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&fi| self.lo.functions[fi as usize].params.len() == args.len())
                    .collect()
            })
            .unwrap_or_default();

        // Determine the static out-parameter mask.
        let mut out_mask: Option<Vec<bool>> = None;
        for &fi in candidates.iter() {
            let mask: Vec<bool> = self.lo.functions[fi as usize]
                .params
                .iter()
                .map(|(_, q)| matches!(q, ParamQual::Out | ParamQual::InOut))
                .collect();
            match &out_mask {
                None => out_mask = Some(mask),
                Some(existing) if *existing == mask => {}
                Some(_) => {
                    return Err(err(format!(
                        "overloads of `{name}` disagree on out parameters"
                    )))
                }
            }
        }
        let out_mask = out_mask.unwrap_or_default();
        let has_outs = out_mask.iter().any(|&b| b);
        if has_outs && builtins::is_builtin_name(name) {
            return Err(err(format!(
                "`{name}` shadows a builtin and takes out parameters"
            )));
        }

        self.emit(Insn::Call {
            name: name_idx,
            argc: args.len() as u8,
            candidates,
            pushes_outs: has_outs,
        });
        if !has_outs {
            return Ok(());
        }

        // Stack now: [out_0, …, out_{m-1}, ret]. Stash into temporaries,
        // then copy back in parameter order (like the interpreter).
        let out_args: Vec<usize> = out_mask
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.then_some(i))
            .collect();
        let t_ret = self.alloc_slot();
        let t_outs: Vec<u32> = out_args.iter().map(|_| self.alloc_slot()).collect();
        self.emit(Insn::StoreLocal(t_ret));
        for &t in t_outs.iter().rev() {
            self.emit(Insn::StoreLocal(t));
        }
        for (&arg_i, &t) in out_args.iter().zip(&t_outs) {
            self.emit(Insn::LoadLocal(t));
            self.store_lvalue(&args[arg_i])?;
        }
        self.emit(Insn::LoadLocal(t_ret));
        // Temporaries are dead past this point; release the slots.
        self.next_slot -= (t_outs.len() + 1) as u32;
        Ok(())
    }
}

fn compound_op(op: AssignOp) -> Option<BinOp> {
    match op {
        AssignOp::Assign => None,
        AssignOp::AddAssign => Some(BinOp::Add),
        AssignOp::SubAssign => Some(BinOp::Sub),
        AssignOp::MulAssign => Some(BinOp::Mul),
        AssignOp::DivAssign => Some(BinOp::Div),
    }
}

fn swizzle_of(field: &str) -> Result<([u8; 4], u8), LowerError> {
    let indices =
        swizzle_indices(field).ok_or_else(|| err(format!("invalid swizzle `.{field}`")))?;
    let mut idx = [0u8; 4];
    for (slot, &i) in idx.iter_mut().zip(&indices) {
        *slot = i as u8;
    }
    Ok((idx, indices.len() as u8))
}

/// One accessor of an lvalue path (AST form, before index compilation).
enum LvStep<'e> {
    Swizzle(&'e str),
    Index(&'e Expr),
}

/// Decomposes an lvalue into its root identifier and accessor path
/// (root-outward order).
fn flatten_lvalue(e: &Expr) -> Result<(&str, Vec<LvStep<'_>>), LowerError> {
    match &e.kind {
        ExprKind::Ident(name) => Ok((name, Vec::new())),
        ExprKind::Field(base, field) => {
            let (root, mut path) = flatten_lvalue(base)?;
            path.push(LvStep::Swizzle(field));
            Ok((root, path))
        }
        ExprKind::Index(base, index) => {
            let (root, mut path) = flatten_lvalue(base)?;
            path.push(LvStep::Index(index));
            Ok((root, path))
        }
        _ => Err(err("assignment target is not an lvalue")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;

    fn lower_src(src: &str) -> Executable {
        let shader = check(ShaderKind::Fragment, parse(src).expect("parse")).expect("check");
        lower(&shader).expect("lower")
    }

    const P: &str = "precision highp float;\n";

    #[test]
    fn lowers_trivial_shader() {
        let exe = lower_src(&format!("{P}void main() {{ gl_FragColor = vec4(1.0); }}"));
        assert!(exe.global_slot("gl_FragColor").is_some());
        assert!(exe.code_len() > 0);
        assert_eq!(exe.kind(), ShaderKind::Fragment);
    }

    #[test]
    fn globals_get_distinct_slots() {
        let exe = lower_src(&format!(
            "{P}uniform float u_a;\nuniform vec2 u_b;\nvarying vec3 v_c;\n\
             void main() {{ gl_FragColor = vec4(v_c * u_a, u_b.x); }}"
        ));
        let a = exe.global_slot("u_a").expect("u_a");
        let b = exe.global_slot("u_b").expect("u_b");
        let c = exe.global_slot("v_c").expect("v_c");
        assert!(a != b && b != c && a != c);
        assert_eq!(exe.global_slot("nope"), None);
    }

    #[test]
    fn local_slots_are_reused_across_scopes() {
        let exe = lower_src(&format!(
            "{P}void main() {{
                {{ float a = 1.0; float b = a; gl_FragColor = vec4(b); }}
                {{ float c = 2.0; gl_FragColor = vec4(c); }}
            }}"
        ));
        let main = &exe.chunks[exe.main_chunk as usize];
        // Two slots in the first block, one (reused) in the second.
        assert!(main.frame_size <= 2, "frame_size = {}", main.frame_size);
    }

    #[test]
    fn executable_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Executable>();
    }
}
