//! The GLSL ES 1.00 preprocessor (specification §3.4).
//!
//! Runs before the lexer, exactly as in a real driver. Supported
//! directives: `#version`, `#define` (object and function macros),
//! `#undef`, `#ifdef`, `#ifndef`, `#if`, `#elif`, `#else`, `#endif`,
//! `#error`, `#pragma` (ignored), `#extension` and `#line` (parsed,
//! recorded, not remapped). Built-in macros: `GL_ES = 1`,
//! `__VERSION__ = 100`, `__LINE__`, `__FILE__ = 0`.
//!
//! Differences from C that the spec mandates and this implementation
//! keeps: no `#` / `##` operators, no line continuations, and `#if`
//! expressions are integer-only with `defined` support.
//!
//! Known limitation: a function-macro *invocation* must close its
//! argument list on the line it starts (expansion is line-at-a-time so
//! `__LINE__` stays exact); shader code in the wild does not split
//! macro calls across lines.
//!
//! Inactive and directive lines are replaced by empty lines in the output
//! so downstream lexer spans keep their original line numbers.

use crate::error::CompileError;
use crate::span::Span;
use std::collections::{HashMap, HashSet};

/// How a shader requested an extension (`#extension name : behaviour`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionBehavior {
    /// Fail compilation if the extension is unsupported.
    Require,
    /// Enable with a warning if unsupported.
    Enable,
    /// Warn wherever the extension is used.
    Warn,
    /// Behave as if the extension is absent.
    Disable,
}

/// Result of preprocessing a shader source.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The expanded source handed to the lexer (line numbers preserved).
    pub source: String,
    /// `#version` value if declared (only 100 is accepted).
    pub version: Option<u32>,
    /// `#extension` requests in order of appearance.
    pub extensions: Vec<(String, ExtensionBehavior)>,
    /// Non-fatal diagnostics (`#extension … : warn`, unknown pragmas, …).
    pub warnings: Vec<String>,
}

#[derive(Debug, Clone)]
struct Macro {
    /// `None` for object macros, parameter names for function macros.
    params: Option<Vec<String>>,
    body: String,
}

#[derive(Debug, Clone, Copy)]
struct CondFrame {
    /// Whether the current branch emits code.
    active: bool,
    /// Whether any branch of this `#if` chain has been taken.
    taken: bool,
    /// Whether `#else` was seen (further `#elif`/`#else` are errors).
    else_seen: bool,
}

/// The extension names this implementation knows how to process.
/// (`#extension` with `require` on anything else is a compile error, as
/// the spec mandates.)
const KNOWN_EXTENSIONS: &[&str] = &[
    "GL_OES_texture_half_float",
    "GL_EXT_color_buffer_half_float",
    "all",
];

/// Preprocesses `source`.
///
/// # Errors
///
/// [`CompileError`] (phase `Preprocess`) for malformed directives,
/// unbalanced conditionals, `#error`, bad `#version` and `require` of an
/// unknown extension.
pub fn preprocess(source: &str) -> Result<Preprocessed, CompileError> {
    let decommented = strip_comments(source);
    let mut macros: HashMap<String, Macro> = HashMap::new();
    let mut out = String::with_capacity(source.len());
    let mut stack: Vec<CondFrame> = Vec::new();
    let mut version: Option<u32> = None;
    let mut extensions = Vec::new();
    let mut warnings = Vec::new();
    let mut emitted_code = false;

    for (line_no, line) in decommented.lines().enumerate() {
        let line_no = line_no as u32 + 1;
        let span = |col: u32| Span::new(0, 0, line_no, col);
        let active = stack.iter().all(|f| f.active);
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim_start();
            let (directive, args) = split_ident(rest);
            let args = args.trim();
            match directive {
                // Null directive `#` is allowed.
                "" => {}
                "version" => {
                    if active {
                        if emitted_code || version.is_some() {
                            return Err(CompileError::preprocess(
                                "#version must appear before anything else",
                                span(1),
                            ));
                        }
                        let v: u32 = args.parse().map_err(|_| {
                            CompileError::preprocess(
                                format!("malformed #version `{args}`"),
                                span(1),
                            )
                        })?;
                        if v != 100 {
                            return Err(CompileError::preprocess(
                                format!("unsupported #version {v}; this is GLSL ES 1.00"),
                                span(1),
                            ));
                        }
                        version = Some(v);
                    }
                }
                "define" => {
                    if active {
                        let (name, mac) = parse_define(args, line_no)?;
                        if name.starts_with("GL_") || name.contains("__") {
                            return Err(CompileError::preprocess(
                                format!("macro name `{name}` is reserved"),
                                span(1),
                            ));
                        }
                        macros.insert(name, mac);
                    }
                }
                "undef" => {
                    if active {
                        let (name, rest2) = split_ident(args);
                        if name.is_empty() || !rest2.trim().is_empty() {
                            return Err(CompileError::preprocess("malformed #undef", span(1)));
                        }
                        macros.remove(name);
                    }
                }
                "ifdef" | "ifndef" => {
                    let (name, rest2) = split_ident(args);
                    if name.is_empty() || !rest2.trim().is_empty() {
                        return Err(CompileError::preprocess(
                            format!("malformed #{directive}"),
                            span(1),
                        ));
                    }
                    let defined = is_defined(&macros, name);
                    let cond = if directive == "ifdef" {
                        defined
                    } else {
                        !defined
                    };
                    stack.push(CondFrame {
                        active: active && cond,
                        taken: cond,
                        else_seen: false,
                    });
                }
                "if" => {
                    let cond = if active {
                        eval_condition(args, &macros, line_no)? != 0
                    } else {
                        false
                    };
                    stack.push(CondFrame {
                        active: active && cond,
                        taken: cond,
                        else_seen: false,
                    });
                }
                "elif" => {
                    let frame = stack
                        .last_mut()
                        .ok_or_else(|| CompileError::preprocess("#elif without #if", span(1)))?;
                    if frame.else_seen {
                        return Err(CompileError::preprocess("#elif after #else", span(1)));
                    }
                    let outer_active = stack[..stack.len() - 1].iter().all(|f| f.active);
                    let frame = stack.last_mut().expect("just checked");
                    if frame.taken || !outer_active {
                        frame.active = false;
                    } else {
                        let cond = eval_condition(args, &macros, line_no)? != 0;
                        frame.active = cond;
                        frame.taken = cond;
                    }
                }
                "else" => {
                    let frame = stack
                        .last_mut()
                        .ok_or_else(|| CompileError::preprocess("#else without #if", span(1)))?;
                    if frame.else_seen {
                        return Err(CompileError::preprocess("duplicate #else", span(1)));
                    }
                    frame.else_seen = true;
                    let outer_active = stack[..stack.len() - 1].iter().all(|f| f.active);
                    let frame = stack.last_mut().expect("just checked");
                    frame.active = outer_active && !frame.taken;
                    frame.taken = true;
                }
                "endif" => {
                    stack
                        .pop()
                        .ok_or_else(|| CompileError::preprocess("#endif without #if", span(1)))?;
                }
                "error" => {
                    if active {
                        return Err(CompileError::preprocess(format!("#error {args}"), span(1)));
                    }
                }
                "pragma" => {
                    // Pragmas are implementation-defined; record and move on.
                    if active && !args.is_empty() {
                        warnings.push(format!("line {line_no}: ignored #pragma {args}"));
                    }
                }
                "extension" => {
                    if active {
                        let (name, behavior) = parse_extension(args, line_no)?;
                        if behavior == ExtensionBehavior::Require
                            && !KNOWN_EXTENSIONS.contains(&name.as_str())
                        {
                            return Err(CompileError::preprocess(
                                format!("required extension `{name}` is not supported"),
                                span(1),
                            ));
                        }
                        if behavior == ExtensionBehavior::Enable
                            && !KNOWN_EXTENSIONS.contains(&name.as_str())
                        {
                            warnings.push(format!(
                                "line {line_no}: extension `{name}` is not supported; ignored"
                            ));
                        }
                        extensions.push((name, behavior));
                    }
                }
                "line" => {
                    // Accepted for conformance; spans are not remapped.
                    if active {
                        warnings.push(format!("line {line_no}: #line accepted but not remapped"));
                    }
                }
                other => {
                    if active {
                        return Err(CompileError::preprocess(
                            format!("unknown preprocessor directive #{other}"),
                            span(1),
                        ));
                    }
                }
            }
            out.push('\n'); // keep line numbering
        } else if active {
            let expanded = expand_line(line, &macros, line_no)?;
            if !expanded.trim().is_empty() {
                emitted_code = true;
            }
            out.push_str(&expanded);
            out.push('\n');
        } else {
            out.push('\n');
        }
    }
    if let Some(frame) = stack.last() {
        let _ = frame;
        return Err(CompileError::preprocess(
            "unterminated conditional (#if without #endif)",
            Span::new(0, 0, decommented.lines().count() as u32, 1),
        ));
    }
    Ok(Preprocessed {
        source: out,
        version,
        extensions,
        warnings,
    })
}

/// Replaces comments with spaces, preserving newlines (so line numbers in
/// later diagnostics stay correct). GLSL ES 1.00 has no line
/// continuations, so this is purely character-level.
fn strip_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            out.push(' ');
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    out.push('\n');
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

fn split_ident(s: &str) -> (&str, &str) {
    let end = s
        .char_indices()
        .find(|(i, c)| {
            if *i == 0 {
                !(c.is_ascii_alphabetic() || *c == '_')
            } else {
                !(c.is_ascii_alphanumeric() || *c == '_')
            }
        })
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    s.split_at(end)
}

fn is_defined(macros: &HashMap<String, Macro>, name: &str) -> bool {
    matches!(name, "GL_ES" | "__VERSION__" | "__LINE__" | "__FILE__") || macros.contains_key(name)
}

fn parse_define(args: &str, line: u32) -> Result<(String, Macro), CompileError> {
    let (name, rest) = split_ident(args);
    if name.is_empty() {
        return Err(CompileError::preprocess(
            "malformed #define: missing macro name",
            Span::new(0, 0, line, 1),
        ));
    }
    // A function macro requires `(` IMMEDIATELY after the name.
    if let Some(params_rest) = rest.strip_prefix('(') {
        let close = params_rest.find(')').ok_or_else(|| {
            CompileError::preprocess(
                "malformed #define: missing `)` in parameter list",
                Span::new(0, 0, line, 1),
            )
        })?;
        let params_src = &params_rest[..close];
        let body = params_rest[close + 1..].trim().to_owned();
        let mut params = Vec::new();
        if !params_src.trim().is_empty() {
            for p in params_src.split(',') {
                let p = p.trim();
                let (ident, extra) = split_ident(p);
                if ident.is_empty() || !extra.is_empty() {
                    return Err(CompileError::preprocess(
                        format!("malformed macro parameter `{p}`"),
                        Span::new(0, 0, line, 1),
                    ));
                }
                params.push(ident.to_owned());
            }
        }
        Ok((
            name.to_owned(),
            Macro {
                params: Some(params),
                body,
            },
        ))
    } else {
        Ok((
            name.to_owned(),
            Macro {
                params: None,
                body: rest.trim().to_owned(),
            },
        ))
    }
}

fn parse_extension(args: &str, line: u32) -> Result<(String, ExtensionBehavior), CompileError> {
    let mut parts = args.splitn(2, ':');
    let name = parts.next().unwrap_or("").trim();
    let behavior = parts.next().unwrap_or("").trim();
    let behavior = match behavior {
        "require" => ExtensionBehavior::Require,
        "enable" => ExtensionBehavior::Enable,
        "warn" => ExtensionBehavior::Warn,
        "disable" => ExtensionBehavior::Disable,
        other => {
            return Err(CompileError::preprocess(
                format!("bad #extension behaviour `{other}`"),
                Span::new(0, 0, line, 1),
            ))
        }
    };
    if name.is_empty() {
        return Err(CompileError::preprocess(
            "missing extension name",
            Span::new(0, 0, line, 1),
        ));
    }
    Ok((name.to_owned(), behavior))
}

/// Expands macros in a code line.
fn expand_line(
    line: &str,
    macros: &HashMap<String, Macro>,
    line_no: u32,
) -> Result<String, CompileError> {
    let mut in_flight = HashSet::new();
    expand_str(line, macros, line_no, &mut in_flight, 0)
}

const MAX_EXPANSION_DEPTH: u32 = 32;

fn expand_str(
    text: &str,
    macros: &HashMap<String, Macro>,
    line_no: u32,
    in_flight: &mut HashSet<String>,
    depth: u32,
) -> Result<String, CompileError> {
    if depth > MAX_EXPANSION_DEPTH {
        return Err(CompileError::preprocess(
            "macro expansion too deep (recursive definition?)",
            Span::new(0, 0, line_no, 1),
        ));
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            match ident.as_str() {
                "__LINE__" => {
                    out.push_str(&line_no.to_string());
                    continue;
                }
                "__FILE__" => {
                    out.push('0');
                    continue;
                }
                "__VERSION__" => {
                    out.push_str("100");
                    continue;
                }
                "GL_ES" => {
                    out.push('1');
                    continue;
                }
                _ => {}
            }
            let Some(mac) = macros.get(&ident) else {
                out.push_str(&ident);
                continue;
            };
            if in_flight.contains(&ident) {
                // C-style: a macro does not re-expand inside itself.
                out.push_str(&ident);
                continue;
            }
            match &mac.params {
                None => {
                    in_flight.insert(ident.clone());
                    let expanded = expand_str(&mac.body, macros, line_no, in_flight, depth + 1)?;
                    in_flight.remove(&ident);
                    out.push_str(&expanded);
                }
                Some(params) => {
                    // Function macro: needs an argument list; otherwise the
                    // identifier is left alone (as in C).
                    let mut j = i;
                    while j < chars.len() && chars[j].is_whitespace() {
                        j += 1;
                    }
                    if j >= chars.len() || chars[j] != '(' {
                        out.push_str(&ident);
                        continue;
                    }
                    let (args, consumed) = collect_args(&chars[j..], line_no, &ident)?;
                    i = j + consumed;
                    if args.len() != params.len()
                        && !(params.is_empty() && args.len() == 1 && args[0].trim().is_empty())
                    {
                        return Err(CompileError::preprocess(
                            format!(
                                "macro `{ident}` expects {} argument(s), got {}",
                                params.len(),
                                args.len()
                            ),
                            Span::new(0, 0, line_no, 1),
                        ));
                    }
                    // Expand arguments first (call-by-value, as in C).
                    let mut expanded_args = Vec::with_capacity(args.len());
                    for a in &args {
                        expanded_args.push(expand_str(a, macros, line_no, in_flight, depth + 1)?);
                    }
                    // Substitute parameters in the body.
                    let substituted = substitute_params(&mac.body, params, &expanded_args);
                    in_flight.insert(ident.clone());
                    let expanded = expand_str(&substituted, macros, line_no, in_flight, depth + 1)?;
                    in_flight.remove(&ident);
                    out.push_str(&expanded);
                }
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    Ok(out)
}

/// Collects `(arg, arg, …)` starting at `chars[0] == '('`; returns the
/// arguments and the number of chars consumed (including both parens).
fn collect_args(
    chars: &[char],
    line_no: u32,
    name: &str,
) -> Result<(Vec<String>, usize), CompileError> {
    debug_assert_eq!(chars[0], '(');
    let mut args = Vec::new();
    let mut current = String::new();
    let mut nesting = 0usize;
    let mut i = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '(' => {
                nesting += 1;
                current.push(c);
            }
            ')' => {
                if nesting == 0 {
                    args.push(current.trim().to_owned());
                    return Ok((args, i + 1));
                }
                nesting -= 1;
                current.push(c);
            }
            ',' if nesting == 0 => {
                args.push(current.trim().to_owned());
                current.clear();
            }
            _ => current.push(c),
        }
        i += 1;
    }
    Err(CompileError::preprocess(
        format!("unterminated argument list for macro `{name}`"),
        Span::new(0, 0, line_no, 1),
    ))
}

fn substitute_params(body: &str, params: &[String], args: &[String]) -> String {
    let chars: Vec<char> = body.chars().collect();
    let mut out = String::with_capacity(body.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            match params.iter().position(|p| *p == ident) {
                Some(k) => out.push_str(args.get(k).map(String::as_str).unwrap_or("")),
                None => out.push_str(&ident),
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

// ---- #if expression evaluation -------------------------------------------

/// Evaluates a `#if`/`#elif` expression: integer arithmetic, comparisons,
/// `! && ||`, parentheses and `defined(X)` / `defined X`.
fn eval_condition(
    expr: &str,
    macros: &HashMap<String, Macro>,
    line_no: u32,
) -> Result<i64, CompileError> {
    // Protect `defined(...)` from macro expansion, then expand the rest.
    let mut protected = String::with_capacity(expr.len());
    let chars: Vec<char> = expr.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            if ident == "defined" {
                // Parse `defined(NAME)` or `defined NAME`.
                while i < chars.len() && chars[i].is_whitespace() {
                    i += 1;
                }
                let parenthesised = i < chars.len() && chars[i] == '(';
                if parenthesised {
                    i += 1;
                    while i < chars.len() && chars[i].is_whitespace() {
                        i += 1;
                    }
                }
                let name_start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let name: String = chars[name_start..i].iter().collect();
                if parenthesised {
                    while i < chars.len() && chars[i].is_whitespace() {
                        i += 1;
                    }
                    if i >= chars.len() || chars[i] != ')' {
                        return Err(CompileError::preprocess(
                            "malformed defined()",
                            Span::new(0, 0, line_no, 1),
                        ));
                    }
                    i += 1;
                }
                if name.is_empty() {
                    return Err(CompileError::preprocess(
                        "defined with no name",
                        Span::new(0, 0, line_no, 1),
                    ));
                }
                protected.push_str(if is_defined(macros, &name) {
                    " 1 "
                } else {
                    " 0 "
                });
            } else {
                protected.push_str(&ident);
            }
        } else {
            protected.push(c);
            i += 1;
        }
    }
    let mut in_flight = HashSet::new();
    let expanded = expand_str(&protected, macros, line_no, &mut in_flight, 0)?;
    // Remaining identifiers are undefined macros: the spec evaluates them
    // as 0.
    let mut parser = CondParser {
        chars: expanded.chars().collect(),
        pos: 0,
        line_no,
    };
    let v = parser.expr(0)?;
    parser.skip_ws();
    if parser.pos < parser.chars.len() {
        return Err(CompileError::preprocess(
            format!("trailing characters in #if expression `{expanded}`"),
            Span::new(0, 0, line_no, 1),
        ));
    }
    Ok(v)
}

struct CondParser {
    chars: Vec<char>,
    pos: usize,
    line_no: u32,
}

impl CondParser {
    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::preprocess(msg, Span::new(0, 0, self.line_no, 1))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek2(&self) -> (Option<char>, Option<char>) {
        (
            self.chars.get(self.pos).copied(),
            self.chars.get(self.pos + 1).copied(),
        )
    }

    /// Precedence-climbing over: `|| && == != < <= > >= + - * / %`.
    fn expr(&mut self, min_bp: u8) -> Result<i64, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            self.skip_ws();
            let (op, bp, len) = match self.peek2() {
                (Some('|'), Some('|')) => ("||", 1, 2),
                (Some('&'), Some('&')) => ("&&", 2, 2),
                (Some('='), Some('=')) => ("==", 3, 2),
                (Some('!'), Some('=')) => ("!=", 3, 2),
                (Some('<'), Some('=')) => ("<=", 4, 2),
                (Some('>'), Some('=')) => (">=", 4, 2),
                (Some('<'), _) => ("<", 4, 1),
                (Some('>'), _) => (">", 4, 1),
                (Some('+'), _) => ("+", 5, 1),
                (Some('-'), _) => ("-", 5, 1),
                (Some('*'), _) => ("*", 6, 1),
                (Some('/'), _) => ("/", 6, 1),
                (Some('%'), _) => ("%", 6, 1),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.pos += len;
            let rhs = self.expr(bp + 1)?;
            lhs = match op {
                "||" => i64::from(lhs != 0 || rhs != 0),
                "&&" => i64::from(lhs != 0 && rhs != 0),
                "==" => i64::from(lhs == rhs),
                "!=" => i64::from(lhs != rhs),
                "<" => i64::from(lhs < rhs),
                "<=" => i64::from(lhs <= rhs),
                ">" => i64::from(lhs > rhs),
                ">=" => i64::from(lhs >= rhs),
                "+" => lhs.wrapping_add(rhs),
                "-" => lhs.wrapping_sub(rhs),
                "*" => lhs.wrapping_mul(rhs),
                "/" => {
                    if rhs == 0 {
                        return Err(self.err("division by zero in #if"));
                    }
                    lhs / rhs
                }
                "%" => {
                    if rhs == 0 {
                        return Err(self.err("division by zero in #if"));
                    }
                    lhs % rhs
                }
                _ => unreachable!(),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<i64, CompileError> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some('!') => {
                self.pos += 1;
                Ok(i64::from(self.unary()? == 0))
            }
            Some('-') => {
                self.pos += 1;
                Ok(-self.unary()?)
            }
            Some('+') => {
                self.pos += 1;
                self.unary()
            }
            Some('(') => {
                self.pos += 1;
                let v = self.expr(0)?;
                self.skip_ws();
                if self.chars.get(self.pos) != Some(&')') {
                    return Err(self.err("missing `)` in #if expression"));
                }
                self.pos += 1;
                Ok(v)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric())
                {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                let value = if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    i64::from_str_radix(hex, 16)
                } else if text.len() > 1 && text.starts_with('0') {
                    i64::from_str_radix(&text[1..], 8)
                } else {
                    text.parse()
                };
                value.map_err(|_| self.err(format!("bad integer `{text}` in #if")))
            }
            Some(c) if c.is_ascii_alphabetic() || *c == '_' => {
                // Undefined macro in a #if: evaluates to 0.
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
                {
                    self.pos += 1;
                }
                Ok(0)
            }
            other => Err(self.err(format!("unexpected `{other:?}` in #if expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(src: &str) -> Preprocessed {
        preprocess(src).unwrap_or_else(|e| panic!("preprocess failed: {e}\n{src}"))
    }

    #[test]
    fn passthrough_without_directives() {
        let out = pp("void main() {\n  gl_FragColor = vec4(1.0);\n}\n");
        assert_eq!(
            out.source,
            "void main() {\n  gl_FragColor = vec4(1.0);\n}\n"
        );
        assert_eq!(out.version, None);
    }

    #[test]
    fn object_macros_expand() {
        let out = pp("#define N 4\nfloat a[N];\nfloat b = N.0;\n");
        assert!(out.source.contains("float a[4];"));
        // Token-based expansion: N inside `N.0` is a separate identifier.
        assert!(out.source.contains("4.0"));
    }

    #[test]
    fn macro_names_do_not_expand_inside_identifiers() {
        let out = pp("#define X 9\nfloat XY = 1.0;\nfloat x_X = float(X);\n");
        assert!(out.source.contains("XY"), "{}", out.source);
        assert!(out.source.contains("x_X"), "{}", out.source);
        assert!(out.source.contains("float(9)"));
    }

    #[test]
    fn function_macros_expand_with_args() {
        let out = pp("#define SQ(v) ((v) * (v))\nfloat y = SQ(x + 1.0);\n");
        assert!(out.source.contains("((x + 1.0) * (x + 1.0))"));
        // Without parens it's just an identifier.
        let out = pp("#define F(a) a\nfloat F = 1.0;\n");
        assert!(out.source.contains("float F = 1.0;"));
    }

    #[test]
    fn nested_macros_and_recursion_guard() {
        let out = pp("#define A B\n#define B A\nfloat x = A;\n");
        // A → B → A stops (self-reference is not re-expanded).
        assert!(out.source.contains("float x = A;") || out.source.contains("float x = B;"));
        let out = pp("#define TWO 2.0\n#define FOUR (TWO * TWO)\nfloat x = FOUR;\n");
        assert!(out.source.contains("(2.0 * 2.0)"));
    }

    #[test]
    fn ifdef_chains() {
        let src = "#define FAST\n\
                   #ifdef FAST\nfloat a = 1.0;\n#else\nfloat a = 2.0;\n#endif\n\
                   #ifndef FAST\nfloat b = 3.0;\n#endif\n";
        let out = pp(src);
        assert!(out.source.contains("a = 1.0"));
        assert!(!out.source.contains("a = 2.0"));
        assert!(!out.source.contains("b = 3.0"));
        // Line numbers preserved: output has the same number of lines.
        assert_eq!(out.source.lines().count(), src.lines().count());
    }

    #[test]
    fn if_elif_else_expressions() {
        let src = "#define MODE 2\n\
                   #if MODE == 1\nfloat m = 1.0;\n\
                   #elif MODE == 2\nfloat m = 2.0;\n\
                   #else\nfloat m = 0.0;\n#endif\n";
        let out = pp(src);
        assert!(out.source.contains("m = 2.0"));
        assert!(!out.source.contains("m = 1.0"));
        assert!(!out.source.contains("m = 0.0"));
    }

    #[test]
    fn if_defined_and_arithmetic() {
        let out =
            pp("#define A 3\n#if defined(A) && A * 2 >= 6 && !defined(B)\nfloat ok;\n#endif\n");
        assert!(out.source.contains("float ok;"));
        let out = pp("#if defined B\nfloat no;\n#endif\n");
        assert!(!out.source.contains("float no;"));
        let out = pp("#if 0x10 == 16 && 010 == 8\nfloat oct;\n#endif\n");
        assert!(out.source.contains("float oct;"));
    }

    #[test]
    fn nested_conditionals() {
        let src = "#define A\n#ifdef A\n#ifdef B\nfloat x1;\n#else\nfloat x2;\n#endif\n#endif\n";
        let out = pp(src);
        assert!(!out.source.contains("x1"));
        assert!(out.source.contains("x2"));
        // Inner blocks of inactive outers stay inactive even if their own
        // condition is true.
        let src = "#ifdef NOPE\n#ifdef NOPE2\nfloat y1;\n#else\nfloat y2;\n#endif\n#endif\n";
        let out = pp(src);
        assert!(!out.source.contains("y1") && !out.source.contains("y2"));
    }

    #[test]
    fn version_and_builtins() {
        let out = pp("#version 100\nfloat v = float(__VERSION__);\nfloat e = float(GL_ES);\n");
        assert_eq!(out.version, Some(100));
        assert!(out.source.contains("float(100)"));
        assert!(out.source.contains("float(1)"));
        assert!(preprocess("#version 300\nvoid main(){}").is_err());
        assert!(preprocess("float x;\n#version 100\n").is_err());
    }

    #[test]
    fn line_macro_reports_current_line() {
        let out = pp("\n\nfloat l = float(__LINE__);\n");
        assert!(out.source.contains("float(3)"));
    }

    #[test]
    fn error_directive_fires_only_when_active() {
        let err = preprocess("#error broken\n").unwrap_err();
        assert!(err.message.contains("broken"));
        assert!(
            pp("#ifdef NOPE\n#error unreachable\n#endif\n")
                .source
                .lines()
                .count()
                == 3
        );
    }

    #[test]
    fn undef_removes_macros() {
        let out = pp("#define K 7\n#undef K\n#ifdef K\nfloat bad;\n#endif\nfloat k = 1.0;\n");
        assert!(!out.source.contains("bad"));
        assert!(out.source.contains("float k = 1.0;"));
    }

    #[test]
    fn reserved_macro_names_rejected() {
        assert!(preprocess("#define GL_FOO 1\n").is_err());
        assert!(preprocess("#define A__B 1\n").is_err());
    }

    #[test]
    fn extension_directive() {
        let out = pp("#extension GL_OES_texture_half_float : enable\nfloat x;\n");
        assert_eq!(
            out.extensions,
            vec![(
                "GL_OES_texture_half_float".to_owned(),
                ExtensionBehavior::Enable
            )]
        );
        assert!(preprocess("#extension GL_FAKE : require\n").is_err());
        let out = pp("#extension GL_FAKE : enable\n");
        assert_eq!(out.warnings.len(), 1);
        let out = pp("#extension GL_FAKE : disable\n");
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn unbalanced_conditionals_rejected() {
        assert!(preprocess("#ifdef A\nfloat x;\n").is_err());
        assert!(preprocess("#endif\n").is_err());
        assert!(preprocess("#else\n").is_err());
        assert!(preprocess("#ifdef A\n#else\n#else\n#endif\n").is_err());
        assert!(preprocess("#ifdef A\n#else\n#elif 1\n#endif\n").is_err());
    }

    #[test]
    fn comments_stripped_before_directives() {
        let out = pp("// #define GONE 1\n#define KEPT /* inline */ 5\nfloat x = KEPT;\n");
        assert!(out.source.contains("float x = 5;"));
        let out = pp("/* multi\nline */ float y;\n");
        assert_eq!(out.source.lines().count(), 2);
        assert!(out.source.contains("float y;"));
    }

    #[test]
    fn unknown_directives_rejected() {
        assert!(preprocess("#include \"foo.h\"\n").is_err());
        // …but not inside inactive blocks.
        assert!(preprocess("#ifdef NOPE\n#include \"foo.h\"\n#endif\n").is_ok());
    }

    #[test]
    fn null_directive_allowed() {
        assert!(preprocess("#\nfloat x;\n").is_ok());
    }

    #[test]
    fn function_macro_argument_errors() {
        assert!(preprocess("#define F(a, b) a + b\nfloat x = F(1.0);\n").is_err());
        assert!(preprocess("#define F(a) a\nfloat x = F(1.0;\n").is_err());
    }

    #[test]
    fn if_expression_errors() {
        assert!(preprocess("#if 1 +\nfloat x;\n#endif\n").is_err());
        assert!(preprocess("#if 1 / 0\nfloat x;\n#endif\n").is_err());
        assert!(preprocess("#if (1\nfloat x;\n#endif\n").is_err());
    }
}
