//! The GLSL ES 1.00 type lattice used by the checker and interpreter.

use std::fmt;

/// A GLSL ES type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` (function returns only).
    Void,
    /// `float`
    Float,
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `vec2`
    Vec2,
    /// `vec3`
    Vec3,
    /// `vec4`
    Vec4,
    /// `ivec2`
    IVec2,
    /// `ivec3`
    IVec3,
    /// `ivec4`
    IVec4,
    /// `bvec2`
    BVec2,
    /// `bvec3`
    BVec3,
    /// `bvec4`
    BVec4,
    /// `mat2` (2×2, column-major)
    Mat2,
    /// `mat3`
    Mat3,
    /// `mat4`
    Mat4,
    /// `sampler2D`
    Sampler2D,
    /// Fixed-size array, e.g. `float[8]`.
    Array(Box<Type>, usize),
}

/// Scalar component categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// `float` components.
    Float,
    /// `int` components.
    Int,
    /// `bool` components.
    Bool,
}

impl Type {
    /// Number of scalar components for scalars/vectors/matrices
    /// (`mat3` → 9). `None` for `void`, samplers and arrays.
    pub fn component_count(&self) -> Option<usize> {
        Some(match self {
            Type::Float | Type::Int | Type::Bool => 1,
            Type::Vec2 | Type::IVec2 | Type::BVec2 => 2,
            Type::Vec3 | Type::IVec3 | Type::BVec3 => 3,
            Type::Vec4 | Type::IVec4 | Type::BVec4 => 4,
            Type::Mat2 => 4,
            Type::Mat3 => 9,
            Type::Mat4 => 16,
            Type::Void | Type::Sampler2D | Type::Array(..) => return None,
        })
    }

    /// The scalar category of the components, if any.
    pub fn scalar(&self) -> Option<Scalar> {
        Some(match self {
            Type::Float
            | Type::Vec2
            | Type::Vec3
            | Type::Vec4
            | Type::Mat2
            | Type::Mat3
            | Type::Mat4 => Scalar::Float,
            Type::Int | Type::IVec2 | Type::IVec3 | Type::IVec4 => Scalar::Int,
            Type::Bool | Type::BVec2 | Type::BVec3 | Type::BVec4 => Scalar::Bool,
            Type::Void | Type::Sampler2D | Type::Array(..) => return None,
        })
    }

    /// True for `float`, `int`, `bool`.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Float | Type::Int | Type::Bool)
    }

    /// True for `vecN`, `ivecN`, `bvecN`.
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Type::Vec2
                | Type::Vec3
                | Type::Vec4
                | Type::IVec2
                | Type::IVec3
                | Type::IVec4
                | Type::BVec2
                | Type::BVec3
                | Type::BVec4
        )
    }

    /// True for `mat2/3/4`.
    pub fn is_matrix(&self) -> bool {
        matches!(self, Type::Mat2 | Type::Mat3 | Type::Mat4)
    }

    /// Vector dimension (2, 3 or 4) or matrix column count.
    pub fn dim(&self) -> Option<usize> {
        Some(match self {
            Type::Vec2 | Type::IVec2 | Type::BVec2 | Type::Mat2 => 2,
            Type::Vec3 | Type::IVec3 | Type::BVec3 | Type::Mat3 => 3,
            Type::Vec4 | Type::IVec4 | Type::BVec4 | Type::Mat4 => 4,
            _ => return None,
        })
    }

    /// The vector type with the given scalar category and dimension
    /// (dimension 1 yields the scalar type itself).
    pub fn vector_of(scalar: Scalar, dim: usize) -> Option<Type> {
        Some(match (scalar, dim) {
            (Scalar::Float, 1) => Type::Float,
            (Scalar::Float, 2) => Type::Vec2,
            (Scalar::Float, 3) => Type::Vec3,
            (Scalar::Float, 4) => Type::Vec4,
            (Scalar::Int, 1) => Type::Int,
            (Scalar::Int, 2) => Type::IVec2,
            (Scalar::Int, 3) => Type::IVec3,
            (Scalar::Int, 4) => Type::IVec4,
            (Scalar::Bool, 1) => Type::Bool,
            (Scalar::Bool, 2) => Type::BVec2,
            (Scalar::Bool, 3) => Type::BVec3,
            (Scalar::Bool, 4) => Type::BVec4,
            _ => return None,
        })
    }

    /// The type produced by indexing this type with `[]`.
    pub fn index_result(&self) -> Option<Type> {
        Some(match self {
            Type::Vec2 | Type::Vec3 | Type::Vec4 => Type::Float,
            Type::IVec2 | Type::IVec3 | Type::IVec4 => Type::Int,
            Type::BVec2 | Type::BVec3 | Type::BVec4 => Type::Bool,
            Type::Mat2 => Type::Vec2,
            Type::Mat3 => Type::Vec3,
            Type::Mat4 => Type::Vec4,
            Type::Array(elem, _) => (**elem).clone(),
            _ => return None,
        })
    }

    /// Whether values of this type may be `varying` (float-based only,
    /// per the GLSL ES 1.00 specification).
    pub fn valid_varying(&self) -> bool {
        matches!(
            self,
            Type::Float
                | Type::Vec2
                | Type::Vec3
                | Type::Vec4
                | Type::Mat2
                | Type::Mat3
                | Type::Mat4
        )
    }

    /// Whether values of this type may be an `attribute`.
    pub fn valid_attribute(&self) -> bool {
        matches!(
            self,
            Type::Float
                | Type::Vec2
                | Type::Vec3
                | Type::Vec4
                | Type::Mat2
                | Type::Mat3
                | Type::Mat4
        )
    }

    /// The GLSL spelling of the type (arrays render as `elem[n]`).
    pub fn glsl_name(&self) -> String {
        match self {
            Type::Void => "void".into(),
            Type::Float => "float".into(),
            Type::Int => "int".into(),
            Type::Bool => "bool".into(),
            Type::Vec2 => "vec2".into(),
            Type::Vec3 => "vec3".into(),
            Type::Vec4 => "vec4".into(),
            Type::IVec2 => "ivec2".into(),
            Type::IVec3 => "ivec3".into(),
            Type::IVec4 => "ivec4".into(),
            Type::BVec2 => "bvec2".into(),
            Type::BVec3 => "bvec3".into(),
            Type::BVec4 => "bvec4".into(),
            Type::Mat2 => "mat2".into(),
            Type::Mat3 => "mat3".into(),
            Type::Mat4 => "mat4".into(),
            Type::Sampler2D => "sampler2D".into(),
            Type::Array(elem, n) => format!("{}[{n}]", elem.glsl_name()),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.glsl_name())
    }
}

/// Precision qualifiers. Stored for fidelity; the interpreter's float model
/// decides how (or whether) they affect arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// `lowp`
    Low,
    /// `mediump`
    Medium,
    /// `highp`
    High,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Low => f.write_str("lowp"),
            Precision::Medium => f.write_str("mediump"),
            Precision::High => f.write_str("highp"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts() {
        assert_eq!(Type::Float.component_count(), Some(1));
        assert_eq!(Type::Vec3.component_count(), Some(3));
        assert_eq!(Type::Mat4.component_count(), Some(16));
        assert_eq!(Type::Sampler2D.component_count(), None);
        assert_eq!(
            Type::Array(Box::new(Type::Float), 4).component_count(),
            None
        );
    }

    #[test]
    fn vector_of_round_trips_dim_and_scalar() {
        for scalar in [Scalar::Float, Scalar::Int, Scalar::Bool] {
            for dim in 2..=4 {
                let t = Type::vector_of(scalar, dim).expect("valid vector");
                assert_eq!(t.dim(), Some(dim));
                assert_eq!(t.scalar(), Some(scalar));
            }
        }
        assert_eq!(Type::vector_of(Scalar::Float, 5), None);
    }

    #[test]
    fn index_results() {
        assert_eq!(Type::Vec4.index_result(), Some(Type::Float));
        assert_eq!(Type::IVec2.index_result(), Some(Type::Int));
        assert_eq!(Type::Mat3.index_result(), Some(Type::Vec3));
        assert_eq!(
            Type::Array(Box::new(Type::Vec2), 3).index_result(),
            Some(Type::Vec2)
        );
        assert_eq!(Type::Float.index_result(), None);
    }

    #[test]
    fn varying_rules_are_float_based() {
        assert!(Type::Vec4.valid_varying());
        assert!(Type::Mat3.valid_varying());
        assert!(!Type::Int.valid_varying());
        assert!(!Type::BVec2.valid_varying());
        assert!(!Type::Sampler2D.valid_varying());
    }

    #[test]
    fn glsl_names() {
        assert_eq!(Type::Vec4.glsl_name(), "vec4");
        assert_eq!(Type::Array(Box::new(Type::Mat2), 8).glsl_name(), "mat2[8]");
        assert_eq!(Type::Sampler2D.to_string(), "sampler2D");
    }
}
