//! Quantization differential sweep: generated tensors through every
//! integer codec — u8 (§IV-A), i16 (§IV-D), u16 and the Strzodka VMV'02
//! virtual-16 baseline — run **pipeline-side** (upload → shader
//! fetch/decode → arithmetic → shader pack → readback) and compared
//! against the host mirror of the exact same chain.
//!
//! The host reference composes the codec modules' `mirror_unpack` /
//! `mirror_pack` functions, which replicate the shader's floor/mod
//! arithmetic in `f32`; a single ULP of divergence anywhere in the
//! generated GLSL, the interpreter, or the store path shows up as a
//! byte mismatch. Case count scales with `PROPTEST_CASES` (the nightly
//! CI job runs 1024 under both `GPES_TEST_DISPATCH` legs; push CI runs
//! the bounded default).

use gpes_core::codec::{sshort, strzodka16, ubyte, ushort, PackBias};
use gpes_core::{ComputeContext, Kernel, ScalarType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Random length biased toward awkward tails: never a multiple of 8 in
/// half the cases, occasionally a single element.
fn random_len(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..4u32) {
        0 => rng.gen_range(1..8),
        1 => rng.gen_range(8..64usize) | 1,
        _ => rng.gen_range(64..256),
    }
}

const BIAS: PackBias = PackBias::QuarterTexel;

#[test]
fn u8_pipeline_matches_host_mirror() {
    let mut cc = ComputeContext::new(128, 128).expect("context");
    for case in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0xA16_0001 + case as u64);
        let n = random_len(&mut rng);
        let mut a: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=u8::MAX)).collect();
        let mut b: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=u8::MAX)).collect();
        // Pin the saturation corners into every case that has room.
        if n >= 2 {
            (a[0], b[0]) = (255, 255); // clamps at 255
            (a[1], b[1]) = (0, 0);
        }
        let ga = cc.upload(&a).expect("upload a");
        let gb = cc.upload(&b).expect("upload b");
        let k = Kernel::builder("quant_diff_u8")
            .input("a", &ga)
            .input("b", &gb)
            .output(ScalarType::U8, n)
            .body("return clamp(fetch_a(idx) + fetch_b(idx), 0.0, 255.0);")
            .build(&mut cc)
            .expect("build");
        let got: Vec<u8> = cc.run_and_read(&k).expect("run");
        let want: Vec<u8> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                let x = ubyte::mirror_unpack(ubyte::encode(x));
                let y = ubyte::mirror_unpack(ubyte::encode(y));
                ubyte::decode(ubyte::mirror_pack((x + y).clamp(0.0, 255.0), BIAS))
            })
            .collect();
        assert_eq!(got, want, "u8 case {case} (n={n})");
    }
}

#[test]
fn i16_pipeline_matches_host_mirror() {
    let mut cc = ComputeContext::new(128, 128).expect("context");
    for case in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0xA16_0002 + case as u64);
        let n = random_len(&mut rng);
        let mut a: Vec<i16> = (0..n).map(|_| rng.gen_range(i16::MIN..=i16::MAX)).collect();
        let mut b: Vec<i16> = (0..n).map(|_| rng.gen_range(i16::MIN..=i16::MAX)).collect();
        if n >= 2 {
            (a[0], b[0]) = (i16::MAX, i16::MAX); // clamps at +32767
            (a[1], b[1]) = (i16::MIN, i16::MIN); // clamps at -32767
        }
        let ga = cc.upload(&a).expect("upload a");
        let gb = cc.upload(&b).expect("upload b");
        // The CNN dense-layer contract: accumulate, clamp to the
        // symmetric i16 range the sshort codec stores exactly.
        let k = Kernel::builder("quant_diff_i16")
            .input("a", &ga)
            .input("b", &gb)
            .output(ScalarType::I16, n)
            .body("return clamp(fetch_a(idx) + fetch_b(idx), -32767.0, 32767.0);")
            .build(&mut cc)
            .expect("build");
        let got: Vec<i16> = cc.run_and_read(&k).expect("run");
        let want: Vec<i16> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                let x = sshort::mirror_unpack(sshort::encode(x));
                let y = sshort::mirror_unpack(sshort::encode(y));
                sshort::decode(sshort::mirror_pack((x + y).clamp(-32767.0, 32767.0), BIAS))
            })
            .collect();
        assert_eq!(got, want, "i16 case {case} (n={n})");
    }
}

#[test]
fn u16_pipeline_matches_host_mirror() {
    let mut cc = ComputeContext::new(128, 128).expect("context");
    for case in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0xA16_0003 + case as u64);
        let n = random_len(&mut rng);
        let mut a: Vec<u16> = (0..n).map(|_| rng.gen_range(0..=u16::MAX)).collect();
        let mut b: Vec<u16> = (0..n).map(|_| rng.gen_range(0..=u16::MAX)).collect();
        if n >= 2 {
            (a[0], b[0]) = (u16::MAX, u16::MAX);
            (a[1], b[1]) = (0, 0);
        }
        let ga = cc.upload(&a).expect("upload a");
        let gb = cc.upload(&b).expect("upload b");
        // Wrapping add mod 2^16: sums stay below 2^17, exact in fp32.
        let k = Kernel::builder("quant_diff_u16")
            .input("a", &ga)
            .input("b", &gb)
            .output(ScalarType::U16, n)
            .body("return mod(fetch_a(idx) + fetch_b(idx), 65536.0);")
            .build(&mut cc)
            .expect("build");
        let got: Vec<u16> = cc.run_and_read(&k).expect("run");
        let want: Vec<u16> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                let x = ushort::mirror_unpack(ushort::encode(x));
                let y = ushort::mirror_unpack(ushort::encode(y));
                ushort::decode(ushort::mirror_pack((x + y) % 65536.0, BIAS))
            })
            .collect();
        assert_eq!(got, want, "u16 case {case} (n={n})");
    }
}

#[test]
fn strzodka16_pipeline_matches_host_mirror() {
    let mut cc = ComputeContext::new(128, 128).expect("context");
    for case in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0xA16_0004 + case as u64);
        let n = random_len(&mut rng);
        let mut a: Vec<u16> = (0..n).map(|_| rng.gen_range(0..=u16::MAX)).collect();
        let mut b: Vec<u16> = (0..n).map(|_| rng.gen_range(0..=u16::MAX)).collect();
        if n >= 2 {
            (a[0], b[0]) = (u16::MAX, 1); // carries across the byte split
            (a[1], b[1]) = (0x00FF, 0x0001);
        }
        let texel_count = n.div_ceil(2);
        let side = (texel_count as f64).sqrt().ceil() as u32;
        let texels = side as usize * side as usize;
        let ta = cc
            .upload_texels(side, side, &strzodka16::encode_texels(&a, texels))
            .expect("upload a");
        let tb = cc
            .upload_texels(side, side, &strzodka16::encode_texels(&b, texels))
            .expect("upload b");
        let k = Kernel::builder("quant_diff_strzodka16")
            .input_texels("a", &ta)
            .input_texels("b", &tb)
            .functions(strzodka16::GLSL)
            .output_texels(texels)
            .body(
                "vec4 ta = fetch_a_texel(idx);\n\
                 vec4 tb = fetch_b_texel(idx);\n\
                 vec2 r0 = gpes_v16_add(gpes_v16_from_bytes(ta.xy), gpes_v16_from_bytes(tb.xy));\n\
                 vec2 r1 = gpes_v16_add(gpes_v16_from_bytes(ta.zw), gpes_v16_from_bytes(tb.zw));\n\
                 return vec4(gpes_v16_pack(r0), gpes_v16_pack(r1));",
            )
            .build(&mut cc)
            .expect("build");
        let bytes = cc.run_and_read_texels(&k).expect("run");
        let got = strzodka16::decode_texels(&bytes, n);
        let want: Vec<u16> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                let x = strzodka16::mirror_unpack(strzodka16::encode_u16(x));
                let y = strzodka16::mirror_unpack(strzodka16::encode_u16(y));
                strzodka16::decode_u16(strzodka16::mirror_pack(strzodka16::mirror_add(x, y), BIAS))
            })
            .collect();
        assert_eq!(got, want, "strzodka16 case {case} (n={n})");
        // The mirror chain itself must implement a true wrapping add.
        let plain: Vec<u16> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_add(y)).collect();
        assert_eq!(want, plain, "strzodka16 mirror drifted from wrapping add");
    }
}
