//! Differential testing: the SPMD lane VM and the scalar bytecode VM
//! against the tree-walking interpreter, across **every bundled kernel**
//! and all three [`FloatModel`]s.
//!
//! For each kernel the same workload runs through the full pipeline once
//! per [`ExecMode`] — tree-walker, scalar VM, `Spmd{4}` and `Spmd{8}` —
//! and must produce byte-identical outputs and identical fragment/vertex
//! [`gpes_glsl::exec::OpProfile`] counters (the timing model consumes
//! the profiles, so they are part of the contract, not just the pixels).
//! The SPMD runs additionally assert `spmd_batches > 0`: the lane path
//! must actually execute, not silently fall back.

use gpes_core::{ComputeContext, ComputeError, ExecMode};
use gpes_glsl::exec::{FloatModel, OpProfile};
use gpes_kernels::backprop::{self, Activation};
use gpes_kernels::fft::{self, Direction};
use gpes_kernels::reduce::{self, ReduceOp};
use gpes_kernels::{
    conv3x3, data, gaussian, hotspot, kmeans, nn, pathfinder, saxpy, sgemm, srad, sum, transpose,
};

const MODELS: [FloatModel; 3] = [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16];

/// The VM fast path must be *live* for the bundled kernels: if the
/// lowerer rejected these shaders, `Program::link` would silently fall
/// back to the tree-walker for both executors and every differential
/// test below would compare the interpreter against itself.
#[test]
fn bundled_kernel_shaders_lower_to_bytecode() {
    let mut cc = ComputeContext::new(64, 64).expect("context");
    let a = data::random_f32(64, 91, 10.0);
    let ga = cc.upload(&a).expect("upload");
    let gb = cc.upload(&a).expect("upload");
    let sum_k = sum::build_f32(&mut cc, &ga, &gb).expect("sum");
    let n = 8u32;
    let m = data::random_f32(64, 92, 2.0);
    let gm = cc.upload_matrix(n, n, &m).expect("matrix");
    let gm2 = cc.upload_matrix(n, n, &m).expect("matrix");
    let gm3 = cc.upload_matrix(n, n, &m).expect("matrix");
    let gemm_k = sgemm::build_f32(&mut cc, &gm, &gm2, &gm3, 1.0, 0.5).expect("sgemm");
    let img = data::random_u8(64, 93, 255);
    let gi = cc.upload_matrix(n, n, &img).expect("image");
    let conv_k = conv3x3::build(&mut cc, &gi, &conv3x3::Filter3x3::box_blur()).expect("conv");

    for kernel in [&sum_k, &gemm_k, &conv_k] {
        let fs = gpes_glsl::compile(gpes_glsl::ShaderKind::Fragment, kernel.fragment_source())
            .expect("fragment compiles");
        gpes_glsl::lower(&fs).expect("fragment shader must lower to bytecode");
        let vs = gpes_glsl::compile(gpes_glsl::ShaderKind::Vertex, &kernel.vertex_source())
            .expect("vertex compiles");
        gpes_glsl::lower(&vs).expect("vertex shader must lower to bytecode");
    }
}

const MODES: [ExecMode; 4] = [
    ExecMode::TreeWalker,
    ExecMode::Scalar,
    ExecMode::Spmd { lanes: 4 },
    ExecMode::Spmd { lanes: 8 },
];

/// Runs `work` once per [`ExecMode`] under every float model and asserts
/// byte-identical outputs and identical accumulated op profiles, with
/// the tree-walker as the oracle. SPMD runs must bank at least one lane
/// batch.
fn assert_differential<F>(name: &str, work: F)
where
    F: Fn(&mut ComputeContext) -> Result<Vec<u8>, ComputeError>,
{
    for model in MODELS {
        let run = |mode: ExecMode| -> (Vec<u8>, OpProfile, OpProfile) {
            let mut cc =
                ComputeContext::new(256, 256).unwrap_or_else(|e| panic!("{name}: context: {e}"));
            cc.set_exec_mode(mode);
            cc.set_float_model(model);
            let out = work(&mut cc).unwrap_or_else(|e| panic!("{name}/{model:?}: {e}"));
            if matches!(mode, ExecMode::Spmd { .. }) {
                assert!(
                    cc.stats().spmd_batches > 0,
                    "{name}/{model:?}: SPMD selected but no lane batch ran"
                );
            } else {
                assert_eq!(
                    cc.stats().spmd_batches,
                    0,
                    "{name}/{model:?}: scalar mode dispatched SPMD batches"
                );
            }
            let mut fs = OpProfile::new();
            let mut vs = OpProfile::new();
            for pass in cc.take_pass_log() {
                fs.merge(&pass.stats.fs_profile);
                vs.merge(&pass.stats.vs_profile);
            }
            (out, fs, vs)
        };
        let (tw_out, tw_fs, tw_vs) = run(ExecMode::TreeWalker);
        for mode in MODES.into_iter().skip(1) {
            let (out, fs, vs) = run(mode);
            assert_eq!(
                out, tw_out,
                "{name} outputs diverge under {model:?}/{mode:?}"
            );
            assert_eq!(
                fs, tw_fs,
                "{name} fragment profiles diverge under {model:?}/{mode:?}"
            );
            assert_eq!(
                vs, tw_vs,
                "{name} vertex profiles diverge under {model:?}/{mode:?}"
            );
        }
    }
}

fn f32s_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[test]
fn sum_kernels_match() {
    assert_differential("sum_f32", |cc| {
        let a = data::random_f32(512, 1, 100.0);
        let b = data::random_f32(512, 2, 100.0);
        let ga = cc.upload(&a)?;
        let gb = cc.upload(&b)?;
        let k = sum::build_f32(cc, &ga, &gb)?;
        Ok(f32s_bytes(&cc.run_f32(&k)?))
    });
    assert_differential("sum_u32", |cc| {
        let a = data::random_u32(512, 3, 1 << 20);
        let b = data::random_u32(512, 4, 1 << 20);
        let ga = cc.upload(&a)?;
        let gb = cc.upload(&b)?;
        let k = sum::build_u32(cc, &ga, &gb)?;
        let out: Vec<u32> = cc.run_and_read(&k)?;
        Ok(out.iter().flat_map(|x| x.to_le_bytes()).collect())
    });
    assert_differential("sum_i32", |cc| {
        let a = data::random_i32(512, 5, 1 << 20);
        let b = data::random_i32(512, 6, 1 << 20);
        let ga = cc.upload(&a)?;
        let gb = cc.upload(&b)?;
        let k = sum::build_i32(cc, &ga, &gb)?;
        let out: Vec<i32> = cc.run_and_read(&k)?;
        Ok(out.iter().flat_map(|x| x.to_le_bytes()).collect())
    });
    assert_differential("sum_u8", |cc| {
        let a = data::random_u8(512, 7, 120);
        let b = data::random_u8(512, 8, 120);
        let ga = cc.upload(&a)?;
        let gb = cc.upload(&b)?;
        let k = sum::build_u8(cc, &ga, &gb)?;
        let out: Vec<u8> = cc.run_and_read(&k)?;
        Ok(out)
    });
}

#[test]
fn saxpy_and_sgemm_match() {
    assert_differential("saxpy", |cc| {
        let x = data::random_f32(300, 11, 10.0);
        let y = data::random_f32(300, 12, 10.0);
        let gx = cc.upload(&x)?;
        let gy = cc.upload(&y)?;
        let k = saxpy::build(cc, &gx, &gy, 1.5)?;
        Ok(f32s_bytes(&cc.run_f32(&k)?))
    });
    assert_differential("sgemm_f32", |cc| {
        let n = 12usize;
        let a = data::random_f32(n * n, 13, 2.0);
        let b = data::random_f32(n * n, 14, 2.0);
        let c = data::random_f32(n * n, 15, 2.0);
        let ga = cc.upload_matrix(n as u32, n as u32, &a)?;
        let gb = cc.upload_matrix(n as u32, n as u32, &b)?;
        let gc = cc.upload_matrix(n as u32, n as u32, &c)?;
        let k = sgemm::build_f32(cc, &ga, &gb, &gc, 1.0, 0.5)?;
        Ok(f32s_bytes(&cc.run_f32(&k)?))
    });
    assert_differential("gemm_i32", |cc| {
        let n = 10usize;
        let a = data::random_i32(n * n, 16, 150);
        let b = data::random_i32(n * n, 17, 150);
        let ga = cc.upload_matrix(n as u32, n as u32, &a)?;
        let gb = cc.upload_matrix(n as u32, n as u32, &b)?;
        let k = sgemm::build_i32(cc, &ga, &gb)?;
        let out: Vec<i32> = cc.run_and_read(&k)?;
        Ok(out.iter().flat_map(|x| x.to_le_bytes()).collect())
    });
}

#[test]
fn conv_transpose_and_nn_match() {
    assert_differential("conv3x3", |cc| {
        let (rows, cols) = (16u32, 16u32);
        let img = data::random_u8((rows * cols) as usize, 21, 255);
        let gm = cc.upload_matrix(rows, cols, &img)?;
        let k = conv3x3::build(cc, &gm, &conv3x3::Filter3x3::sharpen())?;
        let out: Vec<u8> = cc.run_and_read(&k)?;
        Ok(out)
    });
    assert_differential("transpose", |cc| {
        let (rows, cols) = (9u32, 13u32);
        let m = data::random_f32((rows * cols) as usize, 22, 50.0);
        let gm = cc.upload_matrix(rows, cols, &m)?;
        let k = transpose::build(cc, &gm)?;
        Ok(f32s_bytes(&cc.run_f32(&k)?))
    });
    assert_differential("nn", |cc| {
        let lat = data::random_f32(200, 23, 90.0);
        let lng = data::random_f32(200, 24, 180.0);
        let glat = cc.upload(&lat)?;
        let glng = cc.upload(&lng)?;
        let k = nn::build(cc, &glat, &glng, [12.0, 34.0])?;
        Ok(f32s_bytes(&cc.run_f32(&k)?))
    });
}

#[test]
fn multipass_kernels_match() {
    assert_differential("reduce_sum", |cc| {
        let v = data::random_f32(400, 31, 10.0);
        let gv = cc.upload(&v)?;
        let r = reduce::gpu_reduce(cc, &gv, ReduceOp::Sum)?;
        Ok(r.to_le_bytes().to_vec())
    });
    assert_differential("reduce_max", |cc| {
        let v = data::random_f32(400, 32, 10.0);
        let gv = cc.upload(&v)?;
        let r = reduce::gpu_reduce(cc, &gv, ReduceOp::Max)?;
        Ok(r.to_le_bytes().to_vec())
    });
    assert_differential("fft", |cc| {
        let re = data::random_f32(64, 33, 1.0);
        let im = data::random_f32(64, 34, 1.0);
        let (ore, oim) = fft::run_gpu(cc, &re, &im, Direction::Forward)?;
        let mut out = f32s_bytes(&ore);
        out.extend(f32s_bytes(&oim));
        Ok(out)
    });
    assert_differential("pathfinder", |cc| {
        let (rows, cols) = (8usize, 24usize);
        let wall = data::random_f32(rows * cols, 35, 9.0);
        Ok(f32s_bytes(&pathfinder::run_gpu(cc, rows, cols, &wall)?))
    });
    assert_differential("srad", |cc| {
        let (rows, cols) = (12usize, 12usize);
        let img: Vec<f32> = data::random_f32(rows * cols, 36, 1.0)
            .iter()
            .map(|v| v.abs() + 0.05)
            .collect();
        Ok(f32s_bytes(&srad::run_gpu(
            cc,
            rows,
            cols,
            &img,
            srad::SradParams::default(),
            2,
        )?))
    });
}

#[test]
fn solver_and_ml_kernels_match() {
    assert_differential("gaussian", |cc| {
        let n = 6usize;
        // Diagonally dominant system so the pivot never degenerates.
        let mut a = data::random_f32(n * n, 41, 1.0);
        for i in 0..n {
            a[i * n + i] += 10.0;
        }
        let b = data::random_f32(n, 42, 5.0);
        Ok(f32s_bytes(&gaussian::solve_gpu(cc, n, &a, &b)?))
    });
    assert_differential("kmeans", |cc| {
        let points: Vec<(f32, f32)> = data::random_f32(60, 43, 10.0)
            .chunks(2)
            .map(|c| (c[0], c[1]))
            .collect();
        let centroids = vec![(-5.0, -5.0), (0.0, 0.0), (5.0, 5.0)];
        kmeans::run_gpu(cc, &points, &centroids)
    });
    assert_differential("backprop_forward", |cc| {
        let input = data::random_f32(8, 44, 1.0);
        let layers = vec![
            (
                data::random_f32(8 * 6, 45, 0.5),
                data::random_f32(6, 46, 0.2),
                Activation::Sigmoid,
            ),
            (
                data::random_f32(6 * 4, 47, 0.5),
                data::random_f32(4, 48, 0.2),
                Activation::Relu,
            ),
        ];
        Ok(f32s_bytes(&backprop::forward_gpu(cc, &input, &layers)?))
    });
    assert_differential("hotspot", |cc| {
        let (rows, cols) = (14u32, 14u32);
        let t = data::random_f32((rows * cols) as usize, 49, 40.0);
        let p = data::random_f32((rows * cols) as usize, 50, 2.0);
        let gt = cc.upload_matrix(rows, cols, &t)?;
        let gp = cc.upload_matrix(rows, cols, &p)?;
        let k = hotspot::build(cc, &gt, &gp, hotspot::HotspotParams::default())?;
        Ok(f32s_bytes(&cc.run_f32(&k)?))
    });
}
