//! Thermal stencil iteration (Rodinia `hotspot`-style): one Jacobi step
//! of `T' = T + k·(N + S + E + W − 4T) + c·P` over a 2-D grid, with
//! clamp-to-edge boundaries. Multi-step simulation ([`run_gpu`]) chains
//! passes through a retained [`Pipeline`]: the step kernel compiles once,
//! the temperature grid ping-pongs through pooled render targets, and the
//! power grid stays bound as the kernel's build-time default.

use gpes_core::{ComputeContext, ComputeError, GpuMatrix, Kernel, Pass, Pipeline, ScalarType};
use gpes_perf::CpuWorkload;

/// Stencil coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotParams {
    /// Diffusion coefficient `k`.
    pub k: f32,
    /// Power-injection coefficient `c`.
    pub c: f32,
}

impl Default for HotspotParams {
    fn default() -> Self {
        HotspotParams { k: 0.2, c: 0.05 }
    }
}

/// Builds one stencil step kernel reading temperature `t` and power `p`.
///
/// # Errors
///
/// `BadKernel` if grids disagree; build/compile errors.
pub fn build(
    cc: &mut ComputeContext,
    t: &GpuMatrix<f32>,
    p: &GpuMatrix<f32>,
    params: HotspotParams,
) -> Result<Kernel, ComputeError> {
    if t.rows() != p.rows() || t.cols() != p.cols() {
        return Err(ComputeError::BadKernel {
            message: "temperature and power grids must have equal dimensions".into(),
        });
    }
    Kernel::builder("hotspot_step")
        .input_matrix("t", t)
        .input_matrix("p", p)
        .uniform_f32("k_coef", params.k)
        .uniform_f32("c_coef", params.c)
        .output_grid(ScalarType::F32, t.rows(), t.cols())
        .body(
            "float center = fetch_t_rc(row, col);\n\
             float north = fetch_t_rc(row - 1.0, col);\n\
             float south = fetch_t_rc(row + 1.0, col);\n\
             float west = fetch_t_rc(row, col - 1.0);\n\
             float east = fetch_t_rc(row, col + 1.0);\n\
             float lap = north + south + east + west - 4.0 * center;\n\
             return center + k_coef * lap + c_coef * fetch_p_rc(row, col);",
        )
        .build(cc)
}

/// Runs `steps` Jacobi iterations on the GPU and reads the final grid
/// back (the last step renders straight into the default framebuffer
/// when it fits the screen).
///
/// # Errors
///
/// `BadKernel` for mismatched grids; upload/build/run errors.
pub fn run_gpu(
    cc: &mut ComputeContext,
    rows: usize,
    cols: usize,
    t: &[f32],
    p: &[f32],
    params: HotspotParams,
    steps: usize,
) -> Result<Vec<f32>, ComputeError> {
    if t.len() != rows * cols || p.len() != rows * cols {
        return Err(ComputeError::BadKernel {
            message: format!(
                "temperature ({}) and power ({}) must both be rows x cols = {}",
                t.len(),
                p.len(),
                rows * cols
            ),
        });
    }
    let gt = cc.upload_matrix(rows as u32, cols as u32, t)?;
    let gp = cc.upload_matrix(rows as u32, cols as u32, p)?;
    let kernel = build(cc, &gt, &gp, params)?;
    let pipeline = Pipeline::builder("hotspot")
        .source_matrix("t", &gt)
        .pass(
            Pass::new(&kernel)
                .read("t", "t")
                .write_grid("t", rows as u32, cols as u32),
        )
        .iterations(steps)
        .build()?;
    let out = pipeline.run_and_read::<f32>(cc, "t")?;
    cc.recycle_matrix(gt);
    cc.recycle_matrix(gp);
    Ok(out)
}

/// CPU reference for `steps` Jacobi iterations ([`cpu_reference`]
/// repeated with identical operation order).
pub fn cpu_reference_steps(
    rows: usize,
    cols: usize,
    t: &[f32],
    p: &[f32],
    params: HotspotParams,
    steps: usize,
) -> Vec<f32> {
    let mut grid = t.to_vec();
    for _ in 0..steps {
        grid = cpu_reference(rows, cols, &grid, p, params);
    }
    grid
}

/// CPU reference for one step, with identical border clamping and
/// operation order.
pub fn cpu_reference(
    rows: usize,
    cols: usize,
    t: &[f32],
    p: &[f32],
    params: HotspotParams,
) -> Vec<f32> {
    let fetch = |r: i64, c: i64| -> f32 {
        let r = r.clamp(0, rows as i64 - 1) as usize;
        let c = c.clamp(0, cols as i64 - 1) as usize;
        t[r * cols + c]
    };
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let center = fetch(r as i64, c as i64);
            let north = fetch(r as i64 - 1, c as i64);
            let south = fetch(r as i64 + 1, c as i64);
            let west = fetch(r as i64, c as i64 - 1);
            let east = fetch(r as i64, c as i64 + 1);
            let lap = north + south + east + west - 4.0 * center;
            out[r * cols + c] = center + params.k * lap + params.c * p[r * cols + c];
        }
    }
    out
}

/// Modelled ARM1176 workload for one step on a `rows × cols` grid.
pub fn cpu_workload(rows: usize, cols: usize) -> CpuWorkload {
    let n = (rows * cols) as f64;
    CpuWorkload {
        fp_ops: 9.0 * n,
        loads: 6.0 * n,
        stores: n,
        iterations: n,
        cache_misses: n / 2.0, // three row streams of 4-byte elements
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn one_step_matches_cpu() {
        let (rows, cols) = (10usize, 14usize);
        let t = data::random_f32(rows * cols, 81, 80.0);
        let p = data::random_f32(rows * cols, 82, 5.0);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let gt = cc.upload_matrix(rows as u32, cols as u32, &t).expect("t");
        let gp = cc.upload_matrix(rows as u32, cols as u32, &p).expect("p");
        let k = build(&mut cc, &gt, &gp, HotspotParams::default()).expect("kernel");
        let gpu = cc.run_f32(&k).expect("run");
        let cpu = cpu_reference(rows, cols, &t, &p, HotspotParams::default());
        assert_eq!(gpu, cpu);
    }

    #[test]
    fn multi_step_simulation_matches_cpu_with_one_program() {
        let (rows, cols) = (10usize, 14usize);
        let t = data::random_f32(rows * cols, 83, 80.0);
        let p = data::random_f32(rows * cols, 84, 5.0);
        let steps = 7;
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let params = HotspotParams::default();
        let gpu = run_gpu(&mut cc, rows, cols, &t, &p, params, steps).expect("run");
        assert_eq!(gpu, cpu_reference_steps(rows, cols, &t, &p, params, steps));
        assert_eq!(cc.pass_log().len(), steps);
        // One compiled program for the whole simulation; steady-state
        // iteration comes out of the render-target pool.
        assert_eq!(cc.stats().programs_linked, 1);
        assert!(cc.stats().texture_pool_hits > 0);
    }

    #[test]
    fn uniform_grid_stays_uniform_without_power() {
        let (rows, cols) = (6usize, 6usize);
        let t = vec![50.0f32; rows * cols];
        let p = vec![0.0f32; rows * cols];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gt = cc.upload_matrix(rows as u32, cols as u32, &t).expect("t");
        let gp = cc.upload_matrix(rows as u32, cols as u32, &p).expect("p");
        let k = build(&mut cc, &gt, &gp, HotspotParams::default()).expect("kernel");
        let gpu = cc.run_f32(&k).expect("run");
        assert!(gpu.iter().all(|&v| v == 50.0));
    }

    #[test]
    fn power_injection_heats_hotspot() {
        let (rows, cols) = (5usize, 5usize);
        let t = vec![0.0f32; rows * cols];
        let mut p = vec![0.0f32; rows * cols];
        p[12] = 100.0; // centre cell
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gt = cc.upload_matrix(rows as u32, cols as u32, &t).expect("t");
        let gp = cc.upload_matrix(rows as u32, cols as u32, &p).expect("p");
        let k = build(&mut cc, &gt, &gp, HotspotParams::default()).expect("kernel");
        let gpu = cc.run_f32(&k).expect("run");
        assert!(gpu[12] > 0.0);
        assert_eq!(gpu[0], 0.0);
    }

    #[test]
    fn mismatched_grids_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gt = cc.upload_matrix(4, 4, &[0.0f32; 16]).expect("t");
        let gp = cc.upload_matrix(4, 5, &[0.0f32; 20]).expect("p");
        let err = build(&mut cc, &gt, &gp, HotspotParams::default()).unwrap_err();
        assert!(err.to_string().contains("equal dimensions"));
    }
}
