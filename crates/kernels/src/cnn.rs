//! A small **quantized CNN** served end-to-end on the GPU: `u8`
//! activations and `i16` weights flow through the §IV codecs with zero
//! `f32` host round-trips — the TFLite-delegate trick expressed as a
//! [`PipelineSpec`].
//!
//! Graph (all buffers GPU-resident between passes):
//!
//! ```text
//! img u8 16×16 ─ conv1 3×3 ─ u8 16×16 ─ pool1 2×2max ─ u8 8×8
//!             ─ conv2 3×3 ─ u8  8×8  ─ pool2 2×2max ─ u8 4×4
//!             ─ dense 16→10 ─ i16 scores(10) ─ 2× max-fold ─ i16 top(1)
//! ```
//!
//! Numeric contract: convolutions accumulate `u8 · i16` products and
//! requantize with a power-of-two shift (`clamp(floor(acc / 2^s), 0,
//! 255)` — the clamp at zero doubles as ReLU); the dense layer clamps
//! its `i16` scores to ±32767. With the demo weight bounds every
//! accumulator stays far below 2²⁴, so fp32 shader arithmetic is exact
//! and [`cpu_reference`] — which mirrors the shader's operation order
//! and the codec store/fetch round-trips — is **bit-identical**, on the
//! quantized path and the [`Precision::F32`] twin alike.

use gpes_core::{
    codec, ComputeError, KernelSpec, PackBias, PassSpec, PipelineSpec, ScalarType, TensorData,
};
use gpes_glsl::Value;
use std::sync::Arc;

use crate::reduce::{fold_body, ReduceOp};

/// Input image side (the graph is fixed at 16×16).
pub const IMG_SIDE: u32 = 16;
/// Requantization shift of the first convolution (divide by 2⁶).
pub const CONV1_SHIFT: u32 = 6;
/// Requantization shift of the second convolution (divide by 2⁶).
pub const CONV2_SHIFT: u32 = 6;
/// Flattened activations feeding the dense layer (4×4 after two pools).
pub const DENSE_INPUTS: usize = 16;
/// Dense-layer output classes.
pub const DENSE_OUTPUTS: usize = 10;

/// Which scalar formats the graph's buffers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// `u8` activations, `i16` weights and scores — the quantized path.
    Quantized,
    /// Everything `f32` — the widened baseline the ablation compares
    /// against (identical arithmetic, 4× the texel traffic).
    F32,
}

impl Precision {
    /// Activation scalar type.
    pub fn act(self) -> ScalarType {
        match self {
            Precision::Quantized => ScalarType::U8,
            Precision::F32 => ScalarType::F32,
        }
    }

    /// Weight scalar type.
    pub fn weight(self) -> ScalarType {
        match self {
            Precision::Quantized => ScalarType::I16,
            Precision::F32 => ScalarType::F32,
        }
    }

    /// Score scalar type.
    pub fn score(self) -> ScalarType {
        match self {
            Precision::Quantized => ScalarType::I16,
            Precision::F32 => ScalarType::F32,
        }
    }

    /// Pipeline-spec name suffix (`cnn_quant` / `cnn_f32`).
    pub fn tag(self) -> &'static str {
        match self {
            Precision::Quantized => "quant",
            Precision::F32 => "f32",
        }
    }
}

/// The network's weights: two 3×3 kernels plus a dense matrix, all
/// `i16` (the `f32` twin widens them at tensor-construction time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnWeights {
    /// conv1 3×3 weights, row-major.
    pub w1: Vec<i16>,
    /// conv2 3×3 weights, row-major.
    pub w2: Vec<i16>,
    /// Dense weights, row-major `[DENSE_OUTPUTS × DENSE_INPUTS]`.
    pub wd: Vec<i16>,
}

impl CnnWeights {
    /// Deterministic demo weights, bounded so every accumulator stays in
    /// the 24-bit-exact fp32 window (conv: `9·255·31 < 2¹⁷`; dense:
    /// `16·255·63 < 2¹⁸`). Conv weights carry a positive mean so the
    /// requantization clamp (which doubles as ReLU) doesn't zero the
    /// whole feature map; individual negative weights remain.
    pub fn demo(seed: u64) -> CnnWeights {
        let lifted = |n: usize, s: u64| -> Vec<i16> {
            crate::data::random_i16(n, s, 23)
                .into_iter()
                .map(|v| v + 8)
                .collect()
        };
        CnnWeights {
            w1: lifted(9, seed),
            w2: lifted(9, seed.wrapping_add(1)),
            wd: crate::data::random_i16(DENSE_OUTPUTS * DENSE_INPUTS, seed.wrapping_add(2), 63),
        }
    }
}

/// The readback of one inference: raw class scores and their maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnOutput {
    /// Dense-layer scores, one per class.
    pub scores: Vec<i16>,
    /// `max(scores)` — computed on the GPU by the fold passes.
    pub top: i16,
}

fn conv_spec(name: &str, side: u32, shift: u32, precision: Precision) -> KernelSpec {
    let mut terms = String::new();
    for dy in 0..3i32 {
        for dx in 0..3i32 {
            terms.push_str(&format!(
                "acc += fetch_x_rc(row + ({dy_off:.1}), col + ({dx_off:.1})) * fetch_w({k:.1});\n",
                dy_off = (dy - 1) as f32,
                dx_off = (dx - 1) as f32,
                k = (dy * 3 + dx) as f32,
            ));
        }
    }
    let body = format!(
        "float acc = 0.0;\n{terms}return clamp(floor(acc / {div:.1}), 0.0, 255.0);",
        div = (1u32 << shift) as f32
    );
    KernelSpec::new(name)
        .input_typed("x", precision.act())
        .input_typed("w", precision.weight())
        .output_grid_typed(precision.act(), side, side)
        .body(body)
}

fn pool_spec(name: &str, out_side: u32, precision: Precision) -> KernelSpec {
    KernelSpec::new(name)
        .input_typed("x", precision.act())
        .output_grid_typed(precision.act(), out_side, out_side)
        .body(
            "float r0 = row * 2.0;\n\
             float c0 = col * 2.0;\n\
             float m = fetch_x_rc(r0, c0);\n\
             m = max(m, fetch_x_rc(r0, c0 + 1.0));\n\
             m = max(m, fetch_x_rc(r0 + 1.0, c0));\n\
             m = max(m, fetch_x_rc(r0 + 1.0, c0 + 1.0));\n\
             return m;",
        )
}

fn dense_spec(name: &str, precision: Precision) -> KernelSpec {
    let body = format!(
        "float acc = 0.0;\n\
         for (int k = 0; k < {n}; k++) {{\n\
         \x20   acc += fetch_x(float(k)) * fetch_w_rc(idx, float(k));\n\
         }}\n\
         return clamp(acc, -32767.0, 32767.0);",
        n = DENSE_INPUTS
    );
    KernelSpec::new(name)
        .input_typed("x", precision.act())
        .input_typed("w", precision.weight())
        .output_typed(precision.score(), DENSE_OUTPUTS)
        .body(body)
}

fn max_spec(name: &str, precision: Precision) -> KernelSpec {
    KernelSpec::new(name)
        .input_typed("x", precision.score())
        .uniform_f32("n_live", DENSE_OUTPUTS as f32)
        .output_typed(
            precision.score(),
            DENSE_OUTPUTS.div_ceil(crate::reduce::FANIN),
        )
        .body(fold_body(ReduceOp::Max))
}

/// Context-free spec of the whole inference graph at the given
/// precision. Sources, in positional order: `img` (activation grid
/// 16×16), `w1` and `w2` (9 weights each), `wd` (weight grid 10×16) —
/// the weights are the natural [`gpes_core::ResidentInput`] candidates.
/// Readable buffers: `scores` (10 elements) and `top` (1 element).
///
/// # Errors
///
/// Spec validation errors (none for the shapes fixed here).
pub fn pipeline_spec(precision: Precision) -> Result<PipelineSpec, ComputeError> {
    let tag = precision.tag();
    let conv1 = Arc::new(conv_spec(
        &format!("cnn_conv1_{tag}"),
        IMG_SIDE,
        CONV1_SHIFT,
        precision,
    ));
    let pool1 = Arc::new(pool_spec(
        &format!("cnn_pool1_{tag}"),
        IMG_SIDE / 2,
        precision,
    ));
    let conv2 = Arc::new(conv_spec(
        &format!("cnn_conv2_{tag}"),
        IMG_SIDE / 2,
        CONV2_SHIFT,
        precision,
    ));
    let pool2 = Arc::new(pool_spec(
        &format!("cnn_pool2_{tag}"),
        IMG_SIDE / 4,
        precision,
    ));
    let dense = Arc::new(dense_spec(&format!("cnn_dense_{tag}"), precision));
    // One compiled max kernel serves both fold levels (reduce's trick):
    // only `n_live` and the output length differ per pass.
    let top = Arc::new(max_spec(&format!("cnn_top_{tag}"), precision));
    let mid = DENSE_OUTPUTS.div_ceil(crate::reduce::FANIN);
    PipelineSpec::builder(format!("cnn_{tag}"))
        .source_grid_typed("img", precision.act(), IMG_SIDE, IMG_SIDE)
        .source_len_typed("w1", precision.weight(), 9)
        .source_len_typed("w2", precision.weight(), 9)
        .source_grid_typed(
            "wd",
            precision.weight(),
            DENSE_OUTPUTS as u32,
            DENSE_INPUTS as u32,
        )
        .pass(
            PassSpec::new(&conv1)
                .read("x", "img")
                .read("w", "w1")
                .write_grid("c1", IMG_SIDE, IMG_SIDE),
        )
        .pass(
            PassSpec::new(&pool1)
                .read("x", "c1")
                .write_grid("p1", IMG_SIDE / 2, IMG_SIDE / 2),
        )
        .pass(
            PassSpec::new(&conv2)
                .read("x", "p1")
                .read("w", "w2")
                .write_grid("c2", IMG_SIDE / 2, IMG_SIDE / 2),
        )
        .pass(
            PassSpec::new(&pool2)
                .read("x", "c2")
                .write_grid("p2", IMG_SIDE / 4, IMG_SIDE / 4),
        )
        .pass(
            PassSpec::new(&dense)
                .read("x", "p2")
                .read("w", "wd")
                .write_len("scores", DENSE_OUTPUTS),
        )
        .pass(
            PassSpec::new(&top)
                .read("x", "scores")
                .uniform("n_live", Value::Float(DENSE_OUTPUTS as f32))
                .write_len("t1", mid),
        )
        .pass(
            PassSpec::new(&top)
                .read("x", "t1")
                .uniform("n_live", Value::Float(mid as f32))
                .write_len("top", 1),
        )
        .build()
}

/// The image as a source tensor at the given precision.
pub fn img_tensor(precision: Precision, img: &[u8]) -> TensorData {
    match precision {
        Precision::Quantized => TensorData::from(img.to_vec()),
        Precision::F32 => TensorData::from(img.iter().map(|&b| b as f32).collect::<Vec<f32>>()),
    }
}

/// The weights as `(w1, w2, wd)` source tensors at the given precision.
pub fn weight_tensors(
    precision: Precision,
    weights: &CnnWeights,
) -> (TensorData, TensorData, TensorData) {
    let lift = |w: &[i16]| match precision {
        Precision::Quantized => TensorData::from(w.to_vec()),
        Precision::F32 => TensorData::from(w.iter().map(|&v| v as f32).collect::<Vec<f32>>()),
    };
    (lift(&weights.w1), lift(&weights.w2), lift(&weights.wd))
}

/// One activation store/fetch round-trip: the value the *next* layer's
/// fetch sees after this layer's pack + eq. (2) store. Identity for the
/// in-range integers the graph produces, kept explicit so the reference
/// tracks the codec, not an assumption about it.
fn act_roundtrip(v: f32, bias: PackBias) -> f32 {
    codec::ubyte::mirror_unpack(codec::ubyte::mirror_pack(v, bias))
}

fn score_roundtrip(v: f32, bias: PackBias) -> f32 {
    codec::sshort::mirror_unpack(codec::sshort::mirror_pack(v, bias))
}

fn conv_layer(side: usize, x: &[f32], w: &[f32], shift: u32, bias: PackBias) -> Vec<f32> {
    let div = (1u32 << shift) as f32;
    let fetch = |r: i64, c: i64| -> f32 {
        let r = r.clamp(0, side as i64 - 1) as usize;
        let c = c.clamp(0, side as i64 - 1) as usize;
        x[r * side + c]
    };
    let mut out = vec![0.0f32; side * side];
    for r in 0..side {
        for c in 0..side {
            let mut acc = 0.0f32;
            for dy in 0..3i64 {
                for dx in 0..3i64 {
                    acc += fetch(r as i64 + dy - 1, c as i64 + dx - 1) * w[(dy * 3 + dx) as usize];
                }
            }
            let v = (acc / div).floor().clamp(0.0, 255.0);
            out[r * side + c] = act_roundtrip(v, bias);
        }
    }
    out
}

fn pool_layer(out_side: usize, x: &[f32], bias: PackBias) -> Vec<f32> {
    let in_side = out_side * 2;
    let mut out = vec![0.0f32; out_side * out_side];
    for r in 0..out_side {
        for c in 0..out_side {
            let (r0, c0) = (r * 2, c * 2);
            let mut m = x[r0 * in_side + c0];
            m = m.max(x[r0 * in_side + c0 + 1]);
            m = m.max(x[(r0 + 1) * in_side + c0]);
            m = m.max(x[(r0 + 1) * in_side + c0 + 1]);
            out[r * out_side + c] = act_roundtrip(m, bias);
        }
    }
    out
}

/// Bit-exact host reference: mirrors the shader's operation order, the
/// clamp-to-edge borders, and every codec store/fetch round-trip
/// between layers (`bias` must match the context's [`PackBias`]).
pub fn cpu_reference(img: &[u8], weights: &CnnWeights, bias: PackBias) -> CnnOutput {
    let side = IMG_SIDE as usize;
    let x: Vec<f32> = img
        .iter()
        .map(|&b| codec::ubyte::mirror_unpack(b))
        .collect();
    let w1: Vec<f32> = weights.w1.iter().map(|&v| v as f32).collect();
    let w2: Vec<f32> = weights.w2.iter().map(|&v| v as f32).collect();
    let c1 = conv_layer(side, &x, &w1, CONV1_SHIFT, bias);
    let p1 = pool_layer(side / 2, &c1, bias);
    let c2 = conv_layer(side / 2, &p1, &w2, CONV2_SHIFT, bias);
    let p2 = pool_layer(side / 4, &c2, bias);
    let mut scores = Vec::with_capacity(DENSE_OUTPUTS);
    for o in 0..DENSE_OUTPUTS {
        let mut acc = 0.0f32;
        for (k, &p) in p2.iter().enumerate().take(DENSE_INPUTS) {
            acc += p * weights.wd[o * DENSE_INPUTS + k] as f32;
        }
        let v = score_roundtrip(acc.clamp(-32767.0, 32767.0), bias);
        scores.push(codec::sshort::decode(codec::sshort::mirror_pack(v, bias)));
    }
    // The fold passes store intermediates through the i16 codec too, but
    // the round-trip is exact over the whole i16 domain, so max() of the
    // scores is the value the GPU's `top` buffer holds.
    let top = scores.iter().copied().max().expect("non-empty scores");
    CnnOutput { scores, top }
}

/// Modelled ARM1176 workload of one inference (for the perf model's CPU
/// side; dominated by the first convolution).
pub fn cpu_workload() -> gpes_perf::CpuWorkload {
    let conv = |side: f64| gpes_perf::CpuWorkload {
        fp_ops: 18.0 * side * side,
        loads: 10.0 * side * side,
        stores: side * side,
        iterations: 9.0 * side * side,
        ..gpes_perf::CpuWorkload::default()
    };
    let c1 = conv(IMG_SIDE as f64);
    let c2 = conv((IMG_SIDE / 2) as f64);
    let dense_ops = (DENSE_OUTPUTS * DENSE_INPUTS) as f64;
    gpes_perf::CpuWorkload {
        fp_ops: c1.fp_ops + c2.fp_ops + 2.0 * dense_ops,
        loads: c1.loads + c2.loads + 2.0 * dense_ops,
        stores: c1.stores + c2.stores + DENSE_OUTPUTS as f64,
        iterations: c1.iterations + c2.iterations + dense_ops,
        ..gpes_perf::CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpes_core::{ComputeContext, SourceSeed};

    fn run_direct(precision: Precision, img: &[u8], weights: &CnnWeights) -> (CnnOutput, u64) {
        let mut cc = ComputeContext::new(64, 64).expect("context");
        let spec = pipeline_spec(precision).expect("spec");
        let served = spec.build(&mut cc).expect("build");
        let (t1, t2, td) = weight_tensors(precision, weights);
        let img_t = img_tensor(precision, img);
        let img_g = cc
            .upload_any_matrix(IMG_SIDE, IMG_SIDE, &img_t)
            .expect("img");
        let w1 = cc.upload_any(&t1).expect("w1");
        let w2 = cc.upload_any(&t2).expect("w2");
        let wd = cc
            .upload_any_matrix(DENSE_OUTPUTS as u32, DENSE_INPUTS as u32, &td)
            .expect("wd");
        let seeds = [
            SourceSeed::any("img", &img_g),
            SourceSeed::any("w1", &w1),
            SourceSeed::any("w2", &w2),
            SourceSeed::any("wd", &wd),
        ];
        let run = served.pipeline().run_seeded(&mut cc, &seeds).expect("run");
        let scores_t = run.read_any(&mut cc, "scores").expect("scores");
        let top_t = run.read_any(&mut cc, "top").expect("top");
        run.finish(&mut cc);
        let out = match precision {
            Precision::Quantized => CnnOutput {
                scores: scores_t.as_i16().expect("i16 scores").to_vec(),
                top: top_t.as_i16().expect("i16 top")[0],
            },
            Precision::F32 => CnnOutput {
                scores: scores_t
                    .as_f32()
                    .expect("f32 scores")
                    .iter()
                    .map(|&v| v as i16)
                    .collect(),
                top: top_t.as_f32().expect("f32 top")[0] as i16,
            },
        };
        (out, cc.stats().f32_host_transfers)
    }

    #[test]
    fn quantized_matches_cpu_reference_bitwise() {
        let img = crate::data::random_u8((IMG_SIDE * IMG_SIDE) as usize, 91, 255);
        let weights = CnnWeights::demo(17);
        let (gpu, f32_transfers) = run_direct(Precision::Quantized, &img, &weights);
        let cpu = cpu_reference(&img, &weights, gpes_core::PackBias::default());
        assert_eq!(gpu, cpu);
        assert_eq!(
            f32_transfers, 0,
            "quantized path must not move f32 tensors across the host boundary"
        );
    }

    #[test]
    fn f32_twin_agrees_with_quantized_path() {
        let img = crate::data::random_u8((IMG_SIDE * IMG_SIDE) as usize, 92, 255);
        let weights = CnnWeights::demo(18);
        let (quant, _) = run_direct(Precision::Quantized, &img, &weights);
        let (wide, f32_transfers) = run_direct(Precision::F32, &img, &weights);
        assert_eq!(
            quant, wide,
            "integer-exact graph must agree across precisions"
        );
        assert!(
            f32_transfers > 0,
            "f32 path moves f32 tensors by definition"
        );
    }

    #[test]
    fn scores_respond_to_weights() {
        let img = crate::data::random_u8((IMG_SIDE * IMG_SIDE) as usize, 93, 255);
        let a = cpu_reference(&img, &CnnWeights::demo(1), gpes_core::PackBias::default());
        let b = cpu_reference(&img, &CnnWeights::demo(2), gpes_core::PackBias::default());
        assert_ne!(a.scores, b.scores);
        assert_eq!(a.top, *a.scores.iter().max().expect("scores"));
    }

    #[test]
    fn steady_state_links_and_objects_freeze() {
        let img = crate::data::random_u8((IMG_SIDE * IMG_SIDE) as usize, 94, 255);
        let weights = CnnWeights::demo(19);
        let mut cc = ComputeContext::new(64, 64).expect("context");
        let spec = pipeline_spec(Precision::Quantized).expect("spec");
        let served = spec.build(&mut cc).expect("build");
        let (t1, t2, td) = weight_tensors(Precision::Quantized, &weights);
        let w1 = cc.upload_any(&t1).expect("w1");
        let w2 = cc.upload_any(&t2).expect("w2");
        let wd = cc
            .upload_any_matrix(DENSE_OUTPUTS as u32, DENSE_INPUTS as u32, &td)
            .expect("wd");
        let run_once = |cc: &mut ComputeContext| {
            let img_g = cc
                .upload_any_matrix(IMG_SIDE, IMG_SIDE, &img_tensor(Precision::Quantized, &img))
                .expect("img");
            let seeds = [
                SourceSeed::any("img", &img_g),
                SourceSeed::any("w1", &w1),
                SourceSeed::any("w2", &w2),
                SourceSeed::any("wd", &wd),
            ];
            let run = served.pipeline().run_seeded(cc, &seeds).expect("run");
            let top = run.read_any(cc, "top").expect("top");
            run.finish(cc);
            cc.recycle_any(img_g);
            top.as_i16().expect("i16")[0]
        };
        let first = run_once(&mut cc);
        assert_eq!(run_once(&mut cc), first);
        let warm = cc.stats();
        for _ in 0..4 {
            assert_eq!(run_once(&mut cc), first);
        }
        let steady = cc.stats();
        assert_eq!(
            steady.programs_linked, warm.programs_linked,
            "post-warmup inference must not link programs"
        );
        assert_eq!(
            steady.gl_objects_created(),
            warm.gl_objects_created(),
            "post-warmup inference must not allocate GL objects"
        );
    }
}
