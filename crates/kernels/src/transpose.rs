//! Matrix transpose — a pure data-movement kernel useful for validating
//! 2-D addressing and as a building block for layout changes.

use gpes_core::{ComputeContext, ComputeError, GpuMatrix, Kernel, ScalarType};

/// Builds the transpose kernel: output `(row, col)` = input `(col, row)`.
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build(cc: &mut ComputeContext, m: &GpuMatrix<f32>) -> Result<Kernel, ComputeError> {
    Kernel::builder("transpose")
        .input_matrix("m", m)
        .output_grid(ScalarType::F32, m.cols(), m.rows())
        .body("return fetch_m_rc(col, row);")
        .build(cc)
}

/// CPU reference.
pub fn cpu_reference(rows: usize, cols: usize, m: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = m[r * cols + c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn transpose_matches_cpu() {
        let (rows, cols) = (7usize, 11usize);
        let m = data::random_f32(rows * cols, 91, 1000.0);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gm = cc.upload_matrix(rows as u32, cols as u32, &m).expect("m");
        let k = build(&mut cc, &gm).expect("kernel");
        let gpu = cc.run_f32(&k).expect("run");
        assert_eq!(gpu, cpu_reference(rows, cols, &m));
    }

    #[test]
    fn double_transpose_is_identity() {
        let (rows, cols) = (5usize, 8usize);
        let m = data::random_f32(rows * cols, 92, 10.0);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gm = cc.upload_matrix(rows as u32, cols as u32, &m).expect("m");
        let k1 = build(&mut cc, &gm).expect("k1");
        let t1: gpes_core::GpuArray<f32> = cc.run_to_array(&k1).expect("t1");
        // Re-wrap the array as a matrix of transposed dims for the second pass.
        let host = cc
            .read_array(&t1, gpes_core::Readback::DirectFbo)
            .expect("read");
        let tm = cc
            .upload_matrix(cols as u32, rows as u32, &host)
            .expect("tm");
        let k2 = build(&mut cc, &tm).expect("k2");
        let back = cc.run_f32(&k2).expect("run");
        assert_eq!(back, m);
    }
}
