//! `saxpy`: `y ← α·x + y`, the BLAS level-1 staple.

use gpes_core::{ComputeContext, ComputeError, GpuArray, Kernel, ScalarType};
use gpes_perf::CpuWorkload;

/// Builds the saxpy kernel.
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build(
    cc: &mut ComputeContext,
    x: &GpuArray<f32>,
    y: &GpuArray<f32>,
    alpha: f32,
) -> Result<Kernel, ComputeError> {
    Kernel::builder("saxpy")
        .input("x", x)
        .input("y", y)
        .uniform_f32("alpha", alpha)
        .output(ScalarType::F32, x.len())
        .body("return alpha * fetch_x(idx) + fetch_y(idx);")
        .build(cc)
}

/// CPU reference (same op order as the shader).
pub fn cpu_reference(x: &[f32], y: &[f32], alpha: f32) -> Vec<f32> {
    x.iter().zip(y).map(|(&xv, &yv)| alpha * xv + yv).collect()
}

/// Modelled ARM1176 workload.
pub fn cpu_workload(n: usize) -> CpuWorkload {
    let n = n as f64;
    CpuWorkload {
        fp_ops: 2.0 * n,
        loads: 2.0 * n,
        stores: n,
        iterations: n,
        cache_misses: 3.0 * n / 8.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn gpu_matches_cpu_bit_exactly() {
        let n = 200;
        let x = data::random_f32(n, 41, 100.0);
        let y = data::random_f32(n, 42, 100.0);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gx = cc.upload(&x).expect("x");
        let gy = cc.upload(&y).expect("y");
        let k = build(&mut cc, &gx, &gy, 2.5).expect("kernel");
        assert_eq!(cc.run_f32(&k).expect("run"), cpu_reference(&x, &y, 2.5));
    }

    #[test]
    fn alpha_update_via_uniform() {
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let gx = cc.upload(&[1.0f32, 2.0]).expect("x");
        let gy = cc.upload(&[10.0f32, 20.0]).expect("y");
        let mut k = build(&mut cc, &gx, &gy, 1.0).expect("kernel");
        assert_eq!(cc.run_f32(&k).expect("run"), vec![11.0, 22.0]);
        cc.set_kernel_uniform(&mut k, "alpha", gpes_glsl::Value::Float(-1.0))
            .expect("uniform");
        assert_eq!(cc.run_f32(&k).expect("run"), vec![9.0, 18.0]);
    }
}
