//! Multi-pass parallel reduction (sum / max) — the canonical GPGPU
//! pattern that exercises render-to-texture chaining (workaround #7).
//!
//! Each pass folds `FANIN` consecutive elements into one output element;
//! passes repeat until a single element remains, which is read back
//! through the framebuffer. The whole tree is **one compiled kernel**
//! dispatched through a retained [`Pipeline`]: each level only rebinds
//! the ping-pong texture, shrinks the output domain and updates the
//! `n_live` uniform — zero shader compiles inside the loop.

use gpes_core::{
    ComputeContext, ComputeError, GpuArray, Kernel, KernelSpec, OutputShape, Pass, PassSpec,
    Pipeline, PipelineSpec,
};
use gpes_glsl::Value;
use std::sync::Arc;

/// Elements folded per output per pass.
pub const FANIN: usize = 8;

/// The reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of elements.
    Sum,
    /// Maximum element.
    Max,
}

impl ReduceOp {
    fn init_glsl(self) -> &'static str {
        match self {
            ReduceOp::Sum => "0.0",
            // Kernel inputs are finite; the most negative finite float is
            // a safe identity for max without needing -inf literals.
            ReduceOp::Max => "-3.4028234e38",
        }
    }

    fn combine_glsl(self) -> &'static str {
        match self {
            ReduceOp::Sum => "acc = acc + v;",
            ReduceOp::Max => "acc = max(acc, v);",
        }
    }

    fn combine_cpu(self, acc: f32, v: f32) -> f32 {
        match self {
            ReduceOp::Sum => acc + v,
            ReduceOp::Max => acc.max(v),
        }
    }

    fn init_cpu(self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => -3.402_823_4e38,
        }
    }
}

/// The GLSL body of one fold level (shared with the `a9` rebuild-per-pass
/// baseline so the two stay bit-identical by construction). Level size
/// arrives through the `n_live` uniform; the shader is level-independent.
pub fn fold_body(op: ReduceOp) -> String {
    format!(
        "float acc = {init};\n\
         for (int k = 0; k < {fanin}; k++) {{\n\
         \x20   float j = idx * {fanin}.0 + float(k);\n\
         \x20   if (j < n_live) {{\n\
         \x20       float v = fetch_x(j);\n\
         \x20       {combine}\n\
         \x20   }}\n\
         }}\n\
         return acc;",
        init = op.init_glsl(),
        fanin = FANIN,
        combine = op.combine_glsl(),
    )
}

/// Builds the single fold kernel shared by every level of the tree (the
/// `n_live` uniform and the output shape vary per level, not the shader).
/// Built through [`fold_spec`] so direct and engine-served reductions
/// share one program by construction.
fn pass_kernel(
    cc: &mut ComputeContext,
    input: &GpuArray<f32>,
    op: ReduceOp,
) -> Result<Kernel, ComputeError> {
    fold_spec(input.len(), op).build(cc, &[*input])
}

/// Context-free spec of the fold kernel for an `n`-element input — the
/// engine-servable twin of the private per-context builder, generating
/// the byte-identical program (level size arrives through the `n_live`
/// uniform, so one program serves the whole tree).
pub fn fold_spec(n: usize, op: ReduceOp) -> KernelSpec {
    KernelSpec::new(format!("reduce_{op:?}"))
        .input("x")
        .uniform_f32("n_live", n as f32)
        .output(n.div_ceil(FANIN))
        .body(fold_body(op))
}

/// Context-free spec of the whole retained reduction tree, mirroring
/// [`gpu_reduce`]'s wiring (one fold kernel, per-level output shapes and
/// `n_live` values). Submit through
/// [`gpes_core::Engine::submit_pipeline`] with one linear source `x` of
/// `n` elements and read buffer `x` (one element); the result is
/// bit-identical to [`gpu_reduce`]. `n == 1` degenerates to zero
/// iterations: the seed is read back unchanged.
///
/// # Errors
///
/// `BadKernel` for `n == 0`.
pub fn pipeline_spec(n: usize, op: ReduceOp) -> Result<PipelineSpec, ComputeError> {
    if n == 0 {
        return Err(ComputeError::BadKernel {
            message: "cannot reduce an empty array".into(),
        });
    }
    let mut in_lens = vec![n];
    while *in_lens.last().expect("non-empty") > 1 {
        in_lens.push(in_lens.last().expect("non-empty").div_ceil(FANIN));
    }
    let levels = in_lens.len() - 1;
    let kernel = Arc::new(fold_spec(n, op));
    let live = in_lens.clone();
    let out = in_lens;
    PipelineSpec::builder(format!("reduce_{op:?}"))
        .source_len("x", n)
        .pass(
            PassSpec::new(&kernel)
                .read("x", "x")
                .write_len("x", 1)
                .output_per_iter(move |level| OutputShape::Linear(out[level + 1]))
                .uniform_per_iter("n_live", move |level| Value::Float(live[level] as f32)),
        )
        .iterations(levels)
        .build()
}

/// Reduces an f32 array on the GPU, returning the scalar result.
///
/// Runs ⌈log_FANIN n⌉ passes of **one** compiled kernel through a
/// retained [`Pipeline`]; intermediate levels ping-pong through pooled
/// render targets, and the final single-element pass renders straight
/// into the default framebuffer for readback.
///
/// # Errors
///
/// Build/run errors from the framework.
pub fn gpu_reduce(
    cc: &mut ComputeContext,
    input: &GpuArray<f32>,
    op: ReduceOp,
) -> Result<f32, ComputeError> {
    if input.len() == 1 {
        let result = cc.read_array(input, gpes_core::Readback::DirectFbo)?;
        return Ok(result[0]);
    }
    // Per-level element counts: in_lens[i] feeds level i, producing
    // in_lens[i + 1].
    let mut in_lens = vec![input.len()];
    while *in_lens.last().expect("non-empty") > 1 {
        in_lens.push(in_lens.last().expect("non-empty").div_ceil(FANIN));
    }
    let levels = in_lens.len() - 1;
    let kernel = pass_kernel(cc, input, op)?;
    let live = in_lens.clone();
    let out = in_lens;
    let pipeline = Pipeline::builder(format!("reduce_{op:?}"))
        .source("x", input)
        .pass(
            Pass::new(&kernel)
                .read("x", "x")
                .write_len("x", 1)
                .output_per_iter(move |level| OutputShape::Linear(out[level + 1]))
                .uniform_per_iter("n_live", move |level| Value::Float(live[level] as f32)),
        )
        .iterations(levels)
        .build()?;
    let result = pipeline.run_and_read::<f32>(cc, "x")?;
    Ok(result[0])
}

/// CPU reference: fold in exactly the same tree order as the GPU passes
/// so f32 sums agree bit-for-bit under the exact float model.
pub fn cpu_reference(data: &[f32], op: ReduceOp) -> f32 {
    let mut level: Vec<f32> = data.to_vec();
    while level.len() > 1 {
        level = level
            .chunks(FANIN)
            .map(|chunk| {
                let mut acc = op.init_cpu();
                for &v in chunk {
                    acc = op.combine_cpu(acc, v);
                }
                acc
            })
            .collect();
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn sum_reduction_matches_tree_order() {
        let n = 1000;
        let values = data::random_f32(n, 51, 10.0);
        let mut cc = ComputeContext::new(64, 64).expect("context");
        let arr = cc.upload(&values).expect("upload");
        let gpu = gpu_reduce(&mut cc, &arr, ReduceOp::Sum).expect("reduce");
        assert_eq!(gpu, cpu_reference(&values, ReduceOp::Sum));
        // 1000 → 125 → 16 → 2 → 1: four passes.
        assert_eq!(cc.pass_log().len(), 4);
        // Four passes, ONE program: the compile/bind split at work.
        assert_eq!(cc.stats().programs_linked, 1);
        // Re-running reduces of other sizes recompiles nothing either.
        let arr2 = cc.upload(&values[..321]).expect("upload 2");
        let gpu2 = gpu_reduce(&mut cc, &arr2, ReduceOp::Sum).expect("reduce 2");
        assert_eq!(gpu2, cpu_reference(&values[..321], ReduceOp::Sum));
        assert_eq!(cc.stats().programs_linked, 1);
        assert!(cc.stats().program_cache_hits >= 1);
    }

    #[test]
    fn max_reduction() {
        let values = data::random_f32(333, 52, 1.0e6);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let arr = cc.upload(&values).expect("upload");
        let gpu = gpu_reduce(&mut cc, &arr, ReduceOp::Max).expect("reduce");
        let expected = values.iter().cloned().fold(f32::MIN, f32::max);
        assert_eq!(gpu, expected);
    }

    #[test]
    fn single_element_is_identity() {
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let arr = cc.upload(&[42.5f32]).expect("upload");
        assert_eq!(
            gpu_reduce(&mut cc, &arr, ReduceOp::Sum).expect("reduce"),
            42.5
        );
        assert!(cc.pass_log().is_empty(), "no kernel pass needed");
    }

    #[test]
    fn negative_values_max() {
        let values = vec![-5.0f32, -2.5, -9.0];
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let arr = cc.upload(&values).expect("upload");
        assert_eq!(
            gpu_reduce(&mut cc, &arr, ReduceOp::Max).expect("reduce"),
            -2.5
        );
    }

    #[test]
    fn pipeline_spec_matches_direct_run_bitwise() {
        let n = 1000;
        let values = data::random_f32(n, 53, 10.0);
        let mut cc = ComputeContext::new(64, 64).expect("context");
        let arr = cc.upload(&values).expect("upload");
        let direct = gpu_reduce(&mut cc, &arr, ReduceOp::Sum).expect("direct");
        let links = cc.stats().programs_linked;
        let spec = pipeline_spec(n, ReduceOp::Sum).expect("spec");
        let served = spec.build(&mut cc).expect("build");
        assert_eq!(cc.stats().programs_linked, links, "spec relinked a program");
        let seeds = [gpes_core::SourceSeed::array("x", &arr)];
        let out: Vec<f32> = served
            .pipeline()
            .run_and_read_seeded(&mut cc, &seeds, "x")
            .expect("seeded run");
        assert_eq!(out, vec![direct]);
        assert!(pipeline_spec(0, ReduceOp::Sum).is_err());
    }
}
