//! Multi-pass parallel reduction (sum / max) — the canonical GPGPU
//! pattern that exercises render-to-texture chaining (workaround #7).
//!
//! Each pass folds `FANIN` consecutive elements into one output element;
//! passes repeat until a single element remains, which is read back
//! through the framebuffer.

use gpes_core::{ComputeContext, ComputeError, GpuArray, Kernel, ScalarType};

/// Elements folded per output per pass.
pub const FANIN: usize = 8;

/// The reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of elements.
    Sum,
    /// Maximum element.
    Max,
}

impl ReduceOp {
    fn init_glsl(self) -> &'static str {
        match self {
            ReduceOp::Sum => "0.0",
            // Kernel inputs are finite; the most negative finite float is
            // a safe identity for max without needing -inf literals.
            ReduceOp::Max => "-3.4028234e38",
        }
    }

    fn combine_glsl(self) -> &'static str {
        match self {
            ReduceOp::Sum => "acc = acc + v;",
            ReduceOp::Max => "acc = max(acc, v);",
        }
    }

    fn combine_cpu(self, acc: f32, v: f32) -> f32 {
        match self {
            ReduceOp::Sum => acc + v,
            ReduceOp::Max => acc.max(v),
        }
    }

    fn init_cpu(self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => -3.402_823_4e38,
        }
    }
}

fn pass_kernel(
    cc: &mut ComputeContext,
    input: &GpuArray<f32>,
    op: ReduceOp,
    out_len: usize,
) -> Result<Kernel, ComputeError> {
    let body = format!(
        "float acc = {init};\n\
         for (int k = 0; k < {fanin}; k++) {{\n\
         \x20   float j = idx * {fanin}.0 + float(k);\n\
         \x20   if (j < n_live) {{\n\
         \x20       float v = fetch_x(j);\n\
         \x20       {combine}\n\
         \x20   }}\n\
         }}\n\
         return acc;",
        init = op.init_glsl(),
        fanin = FANIN,
        combine = op.combine_glsl(),
    );
    Kernel::builder(format!("reduce_{op:?}"))
        .input("x", input)
        .uniform_f32("n_live", input.len() as f32)
        .output(ScalarType::F32, out_len)
        .body(body)
        .build(cc)
}

/// Reduces an f32 array on the GPU, returning the scalar result.
///
/// Runs ⌈log_FANIN n⌉ passes; intermediate arrays render to textures, and
/// only the final single-element pass is read back.
///
/// # Errors
///
/// Build/run errors from the framework.
pub fn gpu_reduce(
    cc: &mut ComputeContext,
    input: &GpuArray<f32>,
    op: ReduceOp,
) -> Result<f32, ComputeError> {
    let mut current = *input;
    let mut owned: Vec<GpuArray<f32>> = Vec::new();
    while current.len() > 1 {
        let out_len = current.len().div_ceil(FANIN);
        let kernel = pass_kernel(cc, &current, op, out_len)?;
        let next: GpuArray<f32> = cc.run_to_array(&kernel)?;
        owned.push(next);
        current = next;
    }
    let result = cc.read_array(&current, gpes_core::Readback::DirectFbo)?;
    for array in owned {
        cc.delete_array(array);
    }
    Ok(result[0])
}

/// CPU reference: fold in exactly the same tree order as the GPU passes
/// so f32 sums agree bit-for-bit under the exact float model.
pub fn cpu_reference(data: &[f32], op: ReduceOp) -> f32 {
    let mut level: Vec<f32> = data.to_vec();
    while level.len() > 1 {
        level = level
            .chunks(FANIN)
            .map(|chunk| {
                let mut acc = op.init_cpu();
                for &v in chunk {
                    acc = op.combine_cpu(acc, v);
                }
                acc
            })
            .collect();
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn sum_reduction_matches_tree_order() {
        let n = 1000;
        let values = data::random_f32(n, 51, 10.0);
        let mut cc = ComputeContext::new(64, 64).expect("context");
        let arr = cc.upload(&values).expect("upload");
        let gpu = gpu_reduce(&mut cc, &arr, ReduceOp::Sum).expect("reduce");
        assert_eq!(gpu, cpu_reference(&values, ReduceOp::Sum));
        // 1000 → 125 → 16 → 2 → 1: four passes.
        assert_eq!(cc.pass_log().len(), 4);
    }

    #[test]
    fn max_reduction() {
        let values = data::random_f32(333, 52, 1.0e6);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let arr = cc.upload(&values).expect("upload");
        let gpu = gpu_reduce(&mut cc, &arr, ReduceOp::Max).expect("reduce");
        let expected = values.iter().cloned().fold(f32::MIN, f32::max);
        assert_eq!(gpu, expected);
    }

    #[test]
    fn single_element_is_identity() {
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let arr = cc.upload(&[42.5f32]).expect("upload");
        assert_eq!(
            gpu_reduce(&mut cc, &arr, ReduceOp::Sum).expect("reduce"),
            42.5
        );
        assert!(cc.pass_log().is_empty(), "no kernel pass needed");
    }

    #[test]
    fn negative_values_max() {
        let values = vec![-5.0f32, -2.5, -9.0];
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let arr = cc.upload(&values).expect("upload");
        assert_eq!(
            gpu_reduce(&mut cc, &arr, ReduceOp::Max).expect("reduce"),
            -2.5
        );
    }
}
