//! 3×3 convolution on `u8` images — image processing is the workload
//! class GLES2 GPUs were built for, here expressed through the same
//! GPGPU framework (the "native byte" path of §IV-A).

use gpes_core::{codec, ComputeContext, ComputeError, GpuMatrix, Kernel, PackBias, ScalarType};
use gpes_perf::CpuWorkload;

/// A 3×3 filter with a normalising divisor: `out = Σ wᵢ·pᵢ / divisor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Filter3x3 {
    /// Row-major weights.
    pub weights: [f32; 9],
    /// Divisor applied after the weighted sum.
    pub divisor: f32,
}

impl Filter3x3 {
    /// Box blur.
    pub fn box_blur() -> Filter3x3 {
        Filter3x3 {
            weights: [1.0; 9],
            divisor: 9.0,
        }
    }

    /// Sharpen.
    pub fn sharpen() -> Filter3x3 {
        Filter3x3 {
            weights: [0.0, -1.0, 0.0, -1.0, 5.0, -1.0, 0.0, -1.0, 0.0],
            divisor: 1.0,
        }
    }

    /// Horizontal Sobel edge detector (output clamps at 0 for negatives).
    pub fn sobel_x() -> Filter3x3 {
        Filter3x3 {
            weights: [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0],
            divisor: 1.0,
        }
    }
}

/// Builds the convolution kernel over a `u8` image (clamp-to-edge
/// borders).
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build(
    cc: &mut ComputeContext,
    image: &GpuMatrix<u8>,
    filter: &Filter3x3,
) -> Result<Kernel, ComputeError> {
    let mut terms = String::new();
    for dy in 0..3 {
        for dx in 0..3 {
            let w = filter.weights[dy * 3 + dx];
            if w == 0.0 {
                continue;
            }
            terms.push_str(&format!(
                "acc += fetch_img_rc(row + ({dy_off:.1}), col + ({dx_off:.1})) * ({w:.6});\n",
                dy_off = dy as f32 - 1.0,
                dx_off = dx as f32 - 1.0,
            ));
        }
    }
    let body = format!(
        "float acc = 0.0;\n{terms}return acc / ({divisor:.6});",
        divisor = filter.divisor
    );
    Kernel::builder("conv3x3")
        .input_matrix("img", image)
        .output_grid(ScalarType::U8, image.rows(), image.cols())
        .body(body)
        .build(cc)
}

/// CPU reference with the same clamp-to-edge borders and accumulation
/// order; the final value goes through the same pack-bias + eq. (2)
/// store semantics as the shader (`bias` must match the context's).
pub fn cpu_reference(
    rows: usize,
    cols: usize,
    image: &[u8],
    filter: &Filter3x3,
    bias: PackBias,
) -> Vec<u8> {
    let mut out = vec![0u8; rows * cols];
    let fetch = |r: i64, c: i64| -> f32 {
        let r = r.clamp(0, rows as i64 - 1) as usize;
        let c = c.clamp(0, cols as i64 - 1) as usize;
        image[r * cols + c] as f32
    };
    for r in 0..rows {
        for c in 0..cols {
            let mut acc = 0.0f32;
            for dy in 0..3 {
                for dx in 0..3 {
                    let w = filter.weights[dy * 3 + dx];
                    if w == 0.0 {
                        continue;
                    }
                    acc += fetch(r as i64 + dy as i64 - 1, c as i64 + dx as i64 - 1) * w;
                }
            }
            let v = acc / filter.divisor;
            out[r * cols + c] = codec::ubyte::mirror_pack(v, bias);
        }
    }
    out
}

/// Modelled ARM1176 workload for a `rows × cols` convolution (9 taps).
pub fn cpu_workload(rows: usize, cols: usize) -> CpuWorkload {
    let n = (rows * cols) as f64;
    CpuWorkload {
        fp_ops: 18.0 * n, // 9 multiply + 9 add
        loads: 9.0 * n,
        stores: n,
        iterations: 9.0 * n,
        cache_misses: 3.0 * n / 32.0, // byte elements, rows revisited
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    fn run_filter(rows: u32, cols: u32, filter: Filter3x3, seed: u64) {
        let image = data::random_u8((rows * cols) as usize, seed, 255);
        let mut cc = ComputeContext::new(64, 64).expect("context");
        let gm = cc.upload_matrix(rows, cols, &image).expect("upload");
        let k = build(&mut cc, &gm, &filter).expect("kernel");
        let gpu: Vec<u8> = cc.run_and_read(&k).expect("run");
        let cpu = cpu_reference(
            rows as usize,
            cols as usize,
            &image,
            &filter,
            PackBias::default(),
        );
        assert_eq!(gpu, cpu, "{filter:?}");
    }

    #[test]
    fn box_blur_matches_cpu() {
        run_filter(12, 17, Filter3x3::box_blur(), 61);
    }

    #[test]
    fn sharpen_matches_cpu() {
        run_filter(9, 9, Filter3x3::sharpen(), 62);
    }

    #[test]
    fn sobel_clamps_negatives_to_zero() {
        run_filter(8, 8, Filter3x3::sobel_x(), 63);
        // A flat image has zero gradient.
        let image = vec![100u8; 16];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gm = cc.upload_matrix(4, 4, &image).expect("upload");
        let k = build(&mut cc, &gm, &Filter3x3::sobel_x()).expect("kernel");
        let gpu: Vec<u8> = cc.run_and_read(&k).expect("run");
        assert!(gpu.iter().all(|&v| v == 0));
    }

    #[test]
    fn blur_preserves_constant_images() {
        let image = vec![77u8; 25];
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let gm = cc.upload_matrix(5, 5, &image).expect("upload");
        let k = build(&mut cc, &gm, &Filter3x3::box_blur()).expect("kernel");
        let gpu: Vec<u8> = cc.run_and_read(&k).expect("run");
        assert!(gpu.iter().all(|&v| v == 77), "{gpu:?}");
    }
}
