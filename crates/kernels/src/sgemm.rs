//! The paper's second benchmark (§V): `sgemm` — single-precision general
//! matrix multiply, `C ← α·A·B + β·C`, plus the integer configuration.

use gpes_core::{ComputeContext, ComputeError, GpuMatrix, Kernel, ScalarType};
use gpes_perf::CpuWorkload;

fn gemm_body(k_dim: u32, with_alpha_beta: bool) -> String {
    let tail = if with_alpha_beta {
        "return alpha * acc + beta * fetch_c_rc(row, col);"
    } else {
        "return acc;"
    };
    format!(
        "float acc = 0.0;\n\
         for (int k = 0; k < {k_dim}; k++) {{\n\
         \x20   acc += fetch_a_rc(row, float(k)) * fetch_b_rc(float(k), col);\n\
         }}\n\
         {tail}"
    )
}

/// Builds the `f32` sgemm kernel: `C ← α·A·B + β·C` with `A: m×k`,
/// `B: k×n`, `C: m×n`.
///
/// # Errors
///
/// `BadKernel` on dimension mismatches; build/compile errors.
pub fn build_f32(
    cc: &mut ComputeContext,
    a: &GpuMatrix<f32>,
    b: &GpuMatrix<f32>,
    c: &GpuMatrix<f32>,
    alpha: f32,
    beta: f32,
) -> Result<Kernel, ComputeError> {
    if a.cols() != b.rows() || a.rows() != c.rows() || b.cols() != c.cols() {
        return Err(ComputeError::BadKernel {
            message: format!(
                "sgemm dimension mismatch: A {}x{}, B {}x{}, C {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols(),
                c.rows(),
                c.cols()
            ),
        });
    }
    Kernel::builder("sgemm_f32")
        .input_matrix("a", a)
        .input_matrix("b", b)
        .input_matrix("c", c)
        .uniform_f32("alpha", alpha)
        .uniform_f32("beta", beta)
        .output_grid(ScalarType::F32, c.rows(), c.cols())
        .body(gemm_body(a.cols(), true))
        .build(cc)
}

/// Builds the integer gemm kernel: `C ← A·B` over `i32` (24-bit-exact
/// domain; α/β omitted to stay within it).
///
/// # Errors
///
/// `BadKernel` on dimension mismatches; build/compile errors.
pub fn build_i32(
    cc: &mut ComputeContext,
    a: &GpuMatrix<i32>,
    b: &GpuMatrix<i32>,
) -> Result<Kernel, ComputeError> {
    if a.cols() != b.rows() {
        return Err(ComputeError::BadKernel {
            message: format!(
                "gemm dimension mismatch: A {}x{}, B {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    Kernel::builder("gemm_i32")
        .input_matrix("a", a)
        .input_matrix("b", b)
        .output_grid(ScalarType::I32, a.rows(), b.cols())
        .body(gemm_body(a.cols(), false))
        .build(cc)
}

/// CPU reference for `f32` sgemm, accumulating in the same order as the
/// shader (k ascending) so results are bit-identical under the exact
/// float model.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
pub fn cpu_reference_f32(
    m: usize,
    k_dim: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &[f32],
    alpha: f32,
    beta: f32,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k_dim {
                acc += a[i * k_dim + p] * b[p * n + j];
            }
            out[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
    out
}

/// CPU reference for the integer configuration (`C = A·B`).
pub fn cpu_reference_i32(m: usize, k_dim: usize, n: usize, a: &[i32], b: &[i32]) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for p in 0..k_dim {
                acc += a[i * k_dim + p] as i64 * b[p * n + j] as i64;
            }
            out[i * n + j] = acc as i32;
        }
    }
    out
}

/// L1-resident block edge for the modelled cache-blocked CPU gemm:
/// three `32 × 32` f32 tiles occupy 12 KB of the ARM1176's 16 KB L1.
pub const CPU_GEMM_BLOCK: usize = 32;

/// Modelled ARM1176 workload for square `size × size` gemm, assuming a
/// **cache-blocked** loop nest (tiles of [`CPU_GEMM_BLOCK`]²).
///
/// Inner loop: 2 loads, a multiply-accumulate (2 ops), loop overhead.
/// Blocking bounds traffic at ~`2·n³/B` words; with 32-byte lines
/// (8 f32) that is `2·n³/(B·8)` misses. Matrices that fit L1 entirely
/// only pay one cold pass. Earlier revisions modelled a naive
/// column-walking loop (≈1.1 misses per iteration), which overcharged
/// the CPU ~3–5× at 1024² and inflated the E1 speedups far beyond the
/// paper's ~6.5× (see `EXPERIMENTS.md` §2).
pub fn cpu_workload(size: usize, float: bool) -> CpuWorkload {
    let n3 = (size * size * size) as f64;
    let ops = 2.0 * n3;
    let resident = 3 * size * size * 4 <= 16 * 1024;
    let cache_misses = if resident {
        // One cold pass over A, B and C.
        (3 * size * size) as f64 / 8.0
    } else {
        2.0 * n3 / (CPU_GEMM_BLOCK as f64 * 8.0)
    };
    // Blocking adds two outer loop levels; their overhead is n³/B² and
    // n³/B iterations of bookkeeping on top of the n³ inner trips.
    let block = CPU_GEMM_BLOCK as f64;
    let iterations = n3 * (1.0 + 1.0 / block + 1.0 / (block * block));
    CpuWorkload {
        int_ops: if float { 0.0 } else { ops },
        fp_ops: if float { ops } else { 0.0 },
        loads: 2.0 * n3,
        stores: (size * size) as f64,
        iterations,
        cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn f32_sgemm_matches_cpu_bit_exactly() {
        let (m, k, n) = (8usize, 8usize, 8usize);
        let a = data::random_f32(m * k, 11, 4.0);
        let b = data::random_f32(k * n, 12, 4.0);
        let c = data::random_f32(m * n, 13, 4.0);
        let (alpha, beta) = (1.5f32, -0.5f32);

        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload_matrix(m as u32, k as u32, &a).expect("a");
        let gb = cc.upload_matrix(k as u32, n as u32, &b).expect("b");
        let gc = cc.upload_matrix(m as u32, n as u32, &c).expect("c");
        let kernel = build_f32(&mut cc, &ga, &gb, &gc, alpha, beta).expect("kernel");
        let gpu = cc.run_f32(&kernel).expect("run");
        let cpu = cpu_reference_f32(m, k, n, &a, &b, &c, alpha, beta);
        assert_eq!(gpu, cpu, "same accumulation order must be bit-exact");
    }

    #[test]
    fn i32_gemm_matches_cpu() {
        let (m, k, n) = (6usize, 5usize, 7usize);
        // Keep products and sums within ±2^24.
        let a = data::random_i32(m * k, 21, 200);
        let b = data::random_i32(k * n, 22, 200);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload_matrix(m as u32, k as u32, &a).expect("a");
        let gb = cc.upload_matrix(k as u32, n as u32, &b).expect("b");
        let kernel = build_i32(&mut cc, &ga, &gb).expect("kernel");
        let gpu: Vec<i32> = cc.run_and_read(&kernel).expect("run");
        assert_eq!(gpu, cpu_reference_i32(m, k, n, &a, &b));
    }

    #[test]
    fn non_square_dimensions() {
        let (m, k, n) = (3usize, 9usize, 4usize);
        let a = data::random_f32(m * k, 31, 2.0);
        let b = data::random_f32(k * n, 32, 2.0);
        let c = vec![0.0f32; m * n];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload_matrix(m as u32, k as u32, &a).expect("a");
        let gb = cc.upload_matrix(k as u32, n as u32, &b).expect("b");
        let gc = cc.upload_matrix(m as u32, n as u32, &c).expect("c");
        let kernel = build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.0).expect("kernel");
        let gpu = cc.run_f32(&kernel).expect("run");
        assert_eq!(gpu, cpu_reference_f32(m, k, n, &a, &b, &c, 1.0, 0.0));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload_matrix(2, 3, &[0.0f32; 6]).expect("a");
        let gb = cc.upload_matrix(4, 2, &[0.0f32; 8]).expect("b"); // 3 != 4
        let gc = cc.upload_matrix(2, 2, &[0.0f32; 4]).expect("c");
        let err = build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.0).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn workload_counts_cube() {
        let w = cpu_workload(64, true);
        assert_eq!(w.fp_ops, 2.0 * 64.0f64.powi(3));
        assert_eq!(w.int_ops, 0.0);
        let w = cpu_workload(64, false);
        assert_eq!(w.int_ops, 2.0 * 64.0f64.powi(3));
    }

    #[test]
    fn workload_models_cache_blocking() {
        // Above L1 residency, blocking bounds miss traffic to
        // 2/(B·8) per inner iteration — far below the ~1.1 a naive
        // column-walking loop would pay.
        let large = cpu_workload(1024, true);
        let n3 = 1024.0f64.powi(3);
        let expected = 2.0 / (CPU_GEMM_BLOCK as f64 * 8.0);
        assert!((large.cache_misses / n3 - expected).abs() < 1e-12);
        assert!(large.cache_misses / n3 < 0.05);
        // L1-resident sizes only pay the cold pass.
        let small = cpu_workload(16, true);
        assert_eq!(small.cache_misses, 3.0 * 256.0 / 8.0);
        // Blocked loop bookkeeping slightly exceeds the n³ inner trips.
        assert!(large.iterations > n3 && large.iterations < 1.1 * n3);
    }
}
