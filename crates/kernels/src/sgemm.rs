//! The paper's second benchmark (§V): `sgemm` — single-precision general
//! matrix multiply, `C ← α·A·B + β·C`, plus the integer configuration.

use gpes_core::{ComputeContext, ComputeError, GpuMatrix, Kernel, ScalarType};
use gpes_perf::CpuWorkload;

fn gemm_body(k_dim: u32, with_alpha_beta: bool) -> String {
    let tail = if with_alpha_beta {
        "return alpha * acc + beta * fetch_c_rc(row, col);"
    } else {
        "return acc;"
    };
    format!(
        "float acc = 0.0;\n\
         for (int k = 0; k < {k_dim}; k++) {{\n\
         \x20   acc += fetch_a_rc(row, float(k)) * fetch_b_rc(float(k), col);\n\
         }}\n\
         {tail}"
    )
}

/// Builds the `f32` sgemm kernel: `C ← α·A·B + β·C` with `A: m×k`,
/// `B: k×n`, `C: m×n`.
///
/// # Errors
///
/// `BadKernel` on dimension mismatches; build/compile errors.
pub fn build_f32(
    cc: &mut ComputeContext,
    a: &GpuMatrix<f32>,
    b: &GpuMatrix<f32>,
    c: &GpuMatrix<f32>,
    alpha: f32,
    beta: f32,
) -> Result<Kernel, ComputeError> {
    if a.cols() != b.rows() || a.rows() != c.rows() || b.cols() != c.cols() {
        return Err(ComputeError::BadKernel {
            message: format!(
                "sgemm dimension mismatch: A {}x{}, B {}x{}, C {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols(),
                c.rows(),
                c.cols()
            ),
        });
    }
    Kernel::builder("sgemm_f32")
        .input_matrix("a", a)
        .input_matrix("b", b)
        .input_matrix("c", c)
        .uniform_f32("alpha", alpha)
        .uniform_f32("beta", beta)
        .output_grid(ScalarType::F32, c.rows(), c.cols())
        .body(gemm_body(a.cols(), true))
        .build(cc)
}

/// Builds the integer gemm kernel: `C ← A·B` over `i32` (24-bit-exact
/// domain; α/β omitted to stay within it).
///
/// # Errors
///
/// `BadKernel` on dimension mismatches; build/compile errors.
pub fn build_i32(
    cc: &mut ComputeContext,
    a: &GpuMatrix<i32>,
    b: &GpuMatrix<i32>,
) -> Result<Kernel, ComputeError> {
    if a.cols() != b.rows() {
        return Err(ComputeError::BadKernel {
            message: format!(
                "gemm dimension mismatch: A {}x{}, B {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    Kernel::builder("gemm_i32")
        .input_matrix("a", a)
        .input_matrix("b", b)
        .output_grid(ScalarType::I32, a.rows(), b.cols())
        .body(gemm_body(a.cols(), false))
        .build(cc)
}

/// CPU reference for `f32` sgemm, accumulating in the same order as the
/// shader (k ascending) so results are bit-identical under the exact
/// float model.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
pub fn cpu_reference_f32(
    m: usize,
    k_dim: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &[f32],
    alpha: f32,
    beta: f32,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k_dim {
                acc += a[i * k_dim + p] * b[p * n + j];
            }
            out[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
    out
}

/// CPU reference for the integer configuration (`C = A·B`).
pub fn cpu_reference_i32(m: usize, k_dim: usize, n: usize, a: &[i32], b: &[i32]) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for p in 0..k_dim {
                acc += a[i * k_dim + p] as i64 * b[p * n + j] as i64;
            }
            out[i * n + j] = acc as i32;
        }
    }
    out
}

/// Modelled ARM1176 workload for square `size × size` gemm.
///
/// Inner loop: 2 loads, a multiply-accumulate (2 ops), loop overhead.
/// `B` is walked column-wise → one miss per iteration once `size`
/// exceeds the 16 KB L1; `A` row-wise → 1 miss per 8 elements.
pub fn cpu_workload(size: usize, float: bool) -> CpuWorkload {
    let n3 = (size * size * size) as f64;
    let b_miss_rate = if size * 4 * 8 > 16 * 1024 { 1.0 } else { 0.0 };
    let ops = 2.0 * n3;
    CpuWorkload {
        int_ops: if float { 0.0 } else { ops },
        fp_ops: if float { ops } else { 0.0 },
        loads: 2.0 * n3,
        stores: (size * size) as f64,
        iterations: n3,
        cache_misses: n3 * (b_miss_rate + 1.0 / 8.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn f32_sgemm_matches_cpu_bit_exactly() {
        let (m, k, n) = (8usize, 8usize, 8usize);
        let a = data::random_f32(m * k, 11, 4.0);
        let b = data::random_f32(k * n, 12, 4.0);
        let c = data::random_f32(m * n, 13, 4.0);
        let (alpha, beta) = (1.5f32, -0.5f32);

        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload_matrix(m as u32, k as u32, &a).expect("a");
        let gb = cc.upload_matrix(k as u32, n as u32, &b).expect("b");
        let gc = cc.upload_matrix(m as u32, n as u32, &c).expect("c");
        let kernel = build_f32(&mut cc, &ga, &gb, &gc, alpha, beta).expect("kernel");
        let gpu = cc.run_f32(&kernel).expect("run");
        let cpu = cpu_reference_f32(m, k, n, &a, &b, &c, alpha, beta);
        assert_eq!(gpu, cpu, "same accumulation order must be bit-exact");
    }

    #[test]
    fn i32_gemm_matches_cpu() {
        let (m, k, n) = (6usize, 5usize, 7usize);
        // Keep products and sums within ±2^24.
        let a = data::random_i32(m * k, 21, 200);
        let b = data::random_i32(k * n, 22, 200);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload_matrix(m as u32, k as u32, &a).expect("a");
        let gb = cc.upload_matrix(k as u32, n as u32, &b).expect("b");
        let kernel = build_i32(&mut cc, &ga, &gb).expect("kernel");
        let gpu: Vec<i32> = cc.run_and_read(&kernel).expect("run");
        assert_eq!(gpu, cpu_reference_i32(m, k, n, &a, &b));
    }

    #[test]
    fn non_square_dimensions() {
        let (m, k, n) = (3usize, 9usize, 4usize);
        let a = data::random_f32(m * k, 31, 2.0);
        let b = data::random_f32(k * n, 32, 2.0);
        let c = vec![0.0f32; m * n];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload_matrix(m as u32, k as u32, &a).expect("a");
        let gb = cc.upload_matrix(k as u32, n as u32, &b).expect("b");
        let gc = cc.upload_matrix(m as u32, n as u32, &c).expect("c");
        let kernel = build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.0).expect("kernel");
        let gpu = cc.run_f32(&kernel).expect("run");
        assert_eq!(gpu, cpu_reference_f32(m, k, n, &a, &b, &c, 1.0, 0.0));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload_matrix(2, 3, &[0.0f32; 6]).expect("a");
        let gb = cc.upload_matrix(4, 2, &[0.0f32; 8]).expect("b"); // 3 != 4
        let gc = cc.upload_matrix(2, 2, &[0.0f32; 4]).expect("c");
        let err = build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.0).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn workload_counts_cube() {
        let w = cpu_workload(64, true);
        assert_eq!(w.fp_ops, 2.0 * 64.0f64.powi(3));
        assert_eq!(w.int_ops, 0.0);
        let w = cpu_workload(64, false);
        assert_eq!(w.int_ops, 2.0 * 64.0f64.powi(3));
        // Large sizes are B-miss dominated.
        let small = cpu_workload(16, true);
        let large = cpu_workload(1024, true);
        assert!(large.cache_misses / large.iterations > small.cache_misses / small.iterations);
    }
}
