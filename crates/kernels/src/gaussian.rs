//! Gaussian elimination (Rodinia `gaussian`-style): forward elimination
//! of `A·x = b` by chained per-column GPU passes, then a host-side back
//! substitution.
//!
//! Rodinia's CUDA version uses two kernels per elimination column — `Fan1`
//! computes the multiplier column, `Fan2` updates the trailing submatrix.
//! On the single-output fragment pipeline those are exactly two chained
//! passes over textures (the §III-8 split again), with the augmented
//! matrix `[A | b]` carried as one `n × (n+1)` texture.

use gpes_core::{
    ComputeContext, ComputeError, GpuArray, GpuMatrix, Kernel, Pass, Pipeline, ScalarType,
};
use gpes_glsl::Value;
use gpes_perf::CpuWorkload;

/// Builds `Fan1` for elimination column `k`: a column of multipliers
/// `m[i] = A[i][k] / A[k][k]` (zero outside `i > k`).
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build_fan1(
    cc: &mut ComputeContext,
    aug: &GpuMatrix<f32>,
    k: u32,
) -> Result<Kernel, ComputeError> {
    Kernel::builder("gaussian_fan1")
        .input_matrix("a", aug)
        .uniform_f32("kcol", k as f32)
        .output(ScalarType::F32, aug.rows() as usize)
        .body(
            "if (idx <= kcol) { return 0.0; }\n\
             return fetch_a_rc(idx, kcol) / fetch_a_rc(kcol, kcol);",
        )
        .build(cc)
}

/// Builds `Fan2` for elimination column `k`: subtracts `m[row] · pivot
/// row` from every row below the pivot.
///
/// # Errors
///
/// `BadKernel` when the multiplier column length differs from the matrix
/// height; build/compile errors from the framework.
pub fn build_fan2(
    cc: &mut ComputeContext,
    aug: &GpuMatrix<f32>,
    m: &GpuArray<f32>,
    k: u32,
) -> Result<Kernel, ComputeError> {
    if m.len() != aug.rows() as usize {
        return Err(ComputeError::BadKernel {
            message: format!(
                "multiplier column of {} does not match matrix height {}",
                m.len(),
                aug.rows()
            ),
        });
    }
    Kernel::builder("gaussian_fan2")
        .input_matrix("a", aug)
        .input("m", m)
        .uniform_f32("kcol", k as f32)
        .output_grid(ScalarType::F32, aug.rows(), aug.cols())
        .body(
            "float v = fetch_a_rc(row, col);\n\
             if (row <= kcol) { return v; }\n\
             return v - fetch_m(row) * fetch_a_rc(kcol, col);",
        )
        .build(cc)
}

/// Forward-eliminates the augmented system on the GPU and
/// back-substitutes on the host; returns `x`.
///
/// # Errors
///
/// `BadKernel` for non-square systems or a (near-)singular pivot;
/// upload/build/run errors from the framework.
pub fn solve_gpu(
    cc: &mut ComputeContext,
    n: usize,
    a: &[f32],
    b: &[f32],
) -> Result<Vec<f32>, ComputeError> {
    assert_eq!(a.len(), n * n, "A must be n x n");
    assert_eq!(b.len(), n, "b must be length n");
    let mut aug_data = Vec::with_capacity(n * (n + 1));
    for r in 0..n {
        aug_data.extend_from_slice(&a[r * n..(r + 1) * n]);
        aug_data.push(b[r]);
    }
    let aug = cc.upload_matrix(n as u32, n as u32 + 1, &aug_data)?;
    // Both Fan kernels compile once; `kcol` advances as a per-iteration
    // uniform and the augmented matrix ping-pongs through the retained
    // pipeline (Fan1's multiplier column is reused in place).
    let f1 = build_fan1(cc, &aug, 0)?;
    let m0 = cc.upload(&vec![0.0f32; n])?;
    let f2 = build_fan2(cc, &aug, &m0, 0)?;
    let pipeline = Pipeline::builder("gaussian")
        .source_matrix("aug", &aug)
        .pass(
            Pass::new(&f1)
                .read("a", "aug")
                .write_len("m", n)
                .uniform_per_iter("kcol", |k| Value::Float(k as f32)),
        )
        .pass(
            Pass::new(&f2)
                .read("a", "aug")
                .read("m", "m")
                .write_grid("aug", n as u32, n as u32 + 1)
                .uniform_per_iter("kcol", |k| Value::Float(k as f32)),
        )
        .iterations(n - 1)
        .build()?;
    let eliminated = pipeline.run_and_read::<f32>(cc, "aug")?;
    cc.recycle_array(m0);
    cc.recycle_matrix(aug);
    back_substitute(n, &eliminated)
}

/// Host-side back substitution over the eliminated augmented matrix.
///
/// # Errors
///
/// `BadKernel` when a pivot is (near-)zero — singular system.
pub fn back_substitute(n: usize, aug: &[f32]) -> Result<Vec<f32>, ComputeError> {
    let cols = n + 1;
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut acc = aug[i * cols + n];
        for j in i + 1..n {
            acc -= aug[i * cols + j] * x[j];
        }
        let pivot = aug[i * cols + i];
        if pivot.abs() < 1.0e-6 {
            return Err(ComputeError::BadKernel {
                message: format!("singular system: pivot {pivot:e} at row {i}"),
            });
        }
        x[i] = acc / pivot;
    }
    Ok(x)
}

/// CPU reference: forward elimination with the same operation order as
/// the two GPU kernels, then the same back substitution.
///
/// # Errors
///
/// `BadKernel` for singular systems.
pub fn cpu_reference(n: usize, a: &[f32], b: &[f32]) -> Result<Vec<f32>, ComputeError> {
    let cols = n + 1;
    let mut aug = Vec::with_capacity(n * cols);
    for r in 0..n {
        aug.extend_from_slice(&a[r * n..(r + 1) * n]);
        aug.push(b[r]);
    }
    for k in 0..n - 1 {
        let mut m = vec![0.0f32; n];
        for (i, slot) in m.iter_mut().enumerate().skip(k + 1) {
            *slot = aug[i * cols + k] / aug[k * cols + k];
        }
        for i in k + 1..n {
            for j in 0..cols {
                aug[i * cols + j] -= m[i] * aug[k * cols + j];
            }
        }
    }
    back_substitute(n, &aug)
}

/// Modelled ARM1176 workload for forward elimination + back substitution.
pub fn cpu_workload(n: usize) -> CpuWorkload {
    let nf = n as f64;
    let elim = 2.0 * nf * nf * nf / 3.0;
    CpuWorkload {
        fp_ops: elim + nf * nf,
        loads: elim,
        stores: elim / 2.0,
        iterations: elim / 2.0,
        cache_misses: nf * nf / 8.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    fn well_conditioned_system(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        // Diagonally dominant → no pivoting needed (Rodinia's gaussian
        // makes the same assumption).
        let mut a = data::random_f32(n * n, seed, 1.0);
        for i in 0..n {
            a[i * n + i] += n as f32 + 1.0;
        }
        let b = data::random_f32(n, seed + 7, 10.0);
        (a, b)
    }

    #[test]
    fn gpu_elimination_matches_cpu_bitwise() {
        let n = 8;
        let (a, b) = well_conditioned_system(n, 121);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let gpu = solve_gpu(&mut cc, n, &a, &b).expect("gpu");
        let cpu = cpu_reference(n, &a, &b).expect("cpu");
        assert_eq!(gpu, cpu);
        // Two passes per eliminated column, two programs in total.
        assert_eq!(cc.pass_log().len(), 2 * (n - 1));
        assert_eq!(cc.stats().programs_linked, 2);
    }

    #[test]
    fn solution_actually_solves_the_system() {
        let n = 6;
        let (a, b) = well_conditioned_system(n, 122);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let x = solve_gpu(&mut cc, n, &a, &b).expect("gpu");
        for i in 0..n {
            let ax: f32 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!(
                (ax - b[i]).abs() < 1e-2 * b[i].abs().max(1.0),
                "row {i}: A·x = {ax}, b = {}",
                b[i]
            );
        }
    }

    #[test]
    fn identity_system_returns_rhs() {
        let n = 5;
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b = vec![3.0f32, -1.0, 4.0, -1.5, 9.0];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let x = solve_gpu(&mut cc, n, &a, &b).expect("gpu");
        assert_eq!(x, b);
    }

    #[test]
    fn singular_system_reports_pivot() {
        let n = 3;
        let a = vec![1.0f32, 2.0, 3.0, 2.0, 4.0, 6.0, 1.0, 0.0, 1.0]; // row2 = 2·row1
        let b = vec![1.0f32, 2.0, 3.0];
        let err = cpu_reference(n, &a, &b).unwrap_err();
        assert!(err.to_string().contains("singular"));
    }
}
