//! Nearest-neighbour distance computation (Rodinia `nn`-style): the
//! distance from every (lat, lng) record to a query point. The paper
//! argues (§III-8) that Rodinia's kernels fit the single-output model —
//! this and [`crate::hotspot`] back that claim with runnable evidence.

use gpes_core::{ComputeContext, ComputeError, GpuArray, Kernel, ScalarType};
use gpes_perf::CpuWorkload;

/// Builds the distance kernel.
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build(
    cc: &mut ComputeContext,
    lat: &GpuArray<f32>,
    lng: &GpuArray<f32>,
    query: [f32; 2],
) -> Result<Kernel, ComputeError> {
    Kernel::builder("nn_distance")
        .input("lat", lat)
        .input("lng", lng)
        .uniform_vec2("query", query)
        .output(ScalarType::F32, lat.len())
        .body(
            "float dx = fetch_lat(idx) - query.x;\n\
             float dy = fetch_lng(idx) - query.y;\n\
             return sqrt(dx * dx + dy * dy);",
        )
        .build(cc)
}

/// CPU reference (same op order).
pub fn cpu_reference(lat: &[f32], lng: &[f32], query: [f32; 2]) -> Vec<f32> {
    lat.iter()
        .zip(lng)
        .map(|(&la, &ln)| {
            let dx = la - query[0];
            let dy = ln - query[1];
            (dx * dx + dy * dy).sqrt()
        })
        .collect()
}

/// Finds the index of the closest record on the CPU (the host-side
/// argmin over GPU-computed distances, as the Rodinia benchmark does).
pub fn argmin(distances: &[f32]) -> Option<usize> {
    distances
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
}

/// Modelled ARM1176 workload.
pub fn cpu_workload(n: usize) -> CpuWorkload {
    let n = n as f64;
    CpuWorkload {
        fp_ops: 6.0 * n, // 2 subs, 2 muls, 1 add, 1 sqrt (weighted as one op)
        loads: 2.0 * n,
        stores: n,
        iterations: n,
        cache_misses: 3.0 * n / 8.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn distances_match_cpu() {
        let n = 150;
        let lat = data::random_f32(n, 71, 90.0);
        let lng = data::random_f32(n, 72, 180.0);
        let query = [12.5f32, -45.0];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let glat = cc.upload(&lat).expect("lat");
        let glng = cc.upload(&lng).expect("lng");
        let k = build(&mut cc, &glat, &glng, query).expect("kernel");
        let gpu = cc.run_f32(&k).expect("run");
        let cpu = cpu_reference(&lat, &lng, query);
        assert_eq!(gpu, cpu);
    }

    #[test]
    fn nearest_record_found() {
        let lat = vec![10.0f32, 20.0, 30.0];
        let lng = vec![10.0f32, 20.0, 30.0];
        let mut cc = ComputeContext::new(8, 8).expect("context");
        let glat = cc.upload(&lat).expect("lat");
        let glng = cc.upload(&lng).expect("lng");
        let k = build(&mut cc, &glat, &glng, [21.0, 19.0]).expect("kernel");
        let gpu = cc.run_f32(&k).expect("run");
        assert_eq!(argmin(&gpu), Some(1));
    }

    #[test]
    fn argmin_handles_empty_and_ties() {
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[1.0, 0.5, 0.5]), Some(1)); // first of the tie
    }
}
