//! Deterministic pseudo-random workload generation ("random-value
//! elements", §V) with seeds fixed so every run and test is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform `f32` values in `[-range, range]`.
pub fn random_f32(n: usize, seed: u64, range: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-range..=range)).collect()
}

/// Uniform `u32` values in `[0, max]` (keep `max ≤ 2²³` so sums stay in
/// the 24-bit-exact window of §IV-C).
pub fn random_u32(n: usize, seed: u64, max: u32) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..=max)).collect()
}

/// Uniform `i32` values in `[-max, max]`.
pub fn random_i32(n: usize, seed: u64, max: i32) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-max..=max)).collect()
}

/// Uniform `u8` values in `[0, max]`.
pub fn random_u8(n: usize, seed: u64, max: u8) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..=max)).collect()
}

/// Uniform `i16` values in `[-max, max]` (quantized weights; keep `max`
/// small enough that accumulators stay in the 24-bit-exact window).
pub fn random_i16(n: usize, seed: u64, max: i16) -> Vec<i16> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-max..=max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_f32(8, 7, 1.0), random_f32(8, 7, 1.0));
        assert_ne!(random_f32(8, 7, 1.0), random_f32(8, 8, 1.0));
        assert_eq!(random_u32(5, 1, 100), random_u32(5, 1, 100));
    }

    #[test]
    fn ranges_respected() {
        for v in random_f32(1000, 3, 2.5) {
            assert!((-2.5..=2.5).contains(&v));
        }
        for v in random_u32(1000, 3, 999) {
            assert!(v <= 999);
        }
        for v in random_i32(1000, 3, 50) {
            assert!((-50..=50).contains(&v));
        }
        for v in random_u8(1000, 3, 100) {
            assert!(v <= 100);
        }
    }
}
