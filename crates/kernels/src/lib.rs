//! # gpes-kernels — benchmark workloads for the DATE 2016 reproduction
//!
//! The paper's two evaluation benchmarks plus a set of companions that
//! exercise every part of the framework:
//!
//! | module | workload | role |
//! |--------|----------|------|
//! | [`sum`] | element-wise array addition (§V benchmark 1, all §IV types) | E1 |
//! | [`sgemm`] | `C ← α·A·B + β·C` + integer gemm (§V benchmark 2) | E1 |
//! | [`saxpy`] | `y ← α·x + y` | extra BLAS-1 |
//! | [`reduce`] | multi-pass sum/max reduction | render-to-texture chains |
//! | [`conv3x3`] | `u8` image filters | the native-byte path |
//! | [`nn`] | nearest-neighbour distances | Rodinia-style (§III-8 claim) |
//! | [`hotspot`] | thermal stencil step | Rodinia-style (§III-8 claim) |
//! | [`pathfinder`] | dynamic-programming grid traversal | Rodinia-style, chained passes |
//! | [`srad`] | anisotropic diffusion, two-kernel split | Rodinia-style, §III-8 split |
//! | [`kmeans`] | k-means assignment (argmin) | Rodinia-style, `u8` output |
//! | [`gaussian`] | Gaussian elimination (Fan1/Fan2) | Rodinia-style, chained 2-D passes |
//! | [`backprop`] | MLP layer forward pass | Rodinia-style + paper ref. 17 |
//! | [`transpose`] | matrix transpose | 2-D addressing validation |
//! | [`cnn`] | quantized CNN inference (u8/i16 end-to-end) | §IV codecs as tensor formats |
//!
//! Every module pairs its GPU kernel with a CPU reference that uses the
//! **same operation order**, so `f32` results are bit-identical under the
//! simulator's exact float model, and with a [`gpes_perf::CpuWorkload`]
//! describing the modelled ARM1176 cost.

#![warn(missing_docs)]

pub mod backprop;
pub mod cnn;
pub mod conv3x3;
pub mod data;
pub mod fft;
pub mod gaussian;
pub mod hotspot;
pub mod kmeans;
pub mod nn;
pub mod pathfinder;
pub mod reduce;
pub mod saxpy;
pub mod sgemm;
pub mod srad;
pub mod sum;
pub mod transpose;
