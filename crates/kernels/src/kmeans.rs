//! k-means assignment step (Rodinia `kmeans`-style).
//!
//! For every 2-D point, find the nearest of `K` centroids (squared
//! Euclidean distance) and output its index. The centroids live in a
//! small `K × 2` matrix texture; the loop over `K` is emitted with a
//! constant bound, so the kernel stays inside the GLSL ES Appendix A
//! profile (a real low-end driver unrolls it).
//!
//! Outputs are small non-negative integers — the one §IV case where the
//! `u8` codec is the natural fit.

use gpes_core::{ComputeContext, ComputeError, GpuMatrix, Kernel, ScalarType};
use gpes_perf::CpuWorkload;

/// Builds the assignment kernel for `k` centroids over `points`
/// (`n × 2` row-major: x then y per point).
///
/// # Errors
///
/// `BadKernel` when shapes disagree or `k` exceeds 255 (the `u8` output
/// range); build/compile errors from the framework.
pub fn build_assign(
    cc: &mut ComputeContext,
    points: &GpuMatrix<f32>,
    centroids: &GpuMatrix<f32>,
) -> Result<Kernel, ComputeError> {
    if points.cols() != 2 || centroids.cols() != 2 {
        return Err(ComputeError::BadKernel {
            message: "points and centroids must be n x 2 matrices".into(),
        });
    }
    let k = centroids.rows();
    if k == 0 || k > 255 {
        return Err(ComputeError::BadKernel {
            message: format!("centroid count {k} outside 1..=255 (u8 output)"),
        });
    }
    let body = format!(
        "float px = fetch_p_rc(idx, 0.0);\n\
         float py = fetch_p_rc(idx, 1.0);\n\
         float best_d = 3.4028234e38;\n\
         float best_i = 0.0;\n\
         for (float c = 0.0; c < {k}.0; c += 1.0) {{\n\
             float dx = px - fetch_cen_rc(c, 0.0);\n\
             float dy = py - fetch_cen_rc(c, 1.0);\n\
             float d = dx * dx + dy * dy;\n\
             if (d < best_d) {{ best_d = d; best_i = c; }}\n\
         }}\n\
         return best_i;"
    );
    Kernel::builder("kmeans_assign")
        .input_matrix("p", points)
        .input_matrix("cen", centroids)
        .output(ScalarType::U8, points.rows() as usize)
        .body(body)
        .build(cc)
}

/// Runs one assignment step on the GPU; returns per-point cluster ids.
///
/// The assignment shader depends only on `K` (the Appendix A constant
/// loop bound), so a Lloyd iteration calling this repeatedly compiles
/// exactly one program — later calls hit the context's program cache and
/// merely rebind the fresh centroid texture.
///
/// # Errors
///
/// Upload/build/run errors from the framework.
pub fn run_gpu(
    cc: &mut ComputeContext,
    points: &[(f32, f32)],
    centroids: &[(f32, f32)],
) -> Result<Vec<u8>, ComputeError> {
    let flat_p: Vec<f32> = points.iter().flat_map(|&(x, y)| [x, y]).collect();
    let flat_c: Vec<f32> = centroids.iter().flat_map(|&(x, y)| [x, y]).collect();
    let gp = cc.upload_matrix(points.len() as u32, 2, &flat_p)?;
    let gc = cc.upload_matrix(centroids.len() as u32, 2, &flat_c)?;
    let kernel = build_assign(cc, &gp, &gc)?;
    let out = cc.run_and_read(&kernel)?;
    cc.recycle_matrix(gp);
    cc.recycle_matrix(gc);
    Ok(out)
}

/// CPU reference with identical distance formula and tie-breaking
/// (strictly-closer wins, so the lowest index keeps ties).
pub fn cpu_reference(points: &[(f32, f32)], centroids: &[(f32, f32)]) -> Vec<u8> {
    points
        .iter()
        .map(|&(px, py)| {
            let mut best_d = f32::MAX;
            let mut best_i = 0u8;
            for (i, &(cx, cy)) in centroids.iter().enumerate() {
                let dx = px - cx;
                let dy = py - cy;
                let d = dx * dx + dy * dy;
                if d < best_d {
                    best_d = d;
                    best_i = i as u8;
                }
            }
            best_i
        })
        .collect()
}

/// Host-side centroid update (the reduction half of k-means runs on the
/// CPU, as the paper's single-output model favours): mean of each
/// cluster, keeping the previous centroid for empty clusters.
pub fn update_centroids(
    points: &[(f32, f32)],
    assignment: &[u8],
    centroids: &[(f32, f32)],
) -> Vec<(f32, f32)> {
    let mut sums = vec![(0.0f64, 0.0f64, 0u32); centroids.len()];
    for (&(x, y), &a) in points.iter().zip(assignment) {
        let slot = &mut sums[a as usize];
        slot.0 += x as f64;
        slot.1 += y as f64;
        slot.2 += 1;
    }
    sums.iter()
        .zip(centroids)
        .map(|(&(sx, sy, n), &old)| {
            if n == 0 {
                old
            } else {
                ((sx / n as f64) as f32, (sy / n as f64) as f32)
            }
        })
        .collect()
}

/// Modelled ARM1176 workload for one assignment step.
pub fn cpu_workload(n: usize, k: usize) -> CpuWorkload {
    let nk = (n * k) as f64;
    CpuWorkload {
        fp_ops: 6.0 * nk,
        loads: 2.0 * n as f64 + 2.0 * nk,
        stores: n as f64,
        iterations: nk,
        cache_misses: n as f64 / 16.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    fn clustered_points(n: usize, seed: u64) -> Vec<(f32, f32)> {
        let xs = data::random_f32(n, seed, 10.0);
        let ys = data::random_f32(n, seed + 1, 10.0);
        xs.into_iter()
            .zip(ys)
            .enumerate()
            .map(|(i, (x, y))| {
                // Three loose clusters around (0,0), (50,0), (0,50).
                match i % 3 {
                    0 => (x, y),
                    1 => (x + 50.0, y),
                    _ => (x, y + 50.0),
                }
            })
            .collect()
    }

    #[test]
    fn assignment_matches_cpu() {
        let points = clustered_points(200, 111);
        let centroids = vec![(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (25.0, 25.0)];
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let gpu = run_gpu(&mut cc, &points, &centroids).expect("run");
        assert_eq!(gpu, cpu_reference(&points, &centroids));
    }

    #[test]
    fn obvious_clusters_assign_correctly() {
        let points = vec![(0.1, 0.2), (49.0, 1.0), (1.0, 52.0)];
        let centroids = vec![(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gpu = run_gpu(&mut cc, &points, &centroids).expect("run");
        assert_eq!(gpu, vec![0, 1, 2]);
    }

    #[test]
    fn full_lloyd_iteration_converges_on_gpu_assignments() {
        let points = clustered_points(120, 113);
        let mut centroids = vec![(10.0, 10.0), (40.0, 10.0), (10.0, 40.0)];
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let mut last_assignment = Vec::new();
        for _ in 0..10 {
            let assignment = run_gpu(&mut cc, &points, &centroids).expect("run");
            if assignment == last_assignment {
                break;
            }
            centroids = update_centroids(&points, &assignment, &centroids);
            last_assignment = assignment;
        }
        // Converged state: the GPU assignment equals the CPU assignment
        // of the final centroids, and every cluster is non-empty.
        assert_eq!(last_assignment, cpu_reference(&points, &centroids));
        for c in 0..centroids.len() as u8 {
            assert!(last_assignment.contains(&c), "cluster {c} empty");
        }
        // The assignment shader depends only on K: the whole Lloyd loop
        // compiles one program, and point/centroid uploads recycle
        // through the texture pool from the second step on.
        assert_eq!(cc.stats().programs_linked, 1);
        assert!(cc.stats().program_cache_hits >= 1);
        assert!(cc.stats().texture_pool_hits >= 2);
    }

    #[test]
    fn tie_break_prefers_lowest_index() {
        let points = vec![(5.0, 0.0)];
        let centroids = vec![(0.0, 0.0), (10.0, 0.0)];
        assert_eq!(cpu_reference(&points, &centroids), vec![0]);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        assert_eq!(run_gpu(&mut cc, &points, &centroids).expect("run"), vec![0]);
    }

    #[test]
    fn shape_validation() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let bad = cc.upload_matrix(3, 3, &[0.0f32; 9]).expect("m");
        let good = cc.upload_matrix(3, 2, &[0.0f32; 6]).expect("m");
        assert!(build_assign(&mut cc, &bad, &good).is_err());
        assert!(build_assign(&mut cc, &good, &bad).is_err());
    }

    #[test]
    fn empty_cluster_keeps_its_centroid() {
        let points = vec![(0.0, 0.0), (1.0, 1.0)];
        let centroids = vec![(0.5, 0.5), (100.0, 100.0)];
        let assignment = cpu_reference(&points, &centroids);
        let updated = update_centroids(&points, &assignment, &centroids);
        assert_eq!(updated[1], (100.0, 100.0));
    }
}
