//! The paper's first benchmark (§V): `sum` — element-wise addition of two
//! arrays, "a simple streaming operation", in the integer and floating
//! point configurations.

use gpes_core::{ComputeContext, ComputeError, GpuArray, Kernel, ScalarType};
use gpes_perf::CpuWorkload;

/// Builds the `sum` kernel for `f32` elements.
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build_f32(
    cc: &mut ComputeContext,
    a: &GpuArray<f32>,
    b: &GpuArray<f32>,
) -> Result<Kernel, ComputeError> {
    Kernel::builder("sum_f32")
        .input("a", a)
        .input("b", b)
        .output(ScalarType::F32, a.len())
        .body("return fetch_a(idx) + fetch_b(idx);")
        .build(cc)
}

/// Builds the `sum` kernel for `u32` elements (24-bit-exact domain).
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build_u32(
    cc: &mut ComputeContext,
    a: &GpuArray<u32>,
    b: &GpuArray<u32>,
) -> Result<Kernel, ComputeError> {
    Kernel::builder("sum_u32")
        .input("a", a)
        .input("b", b)
        .output(ScalarType::U32, a.len())
        .body("return fetch_a(idx) + fetch_b(idx);")
        .build(cc)
}

/// Builds the `sum` kernel for `i32` elements.
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build_i32(
    cc: &mut ComputeContext,
    a: &GpuArray<i32>,
    b: &GpuArray<i32>,
) -> Result<Kernel, ComputeError> {
    Kernel::builder("sum_i32")
        .input("a", a)
        .input("b", b)
        .output(ScalarType::I32, a.len())
        .body("return fetch_a(idx) + fetch_b(idx);")
        .build(cc)
}

/// Builds the `sum` kernel for `u8` elements (the "native byte" case —
/// no packing arithmetic beyond M/M⁻¹).
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build_u8(
    cc: &mut ComputeContext,
    a: &GpuArray<u8>,
    b: &GpuArray<u8>,
) -> Result<Kernel, ComputeError> {
    Kernel::builder("sum_u8")
        .input("a", a)
        .input("b", b)
        .output(ScalarType::U8, a.len())
        .body("return fetch_a(idx) + fetch_b(idx);")
        .build(cc)
}

/// CPU reference for any addable element type.
pub fn cpu_reference<T>(a: &[T], b: &[T]) -> Vec<T>
where
    T: Copy + std::ops::Add<Output = T>,
{
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Modelled ARM1176 workload for integer `sum` over `n` elements
/// (2 loads + add + store per element; 4-byte elements, 32-byte lines →
/// 3 streams × n/8 misses).
pub fn cpu_workload_int(n: usize) -> CpuWorkload {
    let n = n as f64;
    CpuWorkload {
        int_ops: n,
        fp_ops: 0.0,
        loads: 2.0 * n,
        stores: n,
        iterations: n,
        cache_misses: 3.0 * n / 8.0,
    }
}

/// Modelled ARM1176 workload for floating-point `sum`.
pub fn cpu_workload_f32(n: usize) -> CpuWorkload {
    CpuWorkload {
        int_ops: 0.0,
        fp_ops: n as f64,
        ..cpu_workload_int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn f32_gpu_matches_cpu_exactly() {
        let n = 300;
        let a = data::random_f32(n, 1, 1000.0);
        let b = data::random_f32(n, 2, 1000.0);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let ga = cc.upload(&a).expect("a");
        let gb = cc.upload(&b).expect("b");
        let k = build_f32(&mut cc, &ga, &gb).expect("kernel");
        let gpu = cc.run_f32(&k).expect("run");
        assert_eq!(gpu, cpu_reference(&a, &b));
    }

    #[test]
    fn u32_gpu_matches_cpu_exactly() {
        let n = 257;
        let a = data::random_u32(n, 3, 1 << 22);
        let b = data::random_u32(n, 4, 1 << 22);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let ga = cc.upload(&a).expect("a");
        let gb = cc.upload(&b).expect("b");
        let k = build_u32(&mut cc, &ga, &gb).expect("kernel");
        let gpu: Vec<u32> = cc.run_and_read(&k).expect("run");
        assert_eq!(gpu, cpu_reference(&a, &b));
    }

    #[test]
    fn i32_gpu_matches_cpu_with_negatives() {
        let n = 128;
        let a = data::random_i32(n, 5, 1 << 22);
        let b = data::random_i32(n, 6, 1 << 22);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload(&a).expect("a");
        let gb = cc.upload(&b).expect("b");
        let k = build_i32(&mut cc, &ga, &gb).expect("kernel");
        let gpu: Vec<i32> = cc.run_and_read(&k).expect("run");
        assert_eq!(gpu, cpu_reference(&a, &b));
    }

    #[test]
    fn u8_gpu_matches_cpu() {
        let n = 64;
        let a = data::random_u8(n, 7, 120);
        let b = data::random_u8(n, 8, 120);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload(&a).expect("a");
        let gb = cc.upload(&b).expect("b");
        let k = build_u8(&mut cc, &ga, &gb).expect("kernel");
        let gpu: Vec<u8> = cc.run_and_read(&k).expect("run");
        assert_eq!(gpu, cpu_reference(&a, &b));
    }

    #[test]
    fn workloads_reflect_int_vs_fp() {
        let int = cpu_workload_int(1000);
        let fp = cpu_workload_f32(1000);
        assert_eq!(int.int_ops, 1000.0);
        assert_eq!(int.fp_ops, 0.0);
        assert_eq!(fp.fp_ops, 1000.0);
        assert_eq!(fp.loads, int.loads);
    }
}
