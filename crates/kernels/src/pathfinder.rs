//! Dynamic-programming grid traversal (Rodinia `pathfinder`-style).
//!
//! Finds, for every column, the cheapest path cost from the top row of a
//! cost grid to the bottom, moving one row per step to the same column or
//! a horizontal neighbour:
//!
//! `dp[j] ← wall[r][j] + min(dp'[j−1], dp'[j], dp'[j+1])`
//!
//! Each DP row is one full-screen pass; rows chain through
//! render-to-texture, backing the paper's §III-8 claim that Rodinia-style
//! kernels fit the single-output fragment model.

use gpes_core::{
    ComputeContext, ComputeError, GpuArray, GpuMatrix, Kernel, Pass, Pipeline, ScalarType,
};
use gpes_glsl::Value;
use gpes_perf::CpuWorkload;

/// Builds the one-row DP step kernel: reads the previous row's costs
/// (`dp`) and the wall matrix, selected by the `row_idx` uniform.
///
/// # Errors
///
/// `BadKernel` when the dp length does not match the wall width;
/// build/compile errors from the framework.
pub fn build_step(
    cc: &mut ComputeContext,
    wall: &GpuMatrix<f32>,
    dp: &GpuArray<f32>,
    row_idx: u32,
) -> Result<Kernel, ComputeError> {
    if dp.len() != wall.cols() as usize {
        return Err(ComputeError::BadKernel {
            message: format!(
                "dp row of {} elements does not match wall width {}",
                dp.len(),
                wall.cols()
            ),
        });
    }
    Kernel::builder("pathfinder_step")
        .input_matrix("wall", wall)
        .input("dp", dp)
        .uniform_f32("row_idx", row_idx as f32)
        .uniform_f32("last_col", wall.cols() as f32 - 1.0)
        .output(ScalarType::F32, dp.len())
        .body(
            "float left = fetch_dp(max(idx - 1.0, 0.0));\n\
             float mid = fetch_dp(idx);\n\
             float right = fetch_dp(min(idx + 1.0, last_col));\n\
             float best = min(mid, min(left, right));\n\
             return fetch_wall_rc(row_idx, idx) + best;",
        )
        .build(cc)
}

/// Runs the full traversal on the GPU: row 0 seeds the DP vector, then
/// one pass per remaining row.
///
/// One compiled kernel serves every row: the wall matrix stays bound as
/// the kernel's build-time default, the DP vector ping-pongs through the
/// retained [`Pipeline`], and `row_idx` advances as a per-iteration
/// uniform — no compiles, no fresh GL objects in the loop.
///
/// # Errors
///
/// Upload/build/run errors from the framework.
pub fn run_gpu(
    cc: &mut ComputeContext,
    rows: usize,
    cols: usize,
    wall: &[f32],
) -> Result<Vec<f32>, ComputeError> {
    assert_eq!(wall.len(), rows * cols, "wall must be rows x cols");
    let gwall = cc.upload_matrix(rows as u32, cols as u32, wall)?;
    let dp = cc.upload(&wall[..cols])?;
    let kernel = build_step(cc, &gwall, &dp, 1)?;
    let pipeline = Pipeline::builder("pathfinder")
        .source("dp", &dp)
        .pass(
            Pass::new(&kernel)
                .read("dp", "dp")
                .write_len("dp", cols)
                .uniform_per_iter("row_idx", |step| Value::Float((step + 1) as f32)),
        )
        .iterations(rows - 1)
        .build()?;
    let out = pipeline.run_and_read::<f32>(cc, "dp")?;
    cc.recycle_array(dp);
    cc.recycle_matrix(gwall);
    Ok(out)
}

/// CPU reference with identical neighbour clamping and operation order.
pub fn cpu_reference(rows: usize, cols: usize, wall: &[f32]) -> Vec<f32> {
    let mut dp: Vec<f32> = wall[..cols].to_vec();
    for r in 1..rows {
        let prev = dp.clone();
        for j in 0..cols {
            let left = prev[j.saturating_sub(1)];
            let mid = prev[j];
            let right = prev[(j + 1).min(cols - 1)];
            let best = mid.min(left.min(right));
            dp[j] = wall[r * cols + j] + best;
        }
    }
    dp
}

/// Modelled ARM1176 workload for the full traversal.
pub fn cpu_workload(rows: usize, cols: usize) -> CpuWorkload {
    let n = ((rows - 1) * cols) as f64;
    CpuWorkload {
        fp_ops: 4.0 * n, // three mins + one add
        loads: 4.0 * n,
        stores: n,
        iterations: n,
        cache_misses: n / 16.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn traversal_matches_cpu() {
        let (rows, cols) = (8usize, 13usize);
        let wall: Vec<f32> = data::random_f32(rows * cols, 91, 10.0)
            .into_iter()
            .map(f32::abs)
            .collect();
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let gpu = run_gpu(&mut cc, rows, cols, &wall).expect("run");
        let cpu = cpu_reference(rows, cols, &wall);
        assert_eq!(gpu, cpu);
        // rows − 1 chained passes.
        assert_eq!(cc.pass_log().len(), rows - 1);
        // …but a single compiled program for the whole traversal.
        assert_eq!(cc.stats().programs_linked, 1);
    }

    #[test]
    fn single_row_is_identity() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let wall = vec![3.0f32, 1.0, 4.0, 1.0, 5.0];
        let out = run_gpu(&mut cc, 1, 5, &wall).expect("run");
        assert_eq!(out, wall);
    }

    #[test]
    fn straight_column_of_zeros_is_free() {
        // A free column through an expensive grid: the path cost at that
        // column stays 0 and neighbours can reach it.
        let (rows, cols) = (6usize, 5usize);
        let mut wall = vec![9.0f32; rows * cols];
        for r in 0..rows {
            wall[r * cols + 2] = 0.0;
        }
        let cpu = cpu_reference(rows, cols, &wall);
        assert_eq!(cpu[2], 0.0);
        assert_eq!(cpu[1], 9.0); // one step off the free column
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gpu = run_gpu(&mut cc, rows, cols, &wall).expect("run");
        assert_eq!(gpu, cpu);
    }

    #[test]
    fn mismatched_dp_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let wall = cc.upload_matrix(2, 4, &[0.0f32; 8]).expect("wall");
        let dp = cc.upload(&[0.0f32; 3]).expect("dp");
        assert!(build_step(&mut cc, &wall, &dp, 1).is_err());
    }
}
