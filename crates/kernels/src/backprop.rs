//! Neural-network layer forward pass (Rodinia `backprop`-style, and the
//! paper's reference 17: "Deep Learning on the Raspberry Pi").
//!
//! One fully-connected layer: `out[j] = σ(Σᵢ in[i]·W[i][j] + bias[j])`
//! with the logistic sigmoid. The reduction over the input dimension
//! runs as a constant-bound loop inside the fragment (Appendix A
//! conformant), one output neuron per fragment.

use gpes_core::{ComputeContext, ComputeError, GpuArray, GpuMatrix, Kernel, ScalarType};
use gpes_perf::CpuWorkload;

/// Activation applied after the affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^-x)` (Rodinia backprop's choice).
    #[default]
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// No activation (affine output layer).
    Identity,
}

impl Activation {
    fn glsl(self) -> &'static str {
        match self {
            Activation::Sigmoid => "return 1.0 / (1.0 + exp(-acc));",
            Activation::Relu => "return max(acc, 0.0);",
            Activation::Identity => "return acc;",
        }
    }

    /// CPU mirror with the same formula.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }
}

/// Builds the layer kernel: weights are `in_dim × out_dim`, bias has
/// `out_dim` entries, the input vector has `in_dim`.
///
/// # Errors
///
/// `BadKernel` when dimensions disagree; build/compile errors.
pub fn build_layer(
    cc: &mut ComputeContext,
    input: &GpuArray<f32>,
    weights: &GpuMatrix<f32>,
    bias: &GpuArray<f32>,
    activation: Activation,
) -> Result<Kernel, ComputeError> {
    let in_dim = input.len();
    let out_dim = bias.len();
    if weights.rows() as usize != in_dim || weights.cols() as usize != out_dim {
        return Err(ComputeError::BadKernel {
            message: format!(
                "weights are {}x{}, expected {in_dim}x{out_dim}",
                weights.rows(),
                weights.cols()
            ),
        });
    }
    let body = format!(
        "float acc = fetch_bias(idx);\n\
         for (float i = 0.0; i < {in_dim}.0; i += 1.0) {{\n\
             acc += fetch_xin(i) * fetch_w_rc(i, idx);\n\
         }}\n\
         {}",
        activation.glsl()
    );
    Kernel::builder("backprop_layer")
        .input("xin", input)
        .input_matrix("w", weights)
        .input("bias", bias)
        .output(ScalarType::F32, out_dim)
        .body(body)
        .build(cc)
}

/// Runs a whole multi-layer forward pass on the GPU; `layers` holds
/// `(weights_flat, bias, activation)` per layer with weights in
/// `in_dim × out_dim` row-major order.
///
/// Layer programs differ only where the (Appendix A constant) loop bound
/// `in_dim` or the activation differs, so repeated forward passes — and
/// repeated layer shapes within one network — hit the context's program
/// cache, and intermediate activations recycle through the target pool.
///
/// # Errors
///
/// Upload/build/run errors from the framework.
pub fn forward_gpu(
    cc: &mut ComputeContext,
    input: &[f32],
    layers: &[(Vec<f32>, Vec<f32>, Activation)],
) -> Result<Vec<f32>, ComputeError> {
    let mut current = cc.upload(input)?;
    let mut current_len = input.len();
    for (i, (w, b, act)) in layers.iter().enumerate() {
        let out_dim = b.len();
        assert_eq!(
            w.len(),
            current_len * out_dim,
            "layer {i} weights must be in_dim x out_dim"
        );
        let gw = cc.upload_matrix(current_len as u32, out_dim as u32, w)?;
        let gb = cc.upload(b)?;
        let k = build_layer(cc, &current, &gw, &gb, *act)?;
        let next: GpuArray<f32> = cc.run_to_array(&k)?;
        cc.recycle_array(current);
        cc.recycle_matrix(gw);
        cc.recycle_array(gb);
        current = next;
        current_len = out_dim;
    }
    let out = cc.read_array(&current, gpes_core::Readback::DirectFbo)?;
    cc.recycle_array(current);
    Ok(out)
}

/// CPU reference with identical accumulation order.
pub fn cpu_reference(input: &[f32], layers: &[(Vec<f32>, Vec<f32>, Activation)]) -> Vec<f32> {
    let mut current = input.to_vec();
    for (w, b, act) in layers {
        let in_dim = current.len();
        let out_dim = b.len();
        let mut next = vec![0.0f32; out_dim];
        for (j, slot) in next.iter_mut().enumerate() {
            let mut acc = b[j];
            for i in 0..in_dim {
                acc += current[i] * w[i * out_dim + j];
            }
            *slot = act.apply(acc);
        }
        current = next;
    }
    current
}

/// Modelled ARM1176 workload for one layer.
pub fn cpu_workload(in_dim: usize, out_dim: usize) -> CpuWorkload {
    let mac = (in_dim * out_dim) as f64;
    CpuWorkload {
        fp_ops: 2.0 * mac + 4.0 * out_dim as f64, // MACs + activation
        loads: 2.0 * mac,
        stores: out_dim as f64,
        iterations: mac,
        cache_misses: mac / 16.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    fn layer(
        in_dim: usize,
        out_dim: usize,
        seed: u64,
        act: Activation,
    ) -> (Vec<f32>, Vec<f32>, Activation) {
        (
            data::random_f32(in_dim * out_dim, seed, 1.0),
            data::random_f32(out_dim, seed + 1, 0.5),
            act,
        )
    }

    #[test]
    fn single_layer_matches_cpu() {
        let input = data::random_f32(12, 131, 1.0);
        let layers = vec![layer(12, 7, 132, Activation::Sigmoid)];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gpu = forward_gpu(&mut cc, &input, &layers).expect("run");
        let cpu = cpu_reference(&input, &layers);
        // exp() may differ in the last ulp between GLSL builtin and libm;
        // everything else is order-identical.
        for (g, c) in gpu.iter().zip(&cpu) {
            assert!(
                (g - c).abs() <= 2.0 * f32::EPSILON * c.abs().max(1.0),
                "{g} vs {c}"
            );
        }
    }

    #[test]
    fn two_layer_mlp_matches_cpu() {
        let input = data::random_f32(8, 133, 1.0);
        let layers = vec![
            layer(8, 16, 134, Activation::Relu),
            layer(16, 4, 135, Activation::Identity),
        ];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gpu = forward_gpu(&mut cc, &input, &layers).expect("run");
        let cpu = cpu_reference(&input, &layers);
        for (g, c) in gpu.iter().zip(&cpu) {
            assert!((g - c).abs() <= 1e-5 * c.abs().max(1.0), "{g} vs {c}");
        }
        assert_eq!(cc.pass_log().len(), 2);
    }

    #[test]
    fn repeated_inference_hits_the_program_cache() {
        let input = data::random_f32(8, 136, 1.0);
        let layers = vec![
            layer(8, 16, 137, Activation::Relu),
            layer(16, 4, 138, Activation::Identity),
        ];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let first = forward_gpu(&mut cc, &input, &layers).expect("run 1");
        let compiled = cc.stats().programs_linked;
        let before = cc.stats();
        let second = forward_gpu(&mut cc, &input, &layers).expect("run 2");
        assert_eq!(first, second);
        let after = cc.stats();
        // Inference loop steady state: no new programs, pooled targets.
        assert_eq!(after.programs_linked, compiled);
        assert!(after.program_cache_hits > before.program_cache_hits);
        assert!(after.texture_pool_hits > before.texture_pool_hits);
    }

    #[test]
    fn relu_clamps_negatives_exactly() {
        let input = vec![1.0f32];
        let layers = vec![(vec![-3.0f32, 2.0], vec![0.0f32, 0.0], Activation::Relu)];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gpu = forward_gpu(&mut cc, &input, &layers).expect("run");
        assert_eq!(gpu, vec![0.0, 2.0]);
    }

    #[test]
    fn sigmoid_saturates_correctly() {
        let input = vec![1.0f32];
        let layers = vec![(vec![30.0f32, -30.0], vec![0.0f32, 0.0], Activation::Sigmoid)];
        let cpu = cpu_reference(&input, &layers);
        assert!(cpu[0] > 0.999 && cpu[1] < 0.001);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let gpu = forward_gpu(&mut cc, &input, &layers).expect("run");
        assert!(gpu[0] > 0.999 && gpu[1] < 0.001);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let x = cc.upload(&[1.0f32; 4]).expect("x");
        let w = cc.upload_matrix(3, 2, &[0.0f32; 6]).expect("w");
        let b = cc.upload(&[0.0f32; 2]).expect("b");
        assert!(build_layer(&mut cc, &x, &w, &b, Activation::Identity).is_err());
    }
}
