//! Speckle-reducing anisotropic diffusion (Rodinia `srad`-style), reduced
//! to its two-kernel core.
//!
//! SRAD's GPU form is the textbook example of the paper's §III-8 rule:
//! the algorithm wants *two* values per cell per iteration (a diffusion
//! coefficient and the updated image), so on a single-output fragment
//! pipeline it splits into two chained kernels:
//!
//! 1. `coeff`: `c = 1 / (1 + (q² − q0²) / (q0²·(1 + q0²)))` from the
//!    local gradient/Laplacian statistics, clamped to `[0, 1]`;
//! 2. `update`: `J' = J + λ/4 · div(c · ∇J)` using the coefficient field.
//!
//! Boundaries clamp to edge, exactly as the texture sampler does.

use gpes_core::{ComputeContext, ComputeError, GpuMatrix, Kernel, Pass, Pipeline, ScalarType};
use gpes_perf::CpuWorkload;

/// Diffusion parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SradParams {
    /// Time step λ.
    pub lambda: f32,
    /// Homogeneity scale q0² (from the noise statistics of the image).
    pub q0sq: f32,
}

impl Default for SradParams {
    fn default() -> Self {
        SradParams {
            lambda: 0.5,
            q0sq: 0.05,
        }
    }
}

/// Builds kernel 1: the diffusion-coefficient field.
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build_coeff(
    cc: &mut ComputeContext,
    image: &GpuMatrix<f32>,
    params: SradParams,
) -> Result<Kernel, ComputeError> {
    Kernel::builder("srad_coeff")
        .input_matrix("j", image)
        .uniform_f32("q0sq", params.q0sq)
        .output_grid(ScalarType::F32, image.rows(), image.cols())
        .body(
            "float jc = fetch_j_rc(row, col);\n\
             float jn = fetch_j_rc(row - 1.0, col);\n\
             float js = fetch_j_rc(row + 1.0, col);\n\
             float jw = fetch_j_rc(row, col - 1.0);\n\
             float je = fetch_j_rc(row, col + 1.0);\n\
             float dn = jn - jc;\n\
             float ds = js - jc;\n\
             float dw = jw - jc;\n\
             float de = je - jc;\n\
             float g2 = (dn*dn + ds*ds + dw*dw + de*de) / (jc*jc);\n\
             float l = (dn + ds + dw + de) / jc;\n\
             float num = 0.5*g2 - 0.0625*(l*l);\n\
             float den = 1.0 + 0.25*l;\n\
             float qsq = num / (den*den);\n\
             float c = 1.0 / (1.0 + (qsq - q0sq) / (q0sq * (1.0 + q0sq)));\n\
             return clamp(c, 0.0, 1.0);",
        )
        .build(cc)
}

/// Builds kernel 2: the image update from the coefficient field.
///
/// # Errors
///
/// `BadKernel` when grids disagree; build/compile errors.
pub fn build_update(
    cc: &mut ComputeContext,
    image: &GpuMatrix<f32>,
    coeff: &GpuMatrix<f32>,
    params: SradParams,
) -> Result<Kernel, ComputeError> {
    if image.rows() != coeff.rows() || image.cols() != coeff.cols() {
        return Err(ComputeError::BadKernel {
            message: "image and coefficient grids must have equal dimensions".into(),
        });
    }
    Kernel::builder("srad_update")
        .input_matrix("j", image)
        .input_matrix("c", coeff)
        .uniform_f32("lambda", params.lambda)
        .output_grid(ScalarType::F32, image.rows(), image.cols())
        .body(
            "float jc = fetch_j_rc(row, col);\n\
             float cc = fetch_c_rc(row, col);\n\
             float cs = fetch_c_rc(row + 1.0, col);\n\
             float ce = fetch_c_rc(row, col + 1.0);\n\
             float dn = fetch_j_rc(row - 1.0, col) - jc;\n\
             float ds = fetch_j_rc(row + 1.0, col) - jc;\n\
             float dw = fetch_j_rc(row, col - 1.0) - jc;\n\
             float de = fetch_j_rc(row, col + 1.0) - jc;\n\
             float div = cc*dn + cs*ds + cc*dw + ce*de;\n\
             return jc + 0.25 * lambda * div;",
        )
        .build(cc)
}

/// Runs `iterations` of the two-kernel chain on the GPU.
///
/// Both kernels compile **once**; every iteration only rebinds the
/// ping-pong image texture and the intermediate coefficient field through
/// a retained [`Pipeline`] (the coefficient target is even reused in
/// place), so the loop performs zero shader compiles and — in steady
/// state — zero GL object allocations.
///
/// # Errors
///
/// Upload/build/run errors from the framework.
pub fn run_gpu(
    cc: &mut ComputeContext,
    rows: usize,
    cols: usize,
    image: &[f32],
    params: SradParams,
    iterations: usize,
) -> Result<Vec<f32>, ComputeError> {
    assert_eq!(image.len(), rows * cols, "image must be rows x cols");
    let j = cc.upload_matrix(rows as u32, cols as u32, image)?;
    let kc = build_coeff(cc, &j, params)?;
    // The coefficient default is a stand-in with the right shape; the
    // pipeline rebinds `c` to the freshly computed field every iteration.
    let ku = build_update(cc, &j, &j, params)?;
    let pipeline = Pipeline::builder("srad")
        .source_matrix("j", &j)
        .pass(
            Pass::new(&kc)
                .read("j", "j")
                .write_grid("c", rows as u32, cols as u32),
        )
        .pass(Pass::new(&ku).read("j", "j").read("c", "c").write_grid(
            "j",
            rows as u32,
            cols as u32,
        ))
        .iterations(iterations)
        .build()?;
    let out = pipeline.run_and_read::<f32>(cc, "j")?;
    cc.recycle_matrix(j);
    Ok(out)
}

/// CPU reference for `iterations` steps with identical clamping and
/// operation order.
pub fn cpu_reference(
    rows: usize,
    cols: usize,
    image: &[f32],
    params: SradParams,
    iterations: usize,
) -> Vec<f32> {
    let mut j: Vec<f32> = image.to_vec();
    let at = |v: &[f32], r: i64, c: i64| -> f32 {
        let r = r.clamp(0, rows as i64 - 1) as usize;
        let c = c.clamp(0, cols as i64 - 1) as usize;
        v[r * cols + c]
    };
    for _ in 0..iterations {
        let mut cfield = vec![0.0f32; rows * cols];
        for r in 0..rows as i64 {
            for c in 0..cols as i64 {
                let jc = at(&j, r, c);
                let dn = at(&j, r - 1, c) - jc;
                let ds = at(&j, r + 1, c) - jc;
                let dw = at(&j, r, c - 1) - jc;
                let de = at(&j, r, c + 1) - jc;
                let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
                let l = (dn + ds + dw + de) / jc;
                let num = 0.5 * g2 - 0.0625 * (l * l);
                let den = 1.0 + 0.25 * l;
                let qsq = num / (den * den);
                let cval = 1.0 / (1.0 + (qsq - params.q0sq) / (params.q0sq * (1.0 + params.q0sq)));
                cfield[(r * cols as i64 + c) as usize] = cval.clamp(0.0, 1.0);
            }
        }
        let mut next = vec![0.0f32; rows * cols];
        for r in 0..rows as i64 {
            for c in 0..cols as i64 {
                let jc = at(&j, r, c);
                let ccv = at(&cfield, r, c);
                let cs = at(&cfield, r + 1, c);
                let ce = at(&cfield, r, c + 1);
                let dn = at(&j, r - 1, c) - jc;
                let ds = at(&j, r + 1, c) - jc;
                let dw = at(&j, r, c - 1) - jc;
                let de = at(&j, r, c + 1) - jc;
                let div = ccv * dn + cs * ds + ccv * dw + ce * de;
                next[(r * cols as i64 + c) as usize] = jc + 0.25 * params.lambda * div;
            }
        }
        j = next;
    }
    j
}

/// Modelled ARM1176 workload for one iteration.
pub fn cpu_workload(rows: usize, cols: usize) -> CpuWorkload {
    let n = (rows * cols) as f64;
    CpuWorkload {
        fp_ops: 40.0 * n,
        loads: 12.0 * n,
        stores: 2.0 * n,
        iterations: 2.0 * n,
        cache_misses: n / 2.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    fn speckled_image(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        // Positive, away from zero (SRAD divides by the intensity).
        data::random_f32(rows * cols, seed, 50.0)
            .into_iter()
            .map(|v| v.abs() + 10.0)
            .collect()
    }

    #[test]
    fn one_iteration_matches_cpu() {
        let (rows, cols) = (9usize, 7usize);
        let img = speckled_image(rows, cols, 71);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let gpu = run_gpu(&mut cc, rows, cols, &img, SradParams::default(), 1).expect("run");
        let cpu = cpu_reference(rows, cols, &img, SradParams::default(), 1);
        assert_eq!(gpu, cpu);
        // Two kernels per iteration — the §III-8 split.
        assert_eq!(cc.pass_log().len(), 2);
    }

    #[test]
    fn three_iterations_match_cpu() {
        let (rows, cols) = (6usize, 6usize);
        let img = speckled_image(rows, cols, 72);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let gpu = run_gpu(&mut cc, rows, cols, &img, SradParams::default(), 3).expect("run");
        let cpu = cpu_reference(rows, cols, &img, SradParams::default(), 3);
        assert_eq!(gpu, cpu);
        assert_eq!(cc.pass_log().len(), 6);
        // Two programs for six passes — nothing compiled inside the loop.
        assert_eq!(cc.stats().programs_linked, 2);
        // Iterating more does not allocate programs either, and steady
        // state reuses render targets from the pool.
        let before = cc.stats();
        let _ = run_gpu(&mut cc, rows, cols, &img, SradParams::default(), 5).expect("rerun");
        let after = cc.stats();
        assert_eq!(after.programs_linked, before.programs_linked);
        assert!(after.texture_pool_hits > before.texture_pool_hits);
    }

    #[test]
    fn diffusion_smooths_speckle() {
        let (rows, cols) = (8usize, 8usize);
        let img = speckled_image(rows, cols, 73);
        let out = cpu_reference(rows, cols, &img, SradParams::default(), 5);
        let variance = |v: &[f32]| {
            let mean = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32
        };
        assert!(
            variance(&out) < variance(&img),
            "diffusion must reduce variance: {} vs {}",
            variance(&out),
            variance(&img)
        );
    }

    #[test]
    fn uniform_image_is_a_fixed_point() {
        let (rows, cols) = (5usize, 5usize);
        let img = vec![42.0f32; rows * cols];
        let out = cpu_reference(rows, cols, &img, SradParams::default(), 4);
        assert!(out.iter().all(|&v| (v - 42.0).abs() < 1e-4));
    }

    #[test]
    fn mismatched_grids_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let j = cc.upload_matrix(4, 4, &[1.0f32; 16]).expect("j");
        let c = cc.upload_matrix(4, 5, &[1.0f32; 20]).expect("c");
        assert!(build_update(&mut cc, &j, &c, SradParams::default()).is_err());
    }
}
