//! Speckle-reducing anisotropic diffusion (Rodinia `srad`-style), reduced
//! to its two-kernel core.
//!
//! SRAD's GPU form is the textbook example of the paper's §III-8 rule:
//! the algorithm wants *two* values per cell per iteration (a diffusion
//! coefficient and the updated image), so on a single-output fragment
//! pipeline it splits into two chained kernels:
//!
//! 1. `coeff`: `c = 1 / (1 + (q² − q0²) / (q0²·(1 + q0²)))` from the
//!    local gradient/Laplacian statistics, clamped to `[0, 1]`;
//! 2. `update`: `J' = J + λ/4 · div(c · ∇J)` using the coefficient field.
//!
//! Boundaries clamp to edge, exactly as the texture sampler does.

use gpes_core::{
    ComputeContext, ComputeError, GpuMatrix, Kernel, KernelSpec, Pass, PassSpec, Pipeline,
    PipelineSpec, ScalarType,
};
use gpes_perf::CpuWorkload;
use std::sync::Arc;

/// Diffusion parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SradParams {
    /// Time step λ.
    pub lambda: f32,
    /// Homogeneity scale q0² (from the noise statistics of the image).
    pub q0sq: f32,
}

impl Default for SradParams {
    fn default() -> Self {
        SradParams {
            lambda: 0.5,
            q0sq: 0.05,
        }
    }
}

/// The GLSL body of the coefficient kernel — one source of truth shared
/// by [`build_coeff`] and [`coeff_spec`], so the two generate the
/// byte-identical program.
const COEFF_BODY: &str = "float jc = fetch_j_rc(row, col);\n\
             float jn = fetch_j_rc(row - 1.0, col);\n\
             float js = fetch_j_rc(row + 1.0, col);\n\
             float jw = fetch_j_rc(row, col - 1.0);\n\
             float je = fetch_j_rc(row, col + 1.0);\n\
             float dn = jn - jc;\n\
             float ds = js - jc;\n\
             float dw = jw - jc;\n\
             float de = je - jc;\n\
             float g2 = (dn*dn + ds*ds + dw*dw + de*de) / (jc*jc);\n\
             float l = (dn + ds + dw + de) / jc;\n\
             float num = 0.5*g2 - 0.0625*(l*l);\n\
             float den = 1.0 + 0.25*l;\n\
             float qsq = num / (den*den);\n\
             float c = 1.0 / (1.0 + (qsq - q0sq) / (q0sq * (1.0 + q0sq)));\n\
             return clamp(c, 0.0, 1.0);";

/// The GLSL body of the update kernel, shared by [`build_update`] and
/// [`update_spec`].
const UPDATE_BODY: &str = "float jc = fetch_j_rc(row, col);\n\
             float cc = fetch_c_rc(row, col);\n\
             float cs = fetch_c_rc(row + 1.0, col);\n\
             float ce = fetch_c_rc(row, col + 1.0);\n\
             float dn = fetch_j_rc(row - 1.0, col) - jc;\n\
             float ds = fetch_j_rc(row + 1.0, col) - jc;\n\
             float dw = fetch_j_rc(row, col - 1.0) - jc;\n\
             float de = fetch_j_rc(row, col + 1.0) - jc;\n\
             float div = cc*dn + cs*ds + cc*dw + ce*de;\n\
             return jc + 0.25 * lambda * div;";

/// Builds kernel 1: the diffusion-coefficient field.
///
/// # Errors
///
/// Build/compile errors from the framework.
pub fn build_coeff(
    cc: &mut ComputeContext,
    image: &GpuMatrix<f32>,
    params: SradParams,
) -> Result<Kernel, ComputeError> {
    Kernel::builder("srad_coeff")
        .input_matrix("j", image)
        .uniform_f32("q0sq", params.q0sq)
        .output_grid(ScalarType::F32, image.rows(), image.cols())
        .body(COEFF_BODY)
        .build(cc)
}

/// Builds kernel 2: the image update from the coefficient field.
///
/// # Errors
///
/// `BadKernel` when grids disagree; build/compile errors.
pub fn build_update(
    cc: &mut ComputeContext,
    image: &GpuMatrix<f32>,
    coeff: &GpuMatrix<f32>,
    params: SradParams,
) -> Result<Kernel, ComputeError> {
    if image.rows() != coeff.rows() || image.cols() != coeff.cols() {
        return Err(ComputeError::BadKernel {
            message: "image and coefficient grids must have equal dimensions".into(),
        });
    }
    Kernel::builder("srad_update")
        .input_matrix("j", image)
        .input_matrix("c", coeff)
        .uniform_f32("lambda", params.lambda)
        .output_grid(ScalarType::F32, image.rows(), image.cols())
        .body(UPDATE_BODY)
        .build(cc)
}

/// Context-free spec of the coefficient kernel for a `rows × cols`
/// image — the engine-servable twin of [`build_coeff`].
pub fn coeff_spec(rows: u32, cols: u32, params: SradParams) -> KernelSpec {
    KernelSpec::new("srad_coeff")
        .input("j")
        .uniform_f32("q0sq", params.q0sq)
        .output_grid(rows, cols)
        .body(COEFF_BODY)
}

/// Context-free spec of the update kernel — the engine-servable twin of
/// [`build_update`].
pub fn update_spec(rows: u32, cols: u32, params: SradParams) -> KernelSpec {
    KernelSpec::new("srad_update")
        .input("j")
        .input("c")
        .uniform_f32("lambda", params.lambda)
        .output_grid(rows, cols)
        .body(UPDATE_BODY)
}

/// Context-free spec of the whole retained diffusion loop, mirroring
/// [`run_gpu`]'s wiring (coeff then update per iteration, `j` updated in
/// place). Submit through [`gpes_core::Engine::submit_pipeline`] with one
/// grid source `j` of `rows × cols` elements and read buffer `j`;
/// outputs are bit-identical to [`run_gpu`].
///
/// # Errors
///
/// Spec validation errors (e.g. zero-sized grids rejected at build).
pub fn pipeline_spec(
    rows: usize,
    cols: usize,
    params: SradParams,
    iterations: usize,
) -> Result<PipelineSpec, ComputeError> {
    let (r, c) = (rows as u32, cols as u32);
    let kc = Arc::new(coeff_spec(r, c, params));
    let ku = Arc::new(update_spec(r, c, params));
    PipelineSpec::builder("srad")
        .source_grid("j", r, c)
        .pass(PassSpec::new(&kc).read("j", "j").write_grid("c", r, c))
        .pass(
            PassSpec::new(&ku)
                .read("j", "j")
                .read("c", "c")
                .write_grid("j", r, c),
        )
        .iterations(iterations)
        .build()
}

/// Runs `iterations` of the two-kernel chain on the GPU.
///
/// Both kernels compile **once**; every iteration only rebinds the
/// ping-pong image texture and the intermediate coefficient field through
/// a retained [`Pipeline`] (the coefficient target is even reused in
/// place), so the loop performs zero shader compiles and — in steady
/// state — zero GL object allocations.
///
/// # Errors
///
/// Upload/build/run errors from the framework.
pub fn run_gpu(
    cc: &mut ComputeContext,
    rows: usize,
    cols: usize,
    image: &[f32],
    params: SradParams,
    iterations: usize,
) -> Result<Vec<f32>, ComputeError> {
    assert_eq!(image.len(), rows * cols, "image must be rows x cols");
    let j = cc.upload_matrix(rows as u32, cols as u32, image)?;
    let kc = build_coeff(cc, &j, params)?;
    // The coefficient default is a stand-in with the right shape; the
    // pipeline rebinds `c` to the freshly computed field every iteration.
    let ku = build_update(cc, &j, &j, params)?;
    let pipeline = Pipeline::builder("srad")
        .source_matrix("j", &j)
        .pass(
            Pass::new(&kc)
                .read("j", "j")
                .write_grid("c", rows as u32, cols as u32),
        )
        .pass(Pass::new(&ku).read("j", "j").read("c", "c").write_grid(
            "j",
            rows as u32,
            cols as u32,
        ))
        .iterations(iterations)
        .build()?;
    let out = pipeline.run_and_read::<f32>(cc, "j")?;
    cc.recycle_matrix(j);
    Ok(out)
}

/// CPU reference for `iterations` steps with identical clamping and
/// operation order.
pub fn cpu_reference(
    rows: usize,
    cols: usize,
    image: &[f32],
    params: SradParams,
    iterations: usize,
) -> Vec<f32> {
    let mut j: Vec<f32> = image.to_vec();
    let at = |v: &[f32], r: i64, c: i64| -> f32 {
        let r = r.clamp(0, rows as i64 - 1) as usize;
        let c = c.clamp(0, cols as i64 - 1) as usize;
        v[r * cols + c]
    };
    for _ in 0..iterations {
        let mut cfield = vec![0.0f32; rows * cols];
        for r in 0..rows as i64 {
            for c in 0..cols as i64 {
                let jc = at(&j, r, c);
                let dn = at(&j, r - 1, c) - jc;
                let ds = at(&j, r + 1, c) - jc;
                let dw = at(&j, r, c - 1) - jc;
                let de = at(&j, r, c + 1) - jc;
                let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
                let l = (dn + ds + dw + de) / jc;
                let num = 0.5 * g2 - 0.0625 * (l * l);
                let den = 1.0 + 0.25 * l;
                let qsq = num / (den * den);
                let cval = 1.0 / (1.0 + (qsq - params.q0sq) / (params.q0sq * (1.0 + params.q0sq)));
                cfield[(r * cols as i64 + c) as usize] = cval.clamp(0.0, 1.0);
            }
        }
        let mut next = vec![0.0f32; rows * cols];
        for r in 0..rows as i64 {
            for c in 0..cols as i64 {
                let jc = at(&j, r, c);
                let ccv = at(&cfield, r, c);
                let cs = at(&cfield, r + 1, c);
                let ce = at(&cfield, r, c + 1);
                let dn = at(&j, r - 1, c) - jc;
                let ds = at(&j, r + 1, c) - jc;
                let dw = at(&j, r, c - 1) - jc;
                let de = at(&j, r, c + 1) - jc;
                let div = ccv * dn + cs * ds + ccv * dw + ce * de;
                next[(r * cols as i64 + c) as usize] = jc + 0.25 * params.lambda * div;
            }
        }
        j = next;
    }
    j
}

/// Modelled ARM1176 workload for one iteration.
pub fn cpu_workload(rows: usize, cols: usize) -> CpuWorkload {
    let n = (rows * cols) as f64;
    CpuWorkload {
        fp_ops: 40.0 * n,
        loads: 12.0 * n,
        stores: 2.0 * n,
        iterations: 2.0 * n,
        cache_misses: n / 2.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    fn speckled_image(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        // Positive, away from zero (SRAD divides by the intensity).
        data::random_f32(rows * cols, seed, 50.0)
            .into_iter()
            .map(|v| v.abs() + 10.0)
            .collect()
    }

    #[test]
    fn one_iteration_matches_cpu() {
        let (rows, cols) = (9usize, 7usize);
        let img = speckled_image(rows, cols, 71);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let gpu = run_gpu(&mut cc, rows, cols, &img, SradParams::default(), 1).expect("run");
        let cpu = cpu_reference(rows, cols, &img, SradParams::default(), 1);
        assert_eq!(gpu, cpu);
        // Two kernels per iteration — the §III-8 split.
        assert_eq!(cc.pass_log().len(), 2);
    }

    #[test]
    fn three_iterations_match_cpu() {
        let (rows, cols) = (6usize, 6usize);
        let img = speckled_image(rows, cols, 72);
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let gpu = run_gpu(&mut cc, rows, cols, &img, SradParams::default(), 3).expect("run");
        let cpu = cpu_reference(rows, cols, &img, SradParams::default(), 3);
        assert_eq!(gpu, cpu);
        assert_eq!(cc.pass_log().len(), 6);
        // Two programs for six passes — nothing compiled inside the loop.
        assert_eq!(cc.stats().programs_linked, 2);
        // Iterating more does not allocate programs either, and steady
        // state reuses render targets from the pool.
        let before = cc.stats();
        let _ = run_gpu(&mut cc, rows, cols, &img, SradParams::default(), 5).expect("rerun");
        let after = cc.stats();
        assert_eq!(after.programs_linked, before.programs_linked);
        assert!(after.texture_pool_hits > before.texture_pool_hits);
    }

    #[test]
    fn diffusion_smooths_speckle() {
        let (rows, cols) = (8usize, 8usize);
        let img = speckled_image(rows, cols, 73);
        let out = cpu_reference(rows, cols, &img, SradParams::default(), 5);
        let variance = |v: &[f32]| {
            let mean = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32
        };
        assert!(
            variance(&out) < variance(&img),
            "diffusion must reduce variance: {} vs {}",
            variance(&out),
            variance(&img)
        );
    }

    #[test]
    fn uniform_image_is_a_fixed_point() {
        let (rows, cols) = (5usize, 5usize);
        let img = vec![42.0f32; rows * cols];
        let out = cpu_reference(rows, cols, &img, SradParams::default(), 4);
        assert!(out.iter().all(|&v| (v - 42.0).abs() < 1e-4));
    }

    #[test]
    fn mismatched_grids_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let j = cc.upload_matrix(4, 4, &[1.0f32; 16]).expect("j");
        let c = cc.upload_matrix(4, 5, &[1.0f32; 20]).expect("c");
        assert!(build_update(&mut cc, &j, &c, SradParams::default()).is_err());
    }

    #[test]
    fn pipeline_spec_matches_direct_run_bitwise() {
        let (rows, cols) = (9usize, 7usize);
        let img = speckled_image(rows, cols, 74);
        let params = SradParams::default();
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let direct = run_gpu(&mut cc, rows, cols, &img, params, 3).expect("direct");
        let links = cc.stats().programs_linked;
        let spec = pipeline_spec(rows, cols, params, 3).expect("spec");
        let served = spec.build(&mut cc).expect("build");
        assert_eq!(cc.stats().programs_linked, links, "spec relinked a program");
        let j = cc
            .upload_matrix(rows as u32, cols as u32, &img)
            .expect("upload");
        let seeds = [gpes_core::SourceSeed::matrix("j", &j)];
        let out: Vec<f32> = served
            .pipeline()
            .run_and_read_seeded(&mut cc, &seeds, "j")
            .expect("seeded run");
        assert_eq!(out, direct);
        cc.recycle_matrix(j);
    }
}
