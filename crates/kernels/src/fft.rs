//! Radix-2 Stockham FFT over the graphics pipeline — the paper's
//! reference 6 (Andrew Holme's `GPU_FFT` for the VideoCore IV) redone
//! portably on top of the §III/§IV framework instead of raw QPU assembly.
//!
//! A complex butterfly produces **two** values (real and imaginary), so
//! on the single-output fragment pipeline each of the `log₂ N` Stockham
//! stages splits into two kernels sharing the same fetch pattern — the
//! §III-8 rule in action. Twiddles are evaluated in-shader with
//! `cos`/`sin`; the CPU reference mirrors the exact operation order, so
//! results are bit-identical under the simulator's exact float model.
//!
//! Stockham self-sorts: no bit-reversal pass is needed, which also means
//! every stage is a pure gather — ideal for texture-fetch hardware.
//!
//! The stage width `half` is a **uniform**, not a compile-time constant,
//! so the whole `log₂ N`-stage transform runs on exactly two compiled
//! programs (one per §III-8 output half) dispatched through a retained
//! [`Pipeline`] with explicit ping-pong buffer pairs — both stage kernels
//! must read the *old* generation before either may be overwritten.

use gpes_core::{
    ComputeContext, ComputeError, GpuArray, Kernel, KernelSpec, Pass, PassSpec, Pipeline,
    PipelineSpec,
};
use gpes_glsl::Value;
use gpes_perf::CpuWorkload;
use std::sync::Arc;

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT (negative exponent).
    Forward,
    /// Inverse DFT (positive exponent), **unnormalised** — divide by `N`
    /// on the host if needed, like `GPU_FFT` does.
    Inverse,
}

impl Direction {
    fn sign(self) -> f32 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// Builds one Stockham stage kernel for the real (`emit_re = true`) or
/// imaginary half of the butterfly. The stage width arrives through the
/// `half_` uniform, so one program serves every stage.
///
/// Stage `s` (half = 2^s): `out[k] = a ± w·b` where for output index
/// `k = q·2·half + r` (`r < half`): `a = in[q·half + r]` from the first
/// half and `b = in[q·half + r + N/2]`, with twiddle angle
/// `sign · 2π · r / (2·half)`.
fn build_stage(
    cc: &mut ComputeContext,
    re: &GpuArray<f32>,
    im: &GpuArray<f32>,
    direction: Direction,
    emit_re: bool,
) -> Result<Kernel, ComputeError> {
    // Built through the context-free spec so direct and engine-served
    // transforms share one program by construction.
    stage_spec(re.len(), direction, emit_re).build(cc, &[*re, *im])
}

/// The GLSL body of one Stockham stage for a size-`n` transform. With
/// `baked_half: None` (the retained form) the stage width arrives through
/// the `half_` uniform; `Some(h)` bakes it in as a literal — the
/// pre-split form the `a9` baseline measures. Sharing the template keeps
/// the two bit-identical by construction.
pub fn stage_body(
    n: usize,
    direction: Direction,
    emit_re: bool,
    baked_half: Option<usize>,
) -> String {
    let prelude = match baked_half {
        Some(h) => format!("float half_ = {h}.0;\n"),
        None => String::new(),
    };
    format!(
        "{prelude}\
         float q = floor((idx + 0.5) / (2.0 * half_));\n\
         float r = idx - q * 2.0 * half_;\n\
         float second = 0.0;\n\
         if (r >= half_) {{ r -= half_; second = 1.0; }}\n\
         float ia = q * half_ + r;\n\
         float ib = ia + {n_over_2}.0;\n\
         float are = fetch_re(ia);\n\
         float aim = fetch_im(ia);\n\
         float bre = fetch_re(ib);\n\
         float bim = fetch_im(ib);\n\
         float ang = {sign}.0 * 6.2831853 * r / (2.0 * half_);\n\
         float wr = cos(ang);\n\
         float wi = sin(ang);\n\
         float tre = wr * bre - wi * bim;\n\
         float tim = wr * bim + wi * bre;\n\
         float s = 1.0 - 2.0 * second;\n\
         return {out};",
        n_over_2 = n / 2,
        sign = if direction.sign() < 0.0 { "-1" } else { "1" },
        out = if emit_re {
            "are + s * tre"
        } else {
            "aim + s * tim"
        },
    )
}

/// Context-free spec of one Stockham stage kernel — the engine-servable
/// twin of the private per-context stage builder, generating the byte-identical program (same
/// inputs, uniform and body template), so direct and engine-served runs
/// share one linked program through the caches.
pub fn stage_spec(n: usize, direction: Direction, emit_re: bool) -> KernelSpec {
    KernelSpec::new(if emit_re {
        "fft_stage_re"
    } else {
        "fft_stage_im"
    })
    .input("re")
    .input("im")
    .uniform_f32("half_", 1.0)
    .output(n)
    .body(stage_body(n, direction, emit_re, None))
}

/// Context-free spec of the whole retained transform, mirroring
/// [`run_gpu`]'s wiring (two stage kernels, explicit `re`/`im` ping-pong
/// pairs, stage width as a per-iteration uniform). Submit through
/// [`gpes_core::Engine::submit_pipeline`] with sources `re`, `im` (length
/// `n` each) and read buffers `re`, `im`; outputs are bit-identical to
/// [`run_gpu`].
///
/// # Errors
///
/// `BadKernel` for non-power-of-two sizes.
pub fn pipeline_spec(n: usize, direction: Direction) -> Result<PipelineSpec, ComputeError> {
    if !n.is_power_of_two() || n < 2 {
        return Err(ComputeError::BadKernel {
            message: format!("FFT size {n} is not a power of two >= 2"),
        });
    }
    let stages = n.trailing_zeros() as usize;
    let kre = Arc::new(stage_spec(n, direction, true));
    let kim = Arc::new(stage_spec(n, direction, false));
    let half_of = |stage: usize| Value::Float((1usize << stage) as f32);
    PipelineSpec::builder("fft")
        .source_len("re", n)
        .source_len("im", n)
        .pass(
            PassSpec::new(&kre)
                .read("re", "re")
                .read("im", "im")
                .write_len("re_next", n)
                .uniform_per_iter("half_", half_of),
        )
        .pass(
            PassSpec::new(&kim)
                .read("re", "re")
                .read("im", "im")
                .write_len("im_next", n)
                .uniform_per_iter("half_", half_of),
        )
        .ping_pong("re", "re_next")
        .ping_pong("im", "im_next")
        .iterations(stages)
        .build()
}

/// Runs the full transform on the GPU; input and output are
/// `(re, im)` pairs of length-`n` vectors with `n` a power of two.
///
/// # Errors
///
/// `BadKernel` for non-power-of-two sizes; upload/build/run errors.
pub fn run_gpu(
    cc: &mut ComputeContext,
    re: &[f32],
    im: &[f32],
    direction: Direction,
) -> Result<(Vec<f32>, Vec<f32>), ComputeError> {
    let n = re.len();
    if !n.is_power_of_two() || n < 2 {
        return Err(ComputeError::BadKernel {
            message: format!("FFT size {n} is not a power of two >= 2"),
        });
    }
    if im.len() != n {
        return Err(ComputeError::BadKernel {
            message: "re and im must have equal length".into(),
        });
    }
    let gre = cc.upload(re)?;
    let gim = cc.upload(im)?;
    let kre = build_stage(cc, &gre, &gim, direction, true)?;
    let kim = build_stage(cc, &gre, &gim, direction, false)?;
    let stages = n.trailing_zeros() as usize;
    // Explicit ping-pong pairs: both stage kernels read the old (re, im)
    // generation, so the swap must wait until the iteration ends.
    let half_of = |stage: usize| Value::Float((1usize << stage) as f32);
    let pipeline = Pipeline::builder("fft")
        .source("re", &gre)
        .source("im", &gim)
        .pass(
            Pass::new(&kre)
                .read("re", "re")
                .read("im", "im")
                .write_len("re_next", n)
                .uniform_per_iter("half_", half_of),
        )
        .pass(
            Pass::new(&kim)
                .read("re", "re")
                .read("im", "im")
                .write_len("im_next", n)
                .uniform_per_iter("half_", half_of),
        )
        .ping_pong("re", "re_next")
        .ping_pong("im", "im_next")
        .iterations(stages)
        .build()?;
    let run = pipeline.run(cc)?;
    let out_re = run.read::<f32>(cc, "re")?;
    let out_im = run.read::<f32>(cc, "im")?;
    run.finish(cc);
    cc.recycle_array(gre);
    cc.recycle_array(gim);
    Ok((out_re, out_im))
}

/// CPU mirror of the GPU stages with identical operation order
/// (bit-exact under the exact float model).
pub fn cpu_reference(re: &[f32], im: &[f32], direction: Direction) -> (Vec<f32>, Vec<f32>) {
    let n = re.len();
    let mut cre = re.to_vec();
    let mut cim = im.to_vec();
    let mut half = 1usize;
    while half < n {
        let mut nre = vec![0.0f32; n];
        let mut nim = vec![0.0f32; n];
        for idx in 0..n {
            let q = idx / (2 * half);
            let mut r = idx - q * 2 * half;
            let mut s = 1.0f32;
            if r >= half {
                r -= half;
                s = -1.0;
            }
            let ia = q * half + r;
            let ib = ia + n / 2;
            // Must match the GLSL literal `6.2831853` digit for digit so
            // the mirror stays bit-identical to the shader (both parse to
            // the same f32); clippy's TAU suggestion would be a different
            // source of truth.
            #[allow(clippy::approx_constant)]
            let two_pi = 6.283_185_3_f32;
            let ang = direction.sign() * two_pi * r as f32 / (2.0 * half as f32);
            let (wr, wi) = (ang.cos(), ang.sin());
            let tre = wr * cre[ib] - wi * cim[ib];
            let tim = wr * cim[ib] + wi * cre[ib];
            nre[idx] = cre[ia] + s * tre;
            nim[idx] = cim[ia] + s * tim;
        }
        cre = nre;
        cim = nim;
        half *= 2;
    }
    (cre, cim)
}

/// Textbook `O(N²)` DFT in `f64` — the independent oracle both FFTs are
/// checked against (up to accumulation error).
pub fn dft_oracle(re: &[f32], im: &[f32], direction: Direction) -> (Vec<f32>, Vec<f32>) {
    let n = re.len();
    let sign = direction.sign() as f64;
    let mut out_re = vec![0.0f32; n];
    let mut out_im = vec![0.0f32; n];
    for (k, (or_, oi_)) in out_re.iter_mut().zip(out_im.iter_mut()).enumerate() {
        let mut acc_re = 0.0f64;
        let mut acc_im = 0.0f64;
        for j in 0..n {
            let ang = sign * 2.0 * std::f64::consts::PI * (k as f64) * (j as f64) / n as f64;
            let (c, s) = (ang.cos(), ang.sin());
            acc_re += re[j] as f64 * c - im[j] as f64 * s;
            acc_im += re[j] as f64 * s + im[j] as f64 * c;
        }
        *or_ = acc_re as f32;
        *oi_ = acc_im as f32;
    }
    (out_re, out_im)
}

/// Modelled ARM1176 workload for a size-`n` FFT.
pub fn cpu_workload(n: usize) -> CpuWorkload {
    let stages = (n as f64).log2();
    let work = n as f64 * stages;
    CpuWorkload {
        fp_ops: 10.0 * work, // butterfly + twiddle via sincos
        loads: 4.0 * work,
        stores: 2.0 * work,
        iterations: work,
        cache_misses: work / 8.0,
        ..CpuWorkload::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn gpu_fft_matches_cpu_mirror_bitwise() {
        let n = 64;
        let re = data::random_f32(n, 401, 1.0);
        let im = data::random_f32(n, 402, 1.0);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let (gre, gim) = run_gpu(&mut cc, &re, &im, Direction::Forward).expect("gpu");
        let (cre, cim) = cpu_reference(&re, &im, Direction::Forward);
        assert_eq!(gre, cre);
        assert_eq!(gim, cim);
        // log2(64) stages x 2 kernels (the §III-8 split).
        assert_eq!(cc.pass_log().len(), 12);
        // Twelve passes, two programs: the stage width is a uniform now.
        assert_eq!(cc.stats().programs_linked, 2);
    }

    #[test]
    fn fft_agrees_with_dft_oracle() {
        let n = 32;
        let re = data::random_f32(n, 403, 1.0);
        let im = vec![0.0f32; n];
        let (fre, fim) = cpu_reference(&re, &im, Direction::Forward);
        let (ore, oim) = dft_oracle(&re, &im, Direction::Forward);
        for i in 0..n {
            assert!(
                (fre[i] - ore[i]).abs() < 1e-3,
                "re[{i}]: {} vs {}",
                fre[i],
                ore[i]
            );
            assert!(
                (fim[i] - oim[i]).abs() < 1e-3,
                "im[{i}]: {} vs {}",
                fim[i],
                oim[i]
            );
        }
    }

    #[test]
    fn forward_then_inverse_recovers_signal() {
        let n = 128;
        let re = data::random_f32(n, 404, 10.0);
        let im = data::random_f32(n, 405, 10.0);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let (fre, fim) = run_gpu(&mut cc, &re, &im, Direction::Forward).expect("fwd");
        let (ire, iim) = run_gpu(&mut cc, &fre, &fim, Direction::Inverse).expect("inv");
        for i in 0..n {
            assert!((ire[i] / n as f32 - re[i]).abs() < 1e-3, "re[{i}]");
            assert!((iim[i] / n as f32 - im[i]).abs() < 1e-3, "im[{i}]");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 16;
        let mut re = vec![0.0f32; n];
        re[0] = 1.0;
        let im = vec![0.0f32; n];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let (fre, fim) = run_gpu(&mut cc, &re, &im, Direction::Forward).expect("gpu");
        for i in 0..n {
            assert!((fre[i] - 1.0).abs() < 1e-5);
            assert!(fim[i].abs() < 1e-5);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5usize;
        let re: Vec<f32> = (0..n)
            .map(|j| (2.0 * std::f32::consts::PI * k0 as f32 * j as f32 / n as f32).cos())
            .collect();
        let im = vec![0.0f32; n];
        let (fre, fim) = cpu_reference(&re, &im, Direction::Forward);
        let mag = |i: usize| (fre[i] * fre[i] + fim[i] * fim[i]).sqrt();
        // Energy concentrates in bins k0 and n-k0.
        assert!(mag(k0) > 30.0, "bin {k0} magnitude {}", mag(k0));
        assert!(mag(n - k0) > 30.0);
        for i in 0..n {
            if i != k0 && i != n - k0 {
                assert!(mag(i) < 1.0, "leakage in bin {i}: {}", mag(i));
            }
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        assert!(run_gpu(&mut cc, &[0.0; 12], &[0.0; 12], Direction::Forward).is_err());
        assert!(run_gpu(&mut cc, &[0.0; 16], &[0.0; 8], Direction::Forward).is_err());
        assert!(pipeline_spec(12, Direction::Forward).is_err());
    }

    #[test]
    fn pipeline_spec_matches_direct_run_bitwise() {
        let n = 64;
        let re = data::random_f32(n, 406, 1.0);
        let im = data::random_f32(n, 407, 1.0);
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let (dre, dim) = run_gpu(&mut cc, &re, &im, Direction::Forward).expect("direct");
        let links = cc.stats().programs_linked;
        // Building the context-free spec on the same context is a pure
        // program-cache hit: the generated sources are byte-identical.
        let spec = pipeline_spec(n, Direction::Forward).expect("spec");
        let served = spec.build(&mut cc).expect("build");
        assert_eq!(cc.stats().programs_linked, links, "spec relinked a program");
        let gre = cc.upload(&re).expect("re");
        let gim = cc.upload(&im).expect("im");
        let seeds = [
            gpes_core::SourceSeed::array("re", &gre),
            gpes_core::SourceSeed::array("im", &gim),
        ];
        let run = served
            .pipeline()
            .run_seeded(&mut cc, &seeds)
            .expect("seeded run");
        let sre = run.read::<f32>(&mut cc, "re").expect("read re");
        let sim = run.read::<f32>(&mut cc, "im").expect("read im");
        run.finish(&mut cc);
        assert_eq!(sre, dre);
        assert_eq!(sim, dim);
    }
}
