//! Texture objects: byte-only formats, ES 2 completeness rules, filtering
//! and wrap modes.
//!
//! Limitation #5 of the paper is enforced *by construction*: [`TexFormat`]
//! has no floating-point variants, so float data can only enter a texture
//! through the numeric transformations of §IV.

use crate::convert::texel_to_float;
use crate::error::GlError;

/// Texel storage formats available in core OpenGL ES 2.0 (byte-based only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TexFormat {
    /// 4 bytes per texel, RGBA order. The GPGPU workhorse.
    Rgba8,
    /// 3 bytes per texel.
    Rgb8,
    /// 1 byte per texel, replicated to RGB; alpha = 1.
    Luminance8,
    /// 2 bytes per texel, sampled as (L, L, L, A) — the classic ES 2
    /// carrier for two-byte payloads (the short codecs read `.ra`).
    LuminanceAlpha8,
    /// 8 bytes per texel: four binary16 floats, **extension-only**
    /// (`OES_texture_half_float`, §II.5). Not part of core ES 2 — the
    /// context rejects it unless the extension is enabled.
    RgbaF16,
}

impl TexFormat {
    /// Bytes per texel.
    pub fn bytes_per_texel(self) -> usize {
        match self {
            TexFormat::Rgba8 => 4,
            TexFormat::Rgb8 => 3,
            TexFormat::Luminance8 => 1,
            TexFormat::LuminanceAlpha8 => 2,
            TexFormat::RgbaF16 => 8,
        }
    }

    /// Whether the format needs a driver extension (vs. core ES 2.0).
    pub fn requires_extension(self) -> bool {
        matches!(self, TexFormat::RgbaF16)
    }
}

/// Minification/magnification filters. Mipmapped minification filters from
/// full ES 2 are not part of this GPGPU-oriented subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Filter {
    /// Nearest-texel sampling — what GPGPU kernels use for exactness.
    #[default]
    Nearest,
    /// Bilinear interpolation.
    Linear,
}

/// Texture coordinate wrap modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Wrap {
    /// Clamp to the edge texel (the only mode valid for NPOT textures).
    #[default]
    ClampToEdge,
    /// Repeat (fractional part).
    Repeat,
    /// Mirrored repeat.
    MirroredRepeat,
}

/// A texture object.
#[derive(Debug, Clone)]
pub struct Texture {
    format: TexFormat,
    width: u32,
    height: u32,
    data: Vec<u8>,
    /// Minification filter.
    pub min_filter: Filter,
    /// Magnification filter.
    pub mag_filter: Filter,
    /// Wrap mode for the s (x) coordinate.
    pub wrap_s: Wrap,
    /// Wrap mode for the t (y) coordinate.
    pub wrap_t: Wrap,
}

impl Texture {
    /// Creates an empty (zero-sized, incomplete) texture object, like
    /// `glGenTextures`.
    pub fn new() -> Texture {
        Texture {
            format: TexFormat::Rgba8,
            width: 0,
            height: 0,
            data: Vec::new(),
            min_filter: Filter::default(),
            mag_filter: Filter::default(),
            wrap_s: Wrap::default(),
            wrap_t: Wrap::default(),
        }
    }

    /// Uploads image data (`glTexImage2D`). `data` must be exactly
    /// `width * height * bytes_per_texel` long, rows bottom-to-top.
    ///
    /// # Errors
    ///
    /// `InvalidValue` on size/data mismatch or zero dimensions beyond the
    /// 4096² limit this implementation advertises.
    pub fn tex_image_2d(
        &mut self,
        format: TexFormat,
        width: u32,
        height: u32,
        data: &[u8],
    ) -> Result<(), GlError> {
        const MAX_SIZE: u32 = 4096;
        if width == 0 || height == 0 || width > MAX_SIZE || height > MAX_SIZE {
            return Err(GlError::invalid_value(format!(
                "texture size {width}x{height} outside 1..={MAX_SIZE}"
            )));
        }
        let expected = width as usize * height as usize * format.bytes_per_texel();
        if data.len() != expected {
            return Err(GlError::invalid_value(format!(
                "texture data length {} does not match {width}x{height} {format:?} ({expected})",
                data.len()
            )));
        }
        self.format = format;
        self.width = width;
        self.height = height;
        self.data = data.to_vec();
        Ok(())
    }

    /// Allocates uninitialised (zeroed) storage, as `glTexImage2D` with a
    /// null pointer does — used for render targets.
    ///
    /// # Errors
    ///
    /// Same size limits as [`Texture::tex_image_2d`].
    pub fn tex_storage(
        &mut self,
        format: TexFormat,
        width: u32,
        height: u32,
    ) -> Result<(), GlError> {
        let len = width as usize * height as usize * format.bytes_per_texel();
        let zeros = vec![0u8; len];
        self.tex_image_2d(format, width, height, &zeros)
    }

    /// Overwrites a sub-rectangle (`glTexSubImage2D`).
    ///
    /// # Errors
    ///
    /// `InvalidValue` if the rectangle is out of bounds or data mismatched.
    pub fn tex_sub_image_2d(
        &mut self,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
        data: &[u8],
    ) -> Result<(), GlError> {
        if x + width > self.width || y + height > self.height {
            return Err(GlError::invalid_value("subimage rectangle out of bounds"));
        }
        let bpt = self.format.bytes_per_texel();
        if data.len() != width as usize * height as usize * bpt {
            return Err(GlError::invalid_value("subimage data length mismatch"));
        }
        for row in 0..height as usize {
            let dst_off = ((y as usize + row) * self.width as usize + x as usize) * bpt;
            let src_off = row * width as usize * bpt;
            self.data[dst_off..dst_off + width as usize * bpt]
                .copy_from_slice(&data[src_off..src_off + width as usize * bpt]);
        }
        Ok(())
    }

    /// Texture width in texels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Texture height in texels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Storage format.
    pub fn format(&self) -> TexFormat {
        self.format
    }

    /// Raw texel bytes (row 0 first).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw texel bytes (used by render-to-texture).
    pub(crate) fn data_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Whether both dimensions are powers of two.
    pub fn is_pot(&self) -> bool {
        self.width.is_power_of_two() && self.height.is_power_of_two()
    }

    /// ES 2 texture-completeness: storage exists, and NPOT textures use
    /// `ClampToEdge` wrapping (mipmapping is outside this subset, so the
    /// NPOT no-mipmap rule is satisfied trivially).
    ///
    /// Sampling an incomplete texture returns opaque black, as mandated.
    pub fn is_complete(&self) -> bool {
        if self.width == 0 || self.height == 0 {
            return false;
        }
        if !self.is_pot() && (self.wrap_s != Wrap::ClampToEdge || self.wrap_t != Wrap::ClampToEdge)
        {
            return false;
        }
        true
    }

    /// Reads texel `(x, y)` as normalised RGBA floats (eq. (1)); clamps
    /// coordinates to the edge.
    pub fn texel(&self, x: i64, y: i64) -> [f32; 4] {
        let x = x.clamp(0, self.width as i64 - 1) as usize;
        let y = y.clamp(0, self.height as i64 - 1) as usize;
        let bpt = self.format.bytes_per_texel();
        let off = (y * self.width as usize + x) * bpt;
        match self.format {
            TexFormat::Rgba8 => [
                texel_to_float(self.data[off]),
                texel_to_float(self.data[off + 1]),
                texel_to_float(self.data[off + 2]),
                texel_to_float(self.data[off + 3]),
            ],
            TexFormat::Rgb8 => [
                texel_to_float(self.data[off]),
                texel_to_float(self.data[off + 1]),
                texel_to_float(self.data[off + 2]),
                1.0,
            ],
            TexFormat::Luminance8 => {
                let l = texel_to_float(self.data[off]);
                [l, l, l, 1.0]
            }
            TexFormat::LuminanceAlpha8 => {
                let l = texel_to_float(self.data[off]);
                let a = texel_to_float(self.data[off + 1]);
                [l, l, l, a]
            }
            TexFormat::RgbaF16 => {
                let h = |i: usize| {
                    crate::half::f16_bits_to_f32(u16::from_le_bytes([
                        self.data[off + 2 * i],
                        self.data[off + 2 * i + 1],
                    ]))
                };
                [h(0), h(1), h(2), h(3)]
            }
        }
    }

    fn wrap_coord(coord: f32, mode: Wrap) -> f32 {
        match mode {
            Wrap::ClampToEdge => coord.clamp(0.0, 1.0),
            Wrap::Repeat => coord - coord.floor(),
            Wrap::MirroredRepeat => {
                let t = (coord * 0.5).fract().abs() * 2.0;
                let t = if coord < 0.0 { 2.0 - t } else { t };
                if t > 1.0 {
                    2.0 - t
                } else {
                    t
                }
            }
        }
    }

    /// Samples at normalised coordinates with the configured filter and
    /// wrap modes. Incomplete textures sample as opaque black.
    pub fn sample(&self, coord: [f32; 2]) -> [f32; 4] {
        if !self.is_complete() {
            return [0.0, 0.0, 0.0, 1.0];
        }
        let u = Self::wrap_coord(coord[0], self.wrap_s);
        let v = Self::wrap_coord(coord[1], self.wrap_t);
        match self.mag_filter {
            Filter::Nearest => {
                let x = ((u * self.width as f32).floor() as i64).min(self.width as i64 - 1);
                let y = ((v * self.height as f32).floor() as i64).min(self.height as i64 - 1);
                self.texel(x, y)
            }
            Filter::Linear => {
                let fx = u * self.width as f32 - 0.5;
                let fy = v * self.height as f32 - 0.5;
                let x0 = fx.floor();
                let y0 = fy.floor();
                let tx = fx - x0;
                let ty = fy - y0;
                let (x0, y0) = (x0 as i64, y0 as i64);
                let c00 = self.texel(x0, y0);
                let c10 = self.texel(x0 + 1, y0);
                let c01 = self.texel(x0, y0 + 1);
                let c11 = self.texel(x0 + 1, y0 + 1);
                let mut out = [0.0f32; 4];
                for (i, slot) in out.iter_mut().enumerate() {
                    let top = c00[i] * (1.0 - tx) + c10[i] * tx;
                    let bottom = c01[i] * (1.0 - tx) + c11[i] * tx;
                    *slot = top * (1.0 - ty) + bottom * ty;
                }
                out
            }
        }
    }
}

impl Default for Texture {
    fn default() -> Self {
        Texture::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker2x2() -> Texture {
        let mut t = Texture::new();
        // 2x2 RGBA: red, green / blue, white
        t.tex_image_2d(
            TexFormat::Rgba8,
            2,
            2,
            &[
                255, 0, 0, 255, /**/ 0, 255, 0, 255, //
                0, 0, 255, 255, /**/ 255, 255, 255, 255,
            ],
        )
        .expect("upload");
        t
    }

    #[test]
    fn upload_validates_length() {
        let mut t = Texture::new();
        let err = t
            .tex_image_2d(TexFormat::Rgba8, 2, 2, &[0u8; 15])
            .unwrap_err();
        assert!(matches!(err, GlError::InvalidValue { .. }));
        assert!(t.tex_image_2d(TexFormat::Rgba8, 2, 2, &[0u8; 16]).is_ok());
        assert!(t
            .tex_image_2d(TexFormat::Luminance8, 3, 3, &[0u8; 9])
            .is_ok());
    }

    #[test]
    fn size_limits() {
        let mut t = Texture::new();
        assert!(t.tex_image_2d(TexFormat::Rgba8, 0, 1, &[]).is_err());
        assert!(t.tex_storage(TexFormat::Rgba8, 5000, 1).is_err());
    }

    #[test]
    fn nearest_sampling_hits_texel_centers() {
        let t = checker2x2();
        assert_eq!(t.sample([0.25, 0.25]), [1.0, 0.0, 0.0, 1.0]); // red
        assert_eq!(t.sample([0.75, 0.25]), [0.0, 1.0, 0.0, 1.0]); // green
        assert_eq!(t.sample([0.25, 0.75]), [0.0, 0.0, 1.0, 1.0]); // blue
        assert_eq!(t.sample([0.75, 0.75]), [1.0, 1.0, 1.0, 1.0]); // white
    }

    #[test]
    fn linear_filter_blends() {
        let mut t = checker2x2();
        t.mag_filter = Filter::Linear;
        let c = t.sample([0.5, 0.25]); // midway between red and green centres
        assert!((c[0] - 0.5).abs() < 1e-6);
        assert!((c[1] - 0.5).abs() < 1e-6);
        assert_eq!(c[3], 1.0);
    }

    #[test]
    fn npot_with_repeat_is_incomplete_and_samples_black() {
        let mut t = Texture::new();
        t.tex_image_2d(TexFormat::Luminance8, 3, 1, &[255, 255, 255])
            .expect("upload");
        assert!(t.is_complete());
        t.wrap_s = Wrap::Repeat;
        assert!(!t.is_complete());
        assert_eq!(t.sample([0.5, 0.5]), [0.0, 0.0, 0.0, 1.0]);
        t.wrap_s = Wrap::ClampToEdge;
        assert_eq!(t.sample([0.5, 0.5]), [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn pot_repeat_wraps() {
        let mut t = checker2x2();
        t.wrap_s = Wrap::Repeat;
        t.wrap_t = Wrap::Repeat;
        assert!(t.is_complete());
        // 1.25 wraps to 0.25.
        assert_eq!(t.sample([1.25, 0.25]), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(t.sample([-0.75, 0.25]), [1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn mirrored_repeat() {
        let mut t = checker2x2();
        t.wrap_s = Wrap::MirroredRepeat;
        // u = 1.25 mirrors to 0.75.
        assert_eq!(t.sample([1.25, 0.25]), [0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn luminance_replicates() {
        let mut t = Texture::new();
        t.tex_image_2d(TexFormat::Luminance8, 1, 1, &[51])
            .expect("upload");
        let c = t.sample([0.5, 0.5]);
        let l = 51.0 / 255.0;
        assert_eq!(c, [l, l, l, 1.0]);
    }

    #[test]
    fn half_float_texels_are_unnormalised() {
        let mut t = Texture::new();
        let mut data = Vec::new();
        for v in [100.0f32, -0.5, 65504.0, 1.0] {
            data.extend_from_slice(&crate::half::f32_to_f16_bits(v).to_le_bytes());
        }
        t.tex_image_2d(TexFormat::RgbaF16, 1, 1, &data)
            .expect("upload");
        // No eq. (1) normalisation: floats come back as stored.
        assert_eq!(t.sample([0.5, 0.5]), [100.0, -0.5, 65504.0, 1.0]);
    }

    #[test]
    fn luminance_alpha_splits_channels() {
        let mut t = Texture::new();
        t.tex_image_2d(TexFormat::LuminanceAlpha8, 2, 1, &[51, 102, 153, 204])
            .expect("upload");
        let l = 51.0 / 255.0;
        let a = 102.0 / 255.0;
        assert_eq!(t.sample([0.25, 0.5]), [l, l, l, a]);
        let l = 153.0 / 255.0;
        let a = 204.0 / 255.0;
        assert_eq!(t.sample([0.75, 0.5]), [l, l, l, a]);
    }

    #[test]
    fn sub_image_updates_rectangle() {
        let mut t = checker2x2();
        t.tex_sub_image_2d(1, 1, 1, 1, &[9, 9, 9, 255])
            .expect("sub");
        let c = t.texel(1, 1);
        assert!((c[0] - 9.0 / 255.0).abs() < 1e-7);
        assert!(t.tex_sub_image_2d(2, 0, 1, 1, &[0, 0, 0, 0]).is_err());
    }

    #[test]
    fn zero_sized_texture_incomplete() {
        let t = Texture::new();
        assert!(!t.is_complete());
        assert_eq!(t.sample([0.5, 0.5]), [0.0, 0.0, 0.0, 1.0]);
    }
}
