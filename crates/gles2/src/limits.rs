//! Implementation-defined limits and precision queries.
//!
//! Values default to what the VideoCore IV driver reports on a Raspberry
//! Pi, since that is the paper's platform.

use gpes_glsl::{Precision, ShaderKind};

/// Implementation limits (`glGetIntegerv` analogues).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// `GL_MAX_TEXTURE_SIZE`.
    pub max_texture_size: u32,
    /// `GL_MAX_TEXTURE_IMAGE_UNITS`.
    pub max_texture_units: usize,
    /// `GL_MAX_VARYING_VECTORS`.
    pub max_varying_vectors: usize,
    /// `GL_MAX_VERTEX_ATTRIBS`.
    pub max_vertex_attribs: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_texture_size: 4096,
            max_texture_units: 8,
            max_varying_vectors: 8,
            max_vertex_attribs: 8,
        }
    }
}

/// Optional driver extensions (`glGetString(GL_EXTENSIONS)` analogue).
///
/// All default to **off** — core ES 2.0, the paper's target. §II.5–6
/// notes that a few vendors ship half-float texture/renderbuffer
/// extensions; enabling these simulates such a vendor so ablation A6 can
/// measure why the paper rejects them ("neither enough nor portable").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extensions {
    /// `OES_texture_half_float`: RGBA16F texture uploads and sampling.
    pub oes_texture_half_float: bool,
    /// `EXT_color_buffer_half_float`: RGBA16F render targets (unclamped
    /// stores) and half-float readback.
    pub ext_color_buffer_half_float: bool,
}

impl Extensions {
    /// The advertised extension strings, in `glGetString` style.
    pub fn strings(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.oes_texture_half_float {
            out.push("GL_OES_texture_half_float");
        }
        if self.ext_color_buffer_half_float {
            out.push("GL_EXT_color_buffer_half_float");
        }
        out
    }
}

/// Result of `glGetShaderPrecisionFormat`: the paper (§IV-E) uses this call
/// to discover that most low-end mobile GPUs match IEEE 754 single
/// precision (8-bit exponent, 23-bit mantissa).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionFormat {
    /// log2 of the most negative representable magnitude.
    pub range_min: i32,
    /// log2 of the most positive representable magnitude.
    pub range_max: i32,
    /// Number of explicit mantissa bits (0 for integer formats' precision).
    pub precision: i32,
}

/// Returns the precision format for a float precision qualifier in a given
/// stage, modelling the VideoCore IV (fp32 everywhere; `lowp`/`mediump`
/// are aliases of fp32 in the fragment stage as on that hardware).
pub fn shader_precision_format(kind: ShaderKind, precision: Precision) -> PrecisionFormat {
    let _ = kind;
    match precision {
        // IEEE-754 binary32: range ±2^127, 23-bit mantissa.
        Precision::High | Precision::Medium | Precision::Low => PrecisionFormat {
            range_min: 127,
            range_max: 127,
            precision: 23,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_videocore_class_hardware() {
        let l = Limits::default();
        assert_eq!(l.max_texture_units, 8);
        assert_eq!(l.max_varying_vectors, 8);
    }

    #[test]
    fn highp_float_is_ieee_single() {
        let p = shader_precision_format(ShaderKind::Fragment, Precision::High);
        assert_eq!(p.precision, 23);
        assert_eq!(p.range_max, 127);
    }

    #[test]
    fn all_precisions_report_fp32_on_this_device() {
        for prec in [Precision::Low, Precision::Medium, Precision::High] {
            let p = shader_precision_format(ShaderKind::Vertex, prec);
            assert_eq!(p.precision, 23);
        }
    }
}
