//! Deterministic fault injection for the simulated driver.
//!
//! Real mobile GL stacks fail in a handful of well-known places: program
//! links fail under memory pressure, texture allocations and uploads
//! return `GL_OUT_OF_MEMORY`, framebuffer completeness checks come back
//! `GL_FRAMEBUFFER_UNSUPPORTED`, readbacks fail, and — the big one — the
//! whole context is lost (`EGL_CONTEXT_LOST`), invalidating every object
//! created against it. A [`FaultPlan`] reproduces exactly those failures
//! on a deterministic, seeded schedule so recovery code can be tested in
//! CI instead of on a device that happens to be low on memory.
//!
//! A plan is installed on a [`crate::Context`] via
//! [`crate::Context::install_fault_plan`]. Every time the context reaches
//! one of the five injectable [`FaultSite`]s it asks the plan for a
//! decision ([`FaultPlan::roll`]); the plan either passes, injects a
//! typed [`crate::GlError::ResourceExhausted`], or loses the context —
//! after which every call on the context returns
//! [`crate::GlError::ContextLost`] until the context is torn down.
//!
//! Determinism: a plan's decisions are a pure function of its seed, its
//! configuration, and the sequence of `roll` calls. Two plans with the
//! same seed and configuration driven through the same call sequence make
//! identical decisions (asserted in `tests/faults.rs`).

/// The five injectable failure sites, mirroring where real ES 2 drivers
/// fail under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `glLinkProgram` fails (driver out of shader memory).
    ProgramLink,
    /// Immutable texture allocation (`glTexStorage`-style) fails.
    TextureAlloc,
    /// Texture upload (`glTexImage2D` / `glTexSubImage2D`) fails.
    TextureUpload,
    /// Framebuffer completeness check fails (`GL_FRAMEBUFFER_UNSUPPORTED`
    /// under memory pressure).
    FramebufferCheck,
    /// Pixel readback (`glReadPixels`) fails.
    Readback,
}

impl FaultSite {
    /// Every injectable site, in a stable order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::ProgramLink,
        FaultSite::TextureAlloc,
        FaultSite::TextureUpload,
        FaultSite::FramebufferCheck,
        FaultSite::Readback,
    ];

    /// Human-readable site name (appears in injected error messages).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::ProgramLink => "program link",
            FaultSite::TextureAlloc => "texture allocation",
            FaultSite::TextureUpload => "texture upload",
            FaultSite::FramebufferCheck => "framebuffer completeness",
            FaultSite::Readback => "readback",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::ProgramLink => 0,
            FaultSite::TextureAlloc => 1,
            FaultSite::TextureUpload => 2,
            FaultSite::FramebufferCheck => 3,
            FaultSite::Readback => 4,
        }
    }
}

/// A single fault decision from [`FaultPlan::roll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// No fault — the operation proceeds normally.
    Pass,
    /// Inject a transient failure at this site
    /// ([`crate::GlError::ResourceExhausted`]).
    Fault,
    /// Lose the context: the operation and every later one fail with
    /// [`crate::GlError::ContextLost`].
    LoseContext,
}

/// A seeded, deterministic schedule of driver faults.
///
/// Configure per-site probabilistic rates ([`FaultPlan::rate`] /
/// [`FaultPlan::rate_all`]), exact one-shot failures
/// ([`FaultPlan::fail_next`]), and context loss — either probabilistic
/// ([`FaultPlan::context_loss_rate`]) or at a fixed operation count
/// ([`FaultPlan::lose_context_after`], one-shot). The plan carries its
/// own PRNG (a splitmix64, hand-rolled so the simulator stays
/// dependency-free) and its own injection counters, so it can be moved
/// between contexts — the serving engine carries a worker's plan across
/// a context rebuild precisely so a one-shot loss fires exactly once.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rng: u64,
    rates: [f64; 5],
    fail_next: [u64; 5],
    loss_rate: f64,
    lose_after: Option<u64>,
    ops: u64,
    injected: u64,
    context_losses: u64,
}

impl FaultPlan {
    /// A plan with no faults configured, seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rng: seed,
            rates: [0.0; 5],
            fail_next: [0; 5],
            loss_rate: 0.0,
            lose_after: None,
            ops: 0,
            injected: 0,
            context_losses: 0,
        }
    }

    /// Sets the probability (clamped to `0.0..=1.0`) that a roll at
    /// `site` injects a fault.
    #[must_use]
    pub fn rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        self.rates[site.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the same injection probability at every site.
    #[must_use]
    pub fn rate_all(mut self, rate: f64) -> FaultPlan {
        for r in &mut self.rates {
            *r = rate.clamp(0.0, 1.0);
        }
        self
    }

    /// Makes the next `count` rolls at `site` fail unconditionally —
    /// the deterministic primitive for "fails once, then succeeds"
    /// retry tests.
    #[must_use]
    pub fn fail_next(mut self, site: FaultSite, count: u64) -> FaultPlan {
        self.fail_next[site.index()] = count;
        self
    }

    /// Sets the probability (clamped to `0.0..=1.0`) that any roll loses
    /// the context.
    #[must_use]
    pub fn context_loss_rate(mut self, rate: f64) -> FaultPlan {
        self.loss_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Loses the context on the first roll after `ops` operations have
    /// been observed. One-shot: once fired it never fires again, even if
    /// the plan is moved to a rebuilt context.
    #[must_use]
    pub fn lose_context_after(mut self, ops: u64) -> FaultPlan {
        self.lose_after = Some(ops);
        self
    }

    /// A plan with the same configuration but an independent PRNG stream,
    /// for handing distinct-but-reproducible schedules to N workers.
    #[must_use]
    pub fn derive(&self, salt: u64) -> FaultPlan {
        let seed = mix(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultPlan {
            seed,
            rng: seed,
            rates: self.rates,
            fail_next: self.fail_next,
            loss_rate: self.loss_rate,
            lose_after: self.lose_after,
            ops: 0,
            injected: 0,
            context_losses: 0,
        }
    }

    /// The seed this plan's PRNG stream started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rolls observed so far (every faultable operation counts one).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Faults injected so far, context losses included.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Context losses triggered so far.
    pub fn context_losses(&self) -> u64 {
        self.context_losses
    }

    /// Decides the fate of one operation at `site`. Called by the driver
    /// at each injectable site; exposed so tests can drive a plan through
    /// a synthetic operation sequence and assert determinism.
    pub fn roll(&mut self, site: FaultSite) -> FaultOutcome {
        self.ops += 1;
        // Two draws per roll regardless of configuration, so the stream
        // a given roll sees depends only on how many rolls preceded it.
        let loss_draw = self.next_f64();
        let site_draw = self.next_f64();
        if let Some(after) = self.lose_after {
            if self.ops > after {
                self.lose_after = None;
                self.injected += 1;
                self.context_losses += 1;
                return FaultOutcome::LoseContext;
            }
        }
        if self.loss_rate > 0.0 && loss_draw < self.loss_rate {
            self.injected += 1;
            self.context_losses += 1;
            return FaultOutcome::LoseContext;
        }
        let idx = site.index();
        if self.fail_next[idx] > 0 {
            self.fail_next[idx] -= 1;
            self.injected += 1;
            return FaultOutcome::Fault;
        }
        if self.rates[idx] > 0.0 && site_draw < self.rates[idx] {
            self.injected += 1;
            return FaultOutcome::Fault;
        }
        FaultOutcome::Pass
    }

    fn next_f64(&mut self) -> f64 {
        // splitmix64: tiny, full-period, and plenty for fault schedules.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (mix(self.rng) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = FaultPlan::new(42).rate_all(0.3).context_loss_rate(0.05);
        let mut b = FaultPlan::new(42).rate_all(0.3).context_loss_rate(0.05);
        for i in 0..2000 {
            let site = FaultSite::ALL[i % FaultSite::ALL.len()];
            assert_eq!(a.roll(site), b.roll(site), "diverged at roll {i}");
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "a 30% rate over 2000 rolls must inject");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(1).rate_all(0.5);
        let mut b = FaultPlan::new(2).rate_all(0.5);
        let diverged = (0..256).any(|i| {
            let site = FaultSite::ALL[i % FaultSite::ALL.len()];
            a.roll(site) != b.roll(site)
        });
        assert!(diverged);
    }

    #[test]
    fn fail_next_is_exact() {
        let mut plan = FaultPlan::new(7).fail_next(FaultSite::Readback, 2);
        assert_eq!(plan.roll(FaultSite::Readback), FaultOutcome::Fault);
        assert_eq!(plan.roll(FaultSite::TextureUpload), FaultOutcome::Pass);
        assert_eq!(plan.roll(FaultSite::Readback), FaultOutcome::Fault);
        assert_eq!(plan.roll(FaultSite::Readback), FaultOutcome::Pass);
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn lose_after_is_one_shot() {
        let mut plan = FaultPlan::new(9).lose_context_after(3);
        for _ in 0..3 {
            assert_eq!(plan.roll(FaultSite::Readback), FaultOutcome::Pass);
        }
        assert_eq!(plan.roll(FaultSite::Readback), FaultOutcome::LoseContext);
        // Moved to a fresh context, the same plan never loses it again.
        for _ in 0..100 {
            assert_eq!(plan.roll(FaultSite::Readback), FaultOutcome::Pass);
        }
        assert_eq!(plan.context_losses(), 1);
    }

    #[test]
    fn derive_changes_stream_keeps_config() {
        let base = FaultPlan::new(11).rate_all(0.5).lose_context_after(4);
        let mut w0 = base.derive(0);
        let mut w1 = base.derive(1);
        assert_ne!(w0.seed(), w1.seed());
        let mut diverged = false;
        for _ in 0..256 {
            diverged |= w0.roll(FaultSite::Readback) != w1.roll(FaultSite::Readback);
        }
        assert!(diverged, "derived streams must be independent");
        // Config (here: the one-shot loss) carries over to both.
        assert_eq!(w0.context_losses() + w1.context_losses(), 2);
    }
}
