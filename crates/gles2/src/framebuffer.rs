//! Framebuffers: the default window-system framebuffer and texture-backed
//! framebuffer objects (render-to-texture, the paper's workaround #7).

use crate::error::GlError;
use crate::handles::TextureId;

/// The default framebuffer (the "screen"): an RGBA8 color buffer plus an
/// optional depth buffer.
#[derive(Debug, Clone)]
pub struct DefaultFramebuffer {
    width: u32,
    height: u32,
    color: Vec<u8>,
    depth: Vec<f32>,
}

impl DefaultFramebuffer {
    /// Creates a default framebuffer of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero (callers validate).
    pub fn new(width: u32, height: u32) -> DefaultFramebuffer {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        DefaultFramebuffer {
            width,
            height,
            color: vec![0; width as usize * height as usize * 4],
            depth: vec![1.0; width as usize * height as usize],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// RGBA8 color bytes, row 0 = bottom.
    pub fn color(&self) -> &[u8] {
        &self.color
    }

    /// Mutable color bytes.
    pub(crate) fn color_mut(&mut self) -> &mut Vec<u8> {
        &mut self.color
    }

    /// Mutable depth values.
    pub(crate) fn depth_mut(&mut self) -> &mut Vec<f32> {
        &mut self.depth
    }
}

/// A framebuffer object with (at most) one color attachment.
///
/// ES 2 FBOs also accept renderbuffer and depth attachments; GPGPU needs
/// only `COLOR_ATTACHMENT0` + texture, which is what this subset models.
#[derive(Debug, Clone, Default)]
pub struct Framebuffer {
    /// The texture attached at `COLOR_ATTACHMENT0`.
    pub color_attachment: Option<TextureId>,
}

impl Framebuffer {
    /// Creates an FBO with no attachment (incomplete until one is set).
    pub fn new() -> Framebuffer {
        Framebuffer::default()
    }

    /// Completeness check against the owning context's texture table.
    ///
    /// Core ES 2 renders only to `RGBA8`; `RGBA16F` becomes
    /// color-renderable when the context enables
    /// `EXT_color_buffer_half_float` (`half_float_renderable`).
    ///
    /// # Errors
    ///
    /// `InvalidFramebufferOperation` with the specific reason, mirroring
    /// `glCheckFramebufferStatus`.
    pub fn check_complete(
        &self,
        texture_info: impl Fn(TextureId) -> Option<(crate::texture::TexFormat, u32, u32)>,
        half_float_renderable: bool,
    ) -> Result<(), GlError> {
        let id = self
            .color_attachment
            .ok_or(GlError::InvalidFramebufferOperation {
                message: "missing color attachment".into(),
            })?;
        let (format, w, h) = texture_info(id).ok_or(GlError::InvalidFramebufferOperation {
            message: "attached texture was deleted".into(),
        })?;
        let renderable = format == crate::texture::TexFormat::Rgba8
            || (format == crate::texture::TexFormat::RgbaF16 && half_float_renderable);
        if !renderable {
            return Err(GlError::InvalidFramebufferOperation {
                message: format!("attachment format {format:?} is not color-renderable"),
            });
        }
        if w == 0 || h == 0 {
            return Err(GlError::InvalidFramebufferOperation {
                message: "attachment has no storage".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texture::TexFormat;

    #[test]
    fn default_fb_dimensions_and_clear_state() {
        let fb = DefaultFramebuffer::new(4, 3);
        assert_eq!(fb.width(), 4);
        assert_eq!(fb.height(), 3);
        assert_eq!(fb.color().len(), 4 * 3 * 4);
        assert!(fb.color().iter().all(|&b| b == 0));
    }

    #[test]
    fn fbo_incomplete_without_attachment() {
        let fbo = Framebuffer::new();
        let err = fbo.check_complete(|_| None, false).unwrap_err();
        assert!(err.to_string().contains("missing color attachment"));
    }

    #[test]
    fn fbo_rejects_non_renderable_format() {
        let mut fbo = Framebuffer::new();
        fbo.color_attachment = Some(TextureId(1));
        let err = fbo
            .check_complete(|_| Some((TexFormat::Luminance8, 4, 4)), false)
            .unwrap_err();
        assert!(err.to_string().contains("not color-renderable"));
        fbo.check_complete(|_| Some((TexFormat::Rgba8, 4, 4)), false)
            .expect("rgba8 attachment is complete");
    }

    #[test]
    fn fbo_half_float_renderable_only_with_extension() {
        let mut fbo = Framebuffer::new();
        fbo.color_attachment = Some(TextureId(1));
        let err = fbo
            .check_complete(|_| Some((TexFormat::RgbaF16, 4, 4)), false)
            .unwrap_err();
        assert!(err.to_string().contains("not color-renderable"));
        fbo.check_complete(|_| Some((TexFormat::RgbaF16, 4, 4)), true)
            .expect("extension makes RGBA16F renderable");
    }

    #[test]
    fn fbo_rejects_zero_storage() {
        let mut fbo = Framebuffer::new();
        fbo.color_attachment = Some(TextureId(1));
        let err = fbo
            .check_complete(|_| Some((TexFormat::Rgba8, 0, 0)), false)
            .unwrap_err();
        assert!(err.to_string().contains("no storage"));
    }
}
