//! Error model for the simulated GLES2 driver.
//!
//! Real OpenGL reports errors through `glGetError` flags; this Rust
//! implementation returns `Result` values instead, with variants mirroring
//! the GL error enumerants plus shader-compiler diagnostics.

use std::fmt;

/// Errors produced by the simulated OpenGL ES 2.0 implementation.
#[derive(Debug, Clone, PartialEq)]
pub enum GlError {
    /// `GL_INVALID_ENUM` — an enumerant is not accepted (e.g. a primitive
    /// mode or texture format outside the supported subset).
    InvalidEnum {
        /// What was wrong.
        message: String,
    },
    /// `GL_INVALID_VALUE` — a numeric argument is out of range.
    InvalidValue {
        /// What was wrong.
        message: String,
    },
    /// `GL_INVALID_OPERATION` — the operation is not allowed in the current
    /// state (e.g. drawing with no program bound, sampler feedback loop).
    InvalidOperation {
        /// What was wrong.
        message: String,
    },
    /// `GL_INVALID_FRAMEBUFFER_OPERATION` — the bound framebuffer is not
    /// complete.
    InvalidFramebufferOperation {
        /// Completeness status description.
        message: String,
    },
    /// A name referred to a deleted or never-created object.
    NoSuchObject {
        /// The object kind (texture, program, …).
        kind: &'static str,
        /// The raw handle value.
        id: u32,
    },
    /// Shader compilation failed (the "shader info log").
    Compile(gpes_glsl::CompileError),
    /// Program linking failed (the "program info log").
    Link {
        /// Linker diagnostic.
        message: String,
    },
    /// A shader invocation failed at run time (loop budget, internal type
    /// confusion). Real hardware cannot report this; the simulator can.
    ShaderTrap(gpes_glsl::RuntimeError),
    /// `GL_OUT_OF_MEMORY`-flavoured failure: an allocation, upload, link
    /// or readback failed under (simulated) memory pressure. Transient —
    /// the same call can succeed on retry.
    ResourceExhausted {
        /// What ran out / which site was injected.
        message: String,
    },
    /// The context was lost (`EGL_CONTEXT_LOST`): every object created
    /// against it is dead, and every further call on the context returns
    /// this error until the context is torn down and rebuilt.
    ContextLost,
}

impl GlError {
    #[allow(dead_code)] // kept for API symmetry with the other constructors
    pub(crate) fn invalid_enum(message: impl Into<String>) -> Self {
        GlError::InvalidEnum {
            message: message.into(),
        }
    }

    pub(crate) fn invalid_value(message: impl Into<String>) -> Self {
        GlError::InvalidValue {
            message: message.into(),
        }
    }

    pub(crate) fn invalid_op(message: impl Into<String>) -> Self {
        GlError::InvalidOperation {
            message: message.into(),
        }
    }

    /// Whether this error is *transient* — the same operation can
    /// legitimately succeed if retried (possibly on a rebuilt context).
    ///
    /// | Variant | Classification |
    /// |---|---|
    /// | [`GlError::ResourceExhausted`] | transient (memory pressure passes) |
    /// | [`GlError::ContextLost`] | transient (succeeds on a rebuilt context) |
    /// | everything else | permanent (caller/shader bug; retrying repeats it) |
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            GlError::ResourceExhausted { .. } | GlError::ContextLost
        )
    }
}

impl fmt::Display for GlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlError::InvalidEnum { message } => write!(f, "invalid enum: {message}"),
            GlError::InvalidValue { message } => write!(f, "invalid value: {message}"),
            GlError::InvalidOperation { message } => write!(f, "invalid operation: {message}"),
            GlError::InvalidFramebufferOperation { message } => {
                write!(f, "invalid framebuffer operation: {message}")
            }
            GlError::NoSuchObject { kind, id } => write!(f, "no such {kind} object: {id}"),
            GlError::Compile(e) => write!(f, "shader compile failed: {e}"),
            GlError::Link { message } => write!(f, "program link failed: {message}"),
            GlError::ShaderTrap(e) => write!(f, "shader execution trapped: {e}"),
            GlError::ResourceExhausted { message } => {
                write!(f, "out of resources: {message}")
            }
            GlError::ContextLost => write!(f, "context lost; rebuild the context"),
        }
    }
}

impl std::error::Error for GlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GlError::Compile(e) => Some(e),
            GlError::ShaderTrap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gpes_glsl::CompileError> for GlError {
    fn from(e: gpes_glsl::CompileError) -> Self {
        GlError::Compile(e)
    }
}

impl From<gpes_glsl::RuntimeError> for GlError {
    fn from(e: gpes_glsl::RuntimeError) -> Self {
        GlError::ShaderTrap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GlError::invalid_enum("quads are not a GLES2 primitive");
        assert!(e.to_string().contains("quads"));
        let e = GlError::NoSuchObject {
            kind: "texture",
            id: 42,
        };
        assert_eq!(e.to_string(), "no such texture object: 42");
    }

    #[test]
    fn wraps_compile_errors() {
        let ce = gpes_glsl::CompileError::parse("boom", gpes_glsl::span::Span::default());
        let ge: GlError = ce.clone().into();
        assert!(matches!(ge, GlError::Compile(_)));
        assert!(ge.to_string().contains("boom"));
    }

    #[test]
    fn transient_classification() {
        assert!(GlError::ContextLost.is_transient());
        assert!(GlError::ResourceExhausted {
            message: "texture upload".into()
        }
        .is_transient());
        assert!(!GlError::invalid_op("draw without program").is_transient());
        assert!(!GlError::Link {
            message: "varying mismatch".into()
        }
        .is_transient());
        assert!(!GlError::NoSuchObject {
            kind: "texture",
            id: 1
        }
        .is_transient());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GlError>();
    }
}
