//! The GL context: object tables, bound state, draw calls and readback.

use crate::convert::StoreRounding;
use crate::error::GlError;
use crate::faults::{FaultOutcome, FaultPlan, FaultSite};
use crate::framebuffer::{DefaultFramebuffer, Framebuffer};
use crate::handles::{FramebufferId, ProgramId, TextureId};
use crate::limits::{shader_precision_format, Extensions, Limits, PrecisionFormat};
use crate::program::Program;
use crate::raster::{
    self, AttribArray, Bindings, Dispatch, DrawStats, ExecMode, PrimitiveMode, RasterConfig,
    TargetImage,
};
use crate::texture::{Filter, TexFormat, Texture, Wrap};
use gpes_glsl::exec::{ExecLimits, FloatModel};
use gpes_glsl::{Precision, ShaderKind, Value};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// A software OpenGL ES 2.0 context.
///
/// One context owns all objects (textures, programs, framebuffers), the
/// default framebuffer and the bound state, mirroring a real EGL context +
/// surface.
///
/// # Example
///
/// ```
/// use gpes_gles2::{Context, PrimitiveMode};
///
/// # fn main() -> Result<(), gpes_gles2::GlError> {
/// let mut gl = Context::new(4, 4)?;
/// let prog = gl.create_program(
///     "attribute vec2 a_pos;
///      void main() { gl_Position = vec4(a_pos, 0.0, 1.0); }",
///     "precision highp float;
///      void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }",
/// )?;
/// gl.use_program(prog)?;
/// gl.set_attribute("a_pos", 2, &[-1.0, -1.0, 3.0, -1.0, -1.0, 3.0])?;
/// gl.draw_arrays(PrimitiveMode::Triangles, 0, 3)?;
/// let pixels = gl.read_pixels(0, 0, 4, 4)?;
/// assert_eq!(&pixels[..4], &[255, 0, 0, 255]);
/// # Ok(())
/// # }
/// ```
pub struct Context {
    textures: Vec<Option<Texture>>,
    programs: Vec<Option<Program>>,
    framebuffers: Vec<Option<Framebuffer>>,
    default_fb: DefaultFramebuffer,
    bound_fb: Option<FramebufferId>,
    current_program: Option<ProgramId>,
    texture_units: Vec<Option<TextureId>>,
    attributes: HashMap<String, AttribArray>,
    viewport: (i32, i32, i32, i32),
    scissor: Option<(i32, i32, i32, i32)>,
    clear_color: [f32; 4],
    depth_test: bool,
    store_rounding: StoreRounding,
    float_model: FloatModel,
    dispatch: Dispatch,
    exec_limits: ExecLimits,
    exec_mode: ExecMode,
    limits: Limits,
    extensions: Extensions,
    strict_shaders: bool,
    last_stats: DrawStats,
    // Fault injection lives behind interior mutability because the read
    // path (`read_pixels`, completeness checks) takes `&self`.
    faults: RefCell<Option<FaultPlan>>,
    lost: Cell<bool>,
}

impl Context {
    /// Creates a context with a default framebuffer of the given size
    /// (the EGL window surface).
    ///
    /// # Errors
    ///
    /// `InvalidValue` if either dimension is zero or exceeds the maximum
    /// renderbuffer size.
    pub fn new(width: u32, height: u32) -> Result<Context, GlError> {
        Context::new_with_limits(width, height, Limits::default())
    }

    /// Creates a context with explicit implementation limits — useful to
    /// simulate a more constrained device (smaller `GL_MAX_TEXTURE_SIZE`,
    /// fewer texture units) than the VideoCore IV defaults.
    ///
    /// # Errors
    ///
    /// `InvalidValue` if either dimension is zero or exceeds
    /// `limits.max_texture_size`.
    pub fn new_with_limits(width: u32, height: u32, limits: Limits) -> Result<Context, GlError> {
        if width == 0
            || height == 0
            || width > limits.max_texture_size
            || height > limits.max_texture_size
        {
            return Err(GlError::invalid_value(format!(
                "default framebuffer size {width}x{height} out of range"
            )));
        }
        Ok(Context {
            textures: Vec::new(),
            programs: Vec::new(),
            framebuffers: Vec::new(),
            default_fb: DefaultFramebuffer::new(width, height),
            bound_fb: None,
            current_program: None,
            texture_units: vec![None; limits.max_texture_units],
            attributes: HashMap::new(),
            viewport: (0, 0, width as i32, height as i32),
            scissor: None,
            clear_color: [0.0, 0.0, 0.0, 0.0],
            depth_test: false,
            store_rounding: StoreRounding::default(),
            float_model: FloatModel::default(),
            // The CI dispatch matrix pins rasteriser threading through the
            // environment so every test binary runs both serial and
            // banded-parallel without per-test plumbing.
            dispatch: Dispatch::from_env().unwrap_or_default(),
            exec_limits: ExecLimits::default(),
            // `GPES_EXECUTOR` mirrors `GPES_DISPATCH`: the CI matrix pins
            // the executor without per-test plumbing.
            exec_mode: ExecMode::from_env().unwrap_or_default(),
            limits,
            extensions: Extensions::default(),
            strict_shaders: false,
            last_stats: DrawStats::default(),
            faults: RefCell::new(None),
            lost: Cell::new(false),
        })
    }

    // ---- configuration -----------------------------------------------------

    /// Implementation limits (`glGetIntegerv`).
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Enabled driver extensions (all off by default — core ES 2.0).
    pub fn extensions(&self) -> &Extensions {
        &self.extensions
    }

    /// Advertised extension strings (`glGetString(GL_EXTENSIONS)`).
    pub fn extension_strings(&self) -> Vec<&'static str> {
        self.extensions.strings()
    }

    /// Simulates a driver that ships the named extension (§II.5–6: "some
    /// vendors provide extensions for half floats"). Known names:
    /// `"GL_OES_texture_half_float"` and
    /// `"GL_EXT_color_buffer_half_float"`.
    ///
    /// # Errors
    ///
    /// `InvalidEnum` for names this simulator does not model.
    pub fn enable_extension(&mut self, name: &str) -> Result<(), GlError> {
        match name {
            "GL_OES_texture_half_float" => {
                self.extensions.oes_texture_half_float = true;
                Ok(())
            }
            "GL_EXT_color_buffer_half_float" => {
                // Rendering half floats implies being able to create the
                // texture in the first place.
                self.extensions.oes_texture_half_float = true;
                self.extensions.ext_color_buffer_half_float = true;
                Ok(())
            }
            other => Err(GlError::invalid_enum(format!(
                "unknown extension `{other}`"
            ))),
        }
    }

    /// `glGetShaderPrecisionFormat` — the call the paper uses in §IV-E.
    pub fn shader_precision_format(
        &self,
        kind: ShaderKind,
        precision: Precision,
    ) -> PrecisionFormat {
        shader_precision_format(kind, precision)
    }

    /// Selects how the framebuffer rounds float outputs to bytes (eq. (2)).
    pub fn set_store_rounding(&mut self, rounding: StoreRounding) {
        self.store_rounding = rounding;
    }

    /// Selects the floating-point model the simulated GPU executes with.
    pub fn set_float_model(&mut self, model: FloatModel) {
        self.float_model = model;
    }

    /// Current floating-point model.
    pub fn float_model(&self) -> FloatModel {
        self.float_model
    }

    /// Selects serial or parallel fragment dispatch.
    pub fn set_dispatch(&mut self, dispatch: Dispatch) {
        self.dispatch = dispatch;
    }

    /// Selects the shader execution mode (SPMD lane VM by default; the
    /// scalar VM and tree-walking interpreter remain available as
    /// reference oracles for differential testing).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The current shader execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Replaces shader execution limits (loop budgets).
    pub fn set_exec_limits(&mut self, limits: ExecLimits) {
        self.exec_limits = limits;
    }

    /// Enables or disables the depth test (disabled by default, as GPGPU
    /// passes do not use it).
    pub fn set_depth_test(&mut self, enabled: bool) {
        self.depth_test = enabled;
    }

    /// Sets the viewport (`glViewport`).
    pub fn viewport(&mut self, x: i32, y: i32, width: i32, height: i32) {
        self.viewport = (x, y, width.max(0), height.max(0));
    }

    /// Sets or clears the scissor rectangle.
    pub fn set_scissor(&mut self, scissor: Option<(i32, i32, i32, i32)>) {
        self.scissor = scissor;
    }

    /// Sets the clear colour (`glClearColor`).
    pub fn set_clear_color(&mut self, rgba: [f32; 4]) {
        self.clear_color = rgba;
    }

    /// Statistics of the most recent draw call.
    pub fn last_draw_stats(&self) -> &DrawStats {
        &self.last_stats
    }

    /// Dimensions of the default framebuffer (the EGL surface size).
    pub fn default_size(&self) -> (u32, u32) {
        (self.default_fb.width(), self.default_fb.height())
    }

    // ---- fault injection ---------------------------------------------------

    /// Installs a deterministic [`FaultPlan`]: from now on the five
    /// injectable [`FaultSite`]s consult the plan, which can fail them
    /// with [`GlError::ResourceExhausted`] or lose the context outright.
    /// Replaces any previously installed plan.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        *self.faults.borrow_mut() = Some(plan);
    }

    /// Removes and returns the installed fault plan **with its advanced
    /// state** (PRNG position, consumed one-shots, injection counters) —
    /// the serving engine moves a worker's plan onto the replacement
    /// context after a rebuild so a one-shot loss cannot fire twice.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.faults.borrow_mut().take()
    }

    /// Whether this context has been poisoned by a context loss: every
    /// call that can fail now returns [`GlError::ContextLost`].
    pub fn is_lost(&self) -> bool {
        self.lost.get()
    }

    /// Faults the installed plan has injected so far (context losses
    /// included); `0` with no plan installed.
    pub fn faults_injected(&self) -> u64 {
        self.faults.borrow().as_ref().map_or(0, FaultPlan::injected)
    }

    /// One injectable operation: fails fast on a poisoned context, then
    /// asks the plan (if any) whether this operation faults.
    fn fault_check(&self, site: FaultSite) -> Result<(), GlError> {
        self.ensure_live()?;
        let mut guard = self.faults.borrow_mut();
        let Some(plan) = guard.as_mut() else {
            return Ok(());
        };
        match plan.roll(site) {
            FaultOutcome::Pass => Ok(()),
            FaultOutcome::Fault => Err(GlError::ResourceExhausted {
                message: format!("injected fault: {}", site.label()),
            }),
            FaultOutcome::LoseContext => {
                drop(guard);
                self.lost.set(true);
                Err(GlError::ContextLost)
            }
        }
    }

    /// The `EGL_CONTEXT_LOST` poison check for operations that are not
    /// injection sites themselves but must still die on a lost context.
    fn ensure_live(&self) -> Result<(), GlError> {
        if self.lost.get() {
            Err(GlError::ContextLost)
        } else {
            Ok(())
        }
    }

    // ---- textures -----------------------------------------------------------

    /// Creates a texture object (`glGenTextures`).
    pub fn create_texture(&mut self) -> TextureId {
        self.textures.push(Some(Texture::new()));
        TextureId(self.textures.len() as u32 - 1)
    }

    fn texture(&self, id: TextureId) -> Result<&Texture, GlError> {
        self.textures
            .get(id.0 as usize)
            .and_then(|t| t.as_ref())
            .ok_or(GlError::NoSuchObject {
                kind: "texture",
                id: id.0,
            })
    }

    fn texture_mut(&mut self, id: TextureId) -> Result<&mut Texture, GlError> {
        self.textures
            .get_mut(id.0 as usize)
            .and_then(|t| t.as_mut())
            .ok_or(GlError::NoSuchObject {
                kind: "texture",
                id: id.0,
            })
    }

    /// Uploads texel data (`glTexImage2D`). Only byte formats exist —
    /// limitation #5 of the paper is structural.
    ///
    /// # Errors
    ///
    /// Size/format validation errors from the texture object.
    pub fn tex_image_2d(
        &mut self,
        id: TextureId,
        format: TexFormat,
        width: u32,
        height: u32,
        data: &[u8],
    ) -> Result<(), GlError> {
        self.fault_check(FaultSite::TextureUpload)?;
        let max = self.limits.max_texture_size;
        if width > max || height > max {
            return Err(GlError::invalid_value(format!(
                "texture {width}x{height} exceeds GL_MAX_TEXTURE_SIZE {max}"
            )));
        }
        if format.requires_extension() && !self.extensions.oes_texture_half_float {
            return Err(GlError::invalid_enum(format!(
                "format {format:?} requires GL_OES_texture_half_float"
            )));
        }
        self.texture_mut(id)?
            .tex_image_2d(format, width, height, data)
    }

    /// Allocates zeroed texture storage (render target usage).
    ///
    /// # Errors
    ///
    /// Same validation as [`Context::tex_image_2d`].
    pub fn tex_storage(
        &mut self,
        id: TextureId,
        format: TexFormat,
        width: u32,
        height: u32,
    ) -> Result<(), GlError> {
        self.fault_check(FaultSite::TextureAlloc)?;
        if format.requires_extension() && !self.extensions.oes_texture_half_float {
            return Err(GlError::invalid_enum(format!(
                "format {format:?} requires GL_OES_texture_half_float"
            )));
        }
        self.texture_mut(id)?.tex_storage(format, width, height)
    }

    /// Updates a sub-rectangle (`glTexSubImage2D`).
    ///
    /// # Errors
    ///
    /// Bounds/length validation from the texture object.
    pub fn tex_sub_image_2d(
        &mut self,
        id: TextureId,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
        data: &[u8],
    ) -> Result<(), GlError> {
        self.fault_check(FaultSite::TextureUpload)?;
        self.texture_mut(id)?
            .tex_sub_image_2d(x, y, width, height, data)
    }

    /// Sets min/mag filters (`glTexParameteri`).
    ///
    /// # Errors
    ///
    /// `NoSuchObject` for stale handles.
    pub fn set_texture_filter(
        &mut self,
        id: TextureId,
        min: Filter,
        mag: Filter,
    ) -> Result<(), GlError> {
        let t = self.texture_mut(id)?;
        t.min_filter = min;
        t.mag_filter = mag;
        Ok(())
    }

    /// Sets wrap modes (`glTexParameteri`).
    ///
    /// # Errors
    ///
    /// `NoSuchObject` for stale handles.
    pub fn set_texture_wrap(&mut self, id: TextureId, s: Wrap, t: Wrap) -> Result<(), GlError> {
        let tex = self.texture_mut(id)?;
        tex.wrap_s = s;
        tex.wrap_t = t;
        Ok(())
    }

    /// Binds a texture to a unit (`glActiveTexture` + `glBindTexture`).
    ///
    /// # Errors
    ///
    /// `InvalidValue` for units beyond the limit; `NoSuchObject` for stale
    /// handles.
    pub fn bind_texture(&mut self, unit: u32, id: TextureId) -> Result<(), GlError> {
        if unit as usize >= self.texture_units.len() {
            return Err(GlError::invalid_value(format!(
                "texture unit {unit} exceeds the {} available units",
                self.texture_units.len()
            )));
        }
        self.texture(id)?; // validate
        self.texture_units[unit as usize] = Some(id);
        Ok(())
    }

    /// Unbinds whatever texture is bound to a unit.
    pub fn unbind_texture(&mut self, unit: u32) {
        if let Some(slot) = self.texture_units.get_mut(unit as usize) {
            *slot = None;
        }
    }

    /// Texture metadata (width, height, format) for inspection.
    ///
    /// # Errors
    ///
    /// `NoSuchObject` for stale handles.
    pub fn texture_info(&self, id: TextureId) -> Result<(TexFormat, u32, u32), GlError> {
        let t = self.texture(id)?;
        Ok((t.format(), t.width(), t.height()))
    }

    /// Deletes a texture object.
    pub fn delete_texture(&mut self, id: TextureId) {
        if let Some(slot) = self.textures.get_mut(id.0 as usize) {
            *slot = None;
        }
        for unit in self.texture_units.iter_mut() {
            if *unit == Some(id) {
                *unit = None;
            }
        }
    }

    /// Direct texel access **for tests and debugging only** — real ES 2 has
    /// no `glGetTexImage`; production code must read results through a
    /// framebuffer (the paper's limitation #7).
    ///
    /// # Errors
    ///
    /// `NoSuchObject` for stale handles.
    pub fn debug_texture_data(&self, id: TextureId) -> Result<&[u8], GlError> {
        Ok(self.texture(id)?.data())
    }

    // ---- programs -----------------------------------------------------------

    /// Compiles and links a program (`glCreateProgram` et al.).
    ///
    /// # Errors
    ///
    /// Compile or link diagnostics.
    pub fn create_program(&mut self, vs: &str, fs: &str) -> Result<ProgramId, GlError> {
        self.fault_check(FaultSite::ProgramLink)?;
        let program = Program::link_with(vs, fs, &self.limits, self.strict_shaders)?;
        self.programs.push(Some(program));
        Ok(ProgramId(self.programs.len() as u32 - 1))
    }

    /// Adopts an already-linked [`Program`] into this context's object
    /// table without compiling or linking anything — the mechanism behind
    /// cross-context program sharing: a process-wide cache links each
    /// generated source once, and every worker context installs a clone.
    /// The clone shares the expensive lowered bytecode through `Arc`
    /// handles; only the (empty) per-context uniform table is fresh.
    ///
    /// The caller is responsible for having linked the program under
    /// limits compatible with this context (worker pools share one
    /// [`Limits`] value, so this holds by construction).
    pub fn install_program(&mut self, program: Program) -> ProgramId {
        self.programs.push(Some(program));
        ProgramId(self.programs.len() as u32 - 1)
    }

    /// Enables the GLSL ES Appendix A validation pass for programs
    /// created afterwards — simulating a minimum-profile driver like the
    /// VideoCore IV's, which rejects `while` loops and non-constant `for`
    /// bounds at compile time.
    pub fn set_strict_shaders(&mut self, strict: bool) {
        self.strict_shaders = strict;
    }

    /// Whether Appendix A validation is on.
    pub fn strict_shaders(&self) -> bool {
        self.strict_shaders
    }

    fn program(&self, id: ProgramId) -> Result<&Program, GlError> {
        self.programs
            .get(id.0 as usize)
            .and_then(|p| p.as_ref())
            .ok_or(GlError::NoSuchObject {
                kind: "program",
                id: id.0,
            })
    }

    /// Makes a program current (`glUseProgram`).
    ///
    /// # Errors
    ///
    /// `NoSuchObject` for stale handles.
    pub fn use_program(&mut self, id: ProgramId) -> Result<(), GlError> {
        self.ensure_live()?;
        self.program(id)?;
        self.current_program = Some(id);
        Ok(())
    }

    /// Sets a uniform on the current program (`glUniform*`).
    ///
    /// # Errors
    ///
    /// `InvalidOperation` with no program bound, unknown names or type
    /// mismatches.
    pub fn set_uniform(&mut self, name: &str, value: Value) -> Result<(), GlError> {
        self.ensure_live()?;
        let id = self
            .current_program
            .ok_or_else(|| GlError::invalid_op("no program is current"))?;
        self.programs
            .get_mut(id.0 as usize)
            .and_then(|p| p.as_mut())
            .ok_or(GlError::NoSuchObject {
                kind: "program",
                id: id.0,
            })?
            .set_uniform(name, value)
    }

    /// Introspects the current program's interface.
    ///
    /// # Errors
    ///
    /// `InvalidOperation` if no program is current.
    pub fn current_program_info(&self) -> Result<&Program, GlError> {
        let id = self
            .current_program
            .ok_or_else(|| GlError::invalid_op("no program is current"))?;
        self.program(id)
    }

    /// Deletes a program object.
    pub fn delete_program(&mut self, id: ProgramId) {
        if let Some(slot) = self.programs.get_mut(id.0 as usize) {
            *slot = None;
        }
        if self.current_program == Some(id) {
            self.current_program = None;
        }
    }

    // ---- attributes -----------------------------------------------------------

    /// Supplies a client-side attribute array (`glVertexAttribPointer` with
    /// client memory, which ES 2 allows).
    ///
    /// # Errors
    ///
    /// `InvalidValue` for sizes outside 1–4 or ragged data.
    pub fn set_attribute(&mut self, name: &str, size: usize, data: &[f32]) -> Result<(), GlError> {
        if !(1..=4).contains(&size) {
            return Err(GlError::invalid_value("attribute size must be 1..=4"));
        }
        if !data.len().is_multiple_of(size) {
            return Err(GlError::invalid_value(
                "attribute data length is not a multiple of its size",
            ));
        }
        self.attributes.insert(
            name.to_owned(),
            AttribArray {
                size,
                data: data.to_vec(),
            },
        );
        Ok(())
    }

    // ---- framebuffers ----------------------------------------------------------

    /// Creates a framebuffer object (`glGenFramebuffers`).
    pub fn create_framebuffer(&mut self) -> FramebufferId {
        self.framebuffers.push(Some(Framebuffer::new()));
        FramebufferId(self.framebuffers.len() as u32 - 1)
    }

    /// Attaches a texture as `COLOR_ATTACHMENT0` (`glFramebufferTexture2D`)
    /// — the render-to-texture mechanism of workaround #7.
    ///
    /// # Errors
    ///
    /// `NoSuchObject` for stale handles.
    pub fn framebuffer_texture(
        &mut self,
        fb: FramebufferId,
        tex: TextureId,
    ) -> Result<(), GlError> {
        self.ensure_live()?;
        self.texture(tex)?;
        let fbo = self
            .framebuffers
            .get_mut(fb.0 as usize)
            .and_then(|f| f.as_mut())
            .ok_or(GlError::NoSuchObject {
                kind: "framebuffer",
                id: fb.0,
            })?;
        fbo.color_attachment = Some(tex);
        Ok(())
    }

    /// Binds a framebuffer; `None` binds the default framebuffer.
    ///
    /// # Errors
    ///
    /// `NoSuchObject` for stale handles.
    pub fn bind_framebuffer(&mut self, fb: Option<FramebufferId>) -> Result<(), GlError> {
        self.ensure_live()?;
        if let Some(id) = fb {
            self.framebuffers
                .get(id.0 as usize)
                .and_then(|f| f.as_ref())
                .ok_or(GlError::NoSuchObject {
                    kind: "framebuffer",
                    id: id.0,
                })?;
        }
        self.bound_fb = fb;
        Ok(())
    }

    /// `glCheckFramebufferStatus` for the bound framebuffer.
    ///
    /// # Errors
    ///
    /// `InvalidFramebufferOperation` describing incompleteness.
    pub fn check_framebuffer_complete(&self) -> Result<(), GlError> {
        self.fault_check(FaultSite::FramebufferCheck)?;
        match self.bound_fb {
            None => Ok(()),
            Some(id) => {
                let fbo = self
                    .framebuffers
                    .get(id.0 as usize)
                    .and_then(|f| f.as_ref())
                    .ok_or(GlError::NoSuchObject {
                        kind: "framebuffer",
                        id: id.0,
                    })?;
                fbo.check_complete(
                    |tid| {
                        self.texture(tid)
                            .ok()
                            .map(|t| (t.format(), t.width(), t.height()))
                    },
                    self.extensions.ext_color_buffer_half_float,
                )
            }
        }
    }

    /// Dimensions of the currently bound render target.
    ///
    /// # Errors
    ///
    /// Completeness errors for FBOs.
    pub fn target_size(&self) -> Result<(u32, u32), GlError> {
        match self.bound_fb {
            None => Ok((self.default_fb.width(), self.default_fb.height())),
            Some(id) => {
                let fbo = self
                    .framebuffers
                    .get(id.0 as usize)
                    .and_then(|f| f.as_ref())
                    .ok_or(GlError::NoSuchObject {
                        kind: "framebuffer",
                        id: id.0,
                    })?;
                let tex = fbo
                    .color_attachment
                    .ok_or(GlError::InvalidFramebufferOperation {
                        message: "missing color attachment".into(),
                    })?;
                let t = self.texture(tex)?;
                Ok((t.width(), t.height()))
            }
        }
    }

    /// Clears the bound framebuffer's colour (and depth when depth testing
    /// is enabled).
    ///
    /// # Errors
    ///
    /// Completeness errors for FBOs.
    pub fn clear(&mut self) -> Result<(), GlError> {
        self.check_framebuffer_complete()?;
        let rgba = self.clear_color;
        let bytes: Vec<u8> = rgba
            .iter()
            .map(|&c| crate::convert::float_to_texel(c, self.store_rounding))
            .collect();
        match self.bound_fb {
            None => {
                for px in self.default_fb.color_mut().chunks_exact_mut(4) {
                    px.copy_from_slice(&bytes);
                }
                for d in self.default_fb.depth_mut().iter_mut() {
                    *d = 1.0;
                }
            }
            Some(id) => {
                let tex_id = self.framebuffers[id.0 as usize]
                    .as_ref()
                    .expect("validated")
                    .color_attachment
                    .expect("validated");
                let tex = self.texture_mut(tex_id)?;
                match tex.format() {
                    TexFormat::RgbaF16 => {
                        let mut half_bytes = [0u8; 8];
                        for (i, &c) in rgba.iter().enumerate() {
                            let b = crate::half::f32_to_f16_bits(c).to_le_bytes();
                            half_bytes[2 * i] = b[0];
                            half_bytes[2 * i + 1] = b[1];
                        }
                        for px in tex.data_mut().chunks_exact_mut(8) {
                            px.copy_from_slice(&half_bytes);
                        }
                    }
                    _ => {
                        for px in tex.data_mut().chunks_exact_mut(4) {
                            px.copy_from_slice(&bytes);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    // ---- drawing -----------------------------------------------------------

    /// Issues a draw call (`glDrawArrays`).
    ///
    /// # Errors
    ///
    /// * `InvalidOperation` — no current program, missing attribute arrays,
    ///   or a sampler feedback loop (a texture simultaneously bound for
    ///   sampling and attached to the bound framebuffer).
    /// * `InvalidFramebufferOperation` — incomplete bound FBO.
    /// * `ShaderTrap` — a shader exceeded its execution limits.
    pub fn draw_arrays(
        &mut self,
        mode: PrimitiveMode,
        first: usize,
        count: usize,
    ) -> Result<DrawStats, GlError> {
        self.check_framebuffer_complete()?;
        let program_id = self
            .current_program
            .ok_or_else(|| GlError::invalid_op("no program is current"))?;

        // Feedback-loop detection: sampling the render target is undefined
        // in GL; the simulator makes it a hard error.
        let attachment: Option<TextureId> = match self.bound_fb {
            None => None,
            Some(id) => self.framebuffers[id.0 as usize]
                .as_ref()
                .and_then(|f| f.color_attachment),
        };
        if let Some(att) = attachment {
            if self.texture_units.iter().flatten().any(|&t| t == att) {
                return Err(GlError::invalid_op(
                    "feedback loop: render-target texture is also bound for sampling",
                ));
            }
        }

        // Move the program (and, for render-to-texture, the attachment's
        // storage) out of the object tables so the remaining borrows of
        // `self`'s fields are disjoint during rasterisation.
        let program = self.programs[program_id.0 as usize]
            .take()
            .expect("validated current program");
        let mut taken_texture: Option<(TextureId, Texture)> = attachment.map(|att_id| {
            let tex = self.textures[att_id.0 as usize]
                .take()
                .expect("attachment validated");
            (att_id, tex)
        });

        let config = RasterConfig {
            viewport: self.viewport,
            scissor: self.scissor,
            store_rounding: self.store_rounding,
            float_model: self.float_model,
            dispatch: self.dispatch,
            exec_mode: self.exec_mode,
            depth_test: self.depth_test && self.bound_fb.is_none(),
            exec_limits: self.exec_limits,
        };
        let bindings = Bindings {
            units: self
                .texture_units
                .iter()
                .map(|slot| {
                    slot.and_then(|id| self.textures.get(id.0 as usize).and_then(|t| t.as_ref()))
                })
                .collect(),
        };
        let result = match &mut taken_texture {
            None => {
                let width = self.default_fb.width();
                let height = self.default_fb.height();
                draw_into_default(
                    &mut self.default_fb,
                    width,
                    height,
                    &program,
                    &self.attributes,
                    mode,
                    first,
                    count,
                    &bindings,
                    &config,
                )
            }
            Some((_, tex)) => {
                let width = tex.width();
                let height = tex.height();
                let pixel = match tex.format() {
                    TexFormat::RgbaF16 => raster::PixelStore::RgbaF16,
                    _ => raster::PixelStore::Rgba8,
                };
                let mut target = TargetImage {
                    width,
                    height,
                    color: tex.data_mut().as_mut_slice(),
                    depth: None,
                    pixel,
                };
                raster::draw(
                    &program,
                    &self.attributes,
                    mode,
                    first,
                    count,
                    &bindings,
                    &mut target,
                    &config,
                )
            }
        };
        drop(bindings);
        if let Some((id, tex)) = taken_texture {
            self.textures[id.0 as usize] = Some(tex);
        }
        self.programs[program_id.0 as usize] = Some(program);
        let stats = result?;
        self.last_stats = stats;
        Ok(stats)
    }

    /// Reads RGBA8 pixels from the bound framebuffer (`glReadPixels`).
    /// Row 0 of the result is the bottom row, as in GL.
    ///
    /// # Errors
    ///
    /// `InvalidValue` for out-of-bounds rectangles; completeness errors for
    /// FBOs.
    pub fn read_pixels(&self, x: u32, y: u32, width: u32, height: u32) -> Result<Vec<u8>, GlError> {
        self.fault_check(FaultSite::Readback)?;
        self.check_framebuffer_complete()?;
        let (tw, th, data): (u32, u32, &[u8]) = match self.bound_fb {
            None => (
                self.default_fb.width(),
                self.default_fb.height(),
                self.default_fb.color(),
            ),
            Some(id) => {
                let tex_id = self.framebuffers[id.0 as usize]
                    .as_ref()
                    .expect("validated")
                    .color_attachment
                    .expect("validated");
                let t = self.texture(tex_id)?;
                if t.format() == TexFormat::RgbaF16 {
                    return Err(GlError::invalid_op(
                        "RGBA/UNSIGNED_BYTE read from a half-float framebuffer; use read_pixels_f16",
                    ));
                }
                (t.width(), t.height(), t.data())
            }
        };
        if x + width > tw || y + height > th {
            return Err(GlError::invalid_value(format!(
                "read rectangle {x},{y} {width}x{height} exceeds target {tw}x{th}"
            )));
        }
        let mut out = Vec::with_capacity(width as usize * height as usize * 4);
        for row in y..y + height {
            let off = (row as usize * tw as usize + x as usize) * 4;
            out.extend_from_slice(&data[off..off + width as usize * 4]);
        }
        Ok(out)
    }

    /// Reads RGBA binary16 pixels from a half-float framebuffer
    /// (`glReadPixels` with `HALF_FLOAT`, part of
    /// `EXT_color_buffer_half_float`). Returns 4 half-floats per pixel as
    /// raw bits, row 0 at the bottom.
    ///
    /// # Errors
    ///
    /// `InvalidOperation` when the bound target is not half-float (or is
    /// the default framebuffer, which is always RGBA8); bounds and
    /// completeness errors as in [`Context::read_pixels`].
    pub fn read_pixels_f16(
        &self,
        x: u32,
        y: u32,
        width: u32,
        height: u32,
    ) -> Result<Vec<u16>, GlError> {
        self.fault_check(FaultSite::Readback)?;
        self.check_framebuffer_complete()?;
        let id = self.bound_fb.ok_or_else(|| {
            GlError::invalid_op("the default framebuffer is RGBA8; bind a half-float FBO")
        })?;
        let tex_id = self.framebuffers[id.0 as usize]
            .as_ref()
            .expect("validated")
            .color_attachment
            .expect("validated");
        let t = self.texture(tex_id)?;
        if t.format() != TexFormat::RgbaF16 {
            return Err(GlError::invalid_op(
                "HALF_FLOAT read from a non-half-float framebuffer",
            ));
        }
        let (tw, th) = (t.width(), t.height());
        if x + width > tw || y + height > th {
            return Err(GlError::invalid_value(format!(
                "read rectangle {x},{y} {width}x{height} exceeds target {tw}x{th}"
            )));
        }
        let data = t.data();
        let mut out = Vec::with_capacity(width as usize * height as usize * 4);
        for row in y..y + height {
            let off = (row as usize * tw as usize + x as usize) * 8;
            for px in data[off..off + width as usize * 8].chunks_exact(2) {
                out.push(u16::from_le_bytes([px[0], px[1]]));
            }
        }
        Ok(out)
    }
}

#[allow(clippy::too_many_arguments)]
fn draw_into_default(
    default_fb: &mut DefaultFramebuffer,
    width: u32,
    height: u32,
    program: &Program,
    attributes: &HashMap<String, AttribArray>,
    mode: PrimitiveMode,
    first: usize,
    count: usize,
    bindings: &Bindings<'_>,
    config: &RasterConfig,
) -> Result<DrawStats, GlError> {
    // Split the default framebuffer into its color and depth planes.
    let fb = default_fb;
    // Safety dance not needed: obtain both &mut via struct methods one at a
    // time is impossible; instead, temporarily move the buffers out.
    let mut color = std::mem::take(fb.color_mut());
    let mut depth = std::mem::take(fb.depth_mut());
    let mut target = TargetImage {
        width,
        height,
        color: color.as_mut_slice(),
        depth: if config.depth_test {
            Some(depth.as_mut_slice())
        } else {
            None
        },
        pixel: raster::PixelStore::Rgba8,
    };
    let result = raster::draw(
        program,
        attributes,
        mode,
        first,
        count,
        bindings,
        &mut target,
        config,
    );
    *fb.color_mut() = color;
    *fb.depth_mut() = depth;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const VS_QUAD: &str = "attribute vec2 a_pos;\nvarying vec2 v_uv;\n\
        void main() { v_uv = a_pos * 0.5 + 0.5; gl_Position = vec4(a_pos, 0.0, 1.0); }";

    /// Two triangles covering the full clip space — the paper's
    /// workaround #2 for the missing quad primitive.
    const QUAD: [f32; 12] = [
        -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, // lower-right triangle
        -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, // upper-left triangle
    ];

    fn quad_context(w: u32, h: u32, fs: &str) -> (Context, ProgramId) {
        let mut gl = Context::new(w, h).expect("context");
        let prog = gl.create_program(VS_QUAD, fs).expect("program");
        gl.use_program(prog).expect("use");
        gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
        (gl, prog)
    }

    #[test]
    fn solid_fill_covers_every_pixel_exactly_once() {
        let (mut gl, _) = quad_context(
            8,
            8,
            "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0, 0.0, 0.5, 1.0); }",
        );
        let stats = gl
            .draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        assert_eq!(stats.vertices_shaded, 6);
        assert_eq!(stats.triangles_in, 2);
        assert_eq!(stats.triangles_rasterized, 2);
        // The fill-rule guarantee: exactly one fragment per pixel.
        assert_eq!(stats.fragments_shaded, 64);
        assert_eq!(stats.pixels_written, 64);
        let px = gl.read_pixels(0, 0, 8, 8).expect("read");
        for chunk in px.chunks_exact(4) {
            assert_eq!(chunk, &[255, 0, 127, 255]);
        }
    }

    #[test]
    fn points_scatter_one_pixel_each_with_passthrough_varyings() {
        let mut gl = Context::new(4, 4).expect("context");
        let vs = "attribute vec2 a_pos;\nattribute float a_val;\nvarying float v_val;\n\
                  void main() {\n\
                    v_val = a_val;\n\
                    gl_PointSize = 1.0;\n\
                    gl_Position = vec4(a_pos, 0.0, 1.0);\n\
                  }";
        let fs = "precision highp float;\nvarying float v_val;\n\
                  void main() { gl_FragColor = vec4(v_val, 0.0, 0.0, 1.0); }";
        let prog = gl.create_program(vs, fs).expect("program");
        gl.use_program(prog).expect("use");
        // Four points at the four pixel centres of the diagonal-ish cells.
        // NDC centre of pixel (x, y) on a 4x4 target: ((x+0.5)/2 - 1, …).
        let ndc = |p: f32| (p + 0.5) / 2.0 - 1.0;
        let positions = [
            ndc(0.0),
            ndc(0.0), //
            ndc(3.0),
            ndc(0.0), //
            ndc(1.0),
            ndc(2.0), //
            ndc(2.0),
            ndc(3.0),
        ];
        let values = [0.25f32, 0.5, 0.75, 1.0];
        gl.set_attribute("a_pos", 2, &positions).expect("pos");
        gl.set_attribute("a_val", 1, &values).expect("val");
        let stats = gl.draw_arrays(PrimitiveMode::Points, 0, 4).expect("draw");
        assert_eq!(stats.vertices_shaded, 4);
        assert_eq!(stats.fragments_shaded, 4, "one pixel per unit point");
        assert_eq!(stats.pixels_written, 4);
        let px = gl.read_pixels(0, 0, 4, 4).expect("read");
        let at = |x: usize, y: usize| px[(y * 4 + x) * 4];
        assert_eq!(at(0, 0), 63); // 0.25 → ⌊0.25·255⌋
        assert_eq!(at(3, 0), 127);
        assert_eq!(at(1, 2), 191);
        assert_eq!(at(2, 3), 255);
        // Untouched pixels keep the clear colour.
        assert_eq!(at(1, 0), 0);
        // Point draws accept any count (no multiple-of-3 rule).
        gl.draw_arrays(PrimitiveMode::Points, 0, 1)
            .expect("single point");
    }

    #[test]
    fn large_point_size_covers_a_square() {
        let mut gl = Context::new(4, 4).expect("context");
        let vs = "attribute vec2 a_pos;\n\
                  void main() { gl_PointSize = 2.0; gl_Position = vec4(a_pos, 0.0, 1.0); }";
        let fs = "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }";
        let prog = gl.create_program(vs, fs).expect("program");
        gl.use_program(prog).expect("use");
        // Point at the exact centre of the target: covers the middle 2x2.
        gl.set_attribute("a_pos", 2, &[0.0, 0.0]).expect("pos");
        let stats = gl.draw_arrays(PrimitiveMode::Points, 0, 1).expect("draw");
        assert_eq!(stats.pixels_written, 4);
        let px = gl.read_pixels(0, 0, 4, 4).expect("read");
        let at = |x: usize, y: usize| px[(y * 4 + x) * 4];
        for (x, y) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
            assert_eq!(at(x, y), 255, "pixel {x},{y}");
        }
        assert_eq!(at(0, 0), 0);
        assert_eq!(at(3, 3), 0);
    }

    #[test]
    fn strict_driver_rejects_appendix_a_violations() {
        let mut gl = Context::new(4, 4).expect("context");
        let fs_dynamic = "precision highp float;\nuniform float u_n;\n\
             void main() {\n\
               float acc = 0.0;\n\
               for (float i = 0.0; i < u_n; i += 1.0) { acc += 1.0; }\n\
               gl_FragColor = vec4(acc);\n\
             }";
        // The permissive driver takes it…
        gl.create_program(VS_QUAD, fs_dynamic).expect("permissive");
        // …the minimum-profile driver does not.
        gl.set_strict_shaders(true);
        assert!(gl.strict_shaders());
        let err = gl.create_program(VS_QUAD, fs_dynamic).unwrap_err();
        assert!(err.to_string().contains("appendix A"), "{err}");
        // Conformant loops still compile under strict mode.
        let fs_const = "precision highp float;\n\
             void main() {\n\
               float acc = 0.0;\n\
               for (float i = 0.0; i < 8.0; i += 1.0) { acc += 1.0; }\n\
               gl_FragColor = vec4(acc / 255.0);\n\
             }";
        gl.create_program(VS_QUAD, fs_const)
            .expect("strict-conformant");
    }

    #[test]
    fn preprocessor_runs_in_the_driver_compile_path() {
        let (mut gl, _) = quad_context(
            2,
            2,
            "precision highp float;\n\
             #define HALF 0.5\n\
             #ifdef HALF\n\
             void main() { gl_FragColor = vec4(HALF); }\n\
             #else\n\
             void main() { gl_FragColor = vec4(0.0); }\n\
             #endif\n",
        );
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        let px = gl.read_pixels(0, 0, 2, 2).expect("read");
        assert_eq!(px[0], 127);
    }

    #[test]
    fn half_float_formats_gated_behind_extension() {
        let mut gl = Context::new(4, 4).expect("context");
        let tex = gl.create_texture();
        // Core ES 2: the format does not exist.
        let err = gl.tex_storage(tex, TexFormat::RgbaF16, 2, 2).unwrap_err();
        assert!(matches!(err, GlError::InvalidEnum { .. }));
        assert!(gl.extension_strings().is_empty());
        assert!(gl.enable_extension("GL_IMG_made_up").is_err());
        gl.enable_extension("GL_OES_texture_half_float")
            .expect("enable");
        gl.tex_storage(tex, TexFormat::RgbaF16, 2, 2)
            .expect("now allowed");
        // Texturing is allowed, but rendering still needs the second
        // extension (the paper's portability point: these are separate
        // vendor decisions).
        let fbo = gl.create_framebuffer();
        gl.framebuffer_texture(fbo, tex).expect("attach");
        gl.bind_framebuffer(Some(fbo)).expect("bind");
        let err = gl.check_framebuffer_complete().unwrap_err();
        assert!(err.to_string().contains("not color-renderable"));
        gl.enable_extension("GL_EXT_color_buffer_half_float")
            .expect("enable");
        gl.check_framebuffer_complete().expect("renderable now");
    }

    #[test]
    fn half_float_render_path_is_unclamped_but_10_bit() {
        // A saxpy through RGBA16F end to end: values escape [0,1] (no
        // eq. (2) clamp) but carry only a 10-bit mantissa — the §II.5–6
        // "not enough" half of the argument.
        let (mut gl, prog) = quad_context(
            2,
            2,
            "precision highp float;\nuniform sampler2D u_x;\nvarying vec2 v_uv;\n\
             void main() { gl_FragColor = texture2D(u_x, v_uv) * 3.0 - 1.5; }",
        );
        gl.enable_extension("GL_EXT_color_buffer_half_float")
            .expect("enable");
        // Input texture: four halves per texel; store scalars in .x.
        let xs = [0.1f32, 100.25, -7.0, 1.0 + 2.0f32.powi(-11)];
        let mut data = Vec::new();
        for &v in &xs {
            for c in [v, 0.0, 0.0, 1.0] {
                data.extend_from_slice(&crate::half::f32_to_f16_bits(c).to_le_bytes());
            }
        }
        let src = gl.create_texture();
        gl.tex_image_2d(src, TexFormat::RgbaF16, 2, 2, &data)
            .expect("upload");
        let dst = gl.create_texture();
        gl.tex_storage(dst, TexFormat::RgbaF16, 2, 2)
            .expect("storage");
        let fbo = gl.create_framebuffer();
        gl.framebuffer_texture(fbo, dst).expect("attach");
        gl.bind_framebuffer(Some(fbo)).expect("bind");
        gl.use_program(prog).expect("use");
        gl.bind_texture(0, src).expect("bind tex");
        gl.set_uniform("u_x", Value::Int(0)).expect("sampler");
        gl.viewport(0, 0, 2, 2);
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        // Byte reads are refused on a float target…
        assert!(gl.read_pixels(0, 0, 2, 2).is_err());
        // …half-float reads work.
        let halves = gl.read_pixels_f16(0, 0, 2, 2).expect("read f16");
        assert_eq!(halves.len(), 16);
        for (i, &x) in xs.iter().enumerate() {
            let got = crate::half::f16_bits_to_f32(halves[i * 4]);
            let want = crate::half::f16_bits_to_f32(crate::half::f32_to_f16_bits(x)) * 3.0 - 1.5;
            let err = (got - want).abs();
            // fp16 tolerance: half an ulp at the result's scale.
            let tol = want.abs().max(1.0) * 2.0f32.powi(-10);
            assert!(err <= tol, "lane {i}: got {got}, want {want}");
            // Values escaped [0,1]: the clamp of eq. (2) did not apply.
        }
        let got1 = crate::half::f16_bits_to_f32(halves[4]);
        assert!(got1 > 1.0, "unclamped store expected, got {got1}");
        // The 2^-11 mantissa bit of lane 3 was lost crossing fp16.
        let got3 = crate::half::f16_bits_to_f32(halves[12]);
        assert_eq!(got3, 1.5, "10-bit mantissa flushes 2^-11 before scaling");
    }

    #[test]
    fn varying_interpolation_matches_pixel_centers() {
        let (mut gl, _) = quad_context(
            4,
            4,
            "precision highp float;\nvarying vec2 v_uv;\n\
             void main() { gl_FragColor = vec4(v_uv, 0.0, 1.0); }",
        );
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        let px = gl.read_pixels(0, 0, 4, 4).expect("read");
        // Pixel (0,0) centre = (0.5, 0.5)/4 = uv (0.125, 0.125) → byte 31.
        assert_eq!(px[0], 31);
        assert_eq!(px[1], 31);
        // Pixel (3,3) centre uv = 0.875 → byte 223.
        let off = (3 * 4 + 3) * 4;
        assert_eq!(px[off], 223);
        assert_eq!(px[off + 1], 223);
    }

    #[test]
    fn gl_fragcoord_matches_pixel_centers() {
        let (mut gl, _) = quad_context(
            4,
            4,
            "precision highp float;\n\
             void main() { gl_FragColor = vec4(gl_FragCoord.xy / 4.0, 0.0, 1.0); }",
        );
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        let px = gl.read_pixels(0, 0, 4, 4).expect("read");
        // Pixel (1, 2): fragcoord = (1.5, 2.5)/4 → (0.375, 0.625) → 95, 159.
        let off = (2 * 4 + 1) * 4;
        assert_eq!(px[off], 95);
        assert_eq!(px[off + 1], 159);
    }

    #[test]
    fn texture_sampling_round_trip() {
        let (mut gl, _) = quad_context(
            2,
            2,
            "precision highp float;\nvarying vec2 v_uv;\nuniform sampler2D u_tex;\n\
             void main() { gl_FragColor = texture2D(u_tex, v_uv); }",
        );
        let tex = gl.create_texture();
        let data: Vec<u8> = (0..16).map(|i| (i * 16) as u8).collect();
        gl.tex_image_2d(tex, TexFormat::Rgba8, 2, 2, &data)
            .expect("upload");
        gl.bind_texture(0, tex).expect("bind");
        gl.set_uniform("u_tex", Value::Int(0)).expect("uniform");
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        let px = gl.read_pixels(0, 0, 2, 2).expect("read");
        // Nearest sampling at pixel centres returns the texel bytes
        // unchanged (c/255 → store ⌊f*255⌋ round-trips exactly).
        assert_eq!(px, data);
    }

    #[test]
    fn render_to_texture_then_sample() {
        let (mut gl, _prog) = quad_context(
            2,
            2,
            "precision highp float;\nvoid main() { gl_FragColor = vec4(0.5, 0.25, 0.75, 1.0); }",
        );
        // Pass 1: render into an FBO-attached texture.
        let target = gl.create_texture();
        gl.tex_storage(target, TexFormat::Rgba8, 2, 2)
            .expect("storage");
        let fbo = gl.create_framebuffer();
        gl.framebuffer_texture(fbo, target).expect("attach");
        gl.bind_framebuffer(Some(fbo)).expect("bind fbo");
        gl.viewport(0, 0, 2, 2);
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw 1");
        // glReadPixels works on the bound FBO.
        let px = gl.read_pixels(0, 0, 2, 2).expect("read fbo");
        assert_eq!(&px[..4], &[127, 63, 191, 255]);

        // Pass 2: sample that texture into the default framebuffer
        // (workaround #7's copy-shader path).
        let copy = gl
            .create_program(
                VS_QUAD,
                "precision highp float;\nvarying vec2 v_uv;\nuniform sampler2D u_src;\n\
                 void main() { gl_FragColor = texture2D(u_src, v_uv); }",
            )
            .expect("copy program");
        gl.bind_framebuffer(None).expect("default fb");
        gl.use_program(copy).expect("use");
        gl.bind_texture(0, target).expect("bind src");
        gl.set_uniform("u_src", Value::Int(0)).expect("sampler");
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw 2");
        let px2 = gl.read_pixels(0, 0, 2, 2).expect("read default");
        assert_eq!(px, px2);
    }

    #[test]
    fn feedback_loop_is_rejected() {
        let (mut gl, _) = quad_context(
            2,
            2,
            "precision highp float;\nuniform sampler2D u_tex;\nvarying vec2 v_uv;\n\
             void main() { gl_FragColor = texture2D(u_tex, v_uv); }",
        );
        let tex = gl.create_texture();
        gl.tex_storage(tex, TexFormat::Rgba8, 2, 2)
            .expect("storage");
        let fbo = gl.create_framebuffer();
        gl.framebuffer_texture(fbo, tex).expect("attach");
        gl.bind_framebuffer(Some(fbo)).expect("bind");
        gl.bind_texture(0, tex).expect("bind tex");
        gl.set_uniform("u_tex", Value::Int(0)).expect("uniform");
        let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 6).unwrap_err();
        assert!(err.to_string().contains("feedback"));
    }

    #[test]
    fn draw_without_program_fails() {
        let mut gl = Context::new(2, 2).expect("context");
        let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 3).unwrap_err();
        assert!(err.to_string().contains("no program"));
    }

    #[test]
    fn draw_with_missing_attribute_fails() {
        let mut gl = Context::new(2, 2).expect("context");
        let prog = gl
            .create_program(
                VS_QUAD,
                "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }",
            )
            .expect("program");
        gl.use_program(prog).expect("use");
        let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 3).unwrap_err();
        assert!(err.to_string().contains("a_pos"));
    }

    #[test]
    fn incomplete_fbo_blocks_draw_and_read() {
        let (mut gl, _) = quad_context(
            2,
            2,
            "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }",
        );
        let fbo = gl.create_framebuffer();
        gl.bind_framebuffer(Some(fbo)).expect("bind");
        assert!(gl.draw_arrays(PrimitiveMode::Triangles, 0, 6).is_err());
        assert!(gl.read_pixels(0, 0, 1, 1).is_err());
    }

    #[test]
    fn scissor_restricts_writes() {
        let (mut gl, _) = quad_context(
            4,
            4,
            "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }",
        );
        gl.set_scissor(Some((0, 0, 2, 2)));
        let stats = gl
            .draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        assert_eq!(stats.pixels_written, 4);
        gl.set_scissor(None);
        let px = gl.read_pixels(0, 0, 4, 4).expect("read");
        assert_eq!(&px[0..4], &[255, 255, 255, 255]);
        let off = (3 * 4 + 3) * 4;
        assert_eq!(&px[off..off + 4], &[0, 0, 0, 0]);
    }

    #[test]
    fn clear_fills_target() {
        let mut gl = Context::new(2, 2).expect("context");
        gl.set_clear_color([0.5, 0.0, 1.0, 1.0]);
        gl.clear().expect("clear");
        let px = gl.read_pixels(0, 0, 2, 2).expect("read");
        for chunk in px.chunks_exact(4) {
            assert_eq!(chunk, &[127, 0, 255, 255]);
        }
    }

    #[test]
    fn discard_leaves_pixels_untouched() {
        let (mut gl, _) = quad_context(
            4,
            4,
            "precision highp float;\n\
             void main() {\n\
               if (gl_FragCoord.x < 2.0) discard;\n\
               gl_FragColor = vec4(1.0);\n\
             }",
        );
        gl.set_clear_color([0.0, 0.0, 0.0, 0.0]);
        gl.clear().expect("clear");
        let stats = gl
            .draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        assert_eq!(stats.fragments_shaded, 16);
        assert_eq!(stats.fragments_discarded, 8);
        assert_eq!(stats.pixels_written, 8);
        let px = gl.read_pixels(0, 0, 4, 4).expect("read");
        assert_eq!(&px[0..4], &[0, 0, 0, 0]); // discarded column
        assert_eq!(&px[8..12], &[255, 255, 255, 255]); // written column
    }

    #[test]
    fn parallel_dispatch_matches_serial() {
        let fs = "precision highp float;\nvarying vec2 v_uv;\n\
                  void main() { gl_FragColor = vec4(fract(v_uv * 13.7), fract(v_uv.x * 3.1), 1.0); }";
        let (mut gl1, _) = quad_context(16, 16, fs);
        gl1.set_dispatch(Dispatch::Serial);
        gl1.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw serial");
        let serial = gl1.read_pixels(0, 0, 16, 16).expect("read");

        let (mut gl2, _) = quad_context(16, 16, fs);
        gl2.set_dispatch(Dispatch::Parallel(4));
        gl2.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw parallel");
        let parallel = gl2.read_pixels(0, 0, 16, 16).expect("read");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn triangle_strip_quad_also_covers_once() {
        let mut gl = Context::new(8, 8).expect("context");
        let prog = gl
            .create_program(
                VS_QUAD,
                "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }",
            )
            .expect("program");
        gl.use_program(prog).expect("use");
        gl.set_attribute("a_pos", 2, &[-1.0, -1.0, 1.0, -1.0, -1.0, 1.0, 1.0, 1.0])
            .expect("attrib");
        let stats = gl
            .draw_arrays(PrimitiveMode::TriangleStrip, 0, 4)
            .expect("draw");
        assert_eq!(stats.fragments_shaded, 64);
    }

    #[test]
    fn store_rounding_mode_changes_bytes() {
        let fs = "precision highp float;\nvoid main() { gl_FragColor = vec4(100.9 / 255.0); }";
        let (mut gl, _) = quad_context(1, 1, fs);
        gl.set_store_rounding(StoreRounding::Floor);
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        assert_eq!(gl.read_pixels(0, 0, 1, 1).expect("read")[0], 100);
        gl.set_store_rounding(StoreRounding::Nearest);
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        assert_eq!(gl.read_pixels(0, 0, 1, 1).expect("read")[0], 101);
    }

    #[test]
    fn read_pixels_bounds_checked() {
        let gl = Context::new(4, 4).expect("context");
        assert!(gl.read_pixels(0, 0, 5, 1).is_err());
        assert!(gl.read_pixels(3, 3, 1, 1).is_ok());
    }

    #[test]
    fn deleted_texture_handle_is_stale() {
        let mut gl = Context::new(2, 2).expect("context");
        let tex = gl.create_texture();
        gl.delete_texture(tex);
        let err = gl.tex_storage(tex, TexFormat::Rgba8, 2, 2).unwrap_err();
        assert!(matches!(err, GlError::NoSuchObject { .. }));
    }

    #[test]
    fn depth_test_culls_farther_fragments() {
        let mut gl = Context::new(2, 2).expect("context");
        gl.set_depth_test(true);
        let prog = gl
            .create_program(
                "attribute vec3 a_pos;\n\
                 void main() { gl_Position = vec4(a_pos, 1.0); }",
                "precision highp float;\nuniform vec4 u_color;\n\
                 void main() { gl_FragColor = u_color; }",
            )
            .expect("program");
        gl.use_program(prog).expect("use");
        // Near quad (z = 0) in red.
        let near: Vec<f32> = [
            [-1.0, -1.0, 0.0],
            [1.0, -1.0, 0.0],
            [1.0, 1.0, 0.0],
            [-1.0, -1.0, 0.0],
            [1.0, 1.0, 0.0],
            [-1.0, 1.0, 0.0],
        ]
        .concat();
        gl.set_attribute("a_pos", 3, &near).expect("attrib");
        gl.set_uniform("u_color", Value::Vec4([1.0, 0.0, 0.0, 1.0]))
            .expect("uniform");
        gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw near");
        // Far quad (z = 0.5) in green must lose the depth test.
        let far: Vec<f32> = near.chunks(3).flat_map(|v| [v[0], v[1], 0.5]).collect();
        gl.set_attribute("a_pos", 3, &far).expect("attrib");
        gl.set_uniform("u_color", Value::Vec4([0.0, 1.0, 0.0, 1.0]))
            .expect("uniform");
        let stats = gl
            .draw_arrays(PrimitiveMode::Triangles, 0, 6)
            .expect("draw far");
        assert_eq!(stats.pixels_written, 0);
        let px = gl.read_pixels(0, 0, 2, 2).expect("read");
        assert_eq!(&px[..4], &[255, 0, 0, 255]);
    }
}
