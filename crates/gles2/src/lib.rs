//! # gpes-gles2 — a software OpenGL ES 2.0 subset
//!
//! A from-scratch, CPU-side implementation of the OpenGL ES 2.0 machinery
//! that general-purpose computation needs, built as the hardware substrate
//! for reproducing *“Towards General Purpose Computations on Low-End
//! Mobile GPUs”* (Trompouki & Kosmidis, DATE 2016).
//!
//! The implementation deliberately enforces every ES 2 restriction the
//! paper enumerates in §II:
//!
//! 1. **Both stages are programmable and mandatory** — a draw call runs a
//!    vertex and a fragment shader through the [`gpes_glsl`] interpreter;
//!    there is no fixed-function fallback.
//! 2. **No quad primitive** — [`PrimitiveMode`] offers the triangle
//!    modes (plus `Points`, which ES 2 also rasterises and vertex-stage
//!    compute uses for scatter).
//! 3. **2-D textures only** — no 1-D texture type exists.
//! 4. **Normalised texture coordinates only** — `texture2D` takes [0, 1]²
//!    coordinates; there is no texel-indexed fetch.
//! 5. **Byte texture formats only** in core — float textures exist only
//!    behind the `GL_OES_texture_half_float` vendor extension
//!    ([`limits::Extensions`], off by default), exactly the situation
//!    §II.5 of the paper describes.
//! 6. **Framebuffer values are clamped bytes** — fragment outputs pass
//!    through `⌊clamp(f,0,1)·255⌋` ([`convert`]).
//! 7. **No texture readback** — texel data can only reach the CPU through
//!    a framebuffer ([`Context::read_pixels`]); there is no
//!    `glGetTexImage`.
//! 8. **A single fragment output** — `gl_FragData` has one element.
//!
//! Rasterisation uses a shared-edge-exact top-left fill rule so that the
//! two-triangle "quad" of GPGPU workloads shades every pixel exactly once,
//! and can dispatch fragments across CPU threads ([`Dispatch`]) — a stand-in
//! for the QPU data parallelism of the VideoCore IV.

#![warn(missing_docs)]

pub mod context;
pub mod convert;
pub mod error;
pub mod faults;
pub mod framebuffer;
pub mod half;
pub mod handles;
pub mod limits;
pub mod program;
pub mod raster;
pub mod texture;

pub use context::Context;
pub use convert::{float_to_texel, texel_to_float, StoreRounding};
pub use error::GlError;
pub use faults::{FaultOutcome, FaultPlan, FaultSite};
pub use framebuffer::{DefaultFramebuffer, Framebuffer};
pub use half::{f16_bits_to_f32, f32_to_f16_bits};
pub use handles::{FramebufferId, ProgramId, TextureId};
pub use limits::{Extensions, Limits, PrecisionFormat};
pub use program::Program;
pub use raster::{
    AttribArray, Dispatch, DrawStats, ExecMode, PrimitiveMode, MAX_VARYING_COMPONENTS,
};
pub use texture::{Filter, TexFormat, Texture, Wrap};
