//! The rasterisation pipeline: vertex shading, primitive assembly,
//! triangle rasterisation with a shared-edge-exact top-left fill rule,
//! perspective-correct varying interpolation and fragment dispatch.
//!
//! This is "Figure 1" of the paper as executable code: the programmable
//! vertex and fragment stages run through the `gpes-glsl` interpreter; the
//! fixed-function stages (assembly, rasterisation, framebuffer conversion)
//! are implemented here.
//!
//! Conformance notes for the GPGPU use case:
//!
//! * Only triangle primitives exist ([`PrimitiveMode`]) — limitation #2 of
//!   the paper. A screen-covering quad must be drawn as two triangles, and
//!   the top-left fill rule guarantees each pixel on the shared diagonal is
//!   shaded exactly once.
//! * There is no near-plane clipping: triangles with any `w ≤ 0` vertex are
//!   dropped. GPGPU geometry is always drawn with `w = 1`.

use crate::convert::{float_to_texel, StoreRounding};
use crate::error::GlError;
use crate::program::Program;
use crate::texture::Texture;
use gpes_glsl::exec::{ExecLimits, FloatModel, OpProfile, TextureAccess};
use gpes_glsl::interp::Interpreter;
use gpes_glsl::spmd::{SpmdVm, MAX_LANES};
use gpes_glsl::vm::Vm;
use gpes_glsl::{Type, Value};
use std::collections::HashMap;

/// Which shader executor runs the programmable stages.
///
/// All three produce bit-identical results and identical [`OpProfile`]s
/// (the differential suites assert it across every float model): the
/// tree-walker is the reference oracle, the scalar VM shades one
/// fragment per dispatch, and the SPMD VM shades up to
/// [`gpes_glsl::spmd::MAX_LANES`] band fragments per dispatch with
/// masked divergence — the default, mirroring how mobile GPUs extract
/// fragment-stage throughput (QPU-style lane parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Tree-walking interpreter ([`gpes_glsl::interp::Interpreter`]).
    TreeWalker,
    /// Slot-addressed scalar bytecode VM ([`gpes_glsl::vm::Vm`]), one
    /// fragment per dispatch.
    Scalar,
    /// SPMD bytecode VM ([`gpes_glsl::spmd::SpmdVm`]): `lanes` fragments
    /// per dispatch (clamped to `1..=8`). The vertex stage always runs
    /// scalar — it feeds primitive assembly sequentially.
    Spmd {
        /// Fragments shaded per VM dispatch.
        lanes: u8,
    },
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Spmd { lanes: 8 }
    }
}

impl ExecMode {
    /// Reads the `GPES_EXECUTOR` override (mirroring
    /// [`Dispatch::from_env`]): `tree`/`treewalker`/`interp`,
    /// `scalar`/`vm`/`bytecode`, `spmd` (8 lanes) or `spmdN` for N
    /// lanes. Returns `None` when unset or unrecognised.
    pub fn from_env() -> Option<ExecMode> {
        Self::parse(std::env::var("GPES_EXECUTOR").ok()?.as_str())
    }

    fn parse(s: &str) -> Option<ExecMode> {
        match s {
            "tree" | "treewalker" | "interp" => Some(ExecMode::TreeWalker),
            "scalar" | "vm" | "bytecode" => Some(ExecMode::Scalar),
            "spmd" => Some(ExecMode::Spmd { lanes: 8 }),
            _ => {
                let n = s.strip_prefix("spmd")?.parse::<u8>().ok()?;
                Some(ExecMode::Spmd {
                    lanes: n.clamp(1, MAX_LANES as u8),
                })
            }
        }
    }

    /// Lane width: the SPMD lane count, 1 for the scalar executors.
    pub fn lanes(self) -> u8 {
        match self {
            ExecMode::Spmd { lanes } => lanes.clamp(1, MAX_LANES as u8),
            _ => 1,
        }
    }

    /// Stable compact label (`tree`, `scalar`, `spmdN`) for stats
    /// snapshots and benchmark rows.
    pub fn label(self) -> String {
        match self {
            ExecMode::TreeWalker => "tree".into(),
            ExecMode::Scalar => "scalar".into(),
            ExecMode::Spmd { lanes } => format!("spmd{lanes}"),
        }
    }
}

/// Most varying components a program may interpolate: 8 vec4 rows, the
/// ES 2 minimum the paper's platform guarantees. Fixed-size per-fragment
/// buffers are sized by this, keeping interpolation allocation-free.
pub const MAX_VARYING_COMPONENTS: usize = 32;

/// Primitive topologies accepted by `draw_arrays`.
///
/// ES 2 also rasterises lines; this GPGPU-oriented subset supports the
/// triangle modes (the paper's screen-covering quad, workaround #2) plus
/// `POINTS`, which vertex-stage compute uses to scatter one work item per
/// output pixel (§III-1: kernels "can be implemented in the vertex or the
/// fragment processing stage").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveMode {
    /// Independent triangles; `count` must be a multiple of 3.
    Triangles,
    /// Strip: vertices (i, i+1, i+2) with alternating winding.
    TriangleStrip,
    /// Fan around vertex 0.
    TriangleFan,
    /// One point per vertex, sized by `gl_PointSize` (default 1);
    /// varyings pass through without interpolation.
    Points,
}

/// Fragment dispatch strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Single-threaded (deterministic op ordering, easiest to debug).
    Serial,
    /// Fixed number of worker threads.
    Parallel(usize),
    /// One thread per available core (results identical to serial; the
    /// QPU-like data parallelism of fragment shading is order-independent).
    #[default]
    Auto,
}

impl Dispatch {
    /// Reads the `GPES_TEST_DISPATCH` override the CI dispatch matrix
    /// sets: `serial`/`1` forces single-threaded rasterisation, `auto`
    /// forces one thread per core, and a number forces that thread count.
    /// Returns `None` when the variable is unset or unrecognised.
    pub fn from_env() -> Option<Dispatch> {
        match std::env::var("GPES_TEST_DISPATCH").ok()?.as_str() {
            "serial" | "1" => Some(Dispatch::Serial),
            "auto" => Some(Dispatch::Auto),
            n => n.parse::<usize>().ok().map(Dispatch::Parallel),
        }
    }

    fn threads(self) -> usize {
        match self {
            Dispatch::Serial => 1,
            Dispatch::Parallel(n) => n.max(1),
            Dispatch::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16),
        }
    }
}

/// Per-draw statistics — the observable pipeline trace (experiment F1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DrawStats {
    /// Vertex shader invocations.
    pub vertices_shaded: u32,
    /// Triangles assembled from the vertex stream.
    pub triangles_in: u32,
    /// Triangles that survived face/degeneracy/w-culling.
    pub triangles_rasterized: u32,
    /// Fragment shader invocations.
    pub fragments_shaded: u64,
    /// Fragments that executed `discard`.
    pub fragments_discarded: u64,
    /// Pixels written to the target after all per-fragment tests.
    pub pixels_written: u64,
    /// SPMD fragment batches dispatched (0 under the scalar executors —
    /// the CI gate asserts it is positive when [`ExecMode::Spmd`] ran).
    pub spmd_batches: u64,
    /// SPMD batches replayed lane-by-lane after a lane trap, plus bands
    /// that fell back to a scalar executor because the lowerer rejected
    /// the shader.
    pub scalar_fallbacks: u64,
    /// Vertex-stage operation profile.
    pub vs_profile: OpProfile,
    /// Fragment-stage operation profile (drives the `gpes-perf` model).
    pub fs_profile: OpProfile,
}

/// A client-side attribute array (`glVertexAttribPointer` analog).
#[derive(Debug, Clone, PartialEq)]
pub struct AttribArray {
    /// Components per vertex (1–4).
    pub size: usize,
    /// Tightly packed floats, `size` per vertex.
    pub data: Vec<f32>,
}

/// Texture-unit bindings snapshot used during one draw call.
pub(crate) struct Bindings<'a> {
    /// Slot per unit; `None` samples as opaque black (incomplete texture).
    pub units: Vec<Option<&'a Texture>>,
}

impl TextureAccess for Bindings<'_> {
    fn sample(&self, unit: u32, coord: [f32; 2]) -> [f32; 4] {
        self.units
            .get(unit as usize)
            .and_then(|t| *t)
            .map(|t| t.sample(coord))
            .unwrap_or([0.0, 0.0, 0.0, 1.0])
    }
}

/// A shader stage instance behind the [`ExecMode`] selection: the SPMD
/// VM, the scalar bytecode VM or the tree-walking interpreter. All are
/// bit-identical in results and profile counts; the VMs additionally
/// offer pre-resolved slot stores for the per-fragment/per-vertex hot
/// path.
enum StageExec<'a> {
    Spmd(SpmdVm<'a>),
    Vm(Vm<'a>),
    Tree(Interpreter<'a>),
}

impl<'a> StageExec<'a> {
    /// Instantiates the stage executor for `shader`, honouring
    /// `config.exec_mode` (falling back to the tree-walker when the
    /// lowerer rejected the shader).
    fn for_fragment(
        program: &'a Program,
        bindings: &'a Bindings<'a>,
        config: &RasterConfig,
    ) -> Result<StageExec<'a>, GlError> {
        Self::new(
            program.fragment_executable(),
            &program.fragment,
            bindings,
            config,
            true,
        )
    }

    fn for_vertex(
        program: &'a Program,
        bindings: &'a Bindings<'a>,
        config: &RasterConfig,
    ) -> Result<StageExec<'a>, GlError> {
        Self::new(
            program.vertex_executable(),
            &program.vertex,
            bindings,
            config,
            false,
        )
    }

    fn new(
        exe: Option<&'a gpes_glsl::Executable>,
        shader: &'a gpes_glsl::CompiledShader,
        bindings: &'a Bindings<'a>,
        config: &RasterConfig,
        spmd_ok: bool,
    ) -> Result<StageExec<'a>, GlError> {
        // The vertex stage runs scalar even under Spmd: vertices feed
        // primitive assembly one at a time.
        let mode = match config.exec_mode {
            ExecMode::Spmd { .. } if !spmd_ok => ExecMode::Scalar,
            mode => mode,
        };
        let exec = match (mode, exe) {
            (ExecMode::Spmd { lanes }, Some(exe)) => {
                let mut vm = SpmdVm::with_model(exe, bindings, config.float_model, lanes as usize)?;
                vm.set_limits(config.exec_limits);
                StageExec::Spmd(vm)
            }
            (ExecMode::Scalar, Some(exe)) => {
                let mut vm = Vm::with_model(exe, bindings, config.float_model)?;
                vm.set_limits(config.exec_limits);
                StageExec::Vm(vm)
            }
            _ => {
                let mut interp = Interpreter::with_model(shader, bindings, config.float_model)?;
                interp.set_limits(config.exec_limits);
                StageExec::Tree(interp)
            }
        };
        Ok(exec)
    }

    /// Resolves a global to its slot (VMs) or a name marker
    /// (tree-walker). Returns `None` when the stage does not declare the
    /// global.
    fn resolve(&self, name: &str) -> Option<u32> {
        match self {
            StageExec::Spmd(vm) => vm.global_slot(name),
            StageExec::Vm(vm) => vm.global_slot(name),
            // The tree-walker addresses globals by name; use a dummy slot
            // value and remember resolvability.
            StageExec::Tree(interp) => interp.global(name).map(|_| u32::MAX),
        }
    }

    fn set_global(&mut self, name: &str, value: Value) -> Result<(), gpes_glsl::RuntimeError> {
        match self {
            StageExec::Spmd(vm) => vm.set_global(name, value),
            StageExec::Vm(vm) => vm.set_global(name, value),
            StageExec::Tree(interp) => interp.set_global(name, value),
        }
    }

    /// Fast store for a global pre-resolved with [`StageExec::resolve`];
    /// `name` is only consulted on the tree-walker path. On the SPMD VM
    /// this broadcasts to every lane — per-fragment inputs go through
    /// [`SpmdVm::set_lane_slot`] in the batched loops instead.
    fn set_resolved(&mut self, slot: u32, name: &str, value: Value) {
        match self {
            StageExec::Spmd(vm) => vm.set_slot_all(slot, value),
            StageExec::Vm(vm) => vm.set_slot(slot, value),
            StageExec::Tree(interp) => {
                let _ = interp.set_global(name, value);
            }
        }
    }

    fn global(&self, name: &str) -> Option<Value> {
        match self {
            StageExec::Spmd(vm) => vm.global(0, name),
            StageExec::Vm(vm) => vm.global(name).cloned(),
            StageExec::Tree(interp) => interp.global(name).cloned(),
        }
    }

    fn run_main(&mut self) -> Result<(), gpes_glsl::RuntimeError> {
        match self {
            // Single-lane batch == scalar execution; the batched raster
            // loops bypass this and call run_batch directly.
            StageExec::Spmd(vm) => vm.run_batch(1).map_err(|e| e.error),
            StageExec::Vm(vm) => vm.run_main(),
            StageExec::Tree(interp) => interp.run_main(),
        }
    }

    fn discarded(&self) -> bool {
        match self {
            StageExec::Spmd(vm) => vm.discarded(0),
            StageExec::Vm(vm) => vm.discarded(),
            StageExec::Tree(interp) => interp.discarded(),
        }
    }

    fn frag_color(&self) -> Option<[f32; 4]> {
        match self {
            StageExec::Spmd(vm) => vm.frag_color(0),
            StageExec::Vm(vm) => vm.frag_color(),
            StageExec::Tree(interp) => interp.frag_color(),
        }
    }

    fn take_profile(&mut self) -> OpProfile {
        match self {
            StageExec::Spmd(vm) => vm.take_profile(),
            StageExec::Vm(vm) => vm.take_profile(),
            StageExec::Tree(interp) => interp.take_profile(),
        }
    }
}

/// Pixel storage of a render target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum PixelStore {
    /// 4 bytes: eq. (2) clamp + byte conversion (core ES 2).
    #[default]
    Rgba8,
    /// 8 bytes: four binary16 floats, unclamped
    /// (`EXT_color_buffer_half_float`).
    RgbaF16,
}

impl PixelStore {
    pub(crate) fn bytes_per_pixel(self) -> usize {
        match self {
            PixelStore::Rgba8 => 4,
            PixelStore::RgbaF16 => 8,
        }
    }
}

/// Mutable view of the render target for one draw call.
pub(crate) struct TargetImage<'a> {
    pub width: u32,
    pub height: u32,
    /// Pixel bytes, row 0 at the bottom; layout per [`PixelStore`].
    pub color: &'a mut [u8],
    pub depth: Option<&'a mut [f32]>,
    pub pixel: PixelStore,
}

/// Fixed-function state for one draw call.
pub(crate) struct RasterConfig {
    pub viewport: (i32, i32, i32, i32),
    pub scissor: Option<(i32, i32, i32, i32)>,
    pub store_rounding: StoreRounding,
    pub float_model: FloatModel,
    pub dispatch: Dispatch,
    pub depth_test: bool,
    pub exec_limits: ExecLimits,
    pub exec_mode: ExecMode,
}

struct VaryingLayout {
    names: Vec<(String, Type, usize)>, // name, type, component count
    total: usize,
}

struct ShadedVertex {
    clip: [f32; 4],
    varyings: Vec<f32>,
    point_size: f32,
}

/// Executes a complete draw call.
#[allow(clippy::too_many_arguments)] // mirrors the GL draw-call surface
pub(crate) fn draw(
    program: &Program,
    attribs: &HashMap<String, AttribArray>,
    mode: PrimitiveMode,
    first: usize,
    count: usize,
    bindings: &Bindings<'_>,
    target: &mut TargetImage<'_>,
    config: &RasterConfig,
) -> Result<DrawStats, GlError> {
    let mut stats = DrawStats::default();
    if count == 0 {
        return Ok(stats);
    }
    if mode == PrimitiveMode::Triangles && !count.is_multiple_of(3) {
        return Err(GlError::invalid_value(
            "GL_TRIANGLES draw count must be a multiple of 3",
        ));
    }
    if mode != PrimitiveMode::Points && count < 3 {
        return Err(GlError::invalid_value(
            "triangle draws need at least 3 vertices",
        ));
    }

    let layout = varying_layout(program);
    if layout.total > MAX_VARYING_COMPONENTS {
        return Err(GlError::invalid_op(format!(
            "{} varying components exceed the rasteriser's fixed budget of {MAX_VARYING_COMPONENTS}",
            layout.total
        )));
    }

    // ---- vertex stage ----------------------------------------------------
    let mut vs = StageExec::for_vertex(program, bindings, config)?;
    apply_uniforms(&mut vs, program);
    // Pre-resolve attribute slots so the per-vertex loop stores without
    // name lookups (this is the hot path of §III-1 vertex-stage compute).
    let attr_slots: Vec<u32> = program
        .attributes()
        .iter()
        .map(|(name, _)| {
            vs.resolve(name).ok_or_else(|| {
                GlError::invalid_op(format!("vertex shader lost attribute `{name}`"))
            })
        })
        .collect::<Result<_, _>>()?;

    let mut shaded: Vec<ShadedVertex> = Vec::with_capacity(count);
    for vi in first..first + count {
        for ((name, ty), slot) in program.attributes().iter().zip(&attr_slots) {
            let arr = attribs.get(name).ok_or_else(|| {
                GlError::invalid_op(format!("no attribute array bound for `{name}`"))
            })?;
            let value = attribute_value(arr, vi, ty)?;
            vs.set_resolved(*slot, name, value);
        }
        vs.run_main()?;
        let clip = vs
            .global("gl_Position")
            .and_then(|v| v.as_vec4())
            .ok_or_else(|| GlError::invalid_op("vertex shader did not produce gl_Position"))?;
        let mut varyings = Vec::with_capacity(layout.total);
        for (name, _, len) in &layout.names {
            let v = vs.global(name).ok_or_else(|| {
                GlError::invalid_op(format!("vertex shader lost varying `{name}`"))
            })?;
            let comps = v.float_components().ok_or_else(|| {
                GlError::invalid_op(format!("varying `{name}` is not float-based"))
            })?;
            debug_assert_eq!(comps.len(), *len);
            varyings.extend_from_slice(&comps);
        }
        let point_size = vs
            .global("gl_PointSize")
            .and_then(|v| match v {
                Value::Float(f) => Some(f),
                _ => None,
            })
            .unwrap_or(1.0);
        shaded.push(ShadedVertex {
            clip,
            varyings,
            point_size,
        });
        stats.vertices_shaded += 1;
    }
    stats.vs_profile = vs.take_profile();

    if mode == PrimitiveMode::Points {
        raster_points(
            program, &shaded, &layout, bindings, target, config, &mut stats,
        )?;
        return Ok(stats);
    }

    // ---- primitive assembly ----------------------------------------------
    let tris = assemble(mode, count);
    stats.triangles_in = tris.len() as u32;

    // ---- rasterisation + fragment stage -----------------------------------
    for tri in tris {
        let rasterized = raster_triangle(
            program, &shaded, tri, &layout, bindings, target, config, &mut stats,
        )?;
        if rasterized {
            stats.triangles_rasterized += 1;
        }
    }
    Ok(stats)
}

fn varying_layout(program: &Program) -> VaryingLayout {
    let mut names = Vec::new();
    let mut total = 0;
    for (name, ty) in program.varyings() {
        let len = ty.component_count().unwrap_or(0);
        total += len;
        names.push((name.clone(), ty.clone(), len));
    }
    VaryingLayout { names, total }
}

fn apply_uniforms(exec: &mut StageExec<'_>, program: &Program) {
    for (name, value) in program.uniform_values() {
        // A uniform may be declared in only one of the two stages; ignore
        // the stage that does not know the name.
        let _ = exec.set_global(name, value.clone());
    }
}

/// Builds the attribute value for vertex `vi`, padding missing components
/// with (0, 0, 0, 1) as GL does.
fn attribute_value(arr: &AttribArray, vi: usize, ty: &Type) -> Result<Value, GlError> {
    if !(1..=4).contains(&arr.size) {
        return Err(GlError::invalid_value("attribute size must be 1..=4"));
    }
    let start = vi * arr.size;
    if start + arr.size > arr.data.len() {
        return Err(GlError::invalid_value(format!(
            "attribute array too short for vertex {vi}"
        )));
    }
    let supplied = &arr.data[start..start + arr.size];
    let mut full = [0.0f32, 0.0, 0.0, 1.0];
    full[..supplied.len()].copy_from_slice(supplied);
    match ty {
        Type::Float => Ok(Value::Float(full[0])),
        Type::Vec2 => Ok(Value::Vec2([full[0], full[1]])),
        Type::Vec3 => Ok(Value::Vec3([full[0], full[1], full[2]])),
        Type::Vec4 => Ok(Value::Vec4(full)),
        other => Err(GlError::invalid_op(format!(
            "attribute type {other} is not supported by this subset"
        ))),
    }
}

fn assemble(mode: PrimitiveMode, count: usize) -> Vec<[usize; 3]> {
    match mode {
        // Points never reach assembly (dedicated raster path).
        PrimitiveMode::Points => Vec::new(),
        PrimitiveMode::Triangles => (0..count / 3)
            .map(|t| [3 * t, 3 * t + 1, 3 * t + 2])
            .collect(),
        PrimitiveMode::TriangleStrip => (0..count.saturating_sub(2))
            .map(|i| {
                if i % 2 == 0 {
                    [i, i + 1, i + 2]
                } else {
                    [i + 1, i, i + 2]
                }
            })
            .collect(),
        PrimitiveMode::TriangleFan => (0..count.saturating_sub(2))
            .map(|i| [0, i + 1, i + 2])
            .collect(),
    }
}

fn edge(ax: f64, ay: f64, bx: f64, by: f64, px: f64, py: f64) -> f64 {
    (bx - ax) * (py - ay) - (by - ay) * (px - ax)
}

/// Top-left fill rule: a pixel centre exactly on an edge belongs to the
/// triangle iff the (CCW-directed) edge points "up", or is horizontal and
/// points "left". Opposite-direction shared edges therefore claim each
/// boundary pixel exactly once.
fn accepts_zero_edge(ax: f64, ay: f64, bx: f64, by: f64) -> bool {
    let dy = by - ay;
    let dx = bx - ax;
    dy > 0.0 || (dy == 0.0 && dx < 0.0)
}

struct TriangleSetup {
    sx: [f64; 3],
    sy: [f64; 3],
    inv_w: [f32; 3],
    z_ndc: [f32; 3],
    /// Varying components pre-divided by clip w (for perspective-correct
    /// interpolation). Fixed-size: no allocation per triangle.
    var_over_w: [[f32; MAX_VARYING_COMPONENTS]; 3],
    front_facing: bool,
}

#[derive(Default, Clone, Copy)]
struct BandStats {
    shaded: u64,
    discarded: u64,
    written: u64,
    spmd_batches: u64,
    scalar_fallbacks: u64,
    profile: OpProfile,
}

#[allow(clippy::too_many_arguments)]
fn raster_triangle(
    program: &Program,
    shaded: &[ShadedVertex],
    tri: [usize; 3],
    layout: &VaryingLayout,
    bindings: &Bindings<'_>,
    target: &mut TargetImage<'_>,
    config: &RasterConfig,
    stats: &mut DrawStats,
) -> Result<bool, GlError> {
    let verts = [&shaded[tri[0]], &shaded[tri[1]], &shaded[tri[2]]];
    // No clipping in this subset: drop triangles behind the eye.
    if verts.iter().any(|v| v.clip[3] <= 0.0) {
        return Ok(false);
    }
    let (vx, vy, vw, vh) = config.viewport;
    let mut sx = [0.0f64; 3];
    let mut sy = [0.0f64; 3];
    let mut inv_w = [0.0f32; 3];
    let mut z_ndc = [0.0f32; 3];
    for k in 0..3 {
        let w = verts[k].clip[3];
        let ndc_x = verts[k].clip[0] / w;
        let ndc_y = verts[k].clip[1] / w;
        z_ndc[k] = verts[k].clip[2] / w;
        sx[k] = vx as f64 + (ndc_x as f64 + 1.0) * 0.5 * vw as f64;
        sy[k] = vy as f64 + (ndc_y as f64 + 1.0) * 0.5 * vh as f64;
        inv_w[k] = 1.0 / w;
    }
    let mut order = [0usize, 1, 2];
    let area = edge(sx[0], sy[0], sx[1], sy[1], sx[2], sy[2]);
    if area == 0.0 {
        return Ok(false);
    }
    let front_facing = area > 0.0;
    if area < 0.0 {
        // Reorder to counter-clockwise so all edge functions are positive
        // inside; remember original facing for gl_FrontFacing.
        order = [0, 2, 1];
    }
    let o = order;
    let setup = TriangleSetup {
        sx: [sx[o[0]], sx[o[1]], sx[o[2]]],
        sy: [sy[o[0]], sy[o[1]], sy[o[2]]],
        inv_w: [inv_w[o[0]], inv_w[o[1]], inv_w[o[2]]],
        z_ndc: [z_ndc[o[0]], z_ndc[o[1]], z_ndc[o[2]]],
        var_over_w: [
            premultiply(&verts[o[0]].varyings, inv_w[o[0]]),
            premultiply(&verts[o[1]].varyings, inv_w[o[1]]),
            premultiply(&verts[o[2]].varyings, inv_w[o[2]]),
        ],
        front_facing,
    };

    // Bounding box clipped to viewport, target and scissor.
    let min_x = setup.sx.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_x = setup.sx.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_y = setup.sy.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_y = setup.sy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    let clip_lo_x = vx.max(0);
    let clip_lo_y = vy.max(0);
    let clip_hi_x = (vx + vw).min(target.width as i32);
    let clip_hi_y = (vy + vh).min(target.height as i32);
    let (clip_lo_x, clip_lo_y, clip_hi_x, clip_hi_y) = match config.scissor {
        Some((sx0, sy0, sw, sh)) => (
            clip_lo_x.max(sx0),
            clip_lo_y.max(sy0),
            clip_hi_x.min(sx0 + sw),
            clip_hi_y.min(sy0 + sh),
        ),
        None => (clip_lo_x, clip_lo_y, clip_hi_x, clip_hi_y),
    };

    let x0 = (min_x.floor() as i32).max(clip_lo_x);
    let x1 = (max_x.ceil() as i32).min(clip_hi_x);
    let y0 = (min_y.floor() as i32).max(clip_lo_y);
    let y1 = (max_y.ceil() as i32).min(clip_hi_y);
    if x0 >= x1 || y0 >= y1 {
        return Ok(false);
    }

    let rows = (y1 - y0) as usize;
    let threads = config.dispatch.threads().min(rows).max(1);
    let width = target.width as usize;
    let bpp = target.pixel.bytes_per_pixel();
    let pixel = target.pixel;

    let band_results: Vec<Result<BandStats, GlError>> = if threads == 1 {
        let color = &mut *target.color;
        let depth = target.depth.as_deref_mut();
        vec![raster_band(
            program, layout, &setup, bindings, config, width, x0, x1, y0, y1, color, 0, depth,
            pixel,
        )]
    } else {
        // Split the target rows y0..y1 into contiguous bands.
        let rows_per_band = rows.div_ceil(threads);
        let mut bands: Vec<(i32, i32)> = Vec::new();
        let mut y = y0;
        while y < y1 {
            let end = (y + rows_per_band as i32).min(y1);
            bands.push((y, end));
            y = end;
        }
        // Carve the color (and depth) buffers into per-band mutable slices.
        let mut color_slices: Vec<&mut [u8]> = Vec::with_capacity(bands.len());
        let mut depth_slices: Vec<Option<&mut [f32]>> = Vec::with_capacity(bands.len());
        {
            let mut color_rest: &mut [u8] = target.color;
            let mut consumed_rows = 0usize;
            let mut depth_rest: Option<&mut [f32]> = target.depth.as_deref_mut();
            for &(by0, by1) in &bands {
                let skip_rows = by0 as usize - consumed_rows;
                let take_rows = (by1 - by0) as usize;
                let (_, after_skip) = color_rest.split_at_mut(skip_rows * width * bpp);
                let (band, rest) = after_skip.split_at_mut(take_rows * width * bpp);
                color_slices.push(band);
                color_rest = rest;
                depth_rest = match depth_rest {
                    Some(d) => {
                        let (_, after_skip) = d.split_at_mut(skip_rows * width);
                        let (band, rest) = after_skip.split_at_mut(take_rows * width);
                        depth_slices.push(Some(band));
                        Some(rest)
                    }
                    None => {
                        depth_slices.push(None);
                        None
                    }
                };
                consumed_rows = by1 as usize;
            }
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(bands.len());
            for ((&(by0, by1), color_band), depth_band) in
                bands.iter().zip(color_slices).zip(depth_slices)
            {
                let setup = &setup;
                handles.push(scope.spawn(move || {
                    raster_band(
                        program, layout, setup, bindings, config, width, x0, x1, by0, by1,
                        color_band, by0, depth_band, pixel,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("raster worker panicked"))
                .collect()
        })
    };

    for result in band_results {
        let band = result?;
        stats.fragments_shaded += band.shaded;
        stats.fragments_discarded += band.discarded;
        stats.pixels_written += band.written;
        stats.spmd_batches += band.spmd_batches;
        stats.scalar_fallbacks += band.scalar_fallbacks;
        stats.fs_profile.merge(&band.profile);
    }
    Ok(true)
}

/// Pre-divides varying components by clip `w` into a fixed-size buffer
/// (was a fresh `Vec<f32>` per vertex per triangle).
fn premultiply(comps: &[f32], inv_w: f32) -> [f32; MAX_VARYING_COMPONENTS] {
    let mut out = [0.0f32; MAX_VARYING_COMPONENTS];
    for (slot, &c) in out.iter_mut().zip(comps) {
        *slot = c * inv_w;
    }
    out
}

/// Writes one fragment colour into the target according to its pixel
/// store (eq. (2) byte conversion, or raw halves for float targets).
fn store_pixel(
    color: &mut [u8],
    pixel_index: usize,
    pixel: PixelStore,
    rgba: [f32; 4],
    rounding: StoreRounding,
) {
    match pixel {
        PixelStore::Rgba8 => {
            let byte_off = pixel_index * 4;
            for (i, &c) in rgba.iter().enumerate() {
                color[byte_off + i] = float_to_texel(c, rounding);
            }
        }
        PixelStore::RgbaF16 => {
            let byte_off = pixel_index * 8;
            for (i, &c) in rgba.iter().enumerate() {
                let bits = crate::half::f32_to_f16_bits(c).to_le_bytes();
                color[byte_off + 2 * i] = bits[0];
                color[byte_off + 2 * i + 1] = bits[1];
            }
        }
    }
}

/// Dispatches one SPMD fragment batch and retires its lanes in lane
/// order: deferred depth writes, colour stores and stat counting happen
/// here. Lane order equals fragment acceptance order and batched pixels
/// are unique, so retiring at flush time is indistinguishable from the
/// scalar loop's write-as-you-shade. On a lane trap the lanes below the
/// erroring lane (which the replay completed with exact scalar outputs)
/// are still retired before the error propagates — exactly the pixels a
/// scalar walk would have written before trapping.
#[allow(clippy::too_many_arguments)]
fn flush_spmd_batch(
    vm: &mut SpmdVm<'_>,
    n: usize,
    pixel_indices: &[usize; MAX_LANES],
    frag_zs: &[f32; MAX_LANES],
    config: &RasterConfig,
    color: &mut [u8],
    depth: &mut Option<&mut [f32]>,
    pixel: PixelStore,
    band: &mut BandStats,
) -> Result<(), GlError> {
    let result = vm.run_batch(n);
    band.spmd_batches += 1;
    band.scalar_fallbacks += vm.take_replays();
    let retired = match &result {
        Ok(()) => n,
        Err(e) => e.lane,
    };
    for lane in 0..retired {
        band.shaded += 1;
        if vm.discarded(lane) {
            band.discarded += 1;
            continue;
        }
        let rgba = vm.frag_color(lane).ok_or(GlError::ShaderTrap(
            gpes_glsl::RuntimeError::MissingOutput {
                name: "gl_FragColor",
            },
        ))?;
        if config.depth_test {
            if let Some(depth_buf) = depth.as_deref_mut() {
                depth_buf[pixel_indices[lane]] = frag_zs[lane];
            }
        }
        store_pixel(
            color,
            pixel_indices[lane],
            pixel,
            rgba,
            config.store_rounding,
        );
        band.written += 1;
    }
    match result {
        Ok(()) => Ok(()),
        Err(e) => Err(GlError::ShaderTrap(e.error)),
    }
}

/// Rasterises every shaded vertex as a point sprite (serial dispatch —
/// point counts in GPGPU scatter passes equal the output size, and each
/// point touches few pixels). Varyings pass through uninterpolated, per
/// the GL point rasterisation rules.
fn raster_points(
    program: &Program,
    shaded: &[ShadedVertex],
    layout: &VaryingLayout,
    bindings: &Bindings<'_>,
    target: &mut TargetImage<'_>,
    config: &RasterConfig,
    stats: &mut DrawStats,
) -> Result<(), GlError> {
    let mut band = BandStats::default();
    let mut fs = StageExec::for_fragment(program, bindings, config)?;
    if matches!(config.exec_mode, ExecMode::Spmd { .. }) && !matches!(fs, StageExec::Spmd(_)) {
        band.scalar_fallbacks += 1;
    }
    apply_uniforms(&mut fs, program);
    let _ = fs.set_global("gl_FrontFacing", Value::Bool(true));
    let varying_slots: Vec<u32> = layout
        .names
        .iter()
        .map(|(name, _, _)| {
            fs.resolve(name).ok_or_else(|| {
                GlError::invalid_op(format!("fragment shader lost varying `{name}`"))
            })
        })
        .collect::<Result<_, _>>()?;
    let fragcoord_slot = fs
        .resolve("gl_FragCoord")
        .ok_or_else(|| GlError::invalid_op("fragment shader lost gl_FragCoord"))?;
    // A batch may only span points when no depth buffer is observable:
    // two points can cover the same pixel, and the second must see the
    // first's depth write. Pixels within one point are unique.
    let flush_per_point = config.depth_test && target.depth.is_some();
    let mut batch_n = 0usize;
    let mut batch_pixel = [0usize; MAX_LANES];
    let mut batch_z = [0.0f32; MAX_LANES];

    let (vx, vy, vw, vh) = config.viewport;
    let clip_lo_x = vx.max(0);
    let clip_lo_y = vy.max(0);
    let clip_hi_x = (vx + vw).min(target.width as i32);
    let clip_hi_y = (vy + vh).min(target.height as i32);
    let (clip_lo_x, clip_lo_y, clip_hi_x, clip_hi_y) = match config.scissor {
        Some((sx0, sy0, sw, sh)) => (
            clip_lo_x.max(sx0),
            clip_lo_y.max(sy0),
            clip_hi_x.min(sx0 + sw),
            clip_hi_y.min(sy0 + sh),
        ),
        None => (clip_lo_x, clip_lo_y, clip_hi_x, clip_hi_y),
    };
    let width = target.width as usize;

    for v in shaded {
        let w = v.clip[3];
        if w <= 0.0 {
            continue;
        }
        let sx = vx as f64 + (v.clip[0] as f64 / w as f64 + 1.0) * 0.5 * vw as f64;
        let sy = vy as f64 + (v.clip[1] as f64 / w as f64 + 1.0) * 0.5 * vh as f64;
        let z_ndc = v.clip[2] / w;
        let frag_z = (z_ndc * 0.5 + 0.5).clamp(0.0, 1.0);
        let half = (v.point_size.max(1.0) as f64) / 2.0;

        // Covered pixels: centres inside the point square.
        let x0 = ((sx - half - 0.5).ceil() as i32).max(clip_lo_x);
        let x1 = ((sx + half - 0.5).floor() as i32 + 1).min(clip_hi_x);
        let y0 = ((sy - half - 0.5).ceil() as i32).max(clip_lo_y);
        let y1 = ((sy + half - 0.5).floor() as i32 + 1).min(clip_hi_y);

        // Pass-through varyings (no interpolation for points). Under SPMD
        // these are staged per lane at push time — a broadcast here would
        // clobber lanes still pending from a previous point.
        let mut point_varyings: Vec<Value> = Vec::new();
        {
            let mut offset = 0usize;
            for ((name, ty, len), slot) in layout.names.iter().zip(&varying_slots) {
                let comps = &v.varyings[offset..offset + len];
                offset += len;
                let value = rebuild_varying(ty, comps);
                if matches!(fs, StageExec::Spmd(_)) {
                    point_varyings.push(value);
                } else {
                    fs.set_resolved(*slot, name, value);
                }
            }
        }

        for py in y0..y1 {
            for px in x0..x1 {
                let pixel_index = py as usize * width + px as usize;
                if config.depth_test {
                    if let Some(depth_buf) = target.depth.as_deref_mut() {
                        if frag_z >= depth_buf[pixel_index] {
                            continue;
                        }
                    }
                }
                let fragcoord = Value::Vec4([px as f32 + 0.5, py as f32 + 0.5, frag_z, 1.0 / w]);
                if let StageExec::Spmd(vm) = &mut fs {
                    let lane = batch_n;
                    for (slot, value) in varying_slots.iter().zip(&point_varyings) {
                        vm.set_lane_slot(lane, *slot, value.clone());
                    }
                    vm.set_lane_slot(lane, fragcoord_slot, fragcoord);
                    batch_pixel[lane] = pixel_index;
                    batch_z[lane] = frag_z;
                    batch_n += 1;
                    if batch_n == vm.lanes() {
                        flush_spmd_batch(
                            vm,
                            batch_n,
                            &batch_pixel,
                            &batch_z,
                            config,
                            target.color,
                            &mut target.depth,
                            target.pixel,
                            &mut band,
                        )?;
                        batch_n = 0;
                    }
                    continue;
                }
                fs.set_resolved(fragcoord_slot, "gl_FragCoord", fragcoord);
                fs.run_main()?;
                band.shaded += 1;
                if fs.discarded() {
                    band.discarded += 1;
                    continue;
                }
                let rgba = fs.frag_color().ok_or(GlError::ShaderTrap(
                    gpes_glsl::RuntimeError::MissingOutput {
                        name: "gl_FragColor",
                    },
                ))?;
                if config.depth_test {
                    if let Some(depth_buf) = target.depth.as_deref_mut() {
                        depth_buf[pixel_index] = frag_z;
                    }
                }
                store_pixel(
                    target.color,
                    pixel_index,
                    target.pixel,
                    rgba,
                    config.store_rounding,
                );
                band.written += 1;
            }
        }

        // With a depth buffer active a later point may cover one of this
        // point's pixels, so its writes must land before the next point.
        if flush_per_point && batch_n > 0 {
            if let StageExec::Spmd(vm) = &mut fs {
                flush_spmd_batch(
                    vm,
                    batch_n,
                    &batch_pixel,
                    &batch_z,
                    config,
                    target.color,
                    &mut target.depth,
                    target.pixel,
                    &mut band,
                )?;
                batch_n = 0;
            }
        }
    }
    if batch_n > 0 {
        if let StageExec::Spmd(vm) = &mut fs {
            flush_spmd_batch(
                vm,
                batch_n,
                &batch_pixel,
                &batch_z,
                config,
                target.color,
                &mut target.depth,
                target.pixel,
                &mut band,
            )?;
        }
    }
    stats.fragments_shaded += band.shaded;
    stats.fragments_discarded += band.discarded;
    stats.pixels_written += band.written;
    stats.spmd_batches += band.spmd_batches;
    stats.scalar_fallbacks += band.scalar_fallbacks;
    stats.fs_profile.merge(&fs.take_profile());
    Ok(())
}

/// Rasterises rows `y0..y1` of one triangle into a band buffer whose first
/// row corresponds to target row `band_base`.
#[allow(clippy::too_many_arguments)]
fn raster_band(
    program: &Program,
    layout: &VaryingLayout,
    setup: &TriangleSetup,
    bindings: &Bindings<'_>,
    config: &RasterConfig,
    width: usize,
    x0: i32,
    x1: i32,
    y0: i32,
    y1: i32,
    color: &mut [u8],
    band_base: i32,
    mut depth: Option<&mut [f32]>,
    pixel: PixelStore,
) -> Result<BandStats, GlError> {
    let mut band = BandStats::default();
    let mut fs = StageExec::for_fragment(program, bindings, config)?;
    if matches!(config.exec_mode, ExecMode::Spmd { .. }) && !matches!(fs, StageExec::Spmd(_)) {
        band.scalar_fallbacks += 1;
    }
    apply_uniforms(&mut fs, program);
    let _ = fs.set_global("gl_FrontFacing", Value::Bool(setup.front_facing));
    // Pre-resolve per-fragment stores once per band: inside the loop the
    // VM path is a plain indexed slot write, no string comparisons.
    let varying_slots: Vec<u32> = layout
        .names
        .iter()
        .map(|(name, _, _)| {
            fs.resolve(name).ok_or_else(|| {
                GlError::invalid_op(format!("fragment shader lost varying `{name}`"))
            })
        })
        .collect::<Result<_, _>>()?;
    let fragcoord_slot = fs
        .resolve("gl_FragCoord")
        .ok_or_else(|| GlError::invalid_op("fragment shader lost gl_FragCoord"))?;

    let [ax, bx, cx] = setup.sx;
    let [ay, by, cy] = setup.sy;
    let area = edge(ax, ay, bx, by, cx, cy);
    debug_assert!(area > 0.0);

    let top_left_ab = accepts_zero_edge(ax, ay, bx, by);
    let top_left_bc = accepts_zero_edge(bx, by, cx, cy);
    let top_left_ca = accepts_zero_edge(cx, cy, ax, ay);

    let mut comps = [0.0f32; MAX_VARYING_COMPONENTS];
    // SPMD batch state: accepted fragments become lanes; their deferred
    // depth/colour destinations retire at flush (band pixels are unique,
    // so deferral is invisible). Batches never span triangles or bands.
    let mut batch_n = 0usize;
    let mut batch_pixel = [0usize; MAX_LANES];
    let mut batch_z = [0.0f32; MAX_LANES];

    for py in y0..y1 {
        let pyc = py as f64 + 0.5;
        for px in x0..x1 {
            let pxc = px as f64 + 0.5;
            let w_ab = edge(ax, ay, bx, by, pxc, pyc); // weight for vertex C
            let w_bc = edge(bx, by, cx, cy, pxc, pyc); // weight for vertex A
            let w_ca = edge(cx, cy, ax, ay, pxc, pyc); // weight for vertex B
            let inside = (w_ab > 0.0 || (w_ab == 0.0 && top_left_ab))
                && (w_bc > 0.0 || (w_bc == 0.0 && top_left_bc))
                && (w_ca > 0.0 || (w_ca == 0.0 && top_left_ca));
            if !inside {
                continue;
            }
            let la = (w_bc / area) as f32;
            let lb = (w_ca / area) as f32;
            let lc = (w_ab / area) as f32;

            // Perspective-correct interpolation.
            let denom = la * setup.inv_w[0] + lb * setup.inv_w[1] + lc * setup.inv_w[2];
            let z = la * setup.z_ndc[0] + lb * setup.z_ndc[1] + lc * setup.z_ndc[2];
            let frag_z = (z * 0.5 + 0.5).clamp(0.0, 1.0);

            let pixel_index = (py - band_base) as usize * width + px as usize;
            if config.depth_test {
                if let Some(depth_buf) = depth.as_deref_mut() {
                    if frag_z >= depth_buf[pixel_index] {
                        continue;
                    }
                }
            }

            // Interpolate varyings into the fixed buffer, then store each
            // rebuilt value through its pre-resolved slot.
            for (idx, slot) in comps[..layout.total].iter_mut().enumerate() {
                let num = la * setup.var_over_w[0][idx]
                    + lb * setup.var_over_w[1][idx]
                    + lc * setup.var_over_w[2][idx];
                *slot = num / denom;
            }
            if let StageExec::Spmd(vm) = &mut fs {
                let mut offset = 0usize;
                for ((_, ty, len), slot) in layout.names.iter().zip(&varying_slots) {
                    let value = rebuild_varying(ty, &comps[offset..offset + len]);
                    offset += len;
                    vm.set_lane_slot(batch_n, *slot, value);
                }
                vm.set_lane_slot(
                    batch_n,
                    fragcoord_slot,
                    Value::Vec4([pxc as f32, pyc as f32, frag_z, denom]),
                );
                batch_pixel[batch_n] = pixel_index;
                batch_z[batch_n] = frag_z;
                batch_n += 1;
                if batch_n == vm.lanes() {
                    flush_spmd_batch(
                        vm,
                        batch_n,
                        &batch_pixel,
                        &batch_z,
                        config,
                        color,
                        &mut depth,
                        pixel,
                        &mut band,
                    )?;
                    batch_n = 0;
                }
                continue;
            }

            let mut offset = 0usize;
            for ((name, ty, len), slot) in layout.names.iter().zip(&varying_slots) {
                let value = rebuild_varying(ty, &comps[offset..offset + len]);
                offset += len;
                fs.set_resolved(*slot, name, value);
            }
            fs.set_resolved(
                fragcoord_slot,
                "gl_FragCoord",
                Value::Vec4([pxc as f32, pyc as f32, frag_z, denom]),
            );

            fs.run_main()?;
            band.shaded += 1;
            if fs.discarded() {
                band.discarded += 1;
                continue;
            }
            let rgba = fs.frag_color().ok_or(GlError::ShaderTrap(
                gpes_glsl::RuntimeError::MissingOutput {
                    name: "gl_FragColor",
                },
            ))?;

            if config.depth_test {
                if let Some(depth_buf) = depth.as_deref_mut() {
                    depth_buf[pixel_index] = frag_z;
                }
            }
            store_pixel(color, pixel_index, pixel, rgba, config.store_rounding);
            band.written += 1;
        }
    }
    // Partial-band tail: fragments left over when the band ends before
    // filling a full batch.
    if let StageExec::Spmd(vm) = &mut fs {
        if batch_n > 0 {
            flush_spmd_batch(
                vm,
                batch_n,
                &batch_pixel,
                &batch_z,
                config,
                color,
                &mut depth,
                pixel,
                &mut band,
            )?;
        }
    }
    band.profile = fs.take_profile();
    Ok(band)
}

fn rebuild_varying(ty: &Type, comps: &[f32]) -> Value {
    match ty {
        Type::Float => Value::Float(comps[0]),
        Type::Vec2 => Value::Vec2([comps[0], comps[1]]),
        Type::Vec3 => Value::Vec3([comps[0], comps[1], comps[2]]),
        Type::Vec4 => Value::Vec4([comps[0], comps[1], comps[2], comps[3]]),
        Type::Mat2 => Value::Mat2([[comps[0], comps[1]], [comps[2], comps[3]]]),
        Type::Mat3 => Value::Mat3([
            [comps[0], comps[1], comps[2]],
            [comps[3], comps[4], comps[5]],
            [comps[6], comps[7], comps[8]],
        ]),
        Type::Mat4 => Value::Mat4([
            [comps[0], comps[1], comps[2], comps[3]],
            [comps[4], comps[5], comps[6], comps[7]],
            [comps[8], comps[9], comps[10], comps[11]],
            [comps[12], comps[13], comps[14], comps[15]],
        ]),
        other => unreachable!("varying of type {other} should have been rejected"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_triangles() {
        assert_eq!(
            assemble(PrimitiveMode::Triangles, 6),
            vec![[0, 1, 2], [3, 4, 5]]
        );
    }

    #[test]
    fn assemble_strip_alternates_winding() {
        assert_eq!(
            assemble(PrimitiveMode::TriangleStrip, 5),
            vec![[0, 1, 2], [2, 1, 3], [2, 3, 4]]
        );
    }

    #[test]
    fn assemble_fan_pivots_on_zero() {
        assert_eq!(
            assemble(PrimitiveMode::TriangleFan, 5),
            vec![[0, 1, 2], [0, 2, 3], [0, 3, 4]]
        );
    }

    #[test]
    fn edge_function_sign() {
        // CCW triangle, point inside → positive.
        assert!(edge(0.0, 0.0, 4.0, 0.0, 1.0, 1.0) > 0.0);
        assert!(edge(0.0, 0.0, 4.0, 0.0, 1.0, -1.0) < 0.0);
        assert_eq!(edge(0.0, 0.0, 4.0, 0.0, 2.0, 0.0), 0.0);
    }

    #[test]
    fn top_left_rule_claims_shared_edges_once() {
        // Any edge and its reverse: exactly one accepts zero.
        let cases = [
            (0.0, 0.0, 4.0, 0.0),
            (0.0, 0.0, 0.0, 4.0),
            (0.0, 0.0, 4.0, 4.0),
            (4.0, 1.0, 0.0, 3.0),
        ];
        for (ax, ay, bx, by) in cases {
            let forward = accepts_zero_edge(ax, ay, bx, by);
            let backward = accepts_zero_edge(bx, by, ax, ay);
            assert_ne!(forward, backward, "edge ({ax},{ay})→({bx},{by})");
        }
    }

    #[test]
    fn dispatch_thread_counts() {
        assert_eq!(Dispatch::Serial.threads(), 1);
        assert_eq!(Dispatch::Parallel(4).threads(), 4);
        assert_eq!(Dispatch::Parallel(0).threads(), 1);
        assert!(Dispatch::Auto.threads() >= 1);
    }

    #[test]
    fn attribute_padding_follows_gl() {
        let arr = AttribArray {
            size: 2,
            data: vec![1.0, 2.0, 3.0, 4.0],
        };
        let v = attribute_value(&arr, 1, &Type::Vec4).expect("value");
        assert_eq!(v, Value::Vec4([3.0, 4.0, 0.0, 1.0]));
        let v = attribute_value(&arr, 0, &Type::Float).expect("value");
        assert_eq!(v, Value::Float(1.0));
    }

    #[test]
    fn attribute_bounds_checked() {
        let arr = AttribArray {
            size: 3,
            data: vec![0.0; 6],
        };
        assert!(attribute_value(&arr, 2, &Type::Vec3).is_err());
    }
}
