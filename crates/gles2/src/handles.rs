//! Typed object handles (`glGen*` names made type-safe).

use std::fmt;

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

handle!(
    /// Handle to a texture object.
    TextureId
);
handle!(
    /// Handle to a linked program object.
    ProgramId
);
handle!(
    /// Handle to a framebuffer object.
    FramebufferId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_distinct_types() {
        // This is a compile-time property; here we just check Display.
        assert_eq!(TextureId(3).to_string(), "TextureId(3)");
        assert_eq!(ProgramId(1).to_string(), "ProgramId(1)");
        assert_eq!(FramebufferId(0).to_string(), "FramebufferId(0)");
    }

    #[test]
    fn handles_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TextureId(1));
        set.insert(TextureId(2));
        assert!(set.contains(&TextureId(1)));
        assert!(TextureId(1) < TextureId(2));
    }
}
