//! Program objects: shader compilation, linking and uniform storage.

use crate::error::GlError;
use crate::limits::Limits;
use gpes_glsl::{compile, compile_strict, CompiledShader, Executable, ShaderKind, Type, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A linked pair of vertex + fragment shaders with uniform state.
#[derive(Debug, Clone)]
pub struct Program {
    /// The checked vertex shader.
    pub vertex: CompiledShader,
    /// The checked fragment shader.
    pub fragment: CompiledShader,
    /// The vertex shader lowered to slot-addressed bytecode (done once at
    /// link time; `None` for the rare shapes the lowerer rejects, which
    /// fall back to the tree-walking interpreter).
    vertex_exe: Option<Arc<Executable>>,
    /// The fragment shader lowered to bytecode.
    fragment_exe: Option<Arc<Executable>>,
    /// Merged uniform interface (name, type) in declaration order.
    uniforms: Vec<(String, Type)>,
    /// Current uniform values (samplers stored as `Value::Sampler`).
    values: HashMap<String, Value>,
    /// Varyings consumed by the fragment shader (name, type), the set that
    /// must be produced by the vertex stage and interpolated.
    linked_varyings: Vec<(String, Type)>,
}

impl Program {
    /// Compiles and links a program from two source strings
    /// (`glCreateProgram` + `glCompileShader` ×2 + `glLinkProgram`).
    ///
    /// # Errors
    ///
    /// * [`GlError::Compile`] for either shader failing to compile,
    /// * [`GlError::Link`] for interface mismatches: fragment varyings not
    ///   written by the vertex shader, type conflicts, too many varying
    ///   vectors, uniform type conflicts between stages.
    pub fn link(vs_source: &str, fs_source: &str, limits: &Limits) -> Result<Program, GlError> {
        Program::link_with(vs_source, fs_source, limits, false)
    }

    /// Like [`Program::link`], with an optional GLSL ES Appendix A pass —
    /// what a minimum-profile driver (e.g. VideoCore IV) enforces.
    ///
    /// # Errors
    ///
    /// As [`Program::link`], plus Appendix A violations when `strict`.
    pub fn link_with(
        vs_source: &str,
        fs_source: &str,
        limits: &Limits,
        strict: bool,
    ) -> Result<Program, GlError> {
        let (vertex, fragment) = if strict {
            (
                compile_strict(ShaderKind::Vertex, vs_source)?,
                compile_strict(ShaderKind::Fragment, fs_source)?,
            )
        } else {
            (
                compile(ShaderKind::Vertex, vs_source)?,
                compile(ShaderKind::Fragment, fs_source)?,
            )
        };

        // Every varying the fragment shader declares must be declared by
        // the vertex shader with an identical type.
        let mut linked_varyings = Vec::new();
        for (name, ty) in &fragment.interface.varyings {
            match vertex.interface.varying(name) {
                Some(vt) if vt == ty => linked_varyings.push((name.clone(), ty.clone())),
                Some(vt) => {
                    return Err(GlError::Link {
                        message: format!(
                            "varying `{name}` declared as {vt} in vertex shader but {ty} in fragment shader"
                        ),
                    })
                }
                None => {
                    return Err(GlError::Link {
                        message: format!(
                            "fragment shader consumes varying `{name}` that the vertex shader does not declare"
                        ),
                    })
                }
            }
        }

        // Varying budget (ES 2 guarantees only 8 vec4 vectors). The
        // rasteriser interpolates into fixed-size buffers sized for that
        // guarantee, so a context configured with a larger
        // `max_varying_vectors` is still capped here — at link time,
        // where the error is actionable, rather than at draw time.
        let varying_vectors: usize = linked_varyings
            .iter()
            .map(|(_, t)| varying_vector_cost(t))
            .sum();
        let budget = limits
            .max_varying_vectors
            .min(crate::raster::MAX_VARYING_COMPONENTS / 4);
        if varying_vectors > budget {
            return Err(GlError::Link {
                message: format!("{varying_vectors} varying vectors exceed the limit of {budget}",),
            });
        }

        // Merge uniforms; same-name uniforms must agree on type.
        let mut uniforms: Vec<(String, Type)> = Vec::new();
        for (name, ty) in vertex
            .interface
            .uniforms
            .iter()
            .chain(fragment.interface.uniforms.iter())
        {
            match uniforms.iter().find(|(n, _)| n == name) {
                Some((_, existing)) if existing == ty => {}
                Some((_, existing)) => {
                    return Err(GlError::Link {
                        message: format!(
                            "uniform `{name}` declared as {existing} and {ty} in different stages"
                        ),
                    })
                }
                None => uniforms.push((name.clone(), ty.clone())),
            }
        }

        let samplers = uniforms
            .iter()
            .filter(|(_, t)| *t == Type::Sampler2D)
            .count();
        if samplers > limits.max_texture_units {
            return Err(GlError::Link {
                message: format!(
                    "{samplers} sampler uniforms exceed the {} texture units",
                    limits.max_texture_units
                ),
            });
        }

        if vertex.interface.attributes.len() > limits.max_vertex_attribs {
            return Err(GlError::Link {
                message: format!(
                    "{} attributes exceed the limit of {}",
                    vertex.interface.attributes.len(),
                    limits.max_vertex_attribs
                ),
            });
        }

        // Lower both stages to bytecode once per link — the analog of a
        // driver compiling its internal representation at `glLinkProgram`
        // instead of re-interpreting source per fragment. The handles are
        // `Arc`s so a cloned (or cache-shared) `Program` reuses the same
        // lowered code instead of re-lowering.
        let vertex_exe = gpes_glsl::lower_shared(&vertex).ok();
        let fragment_exe = gpes_glsl::lower_shared(&fragment).ok();

        Ok(Program {
            vertex,
            fragment,
            vertex_exe,
            fragment_exe,
            uniforms,
            values: HashMap::new(),
            linked_varyings,
        })
    }

    /// The vertex stage's bytecode, if the lowerer accepted it.
    pub fn vertex_executable(&self) -> Option<&Executable> {
        self.vertex_exe.as_deref()
    }

    /// The fragment stage's bytecode, if the lowerer accepted it.
    pub fn fragment_executable(&self) -> Option<&Executable> {
        self.fragment_exe.as_deref()
    }

    /// A shared handle to the vertex stage's bytecode. Cloning the `Arc`
    /// is how multiple contexts (or threads) run one lowered program.
    pub fn vertex_executable_shared(&self) -> Option<Arc<Executable>> {
        self.vertex_exe.clone()
    }

    /// A shared handle to the fragment stage's bytecode.
    pub fn fragment_executable_shared(&self) -> Option<Arc<Executable>> {
        self.fragment_exe.clone()
    }

    /// The merged uniform interface.
    pub fn uniforms(&self) -> &[(String, Type)] {
        &self.uniforms
    }

    /// Varyings interpolated from vertex to fragment stage.
    pub fn varyings(&self) -> &[(String, Type)] {
        &self.linked_varyings
    }

    /// The vertex shader's attribute interface.
    pub fn attributes(&self) -> &[(String, Type)] {
        &self.vertex.interface.attributes
    }

    /// Looks up a uniform's declared type (`glGetUniformLocation` analog;
    /// returns `None` for names that do not exist).
    pub fn uniform_type(&self, name: &str) -> Option<&Type> {
        self.uniforms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Sets a uniform (`glUniform*`).
    ///
    /// Sampler uniforms are set with `Value::Int(unit)` exactly as in GL
    /// (`glUniform1i`); the value is stored as `Value::Sampler`.
    ///
    /// # Errors
    ///
    /// `InvalidOperation` if the name does not exist or the value type does
    /// not match the declaration.
    pub fn set_uniform(&mut self, name: &str, value: Value) -> Result<(), GlError> {
        let declared = self
            .uniform_type(name)
            .ok_or_else(|| GlError::invalid_op(format!("program has no uniform named `{name}`")))?;
        let stored = match (declared, &value) {
            (Type::Sampler2D, Value::Int(unit)) => {
                if *unit < 0 {
                    return Err(GlError::invalid_value("sampler unit must be non-negative"));
                }
                Value::Sampler(*unit as u32)
            }
            (decl, v) if *decl == v.ty() => value,
            (decl, v) => {
                return Err(GlError::invalid_op(format!(
                    "uniform `{name}` is {decl}, got {}",
                    v.ty()
                )))
            }
        };
        self.values.insert(name.to_owned(), stored);
        Ok(())
    }

    /// Current uniform values.
    pub fn uniform_values(&self) -> &HashMap<String, Value> {
        &self.values
    }

    /// Verifies every declared uniform has been given a value, returning
    /// the missing names otherwise. GL defaults uniforms to zero; GPGPU
    /// bugs from unset samplers are so common that the simulator makes the
    /// default available but lets the context warn.
    pub fn unset_uniforms(&self) -> Vec<&str> {
        self.uniforms
            .iter()
            .filter(|(n, _)| !self.values.contains_key(n))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Number of 4-component "rows" a varying occupies for the budget check.
fn varying_vector_cost(ty: &Type) -> usize {
    match ty {
        Type::Mat2 => 2,
        Type::Mat3 => 3,
        Type::Mat4 => 4,
        Type::Array(elem, n) => varying_vector_cost(elem) * n,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VS: &str = "attribute vec2 a_pos;\nvarying vec2 v_uv;\n\
                      void main() { v_uv = a_pos; gl_Position = vec4(a_pos, 0.0, 1.0); }";
    const FS: &str = "precision highp float;\nvarying vec2 v_uv;\nuniform float u_k;\n\
                      void main() { gl_FragColor = vec4(v_uv * u_k, 0.0, 1.0); }";

    #[test]
    fn links_matching_interfaces() {
        let p = Program::link(VS, FS, &Limits::default()).expect("links");
        assert_eq!(p.varyings(), &[("v_uv".to_owned(), Type::Vec2)]);
        assert_eq!(p.attributes().len(), 1);
        assert_eq!(p.uniform_type("u_k"), Some(&Type::Float));
    }

    #[test]
    fn link_lowers_both_stages_to_bytecode() {
        // The bytecode fast path must actually be live: if the lowerer
        // started rejecting ordinary shaders, every draw would silently
        // fall back to the tree-walker and the differential suites would
        // compare the interpreter against itself.
        let p = Program::link(VS, FS, &Limits::default()).expect("links");
        assert!(p.vertex_executable().is_some(), "vertex stage must lower");
        assert!(
            p.fragment_executable().is_some(),
            "fragment stage must lower"
        );
    }

    #[test]
    fn link_fails_on_missing_varying() {
        let vs = "attribute vec2 a_pos; void main() { gl_Position = vec4(a_pos, 0.0, 1.0); }";
        let err = Program::link(vs, FS, &Limits::default()).unwrap_err();
        assert!(err.to_string().contains("v_uv"));
    }

    #[test]
    fn link_fails_on_varying_type_conflict() {
        let vs = "attribute vec2 a_pos;\nvarying vec3 v_uv;\n\
                  void main() { v_uv = vec3(a_pos, 0.0); gl_Position = vec4(1.0); }";
        let err = Program::link(vs, FS, &Limits::default()).unwrap_err();
        assert!(err.to_string().contains("vec3"));
    }

    #[test]
    fn link_fails_on_uniform_type_conflict() {
        let vs = "uniform vec2 u_k;\nattribute vec2 a_pos;\nvarying vec2 v_uv;\n\
                  void main() { v_uv = u_k; gl_Position = vec4(1.0); }";
        let err = Program::link(vs, FS, &Limits::default()).unwrap_err();
        assert!(err.to_string().contains("u_k"));
    }

    #[test]
    fn varying_budget_enforced() {
        let vs = "attribute vec2 a_pos;\n\
                  varying mat4 v_a; varying mat4 v_b; varying vec4 v_c;\n\
                  void main() { v_a = mat4(1.0); v_b = mat4(1.0); v_c = vec4(1.0);\n\
                                gl_Position = vec4(a_pos, 0.0, 1.0); }";
        let fs = "precision highp float;\n\
                  varying mat4 v_a; varying mat4 v_b; varying vec4 v_c;\n\
                  void main() { gl_FragColor = v_a[0] + v_b[1] + v_c; }";
        let err = Program::link(vs, fs, &Limits::default()).unwrap_err();
        assert!(err.to_string().contains("varying vectors"));
    }

    #[test]
    fn uniform_set_and_type_check() {
        let mut p = Program::link(VS, FS, &Limits::default()).expect("links");
        assert_eq!(p.unset_uniforms(), vec!["u_k"]);
        p.set_uniform("u_k", Value::Float(2.0)).expect("set");
        assert!(p.unset_uniforms().is_empty());
        let err = p.set_uniform("u_k", Value::Int(2)).unwrap_err();
        assert!(err.to_string().contains("is float"));
        let err = p.set_uniform("u_missing", Value::Float(0.0)).unwrap_err();
        assert!(err.to_string().contains("no uniform"));
    }

    #[test]
    fn sampler_uniform_accepts_int_unit() {
        let fs = "precision highp float;\nuniform sampler2D u_tex;\nvarying vec2 v_uv;\n\
                  void main() { gl_FragColor = texture2D(u_tex, v_uv); }";
        let mut p = Program::link(VS, fs, &Limits::default()).expect("links");
        p.set_uniform("u_tex", Value::Int(3)).expect("set sampler");
        assert_eq!(p.uniform_values().get("u_tex"), Some(&Value::Sampler(3)));
        assert!(p.set_uniform("u_tex", Value::Int(-1)).is_err());
    }

    #[test]
    fn compile_errors_surface_with_position() {
        let err = Program::link(
            "void main() { gl_Position = 1 & 2; }",
            FS,
            &Limits::default(),
        )
        .unwrap_err();
        assert!(matches!(err, GlError::Compile(_)));
    }
}
