//! The two conversions at the heart of the paper's numeric transformations:
//!
//! * eq. (1): texture byte → shader float, `f = c / (2⁸ − 1)`;
//! * eq. (2): shader float → framebuffer byte,
//!   `i = ⌊clamp(f, 0, 1) · (2⁸ − 1)⌋`.
//!
//! The ES 2 specification leaves the store rounding implementation-defined;
//! the paper's δ-correction assumes flooring. [`StoreRounding`] lets both
//! behaviours be simulated (ablation A2).

/// How the framebuffer converts a clamped float to a byte (eq. (2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreRounding {
    /// `i = ⌊f · 255⌋` — the behaviour the paper's transformations assume.
    #[default]
    Floor,
    /// `i = ⌊f · 255 + 0.5⌋` — round-to-nearest, used by some drivers.
    Nearest,
}

/// eq. (1): converts a texel byte to the float seen by the shader.
#[inline]
pub fn texel_to_float(c: u8) -> f32 {
    c as f32 / 255.0
}

/// eq. (2): converts a shader output component to a framebuffer byte.
#[inline]
pub fn float_to_texel(f: f32, rounding: StoreRounding) -> u8 {
    // NaN clamps to 0 (GL clamps to [0,1] and NaN comparisons are false).
    let clamped = if f.is_nan() { 0.0 } else { f.clamp(0.0, 1.0) };
    let scaled = match rounding {
        StoreRounding::Floor => (clamped * 255.0).floor(),
        StoreRounding::Nearest => (clamped * 255.0 + 0.5).floor(),
    };
    scaled.min(255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texel_to_float_endpoints() {
        assert_eq!(texel_to_float(0), 0.0);
        assert_eq!(texel_to_float(255), 1.0);
        assert_eq!(texel_to_float(51), 51.0 / 255.0);
    }

    #[test]
    fn floor_store_of_exact_grid_points() {
        // Byte → float → byte must round-trip for every byte *only if* the
        // shader bumps the value; the raw c/255 grid happens to floor back
        // exactly because c/255 * 255 rounds to c in fp32.
        for c in 0..=255u8 {
            let f = texel_to_float(c);
            assert_eq!(float_to_texel(f, StoreRounding::Floor), c, "byte {c}");
        }
    }

    #[test]
    fn floor_vs_nearest_disagree_between_grid_points() {
        // A value just below the next grid point: floor keeps the lower
        // byte, nearest snaps up.
        let f = 100.9 / 255.0;
        assert_eq!(float_to_texel(f, StoreRounding::Floor), 100);
        assert_eq!(float_to_texel(f, StoreRounding::Nearest), 101);
    }

    #[test]
    fn clamping() {
        assert_eq!(float_to_texel(-0.5, StoreRounding::Floor), 0);
        assert_eq!(float_to_texel(1.5, StoreRounding::Floor), 255);
        assert_eq!(float_to_texel(f32::NAN, StoreRounding::Floor), 0);
        assert_eq!(float_to_texel(f32::INFINITY, StoreRounding::Floor), 255);
        assert_eq!(float_to_texel(f32::NEG_INFINITY, StoreRounding::Floor), 0);
    }

    #[test]
    fn exact_one_maps_to_255_under_floor() {
        // 1.0 * 255 = 255 exactly; floor must not lose it.
        assert_eq!(float_to_texel(1.0, StoreRounding::Floor), 255);
    }
}
