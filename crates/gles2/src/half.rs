//! IEEE 754 binary16 ("half float") conversions for the
//! `OES_texture_half_float` / `EXT_color_buffer_half_float` extension
//! emulation.
//!
//! The paper (§II.5–6) notes that *some* vendors expose half-float
//! texture and framebuffer extensions, but that fp16 is "neither enough
//! nor portable" for general-purpose computation. This module provides
//! the exact fp16 semantics so ablation A6 can quantify "not enough":
//! a 10-bit mantissa against the ≈15–23 bits the §IV byte packing keeps.
//!
//! Conversions follow IEEE 754-2008: round-to-nearest-even on narrowing,
//! denormal and ±∞/NaN handling included.

/// Converts an `f32` to binary16 bits, rounding to nearest-even.
pub fn f32_to_f16_bits(f: f32) -> u16 {
    let bits = f.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf or NaN; keep a NaN payload bit so NaNs stay NaNs.
        let payload = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7C00 | payload | ((mant >> 13) as u16 & 0x03FF);
    }

    // Unbiased exponent; binary16 bias is 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow → ±∞
    }
    if unbiased >= -14 {
        // Normal range: 10-bit mantissa with round-to-nearest-even.
        let mant16 = mant >> 13;
        let rem = mant & 0x1FFF;
        let halfway = 0x1000;
        let mut out = ((unbiased + 15) as u32) << 10 | mant16;
        if rem > halfway || (rem == halfway && (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent — that is correct
        }
        return sign | out as u16;
    }
    if unbiased >= -25 {
        // Denormal range: shift the implicit bit in.
        let mant = mant | 0x80_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mant16 = mant >> shift;
        let rem = mant & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = mant16;
        if rem > halfway || (rem == halfway && (mant16 & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    sign // underflow → ±0
}

/// Converts binary16 bits to an `f32` (exact; binary16 ⊂ binary32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Denormal: value = m · 2⁻²⁴. Renormalise: with the top set
            // bit of m at position p, shift = 10 − p puts it at bit 10
            // (the implicit-one slot) and the exponent becomes p − 24.
            let shift = m.leading_zeros() - 21; // = 10 - p
            let m = (m << shift) & 0x03FF;
            let e = 127 - 14 - shift; // biased (p − 24) + 127
            sign | (e << 23) | (m << 13)
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Narrows through fp16 and back — what a value suffers crossing an
/// `RGBA16F` texture or framebuffer.
#[inline]
pub fn round_trip_f16(f: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            assert_eq!(round_trip_f16(v), v, "{v}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(round_trip_f16(65520.0), f32::INFINITY); // > max finite 65504, rounds up
        assert_eq!(round_trip_f16(1.0e6), f32::INFINITY);
        assert_eq!(round_trip_f16(-1.0e6), f32::NEG_INFINITY);
    }

    #[test]
    fn specials_survive() {
        assert_eq!(round_trip_f16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_trip_f16(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(round_trip_f16(f32::NAN).is_nan());
        assert_eq!(round_trip_f16(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn denormal_range() {
        let min_denorm = f16_bits_to_f32(0x0001);
        assert_eq!(min_denorm, 2.0f32.powi(-24));
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 0x0001);
        // Below half the smallest denormal → flush to zero.
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-26)), 0);
        let min_normal = f16_bits_to_f32(0x0400);
        assert_eq!(min_normal, 2.0f32.powi(-14));
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10:
        // even mantissa (0) wins → 1.0.
        assert_eq!(round_trip_f16(1.0 + 2.0f32.powi(-11)), 1.0);
        // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to
        // the even mantissa 2 → 1 + 2^-9.
        assert_eq!(
            round_trip_f16(1.0 + 3.0 * 2.0f32.powi(-11)),
            1.0 + 2.0f32.powi(-9)
        );
        // Just above halfway rounds up.
        assert_eq!(
            round_trip_f16(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20)),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn all_finite_f16_bit_patterns_round_trip() {
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            if f.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(f)).is_nan());
                continue;
            }
            assert_eq!(
                f32_to_f16_bits(f),
                h,
                "bits {h:#06x} -> {f} did not round-trip"
            );
        }
    }

    #[test]
    fn mantissa_is_ten_bits() {
        // 1 + 2^-10 survives; 1 + 2^-11 does not (rounds to even).
        assert_eq!(
            round_trip_f16(1.0 + 2.0f32.powi(-10)),
            1.0 + 2.0f32.powi(-10)
        );
        assert_eq!(round_trip_f16(1.0 + 2.0f32.powi(-11)), 1.0);
    }
}
