//! Experiment E2 — the paper's §V precision result.
//!
//! > "For the floating point versions, the GPU output is accurate with
//! > respect to the fp32 format used by the CPU, within the 15 most
//! > significant bits of the mantissa. … This difference comes from the
//! > GPU platform (hardware and software), since the same transformations
//! > on the CPU are precise."
//!
//! We reproduce both halves: under the exact float model every kernel is
//! bit-exact (the "CPU precise" half), and under the VideoCore-like SFU
//! model accuracy drops to ≈15 mantissa bits (the "GPU platform" half).
//!
//! A subtlety the simulation exposes: a *pure* unpack→pack round trip
//! stays bit-exact even under the noisy SFU model, because `exp2(e)` in
//! the unpack and the pack see the same input and return the identical
//! (noisy) value — the error cancels. Any arithmetic between unpack and
//! pack (a scale, a sum) shifts the output exponent, de-correlates the
//! two `exp2` evaluations and exposes the ≈15-bit accuracy the paper
//! measured. The identity row below documents the cancellation; the
//! arithmetic rows reproduce the paper's number.

use gpes_core::codec::float32::mantissa_agreement_bits;
use gpes_core::{ComputeContext, ComputeError, Kernel, ScalarType};
use gpes_glsl::exec::FloatModel;
use gpes_kernels::data;

/// Accuracy statistics for one float model.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// The simulated float model.
    pub model: FloatModel,
    /// Scenario label.
    pub scenario: String,
    /// Minimum mantissa agreement across samples (23 = bit exact).
    pub min_bits: u32,
    /// Mean mantissa agreement.
    pub mean_bits: f64,
    /// Fraction of samples that were bit-exact.
    pub exact_fraction: f64,
}

impl E2Row {
    /// Formats the row for the harness output.
    pub fn format(&self) -> String {
        format!(
            "{:<12} {:<22} min {:>2} bits   mean {:>5.2} bits   bit-exact {:>5.1}%",
            format!("{:?}", self.model),
            self.scenario,
            self.min_bits,
            self.mean_bits,
            self.exact_fraction * 100.0,
        )
    }
}

fn agreement_stats(model: FloatModel, scenario: &str, expected: &[f32], actual: &[f32]) -> E2Row {
    let mut min_bits = 23u32;
    let mut total = 0u64;
    let mut exact = 0usize;
    for (&e, &a) in expected.iter().zip(actual) {
        let bits = mantissa_agreement_bits(e, a);
        min_bits = min_bits.min(bits);
        total += bits as u64;
        if e.to_bits() == a.to_bits() {
            exact += 1;
        }
    }
    E2Row {
        model,
        scenario: scenario.into(),
        min_bits,
        mean_bits: total as f64 / expected.len() as f64,
        exact_fraction: exact as f64 / expected.len() as f64,
    }
}

/// Round-trips `values` through an identity kernel (`return fetch_x(idx)`)
/// under the given float model and reports mantissa agreement.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn identity_round_trip(model: FloatModel, values: &[f32]) -> Result<E2Row, ComputeError> {
    let mut cc = ComputeContext::new(128, 128)?;
    cc.set_float_model(model);
    let arr = cc.upload(values)?;
    let k = Kernel::builder("identity")
        .input("x", &arr)
        .output(ScalarType::F32, values.len())
        .body("return fetch_x(idx);")
        .build(&mut cc)?;
    let out = cc.run_f32(&k)?;
    Ok(agreement_stats(model, "identity round-trip", values, &out))
}

/// Scales every element by 3 on the GPU and compares with the exact CPU
/// result — the minimal kernel whose output exponent differs from its
/// input exponent (breaking the exp2 cancellation).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn scale_accuracy(model: FloatModel, values: &[f32]) -> Result<E2Row, ComputeError> {
    let mut cc = ComputeContext::new(128, 128)?;
    cc.set_float_model(model);
    let arr = cc.upload(values)?;
    let k = Kernel::builder("scale3")
        .input("x", &arr)
        .output(ScalarType::F32, values.len())
        .body("return fetch_x(idx) * 3.0;")
        .build(&mut cc)?;
    let out = cc.run_f32(&k)?;
    let expected: Vec<f32> = values.iter().map(|&v| v * 3.0).collect();
    Ok(agreement_stats(model, "scale x3 vs CPU", &expected, &out))
}

/// Runs the `sum (fp)` benchmark under the given model and compares with
/// the exact CPU reference.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn sum_accuracy(model: FloatModel, n: usize) -> Result<E2Row, ComputeError> {
    let a = data::random_f32(n, 201, 1.0e4);
    let b = data::random_f32(n, 202, 1.0e4);
    let mut cc = ComputeContext::new(128, 128)?;
    cc.set_float_model(model);
    let ga = cc.upload(&a)?;
    let gb = cc.upload(&b)?;
    let k = gpes_kernels::sum::build_f32(&mut cc, &ga, &gb)?;
    let out = cc.run_f32(&k)?;
    let expected = gpes_kernels::sum::cpu_reference(&a, &b);
    Ok(agreement_stats(model, "sum (fp) vs CPU", &expected, &out))
}

/// Host-side transform exactness (the "CPU precise" half of the claim):
/// encode→decode must be the identity on raw bits for any input.
pub fn host_transform_exact(values: &[f32]) -> bool {
    values.iter().all(|&v| {
        gpes_core::codec::float32::decode(gpes_core::codec::float32::encode(v)).to_bits()
            == v.to_bits()
    })
}

/// Runs the full E2 experiment.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run(samples: usize) -> Result<Vec<E2Row>, ComputeError> {
    let values = data::random_f32(samples, 200, 1.0e12);
    let mut rows = Vec::new();
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16] {
        rows.push(identity_round_trip(model, &values)?);
    }
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu] {
        rows.push(scale_accuracy(model, &values)?);
    }
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu] {
        rows.push(sum_accuracy(model, samples.min(2048))?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_model_is_bit_exact() {
        let values = data::random_f32(256, 210, 1.0e9);
        let row = identity_round_trip(FloatModel::Exact, &values).expect("run");
        assert_eq!(row.min_bits, 23, "{}", row.format());
        assert_eq!(row.exact_fraction, 1.0);
    }

    #[test]
    fn vc4_identity_cancels_the_sfu_noise() {
        // Pure unpack→pack: the exp2(e) noise is identical on both sides
        // and cancels — bit-exact even on the "imprecise" GPU.
        let values = data::random_f32(512, 211, 1.0e9);
        let row = identity_round_trip(FloatModel::Vc4Sfu, &values).expect("run");
        assert_eq!(row.min_bits, 23, "{}", row.format());
    }

    #[test]
    fn vc4_arithmetic_lands_near_the_papers_15_bits() {
        let values = data::random_f32(512, 214, 1.0e9);
        let row = scale_accuracy(FloatModel::Vc4Sfu, &values).expect("run");
        assert!(
            (12..=19).contains(&row.min_bits),
            "expected ≈15 bits, got {}",
            row.format()
        );
        assert!(
            row.mean_bits >= 14.0 && row.mean_bits <= 20.0,
            "{}",
            row.format()
        );
        assert!(row.exact_fraction < 1.0);

        let row = sum_accuracy(FloatModel::Vc4Sfu, 1024).expect("run");
        assert!(
            row.min_bits >= 12 && row.mean_bits >= 14.0,
            "{}",
            row.format()
        );
    }

    #[test]
    fn mediump_is_clearly_not_enough() {
        // The paper (§II #5): half-float extensions are "not enough".
        let values = data::random_f32(256, 212, 1.0e4);
        let row = identity_round_trip(FloatModel::Mediump16, &values).expect("run");
        assert!(row.mean_bits < 13.0, "{}", row.format());
    }

    #[test]
    fn host_transforms_are_precise() {
        let mut values = data::random_f32(4096, 213, 1.0e30);
        values.extend([0.0, -0.0, f32::INFINITY, f32::NEG_INFINITY, 1e-42]);
        assert!(host_transform_exact(&values));
    }
}
