//! Ablations A1–A7: design choices called out in `DESIGN.md`.

use gpes_core::codec::strzodka16;
use gpes_core::{ComputeContext, ComputeError, ExecMode, Kernel, PackBias, Readback, ScalarType};
use gpes_gles2::{Dispatch, StoreRounding};
use gpes_kernels::data;
use gpes_perf::{estimate_gpu, gpu_run_from_passes, readback_bytes_for, GpuRun, Vc4Gpu};
use std::time::Instant;

/// A1 — output byte bias: paper δ vs half-texel, under both store
/// roundings, measured by exhaustive `u8` identity round trips through
/// the real pipeline.
#[derive(Debug, Clone)]
pub struct A1Row {
    /// Pack bias under test.
    pub bias: PackBias,
    /// Store rounding under test.
    pub rounding: StoreRounding,
    /// Mismatched byte values out of 256.
    pub mismatches: usize,
    /// Worst-case distance from the stored value to the floor boundary,
    /// in units of 1/255 (the safety margin; bigger is safer).
    pub min_margin: f32,
}

impl A1Row {
    /// Formats the row.
    pub fn format(&self) -> String {
        format!(
            "{:<12} {:<8} mismatches {:>3}/256   min margin {:.5} (of 1/255 grid step)",
            format!("{:?}", self.bias),
            format!("{:?}", self.rounding),
            self.mismatches,
            self.min_margin,
        )
    }
}

/// Runs A1.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn a1_pack_bias() -> Result<Vec<A1Row>, ComputeError> {
    let all_bytes: Vec<u8> = (0..=255).collect();
    let mut rows = Vec::new();
    for bias in [
        PackBias::QuarterTexel,
        PackBias::HalfTexel,
        PackBias::PaperDelta,
    ] {
        for rounding in [StoreRounding::Floor, StoreRounding::Nearest] {
            let mut cc = ComputeContext::new(32, 32)?;
            cc.set_pack_bias(bias);
            cc.gl().set_store_rounding(rounding);
            let arr = cc.upload(&all_bytes)?;
            let k = Kernel::builder("ident_u8")
                .input("x", &arr)
                .output(ScalarType::U8, all_bytes.len())
                .body("return fetch_x(idx);")
                .build(&mut cc)?;
            let out: Vec<u8> = cc.run_and_read(&k)?;
            let mismatches = out.iter().zip(&all_bytes).filter(|(a, b)| a != b).count();
            // Analytic margin: distance of the packed component to the
            // next-lower grid boundary b/255.
            let mut min_margin = f32::MAX;
            for b in 0..=255u32 {
                let f = bias.pack_byte(b as f32);
                let margin = f * 255.0 - b as f32;
                min_margin = min_margin.min(margin);
            }
            rows.push(A1Row {
                bias,
                rounding,
                mismatches,
                min_margin,
            });
        }
    }
    Ok(rows)
}

/// A3 — serial vs parallel fragment dispatch: wall-clock of the simulator
/// itself (host performance, not modelled device time).
#[derive(Debug, Clone)]
pub struct A3Row {
    /// Dispatch mode.
    pub dispatch: Dispatch,
    /// Simulated fragments per host second.
    pub fragments_per_s: f64,
}

impl A3Row {
    /// Formats the row.
    pub fn format(&self) -> String {
        format!(
            "{:<16} {:>12.0} fragments/s (host)",
            format!("{:?}", self.dispatch),
            self.fragments_per_s,
        )
    }
}

/// Runs A3 on an `n`-element `sum (fp)` kernel.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn a3_dispatch(n: usize) -> Result<Vec<A3Row>, ComputeError> {
    let a = data::random_f32(n, 301, 100.0);
    let b = data::random_f32(n, 302, 100.0);
    let mut rows = Vec::new();
    for dispatch in [Dispatch::Serial, Dispatch::Parallel(4), Dispatch::Auto] {
        let mut cc = ComputeContext::new(512, 512)?;
        cc.set_dispatch(dispatch);
        let ga = cc.upload(&a)?;
        let gb = cc.upload(&b)?;
        let k = gpes_kernels::sum::build_f32(&mut cc, &ga, &gb)?;
        let start = Instant::now();
        let _ = cc.run_f32(&k)?;
        let elapsed = start.elapsed().as_secs_f64();
        rows.push(A3Row {
            dispatch,
            fragments_per_s: n as f64 / elapsed,
        });
    }
    Ok(rows)
}

/// A4 — readback strategy equivalence (workaround #7): every path must
/// produce identical bytes.
#[derive(Debug, Clone)]
pub struct A4Result {
    /// Whether DirectFbo and CopyShader agree with the screen path.
    pub all_equal: bool,
    /// Passes executed by the copy-shader path (kernel + copy).
    pub copy_shader_passes: usize,
    /// Passes executed by the direct/screen paths (kernel only).
    pub direct_passes: usize,
}

/// Runs A4.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn a4_readback(n: usize) -> Result<A4Result, ComputeError> {
    let values = data::random_f32(n, 303, 1.0e6);

    // Path 1: kernel ordered to land in the default framebuffer.
    let mut cc = ComputeContext::new(128, 128)?;
    let arr = cc.upload(&values)?;
    let k = Kernel::builder("scale")
        .input("x", &arr)
        .output(ScalarType::F32, n)
        .body("return fetch_x(idx) * 3.0;")
        .build(&mut cc)?;
    let screen = cc.run_f32(&k)?;
    let direct_passes = cc.take_pass_log().len();

    // Path 2: render to texture, read through the FBO.
    let rtt: gpes_core::GpuArray<f32> = cc.run_to_array(&k)?;
    let via_fbo = cc.read_array(&rtt, Readback::DirectFbo)?;

    // Path 3: render to texture, copy shader to the screen, read.
    cc.take_pass_log();
    let rtt2: gpes_core::GpuArray<f32> = cc.run_to_array(&k)?;
    let via_copy = cc.read_array(&rtt2, Readback::CopyShader)?;
    let copy_shader_passes = cc.take_pass_log().len();

    Ok(A4Result {
        all_equal: screen == via_fbo && screen == via_copy,
        copy_shader_passes,
        direct_passes,
    })
}

/// A5 — the §VI related-work comparison: the paper's §IV-C `u32` codec
/// vs the Strzodka VMV'02 virtual-16-bit baseline, both running a real
/// wrapping-add workload on the simulator.
#[derive(Debug, Clone)]
pub struct A5Row {
    /// Format label.
    pub format: &'static str,
    /// Whether the GPU result matched the CPU reference exactly.
    pub correct: bool,
    /// Exactly representable integer bits.
    pub exact_bits: u32,
    /// Values carried per RGBA8 texel.
    pub values_per_texel: u32,
    /// Whether CPU-native memory uploads without transformation.
    pub memcpy_compatible: bool,
    /// Host ops per element spent converting on upload+readback.
    pub host_ops_per_element: u32,
    /// Whether the format family also covers floating point.
    pub covers_float: bool,
    /// Fragment-shader ALU ops per output *value* (not per fragment).
    pub alu_ops_per_value: f64,
}

impl A5Row {
    /// Formats the row.
    pub fn format_row(&self) -> String {
        format!(
            "{:<22} correct {:<5} exact bits {:>2}  values/texel {}  memcpy {:<5} host ops/elem {}  float {:<5} alu/value {:.1}",
            self.format,
            self.correct,
            self.exact_bits,
            self.values_per_texel,
            self.memcpy_compatible,
            self.host_ops_per_element,
            self.covers_float,
            self.alu_ops_per_value,
        )
    }
}

/// Runs A5 on `n` elements of a wrapping 16-bit add (the workload both
/// formats can express).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn a5_strzodka_baseline(n: usize) -> Result<Vec<A5Row>, ComputeError> {
    let a: Vec<u16> = data::random_u32(n, 501, u16::MAX as u32 + 1)
        .into_iter()
        .map(|v| v as u16)
        .collect();
    let b: Vec<u16> = data::random_u32(n, 502, u16::MAX as u32 + 1)
        .into_iter()
        .map(|v| v as u16)
        .collect();
    let reference: Vec<u16> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_add(y)).collect();
    let mut rows = Vec::new();

    // Paper path: values as u32 through the §IV-C codec (sums stay below
    // 2^17, so no wrap is exercised there; wrap correctness for the paper
    // codec is covered separately by its own unit tests).
    {
        let mut cc = ComputeContext::new(256, 256)?;
        let ga = cc.upload(&a.iter().map(|&v| v as u32).collect::<Vec<_>>())?;
        let gb = cc.upload(&b.iter().map(|&v| v as u32).collect::<Vec<_>>())?;
        let k = Kernel::builder("a5_paper_u32")
            .input("a", &ga)
            .input("b", &gb)
            .output(ScalarType::U32, n)
            .body("return mod(fetch_a(idx) + fetch_b(idx), 65536.0);")
            .build(&mut cc)?;
        let out: Vec<u32> = cc.run_and_read(&k)?;
        let correct = out
            .iter()
            .zip(&reference)
            .all(|(&got, &want)| got == want as u32);
        let log = cc.take_pass_log();
        let stats = &log[0].stats;
        let profile = strzodka16::paper_uint_interop_profile();
        rows.push(A5Row {
            format: "paper u32 (2's compl.)",
            correct,
            exact_bits: profile.exact_bits,
            values_per_texel: profile.values_per_texel,
            memcpy_compatible: profile.memcpy_compatible,
            host_ops_per_element: profile.host_ops_per_element,
            covers_float: profile.covers_float,
            alu_ops_per_value: stats.fs_profile.alu_ops as f64 / n as f64,
        });
    }

    // Baseline path: the custom split format, two values per texel,
    // carry-propagating adds on byte halves.
    {
        let mut cc = ComputeContext::new(256, 256)?;
        let texel_count = n.div_ceil(2);
        let side = (texel_count as f64).sqrt().ceil() as u32;
        let texels = side as usize * side as usize;
        let ta = cc.upload_texels(side, side, &strzodka16::encode_texels(&a, texels))?;
        let tb = cc.upload_texels(side, side, &strzodka16::encode_texels(&b, texels))?;
        let k = Kernel::builder("a5_strzodka16")
            .input_texels("a", &ta)
            .input_texels("b", &tb)
            .functions(strzodka16::GLSL)
            .output_texels(texels)
            .body(
                "vec4 ta = fetch_a_texel(idx);\n\
                 vec4 tb = fetch_b_texel(idx);\n\
                 vec2 r0 = gpes_v16_add(gpes_v16_from_bytes(ta.xy), gpes_v16_from_bytes(tb.xy));\n\
                 vec2 r1 = gpes_v16_add(gpes_v16_from_bytes(ta.zw), gpes_v16_from_bytes(tb.zw));\n\
                 return vec4(gpes_v16_pack(r0), gpes_v16_pack(r1));",
            )
            .build(&mut cc)?;
        let bytes = cc.run_and_read_texels(&k)?;
        let out = strzodka16::decode_texels(&bytes, n);
        let correct = out == reference;
        let log = cc.take_pass_log();
        let stats = &log[0].stats;
        let profile = strzodka16::interop_profile();
        rows.push(A5Row {
            format: "strzodka16 (VMV'02)",
            correct,
            exact_bits: profile.exact_bits,
            values_per_texel: profile.values_per_texel,
            memcpy_compatible: profile.memcpy_compatible,
            host_ops_per_element: profile.host_ops_per_element,
            covers_float: profile.covers_float,
            alu_ops_per_value: stats.fs_profile.alu_ops as f64 / n as f64,
        });
    }

    Ok(rows)
}

/// A6 — the §II.5–6 half-float argument: the vendor fp16 extension path
/// vs the paper's RGBA8 packing, on the same saxpy workload.
#[derive(Debug, Clone)]
pub struct A6Row {
    /// Data path label.
    pub path: &'static str,
    /// Whether the path works on *core* ES 2 (the portability half).
    pub core_es2: bool,
    /// Minimum mantissa agreement with the exact CPU result (23 = exact).
    pub min_bits: u32,
    /// Mean mantissa agreement.
    pub mean_bits: f64,
    /// Largest finite magnitude the path can carry.
    pub max_magnitude: f64,
}

impl A6Row {
    /// Formats the row.
    pub fn format_row(&self) -> String {
        format!(
            "{:<26} core-ES2 {:<5} min {:>2} bits   mean {:>5.2} bits   max |x| ~{:.1e}",
            self.path, self.core_es2, self.min_bits, self.mean_bits, self.max_magnitude,
        )
    }
}

fn mantissa_stats(expected: &[f32], actual: &[f32]) -> (u32, f64) {
    use gpes_core::codec::float32::mantissa_agreement_bits;
    let mut min_bits = 23u32;
    let mut total = 0u64;
    for (&e, &a) in expected.iter().zip(actual) {
        let bits = mantissa_agreement_bits(e, a);
        min_bits = min_bits.min(bits);
        total += bits as u64;
    }
    (min_bits, total as f64 / expected.len() as f64)
}

/// Runs the fp16-extension saxpy with raw GL calls (what an app on a
/// vendor with the half-float extensions would write).
fn saxpy_via_f16_extension(alpha: f32, xs: &[f32], ys: &[f32]) -> Result<Vec<f32>, ComputeError> {
    use gpes_gles2::{f16_bits_to_f32, f32_to_f16_bits, Context, PrimitiveMode, TexFormat};
    let n = xs.len();
    let side = (n as f64).sqrt().ceil() as u32;
    let texels = side as usize * side as usize;
    let mut gl = Context::new(side, side)?;
    gl.enable_extension("GL_EXT_color_buffer_half_float")?;

    let upload = |gl: &mut Context, data: &[f32]| -> Result<gpes_gles2::TextureId, ComputeError> {
        let mut bytes = Vec::with_capacity(texels * 8);
        for i in 0..texels {
            let v = data.get(i).copied().unwrap_or(0.0);
            for c in [v, 0.0, 0.0, 1.0] {
                bytes.extend_from_slice(&f32_to_f16_bits(c).to_le_bytes());
            }
        }
        let tex = gl.create_texture();
        gl.tex_image_2d(tex, TexFormat::RgbaF16, side, side, &bytes)?;
        Ok(tex)
    };
    let tx = upload(&mut gl, xs)?;
    let ty = upload(&mut gl, ys)?;

    let vs = "attribute vec2 a_pos;\nvarying vec2 v_uv;\n\
              void main() { v_uv = a_pos * 0.5 + 0.5; gl_Position = vec4(a_pos, 0.0, 1.0); }";
    let fs = "precision highp float;\nvarying vec2 v_uv;\n\
              uniform sampler2D u_x;\nuniform sampler2D u_y;\nuniform float u_alpha;\n\
              void main() {\n\
                gl_FragColor = vec4(u_alpha * texture2D(u_x, v_uv).x + texture2D(u_y, v_uv).x,\n\
                                    0.0, 0.0, 1.0);\n\
              }";
    let prog = gl.create_program(vs, fs)?;
    gl.use_program(prog)?;
    let quad: [f32; 12] = [
        -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
    ];
    gl.set_attribute("a_pos", 2, &quad)?;
    gl.bind_texture(0, tx)?;
    gl.bind_texture(1, ty)?;
    gl.set_uniform("u_x", gpes_glsl::Value::Int(0))?;
    gl.set_uniform("u_y", gpes_glsl::Value::Int(1))?;
    gl.set_uniform("u_alpha", gpes_glsl::Value::Float(alpha))?;

    let dst = gl.create_texture();
    gl.tex_storage(dst, TexFormat::RgbaF16, side, side)?;
    let fbo = gl.create_framebuffer();
    gl.framebuffer_texture(fbo, dst)?;
    gl.bind_framebuffer(Some(fbo))?;
    gl.viewport(0, 0, side as i32, side as i32);
    gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)?;
    let halves = gl.read_pixels_f16(0, 0, side, side)?;
    Ok(halves
        .chunks_exact(4)
        .take(n)
        .map(|px| f16_bits_to_f32(px[0]))
        .collect())
}

/// Runs A6 on an `n`-element saxpy.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn a6_half_float(n: usize) -> Result<Vec<A6Row>, ComputeError> {
    use gpes_glsl::exec::FloatModel;
    let alpha = 2.5f32;
    // Positive, well-conditioned inputs: the comparison measures
    // representation precision, not cancellation (which would punish
    // every path identically and mask the difference).
    let positive = |seed| -> Vec<f32> {
        data::random_f32(n, seed, 100.0)
            .into_iter()
            .map(|v| v.abs() + 1.0)
            .collect()
    };
    let xs = positive(601);
    let ys = positive(602);
    let expected: Vec<f32> = xs.iter().zip(&ys).map(|(&x, &y)| alpha * x + y).collect();
    let mut rows = Vec::new();

    // Paper path, exact GPU float: bit-exact.
    // Paper path, VideoCore-like SFU: the §V ≈15-bit result.
    for (label, model) in [
        ("paper RGBA8 pack (exact)", FloatModel::Exact),
        ("paper RGBA8 pack (Vc4Sfu)", FloatModel::Vc4Sfu),
    ] {
        let mut cc = ComputeContext::new(256, 256)?;
        cc.set_float_model(model);
        let gx = cc.upload(&xs)?;
        let gy = cc.upload(&ys)?;
        let k = gpes_kernels::saxpy::build(&mut cc, &gx, &gy, alpha)?;
        let out = cc.run_f32(&k)?;
        let (min_bits, mean_bits) = mantissa_stats(&expected, &out);
        rows.push(A6Row {
            path: label,
            core_es2: true,
            min_bits,
            mean_bits,
            max_magnitude: f32::MAX as f64,
        });
    }

    // Vendor fp16 extension path.
    let out = saxpy_via_f16_extension(alpha, &xs, &ys)?;
    let (min_bits, mean_bits) = mantissa_stats(&expected, &out);
    rows.push(A6Row {
        path: "OES/EXT half-float ext.",
        core_es2: false,
        min_bits,
        mean_bits,
        max_magnitude: 65504.0,
    });

    Ok(rows)
}

/// A7 — channel packing: the §V remark that "the current implementation
/// … is not optimised" quantified for byte and short data. One value per
/// fragment (the paper's layout) vs. all texel channels carrying payload
/// (4 × u8 or 2 × u16 per fragment).
#[derive(Debug, Clone)]
pub struct A7Row {
    /// Variant label.
    pub label: &'static str,
    /// Whether the GPU result matched the CPU reference exactly.
    pub correct: bool,
    /// Fragment-shader invocations per output value.
    pub invocations_per_value: f64,
    /// Texture fetches per output value.
    pub fetches_per_value: f64,
    /// ALU ops per output value.
    pub alu_per_value: f64,
    /// Modelled VideoCore IV kernel time per value (ns), at the measured
    /// profile scaled to 1 Mi elements.
    pub modeled_ns_per_value: f64,
}

impl A7Row {
    /// Formats the row.
    pub fn format_row(&self) -> String {
        format!(
            "{:<24} correct {:<5} invocations/value {:>5.2}  fetches/value {:>5.2}  alu/value {:>6.2}  modelled {:>6.2} ns/value",
            self.label,
            self.correct,
            self.invocations_per_value,
            self.fetches_per_value,
            self.alu_per_value,
            self.modeled_ns_per_value,
        )
    }
}

fn a7_row_from_run(label: &'static str, correct: bool, cc: &mut ComputeContext, n: usize) -> A7Row {
    let passes = cc.take_pass_log();
    let run_small = gpu_run_from_passes(&passes, 1, 0, 0);
    let p = &run_small.fs_profile;
    // Scale the measured profile to 1 Mi values for the device model
    // (per-value work is size-independent for sum).
    let factor = (1u64 << 20) as f64 / n as f64;
    let scale = |v: u64| (v as f64 * factor).round() as u64;
    let run = GpuRun {
        fs_profile: gpes_glsl::exec::OpProfile {
            alu_ops: scale(p.alu_ops),
            sfu_ops: scale(p.sfu_ops),
            tex_fetches: scale(p.tex_fetches),
            branches: scale(p.branches),
            calls: scale(p.calls),
            invocations: scale(p.invocations),
        },
        passes: 1,
        programs_compiled: 0,
        upload_bytes: 0,
        readback_bytes: readback_bytes_for(0),
        ..GpuRun::default()
    };
    let est = estimate_gpu(&Vc4Gpu::raspberry_pi1(), &run);
    A7Row {
        label,
        correct,
        invocations_per_value: p.invocations as f64 / n as f64,
        fetches_per_value: p.tex_fetches as f64 / n as f64,
        alu_per_value: p.alu_ops as f64 / n as f64,
        modeled_ns_per_value: est.exec_s * 1e9 / (1u64 << 20) as f64,
    }
}

/// Runs A7 on `n`-element byte/short sums (`n` should be a multiple of 4).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn a7_channel_packing(n: usize) -> Result<Vec<A7Row>, ComputeError> {
    let a8 = data::random_u8(n, 701, 127);
    let b8 = data::random_u8(n, 702, 127);
    let ref8: Vec<u8> = a8.iter().zip(&b8).map(|(&x, &y)| x + y).collect();
    let a16: Vec<u16> = data::random_u32(n, 703, 32768)
        .into_iter()
        .map(|v| v as u16)
        .collect();
    let b16: Vec<u16> = data::random_u32(n, 704, 32768)
        .into_iter()
        .map(|v| v as u16)
        .collect();
    let ref16: Vec<u16> = a16.iter().zip(&b16).map(|(&x, &y)| x + y).collect();
    let mut rows = Vec::new();

    // u8, one value per LUMINANCE8 texel (the paper's layout).
    {
        let mut cc = ComputeContext::new(256, 256)?;
        let ga = cc.upload(&a8)?;
        let gb = cc.upload(&b8)?;
        let k = gpes_kernels::sum::build_u8(&mut cc, &ga, &gb)?;
        let out: Vec<u8> = cc.run_and_read(&k)?;
        let correct = out == ref8;
        rows.push(a7_row_from_run("u8 scalar (1/texel)", correct, &mut cc, n));
    }

    // u8, four values per RGBA8 texel.
    {
        let mut cc = ComputeContext::new(256, 256)?;
        let texels = n.div_ceil(4);
        let side = (texels as f64).sqrt().ceil() as u32;
        let pad = |d: &[u8]| {
            let mut v = d.to_vec();
            v.resize(side as usize * side as usize * 4, 0);
            v
        };
        let ta = cc.upload_texels(side, side, &pad(&a8))?;
        let tb = cc.upload_texels(side, side, &pad(&b8))?;
        let k = Kernel::builder("sum_u8x4")
            .input_texels("a", &ta)
            .input_texels("b", &tb)
            .output_texels(side as usize * side as usize)
            .body(
                "vec4 av = floor(fetch_a_texel(idx) * 255.0 + 0.5);\n\
                 vec4 bv = floor(fetch_b_texel(idx) * 255.0 + 0.5);\n\
                 return (mod(av + bv, 256.0) + 0.25) / 255.0;",
            )
            .build(&mut cc)?;
        let bytes = cc.run_and_read_texels(&k)?;
        let correct = bytes[..n] == ref8[..];
        rows.push(a7_row_from_run("u8 packed (4/texel)", correct, &mut cc, n));
    }

    // u16, one value per LUMINANCE_ALPHA texel.
    {
        let mut cc = ComputeContext::new(256, 256)?;
        let ga = cc.upload(&a16)?;
        let gb = cc.upload(&b16)?;
        let k = Kernel::builder("sum_u16")
            .input("a", &ga)
            .input("b", &gb)
            .output(ScalarType::U16, n)
            .body("return fetch_a(idx) + fetch_b(idx);")
            .build(&mut cc)?;
        let out: Vec<u16> = cc.run_and_read(&k)?;
        let correct = out == ref16;
        rows.push(a7_row_from_run("u16 scalar (1/texel)", correct, &mut cc, n));
    }

    // u16, two values per RGBA8 texel (little-endian pairs in xy/zw).
    {
        let mut cc = ComputeContext::new(256, 256)?;
        let texels = n.div_ceil(2);
        let side = (texels as f64).sqrt().ceil() as u32;
        let pack_pairs = |d: &[u16]| {
            let mut v = Vec::with_capacity(side as usize * side as usize * 4);
            for x in d {
                v.extend_from_slice(&x.to_le_bytes());
            }
            v.resize(side as usize * side as usize * 4, 0);
            v
        };
        let ta = cc.upload_texels(side, side, &pack_pairs(&a16))?;
        let tb = cc.upload_texels(side, side, &pack_pairs(&b16))?;
        let k = Kernel::builder("sum_u16x2")
            .input_texels("a", &ta)
            .input_texels("b", &tb)
            .output_texels(side as usize * side as usize)
            .body(
                "vec4 av = floor(fetch_a_texel(idx) * 255.0 + 0.5);\n\
                 vec4 bv = floor(fetch_b_texel(idx) * 255.0 + 0.5);\n\
                 vec2 s = vec2(av.x + av.y * 256.0 + bv.x + bv.y * 256.0,\n\
                               av.z + av.w * 256.0 + bv.z + bv.w * 256.0);\n\
                 s = mod(s, 65536.0);\n\
                 vec2 hi = floor(s / 256.0);\n\
                 vec2 lo = s - hi * 256.0;\n\
                 return (vec4(lo.x, hi.x, lo.y, hi.y) + 0.25) / 255.0;",
            )
            .build(&mut cc)?;
        let bytes = cc.run_and_read_texels(&k)?;
        let out: Vec<u16> = bytes
            .chunks_exact(2)
            .take(n)
            .map(|p| u16::from_le_bytes([p[0], p[1]]))
            .collect();
        let correct = out == ref16;
        rows.push(a7_row_from_run("u16 packed (2/texel)", correct, &mut cc, n));
    }

    Ok(rows)
}

/// A8 — shader executor: the slot-addressed bytecode VM vs the
/// tree-walking interpreter, through the full pipeline (host
/// performance; results are bit-identical by the differential suites).
#[derive(Debug, Clone)]
pub struct A8Row {
    /// Kernel family exercised.
    pub kernel: &'static str,
    /// Execution mode under test.
    pub mode: ExecMode,
    /// Simulated fragments per host second.
    pub fragments_per_s: f64,
    /// Whether the run produced the same bytes as the tree-walker.
    pub matches_oracle: bool,
}

impl A8Row {
    /// Formats the row.
    pub fn format(&self) -> String {
        format!(
            "{:<10} {:<12} {:>12.0} fragments/s (host)   matches oracle {}",
            self.kernel,
            self.mode.label(),
            self.fragments_per_s,
            if self.matches_oracle { "yes" } else { "NO" },
        )
    }
}

/// Runs A8 on `sum (fp)` (codec-heavy) and `sgemm (fp)` (loop-heavy)
/// kernels at modest sizes.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn a8_executor(n: usize) -> Result<Vec<A8Row>, ComputeError> {
    let mut rows = Vec::new();

    // Each executor runs exactly once per kernel; the tree-walker's own
    // output is the oracle the other run is compared against.

    // sum (fp): one fragment per element.
    let a = data::random_f32(n, 501, 100.0);
    let b = data::random_f32(n, 502, 100.0);
    let run_sum = |mode: ExecMode| -> Result<(Vec<f32>, f64), ComputeError> {
        let mut cc = ComputeContext::new(256, 256)?;
        cc.set_exec_mode(mode);
        let ga = cc.upload(&a)?;
        let gb = cc.upload(&b)?;
        let k = gpes_kernels::sum::build_f32(&mut cc, &ga, &gb)?;
        let start = Instant::now();
        let out = cc.run_f32(&k)?;
        let elapsed = start.elapsed().as_secs_f64();
        Ok((out, n as f64 / elapsed))
    };
    let (vm_out, vm_rate) = run_sum(ExecMode::Scalar)?;
    let (tw_out, tw_rate) = run_sum(ExecMode::TreeWalker)?;
    rows.push(A8Row {
        kernel: "sum (fp)",
        mode: ExecMode::Scalar,
        fragments_per_s: vm_rate,
        matches_oracle: vm_out == tw_out,
    });
    rows.push(A8Row {
        kernel: "sum (fp)",
        mode: ExecMode::TreeWalker,
        fragments_per_s: tw_rate,
        matches_oracle: true,
    });

    // sgemm (fp): K multiply-adds per fragment.
    let side = 32usize;
    let ma = data::random_f32(side * side, 503, 2.0);
    let mb = data::random_f32(side * side, 504, 2.0);
    let mc = data::random_f32(side * side, 505, 2.0);
    let run_gemm = |mode: ExecMode| -> Result<(Vec<f32>, f64), ComputeError> {
        let mut cc = ComputeContext::new(64, 64)?;
        cc.set_exec_mode(mode);
        let ga = cc.upload_matrix(side as u32, side as u32, &ma)?;
        let gb = cc.upload_matrix(side as u32, side as u32, &mb)?;
        let gc = cc.upload_matrix(side as u32, side as u32, &mc)?;
        let k = gpes_kernels::sgemm::build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.5)?;
        let start = Instant::now();
        let out = cc.run_f32(&k)?;
        let elapsed = start.elapsed().as_secs_f64();
        Ok((out, (side * side) as f64 / elapsed))
    };
    let (vm_out, vm_rate) = run_gemm(ExecMode::Scalar)?;
    let (tw_out, tw_rate) = run_gemm(ExecMode::TreeWalker)?;
    rows.push(A8Row {
        kernel: "sgemm (fp)",
        mode: ExecMode::Scalar,
        fragments_per_s: vm_rate,
        matches_oracle: vm_out == tw_out,
    });
    rows.push(A8Row {
        kernel: "sgemm (fp)",
        mode: ExecMode::TreeWalker,
        fragments_per_s: tw_rate,
        matches_oracle: true,
    });

    Ok(rows)
}

/// A9 — host-side compile/bind split: the cost of rebuilding shaders
/// inside a multi-pass iteration loop (the pre-split idiom, program cache
/// off) vs the retained [`gpes_core::Pipeline`] (compile once, rebind
/// per pass).
#[derive(Debug, Clone)]
pub struct A9Row {
    /// Workload under test.
    pub workload: &'static str,
    /// Host strategy (`rebuild/pass` or `retained`).
    pub mode: &'static str,
    /// Host wall-clock for the whole loop, milliseconds.
    pub host_ms: f64,
    /// Programs compiled and linked over the loop.
    pub programs_linked: u64,
    /// Textures allocated over the loop.
    pub textures_created: u64,
    /// Texture-pool hits over the loop.
    pub pool_hits: u64,
}

impl A9Row {
    /// Formats the row.
    pub fn format(&self) -> String {
        format!(
            "{:<14} {:<13} {:>9.2} ms   programs {:>3}   textures {:>3}   pool hits {:>3}",
            self.workload,
            self.mode,
            self.host_ms,
            self.programs_linked,
            self.textures_created,
            self.pool_hits,
        )
    }
}

/// Runs A9 on the three iteration-heavy paper workloads: `iterations` of
/// SRAD diffusion on a 24×24 image, a full reduction tree over `n`
/// elements repeated `iterations` times, and a 256-point FFT repeated
/// `iterations` times. Outputs of both modes are asserted equal.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn a9_host_cache(n: usize, iterations: usize) -> Result<Vec<A9Row>, ComputeError> {
    use gpes_kernels::{fft, reduce, srad};
    let mut rows = Vec::new();
    let mut push = |workload: &'static str,
                    mode: &'static str,
                    cc: &ComputeContext,
                    elapsed: std::time::Duration| {
        let stats = cc.stats();
        rows.push(A9Row {
            workload,
            mode,
            host_ms: elapsed.as_secs_f64() * 1e3,
            programs_linked: stats.programs_linked,
            textures_created: stats.textures_created,
            pool_hits: stats.texture_pool_hits,
        });
    };

    // ---- srad -----------------------------------------------------------
    let (srows, scols) = (24usize, 24usize);
    let img: Vec<f32> = data::random_f32(srows * scols, 901, 40.0)
        .into_iter()
        .map(|v| v.abs() + 10.0)
        .collect();
    let params = srad::SradParams::default();
    // Rebuild-per-pass (cache off): the pre-split host idiom.
    let mut cc = ComputeContext::new(64, 64)?;
    cc.set_program_cache_enabled(false);
    let start = Instant::now();
    let mut j = cc.upload_matrix(srows as u32, scols as u32, &img)?;
    for _ in 0..iterations {
        let kc = srad::build_coeff(&mut cc, &j, params)?;
        let carr: gpes_core::GpuArray<f32> = cc.run_to_array(&kc)?;
        let cmat = carr.as_matrix(srows as u32, scols as u32)?;
        let ku = srad::build_update(&mut cc, &j, &cmat, params)?;
        let next: gpes_core::GpuArray<f32> = cc.run_to_array(&ku)?;
        cc.delete_matrix(j);
        cc.delete_array(carr);
        j = next.as_matrix(srows as u32, scols as u32)?;
    }
    let rebuilt = cc.read_array(&j.as_array(), Readback::DirectFbo)?;
    push("srad", "rebuild/pass", &cc, start.elapsed());
    // Retained pipeline.
    let mut cc = ComputeContext::new(64, 64)?;
    let start = Instant::now();
    let retained = srad::run_gpu(&mut cc, srows, scols, &img, params, iterations)?;
    push("srad", "retained", &cc, start.elapsed());
    assert_eq!(rebuilt, retained, "srad modes must agree bit-for-bit");

    // ---- reduce ---------------------------------------------------------
    let values = data::random_f32(n, 902, 50.0);
    // Rebuild-per-pass: one kernel build per tree level, cache off.
    let mut cc = ComputeContext::new(256, 256)?;
    cc.set_program_cache_enabled(false);
    let start = Instant::now();
    let mut rebuilt = 0.0f32;
    for _ in 0..iterations {
        let arr = cc.upload(&values)?;
        let mut current = arr;
        while current.len() > 1 {
            let out_len = current.len().div_ceil(reduce::FANIN);
            let k = Kernel::builder("reduce_Sum")
                .input("x", &current)
                .uniform_f32("n_live", current.len() as f32)
                .output(ScalarType::F32, out_len)
                .body(reduce::fold_body(reduce::ReduceOp::Sum))
                .build(&mut cc)?;
            let next: gpes_core::GpuArray<f32> = cc.run_to_array(&k)?;
            cc.delete_array(current);
            current = next;
        }
        rebuilt = cc.read_array(&current, Readback::DirectFbo)?[0];
        cc.delete_array(current);
    }
    push("reduce", "rebuild/pass", &cc, start.elapsed());
    let mut cc = ComputeContext::new(256, 256)?;
    let start = Instant::now();
    let mut retained = 0.0f32;
    for _ in 0..iterations {
        let arr = cc.upload(&values)?;
        retained = reduce::gpu_reduce(&mut cc, &arr, reduce::ReduceOp::Sum)?;
        cc.recycle_array(arr);
    }
    push("reduce", "retained", &cc, start.elapsed());
    assert_eq!(rebuilt, retained, "reduce modes must agree bit-for-bit");

    // ---- fft ------------------------------------------------------------
    let fn_ = 256usize;
    let re = data::random_f32(fn_, 903, 1.0);
    let im = data::random_f32(fn_, 904, 1.0);
    // Rebuild-per-stage: the pre-split idiom baked the stage width into
    // the shader source, so every Stockham stage of every repetition
    // compiled two fresh programs.
    let mut cc = ComputeContext::new(64, 64)?;
    cc.set_program_cache_enabled(false);
    let start = Instant::now();
    let mut rebuilt = (Vec::new(), Vec::new());
    for _ in 0..iterations {
        let mut gre = cc.upload(&re)?;
        let mut gim = cc.upload(&im)?;
        let mut half = 1usize;
        while half < fn_ {
            let build = |cc: &mut ComputeContext,
                         gre: &gpes_core::GpuArray<f32>,
                         gim: &gpes_core::GpuArray<f32>,
                         emit_re: bool|
             -> Result<Kernel, ComputeError> {
                Kernel::builder(if emit_re {
                    "fft_stage_re"
                } else {
                    "fft_stage_im"
                })
                .input("re", gre)
                .input("im", gim)
                .output(ScalarType::F32, fn_)
                .body(fft::stage_body(
                    fn_,
                    fft::Direction::Forward,
                    emit_re,
                    Some(half),
                ))
                .build(cc)
            };
            let kre = build(&mut cc, &gre, &gim, true)?;
            let kim = build(&mut cc, &gre, &gim, false)?;
            let nre: gpes_core::GpuArray<f32> = cc.run_to_array(&kre)?;
            let nim: gpes_core::GpuArray<f32> = cc.run_to_array(&kim)?;
            cc.delete_array(gre);
            cc.delete_array(gim);
            gre = nre;
            gim = nim;
            half *= 2;
        }
        rebuilt = (
            cc.read_array(&gre, Readback::DirectFbo)?,
            cc.read_array(&gim, Readback::DirectFbo)?,
        );
        cc.delete_array(gre);
        cc.delete_array(gim);
    }
    push("fft", "rebuild/pass", &cc, start.elapsed());
    let mut cc = ComputeContext::new(64, 64)?;
    let start = Instant::now();
    let mut retained = (Vec::new(), Vec::new());
    for _ in 0..iterations {
        retained = fft::run_gpu(&mut cc, &re, &im, fft::Direction::Forward)?;
    }
    push("fft", "retained", &cc, start.elapsed());
    assert_eq!(rebuilt, retained, "fft modes must agree bit-for-bit");

    Ok(rows)
}

/// A10 — concurrent serving: one engine, a fixed kernel mix, workers
/// 1→N, shared vs per-context program caches. The numbers the CI gate
/// locks: with the shared cache, process-wide links equal the mix size at
/// every worker count and post-warmup links are zero; per-context caches
/// relink on every worker that touches a kernel.
#[derive(Debug, Clone)]
pub struct A10Row {
    /// Kernel mix under test (`hot3`: 3 kernels hammered; `wide24`: 24
    /// distinct kernels, the link-amortisation shape).
    pub mix: &'static str,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Cache policy (`shared` or `per-context`).
    pub cache: &'static str,
    /// Jobs served in the timed wave.
    pub jobs: usize,
    /// Wall-clock for the timed wave, milliseconds.
    pub host_ms: f64,
    /// Serving rate over the timed wave.
    pub jobs_per_sec: f64,
    /// Programs linked process-wide over warmup + timed wave.
    pub links: u64,
    /// Programs linked after the warmup wave (shared cache: must be 0).
    pub post_warmup_links: u64,
}

impl A10Row {
    /// Formats the row.
    pub fn format(&self) -> String {
        format!(
            "{:<7} workers {}   {:<12} {:>4} jobs {:>9.2} ms {:>8.1} jobs/s   links {:>3}   post-warmup {:>3}",
            self.mix,
            self.workers,
            self.cache,
            self.jobs,
            self.host_ms,
            self.jobs_per_sec,
            self.links,
            self.post_warmup_links,
        )
    }
}

/// The a10 kernel mix: three distinct `f32` kernels over `n`-element
/// inputs, cycled across jobs — the serving analog of one model's layers
/// arriving from many clients.
fn a10_specs(n: usize) -> Vec<std::sync::Arc<gpes_core::KernelSpec>> {
    use gpes_core::KernelSpec;
    use std::sync::Arc;
    vec![
        Arc::new(
            KernelSpec::new("saxpy")
                .input("x")
                .input("y")
                .uniform_f32("alpha", 2.0)
                .output(n)
                .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
        ),
        Arc::new(
            KernelSpec::new("blur3")
                .input("x")
                .input("y")
                .uniform_f32("last", n as f32 - 1.0)
                .output(n)
                .body(
                    "float a = fetch_x(max(idx - 1.0, 0.0));\n\
                     float b = fetch_x(idx);\n\
                     float c = fetch_x(min(idx + 1.0, last));\n\
                     return (a + b + c) / 3.0 + fetch_y(idx);",
                ),
        ),
        Arc::new(
            KernelSpec::new("sq_diff")
                .input("x")
                .input("y")
                .output(n)
                .body("float d = fetch_x(idx) - fetch_y(idx); return d * d;"),
        ),
    ]
}

/// Serves `jobs` requests cycling over `specs` (all two-input, `n`-long)
/// at each pool size in `worker_counts` under both cache policies,
/// asserting every served output bit-identical to direct serial dispatch
/// of the same spec.
fn a10_mix(
    mix: &'static str,
    specs: &[std::sync::Arc<gpes_core::KernelSpec>],
    n: usize,
    jobs: usize,
    worker_counts: &[usize],
) -> Result<Vec<A10Row>, ComputeError> {
    use gpes_core::serve::CachePolicy;
    use gpes_core::{Bindings, Engine, Job};
    use std::sync::Arc;

    let x: Arc<Vec<f32>> = Arc::new(data::random_f32(n, 1001, 25.0));
    let y: Arc<Vec<f32>> = Arc::new(data::random_f32(n, 1002, 25.0));

    // Direct serial reference, once per spec: `KernelSpec::build` on a
    // plain context generates the byte-identical program an engine worker
    // compiles, so equality below is bit-exact, not approximate.
    let mut cc = ComputeContext::new(256, 256)?;
    let gx = cc.upload(x.as_slice())?;
    let gy = cc.upload(y.as_slice())?;
    let mut expected: Vec<Vec<f32>> = Vec::new();
    for spec in specs {
        let k = spec.build(&mut cc, &[gx, gy])?;
        let out: gpes_core::GpuArray<f32> = cc.run_to_array_with(&k, &Bindings::new())?;
        expected.push(cc.read_array(&out, Readback::DirectFbo)?);
        cc.recycle_array(out);
    }

    let mut rows = Vec::new();
    for &workers in worker_counts {
        for (cache, policy) in [
            ("shared", CachePolicy::Shared),
            ("per-context", CachePolicy::PerContext),
        ] {
            let engine = Engine::builder()
                .workers(workers)
                .cache_policy(policy)
                .build()?;
            // Warmup: enough jobs that every worker serves work and the
            // shared cache holds the whole mix.
            let warm: Vec<_> = (0..workers.max(1) * specs.len())
                .map(|i| {
                    engine.submit(
                        Job::new(&specs[i % specs.len()])
                            .data_shared(&x)
                            .data_shared(&y),
                    )
                })
                .collect::<Result<_, _>>()?;
            for h in warm {
                h.wait()?;
            }
            let links_after_warmup = engine.programs_linked();

            let start = Instant::now();
            let handles: Vec<_> = (0..jobs)
                .map(|i| {
                    engine.submit(
                        Job::new(&specs[i % specs.len()])
                            .data_shared(&x)
                            .data_shared(&y),
                    )
                })
                .collect::<Result<_, _>>()?;
            for (i, h) in handles.into_iter().enumerate() {
                let served = h.wait()?;
                assert_eq!(
                    served,
                    expected[i % specs.len()],
                    "served output diverged from direct dispatch"
                );
            }
            let elapsed = start.elapsed();
            let links = engine.programs_linked();
            rows.push(A10Row {
                mix,
                workers,
                cache,
                jobs,
                host_ms: elapsed.as_secs_f64() * 1e3,
                jobs_per_sec: jobs as f64 / elapsed.as_secs_f64(),
                links,
                post_warmup_links: links - links_after_warmup,
            });
        }
    }
    Ok(rows)
}

/// Runs A10 over two serving shapes:
///
/// * **`hot3`** — the three-kernel mix hammered with `jobs` requests at
///   1/2/4 workers. Throughput here scales with *physical cores*; the
///   counters (links constant 1→N with the shared cache, zero after
///   warmup) are deterministic on any host and are what CI gates on.
/// * **`wide24`** — 24 distinct kernels served 8× each at 1 and 4
///   workers. This is the link-amortisation shape: per-context caches
///   relink each kernel on every worker that serves it (up to 4× the
///   links), which costs real wall-clock even on a single-core host;
///   the shared cache links each exactly once.
///
/// # Errors
///
/// Propagates engine/simulator failures.
pub fn a10_serving(n: usize, jobs: usize) -> Result<Vec<A10Row>, ComputeError> {
    use gpes_core::KernelSpec;
    use std::sync::Arc;

    let mut rows = a10_mix("hot3", &a10_specs(n), n, jobs, &[1, 2, 4])?;

    let wide_n = 256usize;
    let wide: Vec<Arc<KernelSpec>> = (0..24)
        .map(|i| {
            // Distinct generated source per variant (the constant is
            // baked into the body), so each is its own link.
            Arc::new(
                KernelSpec::new(format!("mix_{i}"))
                    .input("x")
                    .input("y")
                    .output(wide_n)
                    .body(format!(
                        "return fetch_x(idx) * {}.0 - fetch_y(idx) / {}.0;",
                        i + 1,
                        i + 2
                    )),
            )
        })
        .collect();
    rows.extend(a10_mix("wide24", &wide, wide_n, 24 * 8, &[1, 4])?);
    Ok(rows)
}

/// A11 — pipeline serving: whole retained pipelines as engine jobs
/// (`engine-pipeline`) vs direct retained-`Pipeline` execution on a local
/// context (`direct`) vs the same passes flattened into a per-pass
/// [`gpes_core::Submission`] DAG (`per-pass`), for the three iteration-heavy paper
/// workloads. The CI gate locks the `engine-pipeline` rows: once serving
/// reaches steady state, a full wave of requests links **zero** programs
/// and creates **zero** GL objects, and every served output is
/// bit-identical to the direct run.
#[derive(Debug, Clone)]
pub struct A11Row {
    /// Workload under test (`fft`, `srad`, `reduce`).
    pub workload: &'static str,
    /// Serving mode (`direct`, `engine-pipeline`, `per-pass`).
    pub mode: &'static str,
    /// Worker threads (1 for `direct`).
    pub workers: usize,
    /// Requests in the measured steady-state wave.
    pub jobs: usize,
    /// Wall-clock of the measured wave, milliseconds.
    pub host_ms: f64,
    /// Serving rate over the measured wave.
    pub jobs_per_sec: f64,
    /// Programs linked process-wide over warmup + measured waves.
    pub links: u64,
    /// Programs linked during the measured wave (gate: 0).
    pub post_warmup_links: u64,
    /// GL objects created during the measured wave (gate: 0).
    pub post_warmup_gl_objects: u64,
    /// Whether every output matched the direct reference bit-for-bit.
    pub identical: bool,
}

impl A11Row {
    /// Formats the row (parsed by `scripts/ci_perf_gate.py`).
    pub fn format(&self) -> String {
        format!(
            "{:<7} {:<15} workers {}   {:>4} jobs {:>9.2} ms {:>8.1} jobs/s   links {:>3}   post-warmup links {:>3}   objects {:>3}   identical {}",
            self.workload,
            self.mode,
            self.workers,
            self.jobs,
            self.host_ms,
            self.jobs_per_sec,
            self.links,
            self.post_warmup_links,
            self.post_warmup_gl_objects,
            if self.identical { "yes" } else { "NO" },
        )
    }
}

type DirectRunner = Box<dyn Fn(&mut ComputeContext) -> Result<Vec<f32>, ComputeError>>;
type SubmissionBuilder = Box<dyn Fn() -> (gpes_core::Submission, Vec<gpes_core::StepHandle>)>;

/// One a11 workload: how to serve it through each mode and what the
/// correct output is.
struct A11Workload {
    name: &'static str,
    /// Direct retained-pipeline run on a local context, returning the
    /// concatenated outputs (the bit-exact reference).
    reference: Vec<f32>,
    spec: std::sync::Arc<gpes_core::PipelineSpec>,
    /// Buffers to read from pipeline jobs, in reference order.
    reads: Vec<&'static str>,
    /// Source data for one request.
    sources: Vec<std::sync::Arc<Vec<f32>>>,
    /// Runs one direct request, returning the concatenated outputs.
    run_direct: DirectRunner,
    /// Builds one flat per-pass submission; readbacks are the final
    /// steps, in reference order.
    build_submission: SubmissionBuilder,
}

fn a11_workloads() -> Result<Vec<A11Workload>, ComputeError> {
    use gpes_core::serve::StepInput;
    use gpes_core::Submission;
    use gpes_kernels::{fft, reduce, srad};
    use std::sync::Arc;

    let mut workloads = Vec::new();

    // ---- fft: 64-point forward transform, 6 stages × 2 kernels --------
    {
        let n = 64usize;
        let re: Arc<Vec<f32>> = Arc::new(data::random_f32(n, 1101, 1.0));
        let im: Arc<Vec<f32>> = Arc::new(data::random_f32(n, 1102, 1.0));
        let mut cc = ComputeContext::new(16, 16)?;
        let (dre, dim) = fft::run_gpu(&mut cc, &re, &im, fft::Direction::Forward)?;
        let mut reference = dre;
        reference.extend_from_slice(&dim);
        let spec = Arc::new(fft::pipeline_spec(n, fft::Direction::Forward)?);
        let (re_d, im_d) = (Arc::clone(&re), Arc::clone(&im));
        let (re_s, im_s) = (Arc::clone(&re), Arc::clone(&im));
        let stages = n.trailing_zeros() as usize;
        workloads.push(A11Workload {
            name: "fft",
            reference,
            spec,
            reads: vec!["re", "im"],
            sources: vec![Arc::clone(&re), Arc::clone(&im)],
            run_direct: Box::new(move |cc| {
                let (gre, gim) = fft::run_gpu(cc, &re_d, &im_d, fft::Direction::Forward)?;
                let mut out = gre;
                out.extend_from_slice(&gim);
                Ok(out)
            }),
            build_submission: Box::new(move || {
                let kre = Arc::new(fft::stage_spec(n, fft::Direction::Forward, true));
                let kim = Arc::new(fft::stage_spec(n, fft::Direction::Forward, false));
                let mut sub = Submission::new();
                let mut prev: Option<(gpes_core::StepHandle, gpes_core::StepHandle)> = None;
                for stage in 0..stages {
                    let half = gpes_glsl::Value::Float((1usize << stage) as f32);
                    let inputs = |prev: &Option<(gpes_core::StepHandle, gpes_core::StepHandle)>| {
                        match prev {
                            None => vec![
                                StepInput::Data(Arc::clone(&re_s)),
                                StepInput::Data(Arc::clone(&im_s)),
                            ],
                            Some((r, i)) => vec![(*r).into(), (*i).into()],
                        }
                    };
                    let sr = sub.step(
                        &kre,
                        inputs(&prev),
                        vec![("half_".to_owned(), half.clone())],
                    );
                    let si = sub.step(&kim, inputs(&prev), vec![("half_".to_owned(), half)]);
                    prev = Some((sr, si));
                }
                let (sr, si) = prev.expect("at least one stage");
                sub.read(sr);
                sub.read(si);
                (sub, vec![sr, si])
            }),
        });
    }

    // ---- srad: 16×16 diffusion, 4 iterations × 2 kernels --------------
    {
        let (rows, cols) = (16usize, 16usize);
        let iterations = 4usize;
        let params = srad::SradParams::default();
        let img: Arc<Vec<f32>> = Arc::new(
            data::random_f32(rows * cols, 1103, 40.0)
                .into_iter()
                .map(|v| v.abs() + 10.0)
                .collect(),
        );
        let mut cc = ComputeContext::new(32, 32)?;
        let reference = srad::run_gpu(&mut cc, rows, cols, &img, params, iterations)?;
        let spec = Arc::new(srad::pipeline_spec(rows, cols, params, iterations)?);
        let (img_d, img_s) = (Arc::clone(&img), Arc::clone(&img));
        workloads.push(A11Workload {
            name: "srad",
            reference,
            spec,
            reads: vec!["j"],
            sources: vec![Arc::clone(&img)],
            run_direct: Box::new(move |cc| {
                srad::run_gpu(cc, rows, cols, &img_d, params, iterations)
            }),
            build_submission: Box::new(move || {
                // 16×16 is square, so the linear near-square upload lays
                // out exactly like the grid — fetch_rc sees one texture
                // shape in every mode.
                let kc = Arc::new(srad::coeff_spec(rows as u32, cols as u32, params));
                let ku = Arc::new(srad::update_spec(rows as u32, cols as u32, params));
                let mut sub = Submission::new();
                let mut j: Option<gpes_core::StepHandle> = None;
                for _ in 0..iterations {
                    let j_input = |j: &Option<gpes_core::StepHandle>| match j {
                        None => StepInput::Data(Arc::clone(&img_s)),
                        Some(h) => (*h).into(),
                    };
                    let c = sub.step(&kc, vec![j_input(&j)], vec![]);
                    j = Some(sub.step(&ku, vec![j_input(&j), c.into()], vec![]));
                }
                let j = j.expect("at least one iteration");
                sub.read(j);
                (sub, vec![j])
            }),
        });
    }

    // ---- reduce: 512-element sum tree, 3 levels of one kernel ---------
    {
        let n = 512usize;
        let values: Arc<Vec<f32>> = Arc::new(data::random_f32(n, 1104, 25.0));
        let reference = vec![reduce::cpu_reference(&values, reduce::ReduceOp::Sum)];
        let spec = Arc::new(reduce::pipeline_spec(n, reduce::ReduceOp::Sum)?);
        let (values_d, values_s) = (Arc::clone(&values), Arc::clone(&values));
        workloads.push(A11Workload {
            name: "reduce",
            reference,
            spec,
            reads: vec!["x"],
            sources: vec![Arc::clone(&values)],
            run_direct: Box::new(move |cc| {
                let arr = cc.upload(values_d.as_slice())?;
                let out = reduce::gpu_reduce(cc, &arr, reduce::ReduceOp::Sum)?;
                cc.recycle_array(arr);
                Ok(vec![out])
            }),
            build_submission: Box::new(move || {
                let mut sub = Submission::new();
                let mut len = n;
                let mut prev: Option<gpes_core::StepHandle> = None;
                while len > 1 {
                    let spec = Arc::new(reduce::fold_spec(len, reduce::ReduceOp::Sum));
                    let input = match prev {
                        None => StepInput::Data(Arc::clone(&values_s)),
                        Some(h) => h.into(),
                    };
                    prev = Some(sub.step(&spec, vec![input], vec![]));
                    len = len.div_ceil(reduce::FANIN);
                }
                let last = prev.expect("at least one level");
                sub.read(last);
                (sub, vec![last])
            }),
        });
    }

    Ok(workloads)
}

/// Serves convergence-checked waves: repeats `wave` until two
/// consecutive full waves show the same per-wave counter deltas — for a
/// healthy retained pipeline that steady delta is `(0, 0)`; for a mode
/// that churns every wave (or leaks) the stable nonzero delta is
/// reported and the gate fails it. Reports the last wave's timing and
/// deltas plus the process-wide link total.
fn a11_serve_steady(
    engine: &gpes_core::Engine,
    mut wave: impl FnMut(&gpes_core::Engine) -> Result<bool, ComputeError>,
    jobs: usize,
) -> Result<(f64, u64, u64, u64, bool), ComputeError> {
    const MAX_WAVES: usize = 16;
    let counters = |engine: &gpes_core::Engine| -> (u64, u64) {
        (
            engine.programs_linked(),
            engine
                .worker_stats()
                .iter()
                .map(gpes_core::ContextStats::gl_objects_created)
                .sum(),
        )
    };
    let mut identical = true;
    let mut elapsed = std::time::Duration::ZERO;
    let mut delta = (u64::MAX, u64::MAX);
    for _ in 0..MAX_WAVES {
        let before = counters(engine);
        let start = Instant::now();
        identical &= wave(engine)?;
        elapsed = start.elapsed();
        let after = counters(engine);
        let wave_delta = (after.0 - before.0, after.1 - before.1);
        let steady = wave_delta == delta || wave_delta == (0, 0);
        delta = wave_delta;
        if steady {
            break;
        }
    }
    let (links, _) = counters(engine);
    Ok((
        elapsed.as_secs_f64() * 1e3,
        links,
        delta.0,
        delta.1,
        identical && jobs > 0,
    ))
}

/// Runs A11: every workload through every mode, asserting bit-identity
/// to the direct reference and reporting the steady-state counter deltas
/// the CI gate locks to zero.
///
/// # Errors
///
/// Propagates engine/simulator failures.
pub fn a11_pipeline_serving() -> Result<Vec<A11Row>, ComputeError> {
    use gpes_core::{Engine, PipelineJob};
    const WAVE_JOBS: usize = 8;
    let mut rows = Vec::new();

    for workload in a11_workloads()? {
        // ---- direct: retained pipeline on a local context -------------
        {
            let mut cc = ComputeContext::new(64, 64)?;
            let mut identical = (workload.run_direct)(&mut cc)? == workload.reference;
            let stats = cc.stats();
            let (warm_links, warm_objects) = (stats.programs_linked, stats.gl_objects_created());
            let start = Instant::now();
            for _ in 0..WAVE_JOBS {
                identical &= (workload.run_direct)(&mut cc)? == workload.reference;
            }
            let elapsed = start.elapsed();
            let stats = cc.stats();
            rows.push(A11Row {
                workload: workload.name,
                mode: "direct",
                workers: 1,
                jobs: WAVE_JOBS,
                host_ms: elapsed.as_secs_f64() * 1e3,
                jobs_per_sec: WAVE_JOBS as f64 / elapsed.as_secs_f64(),
                links: stats.programs_linked,
                post_warmup_links: stats.programs_linked - warm_links,
                post_warmup_gl_objects: stats.gl_objects_created() - warm_objects,
                identical,
            });
        }

        // ---- engine-pipeline: whole pipeline as one job ---------------
        for workers in [1usize, 2, 4] {
            let engine = Engine::builder().workers(workers).build()?;
            let (host_ms, links, post_links, post_objects, identical) = a11_serve_steady(
                &engine,
                |engine| {
                    let handles: Vec<_> = (0..WAVE_JOBS)
                        .map(|_| {
                            let mut job = PipelineJob::new(&workload.spec);
                            for source in &workload.sources {
                                job = job.source_shared(source);
                            }
                            for read in &workload.reads {
                                job = job.read(read);
                            }
                            engine.submit_pipeline(job)
                        })
                        .collect::<Result<_, _>>()?;
                    let mut identical = true;
                    for h in handles {
                        let result = h.wait()?;
                        let mut served = Vec::new();
                        for read in &workload.reads {
                            served.extend_from_slice(result.output(read).unwrap_or(&[]));
                        }
                        identical &= served == workload.reference;
                    }
                    Ok(identical)
                },
                WAVE_JOBS,
            )?;
            rows.push(A11Row {
                workload: workload.name,
                mode: "engine-pipeline",
                workers,
                jobs: WAVE_JOBS,
                host_ms,
                jobs_per_sec: WAVE_JOBS as f64 / (host_ms / 1e3),
                links,
                post_warmup_links: post_links,
                post_warmup_gl_objects: post_objects,
                identical,
            });
        }

        // ---- per-pass: the same passes as a flat Submission DAG -------
        for workers in [1usize, 4] {
            let engine = Engine::builder().workers(workers).build()?;
            let (host_ms, links, post_links, post_objects, identical) = a11_serve_steady(
                &engine,
                |engine| {
                    let handles: Vec<_> = (0..WAVE_JOBS)
                        .map(|_| {
                            let (sub, reads) = (workload.build_submission)();
                            engine.submit_batch(sub).map(|h| (h, reads))
                        })
                        .collect::<Result<_, _>>()?;
                    let mut identical = true;
                    for (h, reads) in handles {
                        let result = h.wait()?;
                        let mut served = Vec::new();
                        for read in reads {
                            served.extend_from_slice(result.output(read).unwrap_or(&[]));
                        }
                        identical &= served == workload.reference;
                    }
                    Ok(identical)
                },
                WAVE_JOBS,
            )?;
            rows.push(A11Row {
                workload: workload.name,
                mode: "per-pass",
                workers,
                jobs: WAVE_JOBS,
                host_ms,
                jobs_per_sec: WAVE_JOBS as f64 / (host_ms / 1e3),
                links,
                post_warmup_links: post_links,
                post_warmup_gl_objects: post_objects,
                identical,
            });
        }
    }
    Ok(rows)
}

/// A12 — serving latency under saturation: the bounded engine driven by
/// an open-loop producer past its admission capacity, reporting the
/// queue/service latency distribution and the snapshot's outcome
/// counters rather than just jobs/s.
#[derive(Debug, Clone)]
pub struct A12Report {
    /// Worker threads.
    pub workers: usize,
    /// Admission bound the producer saturates.
    pub queue_capacity: usize,
    /// Jobs the producer aimed to get admitted.
    pub target_jobs: usize,
    /// Wall-clock of the saturation phase, milliseconds.
    pub elapsed_ms: f64,
    /// The engine's final [`gpes_core::EngineSnapshot`], taken at
    /// quiescence (queue empty, every handle resolved).
    pub snapshot: gpes_core::EngineSnapshot,
    /// Programs linked during the saturation phase (gate: 0).
    pub post_warmup_links: u64,
    /// GL objects created during the saturation phase (gate: 0).
    pub post_warmup_gl_objects: u64,
    /// Whether every completed output matched the direct reference
    /// bit-for-bit.
    pub identical: bool,
}

impl A12Report {
    /// Formats the report as the stable multi-line block
    /// `scripts/ci_perf_gate.py` parses.
    pub fn format(&self) -> String {
        let s = &self.snapshot;
        let completed_per_sec = s.completed as f64 / (self.elapsed_ms / 1e3);
        [
            format!(
                "a12 config    workers {}   capacity {}   target jobs {}",
                self.workers, self.queue_capacity, self.target_jobs
            ),
            format!(
                "a12 counters  submitted {}   completed {}   rejected {}   shed {}   \
                 cancelled {}   aborted {}   unobserved {}   balanced {}",
                s.submitted,
                s.completed,
                s.rejected,
                s.shed,
                s.cancelled,
                s.aborted,
                s.unobserved_errors,
                if s.counters_balanced() { "yes" } else { "NO" },
            ),
            format!(
                "a12 steady    post-warmup links {}   objects {}   queue high-water {}   identical {}",
                self.post_warmup_links,
                self.post_warmup_gl_objects,
                s.queue_depth_high_water,
                if self.identical { "yes" } else { "NO" },
            ),
            format!("a12 queue     {}", s.queue_latency.format_summary()),
            format!("a12 service   {}", s.service_latency.format_summary()),
            format!(
                "a12 timing    {:.2} ms   {:.1} completed jobs/s",
                self.elapsed_ms, completed_per_sec
            ),
        ]
        .join("\n")
    }
}

/// Runs A12: saturating open-loop load against a small admission bound.
///
/// A 2-worker engine with a deliberately tight queue is flooded with
/// `try_submit` saxpy jobs of `n` elements until `target_jobs` are
/// admitted *and* at least one [`ComputeError::QueueFull`] rejection has
/// been observed. Every 7th job carries an already-expired deadline
/// (guaranteed shed at dequeue, before any GPU work); every 13th is
/// cancelled right after admission. Completions drain through a
/// [`gpes_core::CompletionSet`], every successful output is compared
/// bit-for-bit against a direct no-engine run, and the final snapshot —
/// whose counters must balance exactly — carries the queue/service
/// latency histograms the report prints.
///
/// # Errors
///
/// Propagates engine/simulator failures (shed, cancelled and queue-full
/// outcomes are expected and absorbed).
pub fn a12_latency_under_load(n: usize, target_jobs: usize) -> Result<A12Report, ComputeError> {
    use gpes_core::{CompletionSet, Engine, Job, KernelSpec};
    use std::sync::Arc;
    const WORKERS: usize = 2;
    const CAPACITY: usize = 8;
    let x = data::random_f32(n, 1201, 1.0);
    let y = data::random_f32(n, 1202, 1.0);
    let spec = Arc::new(
        KernelSpec::new("a12_saxpy")
            .input("x")
            .input("y")
            .uniform_f32("alpha", 2.0)
            .output(n)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
    );

    // Direct no-engine reference for the bit-identity check.
    let reference = {
        let mut cc = ComputeContext::new(256, 256)?;
        let gx = cc.upload(&x)?;
        let gy = cc.upload(&y)?;
        let kernel = Kernel::builder("a12_saxpy_direct")
            .input("x", &gx)
            .input("y", &gy)
            .uniform_f32("alpha", 2.0)
            .output(ScalarType::F32, n)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);")
            .build(&mut cc)?;
        cc.run_f32(&kernel)?
    };

    let engine = Engine::builder()
        .workers(WORKERS)
        .queue_capacity(CAPACITY)
        .build()?;
    let counters = |engine: &Engine| -> (u64, u64) {
        (
            engine.programs_linked(),
            engine
                .worker_stats()
                .iter()
                .map(gpes_core::ContextStats::gl_objects_created)
                .sum(),
        )
    };
    let make_job = || Job::new(&spec).data(x.clone()).data(y.clone());

    // Warmup to steady state, a11-style: closed-loop waves until a full
    // wave links no programs and creates no GL objects.
    let mut identical = true;
    let mut prev = (u64::MAX, u64::MAX);
    for _ in 0..16 {
        let before = counters(&engine);
        let handles: Vec<_> = (0..WORKERS * 2)
            .map(|_| engine.submit(make_job()))
            .collect::<Result<_, _>>()?;
        for h in handles {
            identical &= h.wait()? == reference;
        }
        let after = counters(&engine);
        let delta = (after.0 - before.0, after.1 - before.1);
        if delta == (0, 0) || delta == prev {
            break;
        }
        prev = delta;
    }
    let warm = counters(&engine);

    // Saturation: open-loop flood past the admission bound. On every
    // QueueFull the producer drains one completion and retries — the
    // bounded queue is the only thing pacing it.
    let mut set = CompletionSet::new();
    let mut admitted = 0usize;
    let mut rejections = 0u64;
    let mut attempt = 0usize;
    let collect = |result: Result<Vec<f32>, ComputeError>,
                   identical: &mut bool|
     -> Result<(), ComputeError> {
        match result {
            Ok(out) => {
                *identical &= out == reference;
                Ok(())
            }
            Err(ComputeError::DeadlineExceeded { .. } | ComputeError::Cancelled) => Ok(()),
            Err(e) => Err(e),
        }
    };
    let start = Instant::now();
    while admitted < target_jobs || rejections == 0 {
        attempt += 1;
        let mut job = make_job();
        if attempt.is_multiple_of(7) {
            // Already expired: admitted, then shed at dequeue.
            job = job.deadline(Instant::now() - std::time::Duration::from_millis(1));
        }
        match engine.try_submit(job) {
            Ok(handle) => {
                if attempt.is_multiple_of(13) {
                    // May or may not win the race against a worker;
                    // both outcomes are legal and accounted.
                    handle.cancel();
                }
                set.insert(handle);
                admitted += 1;
            }
            Err(ComputeError::QueueFull { .. }) => {
                rejections += 1;
                if let Some((_token, result)) = set.wait_any() {
                    collect(result, &mut identical)?;
                }
            }
            Err(e) => return Err(e),
        }
    }
    while let Some((_token, result)) = set.wait_any() {
        collect(result, &mut identical)?;
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    // Cancelled payloads are discarded lazily at dequeue; wait for the
    // idle workers to drain any stale entry so the snapshot is taken at
    // true quiescence.
    while engine.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let snapshot = engine.snapshot();
    let after = counters(&engine);
    Ok(A12Report {
        workers: WORKERS,
        queue_capacity: CAPACITY,
        target_jobs,
        elapsed_ms,
        snapshot,
        post_warmup_links: after.0 - warm.0,
        post_warmup_gl_objects: after.1 - warm.1,
        identical,
    })
}

/// One chaos rate's outcome in [`A13Report`]: the quiescent snapshot plus
/// the correctness verdicts the CI gate blocks on.
#[derive(Debug, Clone)]
pub struct A13ChaosRow {
    /// Per-site injection probability this row ran under.
    pub rate: f64,
    /// The engine's final [`gpes_core::EngineSnapshot`], taken at
    /// quiescence (queue empty, every handle resolved).
    pub snapshot: gpes_core::EngineSnapshot,
    /// Completed outputs that did NOT match the fault-free reference
    /// bit-for-bit (gate: 0 — chaos may slow or fail jobs, never corrupt
    /// them).
    pub wrong: u64,
    /// Whether any waiter outlived the drain deadline (gate: false).
    pub hung: bool,
}

impl A13ChaosRow {
    /// Whether every completed output matched the reference.
    pub fn identical(&self) -> bool {
        self.wrong == 0
    }
}

/// A13 — chaos serving: the a12-style open-loop load re-run under seeded
/// deterministic [`gpes_gles2::FaultPlan`]s at several injection rates,
/// with a one-shot context loss armed at every rate. The self-healing
/// contract CI gates on: completed outputs stay bit-identical to the
/// fault-free reference, counters (retries included) balance, every row
/// recovers at least one lost context, and no waiter hangs.
#[derive(Debug, Clone)]
pub struct A13Report {
    /// Worker threads.
    pub workers: usize,
    /// Admission bound the producer saturates.
    pub queue_capacity: usize,
    /// Jobs the producer admitted per rate.
    pub target_jobs: usize,
    /// Operation count after which each worker's one-shot context loss
    /// fires.
    pub lose_after: u64,
    /// Retry budget per job (first attempt included).
    pub max_attempts: u32,
    /// One row per injection rate.
    pub rows: Vec<A13ChaosRow>,
}

impl A13Report {
    /// Formats the report as the stable multi-line block
    /// `scripts/ci_perf_gate.py` parses.
    pub fn format(&self) -> String {
        let mut lines = vec![format!(
            "a13 config    workers {}   capacity {}   target jobs {}   lose-after {}   \
             attempts {}",
            self.workers, self.queue_capacity, self.target_jobs, self.lose_after, self.max_attempts
        )];
        for row in &self.rows {
            let s = &row.snapshot;
            lines.push(format!(
                "a13 chaos     rate {:.4}   submitted {}   completed {}   failed {}   \
                 rejected {}   shed {}   cancelled {}   aborted {}   retried {}   \
                 recovered {}   faults {}   balanced {}   identical {}   hung {}",
                row.rate,
                s.submitted,
                s.completed,
                s.failed,
                s.rejected,
                s.shed,
                s.cancelled,
                s.aborted,
                s.retried,
                s.recovered_contexts,
                s.faults_injected,
                if s.counters_balanced() { "yes" } else { "NO" },
                if row.identical() { "yes" } else { "NO" },
                if row.hung { "YES" } else { "no" },
            ));
        }
        lines.join("\n")
    }
}

/// Runs A13: open-loop chaos load under deterministic fault injection.
///
/// For each injection rate a fresh 2-worker engine gets a seeded
/// [`gpes_gles2::FaultPlan`] (derived per worker) with every failure
/// site armed at that rate plus a one-shot context loss a few operations
/// in, and a generous zero-backoff [`gpes_core::RetryPolicy`]. The
/// producer floods `try_submit` saxpy jobs past the admission bound
/// (QueueFull paces it, exactly like a12), drains every handle through a
/// timeout-bounded [`gpes_core::CompletionSet`] — a waiter outliving the
/// deadline marks the row hung instead of hanging the bench — and takes
/// the snapshot at quiescence. Completed outputs are compared
/// bit-for-bit against a fault-free direct run; jobs whose retry budget
/// was exhausted surface typed transient errors and are counted
/// `failed`, never wrong.
///
/// # Errors
///
/// Propagates simulator failures that are neither transient nor
/// injection-induced (those are expected and absorbed).
pub fn a13_chaos(n: usize, target_jobs: usize) -> Result<A13Report, ComputeError> {
    use gpes_core::{CompletionSet, Engine, Job, KernelSpec, RetryPolicy};
    use gpes_gles2::FaultPlan;
    use std::sync::Arc;
    use std::time::Duration;
    const WORKERS: usize = 2;
    const CAPACITY: usize = 8;
    const LOSE_AFTER: u64 = 9;
    const SEED: u64 = 0xDA7E_2016;
    const MAX_ATTEMPTS: u32 = 6;
    const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.15];
    /// Per-row drain budget: far beyond any real run, tight enough that
    /// a genuine hang fails the row (and the gate) instead of wedging CI.
    const DRAIN_TIMEOUT: Duration = Duration::from_secs(120);

    let x = data::random_f32(n, 1301, 1.0);
    let y = data::random_f32(n, 1302, 1.0);
    let spec = Arc::new(
        KernelSpec::new("a13_saxpy")
            .input("x")
            .input("y")
            .uniform_f32("alpha", 2.0)
            .output(n)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
    );

    // Fault-free direct reference for the bit-identity check.
    let reference = {
        let mut cc = ComputeContext::new(256, 256)?;
        let gx = cc.upload(&x)?;
        let gy = cc.upload(&y)?;
        let kernel = Kernel::builder("a13_saxpy_direct")
            .input("x", &gx)
            .input("y", &gy)
            .uniform_f32("alpha", 2.0)
            .output(ScalarType::F32, n)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);")
            .build(&mut cc)?;
        cc.run_f32(&kernel)?
    };

    let mut rows = Vec::with_capacity(RATES.len());
    for rate in RATES {
        let engine = Engine::builder()
            .workers(WORKERS)
            .queue_capacity(CAPACITY)
            .retry_policy(RetryPolicy {
                max_attempts: MAX_ATTEMPTS,
                backoff: Duration::ZERO,
            })
            .fault_plan(
                FaultPlan::new(SEED)
                    .rate_all(rate)
                    .lose_context_after(LOSE_AFTER),
            )
            .build()?;
        let mut set = CompletionSet::new();
        let mut wrong = 0u64;
        let mut hung = false;
        let give_up = Instant::now() + DRAIN_TIMEOUT;
        let collect =
            |result: Result<Vec<f32>, ComputeError>, wrong: &mut u64| -> Result<(), ComputeError> {
                match result {
                    Ok(out) => {
                        if out != reference {
                            *wrong += 1;
                        }
                        Ok(())
                    }
                    // Retry budget exhausted under heavy injection: a typed
                    // transient error, the expected chaos outcome.
                    Err(e) if e.is_transient() => Ok(()),
                    Err(e) => Err(e),
                }
            };
        let mut admitted = 0usize;
        while admitted < target_jobs && !hung {
            match engine.try_submit(Job::new(&spec).data(x.clone()).data(y.clone())) {
                Ok(handle) => {
                    set.insert(handle);
                    admitted += 1;
                }
                Err(ComputeError::QueueFull { .. }) => {
                    let now = Instant::now();
                    if now >= give_up {
                        hung = true;
                        break;
                    }
                    match set.wait_any_timeout(give_up - now) {
                        Some((_token, result)) => collect(result, &mut wrong)?,
                        None => hung = true,
                    }
                }
                Err(e) => return Err(e),
            }
        }
        while !set.is_empty() && !hung {
            let now = Instant::now();
            if now >= give_up {
                hung = true;
                break;
            }
            match set.wait_any_timeout(give_up - now) {
                Some((_token, result)) => collect(result, &mut wrong)?,
                None => hung = true,
            }
        }
        if !hung {
            // Quiescence before the snapshot: all handles resolved, and
            // any stale queue entry drained by the idle workers.
            while engine.queue_depth() > 0 {
                std::thread::yield_now();
            }
        }
        rows.push(A13ChaosRow {
            rate,
            snapshot: engine.snapshot(),
            wrong,
            hung,
        });
        engine.shutdown();
    }
    Ok(A13Report {
        workers: WORKERS,
        queue_capacity: CAPACITY,
        target_jobs,
        lose_after: LOSE_AFTER,
        max_attempts: MAX_ATTEMPTS,
        rows,
    })
}

/// One tenant's outcome in [`A14Report`]: the engine's per-tenant
/// counters joined with the bench's own correctness tallies.
#[derive(Debug, Clone)]
pub struct A14TenantRow {
    /// Tenant name.
    pub tenant: String,
    /// Kernel sources this tenant got through admission.
    pub admitted: u64,
    /// Typed refusals charged to the tenant (admission + quota).
    pub rejected: u64,
    /// Tenant-scoped cache evictions.
    pub evicted: u64,
    /// Jobs accepted into the queue for this tenant.
    pub jobs: u64,
    /// Completed outputs that did NOT match the tenant's direct
    /// reference bit-for-bit (gate: 0).
    pub wrong: u64,
}

/// A14 — multi-tenant dynamic kernel registry under adversarial load.
/// Three well-behaved tenants register kernels from GLSL source and
/// serve steady waves; a malformed tenant hammers the admission pipeline
/// with invalid source (parse / sema / strict / oversized); a noisy
/// tenant floods past its in-flight quota. The contract CI gates on:
/// every invalid source rejected with a typed error (zero panics, zero
/// wrong admissions), every well-behaved output bit-identical to the
/// compiled-in path, zero post-warmup links / GL objects (the noisy and
/// malformed tenants never cost their neighbours anything), balanced
/// counters, and at least one typed quota rejection actually observed.
#[derive(Debug, Clone)]
pub struct A14Report {
    /// Worker threads.
    pub workers: usize,
    /// Admission bound.
    pub queue_capacity: usize,
    /// Steady-phase jobs per well-behaved tenant.
    pub wave_jobs: usize,
    /// Jobs the noisy tenant got admitted (its quota paces it).
    pub noisy_jobs: u64,
    /// The noisy tenant's in-flight quota.
    pub noisy_quota: usize,
    /// Invalid registration attempts by the malformed tenant.
    pub invalid_total: u64,
    /// The subset rejected with a typed
    /// [`gpes_core::ComputeError::AdmissionRejected`] (gate: all).
    pub invalid_typed: u64,
    /// Typed in-flight quota rejections observed by the noisy tenant
    /// (gate: > 0).
    pub quota_rejections: u64,
    /// Programs linked during the steady phase (gate: 0).
    pub post_warmup_links: u64,
    /// GL objects created during the steady phase (gate: 0).
    pub post_warmup_gl_objects: u64,
    /// Final snapshot at quiescence; counters must balance.
    pub snapshot: gpes_core::EngineSnapshot,
    /// One row per tenant, sorted by name.
    pub rows: Vec<A14TenantRow>,
}

impl A14Report {
    /// Whether every completed output matched its tenant's reference.
    pub fn identical(&self) -> bool {
        self.rows.iter().all(|r| r.wrong == 0)
    }

    /// Whether every invalid source was rejected with a typed error.
    pub fn all_invalid_typed(&self) -> bool {
        self.invalid_typed == self.invalid_total
    }

    /// Formats the report as the stable multi-line block
    /// `scripts/ci_perf_gate.py` parses.
    pub fn format(&self) -> String {
        let s = &self.snapshot;
        let mut lines = vec![format!(
            "a14 config    workers {}   capacity {}   tenants {}   wave jobs {}   \
             noisy quota {}",
            self.workers,
            self.queue_capacity,
            self.rows.len(),
            self.wave_jobs,
            self.noisy_quota,
        )];
        for row in &self.rows {
            lines.push(format!(
                "a14 tenant    name {}   admitted {}   rejected {}   evicted {}   \
                 jobs {}   wrong {}",
                row.tenant, row.admitted, row.rejected, row.evicted, row.jobs, row.wrong,
            ));
        }
        lines.push(format!(
            "a14 totals    invalid {}   typed {}   quota-rejections {}   \
             post-warmup links {}   objects {}   balanced {}   identical {}",
            self.invalid_total,
            self.invalid_typed,
            self.quota_rejections,
            self.post_warmup_links,
            self.post_warmup_gl_objects,
            if s.counters_balanced() { "yes" } else { "NO" },
            if self.identical() { "yes" } else { "NO" },
        ));
        lines.join("\n")
    }
}

/// Runs A14: the multi-tenant registry gauntlet.
///
/// Five tenants share one 2-worker engine. `alpha`/`beta`/`gamma`
/// register distinct kernels from source through the admission pipeline
/// and serve closed-loop waves whose outputs are compared bit-for-bit
/// against direct no-engine runs of the same bodies. `mallory` attempts
/// the same four invalid sources before and during the steady phase —
/// garbage that cannot parse, an undeclared identifier, an Appendix-A
/// loop violation, and an output beyond the driver limits — each of
/// which must surface as a typed admission error. `noisy` is capped at
/// two in-flight jobs and floods `try_submit` from its own thread,
/// concurrent with the well-behaved waves, until it has both landed its
/// target of accepted jobs and observed at least one typed quota
/// rejection. Links and GL objects are watermarked after warmup; the
/// steady phase must create none.
///
/// # Errors
///
/// Propagates engine/simulator failures (typed admission and quota
/// rejections are expected and absorbed).
pub fn a14_registry(n: usize, wave_jobs: usize) -> Result<A14Report, ComputeError> {
    use gpes_core::{CompletionSet, Engine, KernelSpec, TenantQuotas};
    const WORKERS: usize = 2;
    const CAPACITY: usize = 32;
    const NOISY_TARGET: usize = 48;
    const NOISY_QUOTA: usize = 2;
    const WELL_BEHAVED: [(&str, &str); 3] = [
        ("alpha", "return 2.0 * fetch_x(idx);"),
        ("beta", "return fetch_x(idx) + 0.5;"),
        ("gamma", "return fetch_x(idx) * fetch_x(idx);"),
    ];
    const NOISY_BODY: &str = "return fetch_x(idx) - 1.0;";

    let x = data::random_f32(n, 1401, 1.0);

    // Direct no-engine references: the compiled-in path the dynamic path
    // must match bit-for-bit.
    let mut references = Vec::with_capacity(WELL_BEHAVED.len() + 1);
    {
        let mut cc = ComputeContext::new(256, 256)?;
        let gx = cc.upload(&x)?;
        for (name, body) in WELL_BEHAVED.iter().chain([("noisy", NOISY_BODY)].iter()) {
            let kernel = Kernel::builder(format!("a14_{name}_direct"))
                .input("x", &gx)
                .output(ScalarType::F32, n)
                .body(*body)
                .build(&mut cc)?;
            references.push(cc.run_f32(&kernel)?);
        }
    }
    let noisy_reference = references.pop().expect("noisy reference");

    let engine = Engine::builder()
        .workers(WORKERS)
        .queue_capacity(CAPACITY)
        .build()?;
    let registry = engine.registry();
    registry.set_quotas("noisy", TenantQuotas::default().max_in_flight(NOISY_QUOTA));

    // Dynamic registration from source — the serving-boundary path.
    let mut kernels = Vec::with_capacity(WELL_BEHAVED.len());
    for (name, body) in WELL_BEHAVED {
        kernels.push(
            registry.register(
                name,
                KernelSpec::new(format!("{name}_kernel"))
                    .input("x")
                    .output(n)
                    .body(body),
            )?,
        );
    }
    let noisy_kernel = registry.register(
        "noisy",
        KernelSpec::new("noisy_kernel")
            .input("x")
            .output(n)
            .body(NOISY_BODY),
    )?;

    // The malformed tenant's arsenal: one source per rejection stage.
    let invalid_specs = || {
        vec![
            KernelSpec::new("m_parse").output(n).body("return ((;"),
            KernelSpec::new("m_sema").output(n).body("return nope;"),
            KernelSpec::new("m_strict")
                .uniform_f32("bound", 4.0)
                .output(n)
                .body(
                    "float s = 0.0;\n\
                     for (int i = 0; float(i) < bound; i++) { s += 1.0; }\n\
                     return s;",
                ),
            KernelSpec::new("m_huge")
                .output(usize::MAX / 4)
                .body("return 1.0;"),
        ]
    };
    let mut invalid_total = 0u64;
    let mut invalid_typed = 0u64;
    let attempt_invalid = |total: &mut u64, typed: &mut u64| {
        for spec in invalid_specs() {
            *total += 1;
            if matches!(
                registry.register("mallory", spec),
                Err(ComputeError::AdmissionRejected { .. })
            ) {
                *typed += 1;
            }
        }
    };
    attempt_invalid(&mut invalid_total, &mut invalid_typed);

    let counters = |engine: &Engine| -> (u64, u64) {
        (
            engine.programs_linked(),
            engine
                .worker_stats()
                .iter()
                .map(gpes_core::ContextStats::gl_objects_created)
                .sum(),
        )
    };

    // Warmup, a12-style: closed-loop waves until a full wave links no
    // programs and creates no GL objects on either worker. Programs link
    // once process-wide (shared cache) but pipeline GL objects are
    // per-worker, so each wave floods `2 * WORKERS` concurrent copies of
    // EACH kernel (the noisy tenant's included, paced within its quota)
    // to pull every kernel through every worker before the watermark.
    let mut wrong = vec![0u64; WELL_BEHAVED.len()];
    let mut noisy_wrong = 0u64;
    let mut prev = (u64::MAX, u64::MAX);
    for _ in 0..16 {
        let before = counters(&engine);
        for (i, kernel) in kernels.iter().enumerate() {
            let handles: Vec<_> = (0..WORKERS * 2)
                .map(|_| engine.submit(kernel.job().data(x.clone())))
                .collect::<Result<_, _>>()?;
            for h in handles {
                if h.wait()? != references[i] {
                    wrong[i] += 1;
                }
            }
        }
        for _ in 0..WORKERS {
            // The noisy quota caps concurrency, so run extra sub-waves
            // of quota-width instead of one wide wave.
            let handles: Vec<_> = (0..NOISY_QUOTA)
                .map(|_| engine.submit(noisy_kernel.job().data(x.clone())))
                .collect::<Result<_, _>>()?;
            for h in handles {
                if h.wait()? != noisy_reference {
                    noisy_wrong += 1;
                }
            }
        }
        let after = counters(&engine);
        let delta = (after.0 - before.0, after.1 - before.1);
        if delta == (0, 0) || delta == prev {
            break;
        }
        prev = delta;
    }
    let warm = counters(&engine);

    // Steady phase: the noisy tenant floods from its own thread while
    // the well-behaved tenants serve their waves and the malformed
    // tenant keeps hammering admission.
    let mut quota_rejections = 0u64;
    let mut noisy_jobs = 0u64;
    std::thread::scope(|scope| -> Result<(), ComputeError> {
        let noisy = scope.spawn(|| -> Result<(u64, u64, u64), ComputeError> {
            let mut set = CompletionSet::new();
            let mut accepted = 0u64;
            let mut rejections = 0u64;
            let mut wrong = 0u64;
            let drain =
                |set: &mut CompletionSet<Vec<f32>>, wrong: &mut u64| -> Result<(), ComputeError> {
                    if let Some((_token, result)) = set.wait_any() {
                        if result? != noisy_reference {
                            *wrong += 1;
                        }
                    }
                    Ok(())
                };
            while (accepted as usize) < NOISY_TARGET || rejections == 0 {
                match engine.try_submit(noisy_kernel.job().data(x.clone())) {
                    Ok(handle) => {
                        set.insert(handle);
                        accepted += 1;
                    }
                    Err(ComputeError::QuotaExceeded { .. }) => {
                        rejections += 1;
                        drain(&mut set, &mut wrong)?;
                    }
                    Err(ComputeError::QueueFull { .. }) => drain(&mut set, &mut wrong)?,
                    Err(e) => return Err(e),
                }
            }
            while let Some((_token, result)) = set.wait_any() {
                if result? != noisy_reference {
                    wrong += 1;
                }
            }
            Ok((accepted, rejections, wrong))
        });
        for wave in 0..wave_jobs {
            let handles: Vec<_> = kernels
                .iter()
                .map(|k| engine.submit(k.job().data(x.clone())))
                .collect::<Result<_, _>>()?;
            for (i, h) in handles.into_iter().enumerate() {
                if h.wait()? != references[i] {
                    wrong[i] += 1;
                }
            }
            if wave == wave_jobs / 2 {
                // Mid-flood: admission keeps rejecting typed while the
                // engine serves.
                attempt_invalid(&mut invalid_total, &mut invalid_typed);
            }
        }
        let (accepted, rejections, thread_wrong) =
            noisy.join().expect("noisy flood thread must not panic")?;
        noisy_jobs = accepted;
        quota_rejections = rejections;
        noisy_wrong += thread_wrong;
        Ok(())
    })?;

    while engine.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let after = counters(&engine);
    let snapshot = engine.snapshot();

    // Join the engine's per-tenant counters with the bench's own
    // correctness tallies.
    let wrong_of = |tenant: &str| -> u64 {
        if tenant == "noisy" {
            return noisy_wrong;
        }
        WELL_BEHAVED
            .iter()
            .position(|(name, _)| *name == tenant)
            .map_or(0, |i| wrong[i])
    };
    let rows: Vec<A14TenantRow> = snapshot
        .tenants
        .iter()
        .map(|c| A14TenantRow {
            tenant: c.tenant.clone(),
            admitted: c.admitted,
            rejected: c.rejected,
            evicted: c.evicted,
            jobs: c.jobs,
            wrong: wrong_of(&c.tenant),
        })
        .collect();
    engine.shutdown();
    Ok(A14Report {
        workers: WORKERS,
        queue_capacity: CAPACITY,
        wave_jobs,
        noisy_jobs,
        noisy_quota: NOISY_QUOTA,
        invalid_total,
        invalid_typed,
        quota_rejections,
        post_warmup_links: after.0 - warm.0,
        post_warmup_gl_objects: after.1 - warm.1,
        snapshot,
        rows,
    })
}

/// A15 — SPMD lane execution: one per-kernel row for each execution
/// mode in the scalar/spmd4/spmd8 ladder.
#[derive(Debug, Clone)]
pub struct A15VmRow {
    /// Kernel family exercised.
    pub kernel: &'static str,
    /// Execution mode under test.
    pub mode: ExecMode,
    /// Simulated fragments per host second.
    pub fragments_per_s: f64,
    /// Whether the run produced the same bytes as the tree-walker.
    pub identical: bool,
    /// SPMD batches dispatched (gate: > 0 for Spmd rows, 0 otherwise).
    pub spmd_batches: u64,
    /// Bands/draws that fell back to scalar execution.
    pub scalar_fallbacks: u64,
}

/// A15 — one codec hot-path row: element-at-a-time vs the vectorised
/// slice path, in texels/s.
#[derive(Debug, Clone)]
pub struct A15CodecRow {
    /// Codec under test.
    pub codec: &'static str,
    /// `element` (per-value encode/decode calls) or `slice`
    /// (single-pass preallocated).
    pub path: &'static str,
    /// Round-trip throughput, texels per second.
    pub texels_per_s: f64,
}

/// A15 — SPMD lane-parallel fragment VM: kernel throughput ladder,
/// geometric-mean speedups, codec slice-path microbench, and a served
/// engine run proving the SPMD path is what production serving executes.
///
/// CI gates on the deterministic contracts — every row bit-identical to
/// the tree-walker, `spmd_batches > 0` exactly on the Spmd rows, the
/// serve row balanced and labelled with an spmd exec mode. The speedup
/// numbers are advisory (host-dependent; recorded by the baseline
/// tooling and diffed, not gated).
#[derive(Debug, Clone)]
pub struct A15Report {
    /// Per-kernel, per-mode throughput rows.
    pub vm: Vec<A15VmRow>,
    /// Geomean speedup vs the scalar VM, one entry per Spmd mode.
    pub mix: Vec<(ExecMode, f64)>,
    /// Codec hot-path rows.
    pub codec: Vec<A15CodecRow>,
    /// The engine's reported execution mode label.
    pub serve_exec_mode: String,
    /// Jobs served in the engine run.
    pub serve_jobs: usize,
    /// Every served output bit-identical to the scalar reference.
    pub serve_identical: bool,
    /// Engine outcome counters balance at quiescence.
    pub serve_balanced: bool,
    /// SPMD batches the engine's workers dispatched (gate: > 0).
    pub serve_spmd_batches: u64,
    /// Scalar fallbacks across the engine's workers.
    pub serve_scalar_fallbacks: u64,
}

impl A15Report {
    /// Whether every VM row matched the tree-walker oracle.
    pub fn identical(&self) -> bool {
        self.vm.iter().all(|r| r.identical)
    }

    /// Whether `spmd_batches` is positive exactly on the Spmd rows.
    pub fn batches_consistent(&self) -> bool {
        self.vm.iter().all(|r| match r.mode {
            ExecMode::Spmd { .. } => r.spmd_batches > 0,
            _ => r.spmd_batches == 0,
        })
    }

    /// Formats the report as the stable multi-line block
    /// `scripts/ci_perf_gate.py` parses.
    pub fn format(&self) -> String {
        let mut lines = Vec::new();
        for row in &self.vm {
            lines.push(format!(
                "a15 vm        kernel {:<10} mode {:<7} fragments/s {:>10.0}   \
                 identical {}   spmd_batches {}   fallbacks {}",
                row.kernel,
                row.mode.label(),
                row.fragments_per_s,
                if row.identical { "yes" } else { "NO" },
                row.spmd_batches,
                row.scalar_fallbacks,
            ));
        }
        for (mode, speedup) in &self.mix {
            lines.push(format!(
                "a15 mix       mode {:<7} geomean speedup vs scalar {speedup:.2}x",
                mode.label(),
            ));
        }
        for row in &self.codec {
            lines.push(format!(
                "a15 codec     {:<12} path {:<8} texels/s {:>12.0}",
                row.codec, row.path, row.texels_per_s,
            ));
        }
        lines.push(format!(
            "a15 serve     exec_mode {}   jobs {}   identical {}   balanced {}   \
             spmd_batches {}   fallbacks {}",
            self.serve_exec_mode,
            self.serve_jobs,
            if self.serve_identical { "yes" } else { "NO" },
            if self.serve_balanced { "yes" } else { "NO" },
            self.serve_spmd_batches,
            self.serve_scalar_fallbacks,
        ));
        lines.join("\n")
    }
}

/// Runs A15: the a8 kernel mix (`sum (fp)` codec-heavy, `sgemm (fp)`
/// loop-heavy) under `Scalar`, `Spmd{4}` and `Spmd{8}`, each checked
/// bit-for-bit against a tree-walker oracle run with per-row
/// `spmd_batches`/`scalar_fallbacks` counters; the float32 and u16 codec
/// round trips element-wise vs sliced; and a 2-worker engine wave under
/// `Spmd{8}` whose snapshot must balance, report an spmd label, and show
/// nonzero SPMD batches.
///
/// # Errors
///
/// Propagates simulator/engine failures.
pub fn a15_spmd(n: usize, jobs: usize) -> Result<A15Report, ComputeError> {
    use gpes_core::codec::{float32, ushort};

    const MODES: [ExecMode; 3] = [
        ExecMode::Scalar,
        ExecMode::Spmd { lanes: 4 },
        ExecMode::Spmd { lanes: 8 },
    ];

    // --- VM ladder over the a8 kernel mix -------------------------------
    let a = data::random_f32(n, 501, 100.0);
    let b = data::random_f32(n, 502, 100.0);
    let side = 32usize;
    let ma = data::random_f32(side * side, 503, 2.0);
    let mb = data::random_f32(side * side, 504, 2.0);
    let mc = data::random_f32(side * side, 505, 2.0);

    let run_sum = |mode: ExecMode| -> Result<(Vec<f32>, f64, u64, u64), ComputeError> {
        let mut cc = ComputeContext::new(256, 256)?;
        cc.set_exec_mode(mode);
        cc.set_dispatch(Dispatch::Serial);
        let ga = cc.upload(&a)?;
        let gb = cc.upload(&b)?;
        let k = gpes_kernels::sum::build_f32(&mut cc, &ga, &gb)?;
        let start = Instant::now();
        let out = cc.run_f32(&k)?;
        let elapsed = start.elapsed().as_secs_f64();
        let stats = cc.stats();
        Ok((
            out,
            n as f64 / elapsed,
            stats.spmd_batches,
            stats.scalar_fallbacks,
        ))
    };
    let run_gemm = |mode: ExecMode| -> Result<(Vec<f32>, f64, u64, u64), ComputeError> {
        let mut cc = ComputeContext::new(64, 64)?;
        cc.set_exec_mode(mode);
        cc.set_dispatch(Dispatch::Serial);
        let ga = cc.upload_matrix(side as u32, side as u32, &ma)?;
        let gb = cc.upload_matrix(side as u32, side as u32, &mb)?;
        let gc = cc.upload_matrix(side as u32, side as u32, &mc)?;
        let k = gpes_kernels::sgemm::build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.5)?;
        let start = Instant::now();
        let out = cc.run_f32(&k)?;
        let elapsed = start.elapsed().as_secs_f64();
        let stats = cc.stats();
        Ok((
            out,
            (side * side) as f64 / elapsed,
            stats.spmd_batches,
            stats.scalar_fallbacks,
        ))
    };

    type KernelRun<'r> = &'r dyn Fn(ExecMode) -> Result<(Vec<f32>, f64, u64, u64), ComputeError>;
    let mut vm = Vec::new();
    let kernels: [(&'static str, KernelRun); 2] =
        [("sum (fp)", &run_sum), ("sgemm (fp)", &run_gemm)];
    let mut scalar_rates = Vec::new();
    let mut spmd_rates: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for (kernel, run) in kernels {
        let (oracle, _, _, _) = run(ExecMode::TreeWalker)?;
        for (mi, mode) in MODES.into_iter().enumerate() {
            let (out, rate, spmd_batches, scalar_fallbacks) = run(mode)?;
            vm.push(A15VmRow {
                kernel,
                mode,
                fragments_per_s: rate,
                identical: out == oracle,
                spmd_batches,
                scalar_fallbacks,
            });
            match mi {
                0 => scalar_rates.push(rate),
                i => spmd_rates[i - 1].push(rate),
            }
        }
    }
    let mix: Vec<(ExecMode, f64)> = MODES[1..]
        .iter()
        .zip(&spmd_rates)
        .map(|(&mode, rates)| {
            let logsum: f64 = rates
                .iter()
                .zip(&scalar_rates)
                .map(|(r, s)| (r / s).ln())
                .sum();
            (mode, (logsum / rates.len() as f64).exp())
        })
        .collect();

    // --- Codec hot paths: element-at-a-time vs vectorised slice ---------
    let reps = 32usize;
    let floats = data::random_f32(n, 511, 1.0e9);
    let shorts: Vec<u16> = data::random_u32(n, 512, u16::MAX as u32 + 1)
        .into_iter()
        .map(|v| v as u16)
        .collect();
    let mut codec = Vec::new();

    // float32: one value per RGBA texel, both directions.
    let start = Instant::now();
    for _ in 0..reps {
        let bytes: Vec<u8> = floats.iter().flat_map(|&v| float32::encode(v)).collect();
        let back: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|px| float32::decode([px[0], px[1], px[2], px[3]]))
            .collect();
        std::hint::black_box(back);
    }
    codec.push(A15CodecRow {
        codec: "float32",
        path: "element",
        texels_per_s: (reps * n) as f64 / start.elapsed().as_secs_f64(),
    });
    let start = Instant::now();
    for _ in 0..reps {
        let bytes = float32::encode_slice(&floats, n);
        std::hint::black_box(float32::decode_slice(&bytes, n));
    }
    codec.push(A15CodecRow {
        codec: "float32",
        path: "slice",
        texels_per_s: (reps * n) as f64 / start.elapsed().as_secs_f64(),
    });

    // u16: one value per (L, A) texel up, (R, A) gather back.
    let fb: Vec<u8> = shorts
        .iter()
        .flat_map(|&v| {
            let [lo, hi] = v.to_le_bytes();
            [lo, 0, 0, hi]
        })
        .collect();
    let start = Instant::now();
    for _ in 0..reps {
        let bytes: Vec<u8> = shorts.iter().flat_map(|&v| ushort::encode(v)).collect();
        std::hint::black_box(bytes);
        let back: Vec<u16> = fb
            .chunks_exact(4)
            .map(|px| ushort::decode([px[0], px[3]]))
            .collect();
        std::hint::black_box(back);
    }
    codec.push(A15CodecRow {
        codec: "u16",
        path: "element",
        texels_per_s: (reps * n) as f64 / start.elapsed().as_secs_f64(),
    });
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(ushort::encode_slice(&shorts, n));
        std::hint::black_box(ushort::decode_slice(&fb, n));
    }
    codec.push(A15CodecRow {
        codec: "u16",
        path: "slice",
        texels_per_s: (reps * n) as f64 / start.elapsed().as_secs_f64(),
    });

    // --- Served wave under Spmd{8} --------------------------------------
    use gpes_core::{Bindings, Engine, Job};
    use std::sync::Arc;
    let specs = a10_specs(n);
    let x: Arc<Vec<f32>> = Arc::new(data::random_f32(n, 521, 25.0));
    let y: Arc<Vec<f32>> = Arc::new(data::random_f32(n, 522, 25.0));
    let mut cc = ComputeContext::new(256, 256)?;
    cc.set_exec_mode(ExecMode::Scalar);
    let gx = cc.upload(x.as_slice())?;
    let gy = cc.upload(y.as_slice())?;
    let mut expected: Vec<Vec<f32>> = Vec::new();
    for spec in &specs {
        let k = spec.build(&mut cc, &[gx, gy])?;
        let out: gpes_core::GpuArray<f32> = cc.run_to_array_with(&k, &Bindings::new())?;
        expected.push(cc.read_array(&out, Readback::DirectFbo)?);
        cc.recycle_array(out);
    }
    let engine = Engine::builder()
        .workers(2)
        .exec_mode(ExecMode::Spmd { lanes: 8 })
        .build()?;
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            engine.submit(
                Job::new(&specs[i % specs.len()])
                    .data_shared(&x)
                    .data_shared(&y),
            )
        })
        .collect::<Result<_, _>>()?;
    let mut serve_identical = true;
    for (i, h) in handles.into_iter().enumerate() {
        serve_identical &= h.wait()? == expected[i % specs.len()];
    }
    let snapshot = engine.snapshot();
    engine.shutdown();

    Ok(A15Report {
        vm,
        mix,
        codec,
        serve_exec_mode: snapshot.exec_mode.clone(),
        serve_jobs: jobs,
        serve_identical,
        serve_balanced: snapshot.counters_balanced(),
        serve_spmd_batches: snapshot.context.spmd_batches,
        serve_scalar_fallbacks: snapshot.context.scalar_fallbacks,
    })
}

/// A16 — one per-layer accounting row from the quantized graph's direct
/// (non-engine) run.
#[derive(Debug, Clone)]
pub struct A16LayerRow {
    /// Pass (kernel) name, e.g. `cnn_conv1_quant`.
    pub pass: String,
    /// Texels rendered by the pass.
    pub output_texels: u64,
    /// Fragment-stage operations per output texel (deterministic in the
    /// simulator).
    pub ops_per_texel: f64,
}

/// A16 — one served-path row: the quantized CNN vs its f32 twin at a
/// given worker count.
#[derive(Debug, Clone)]
pub struct A16PathRow {
    /// `quant` or `f32`.
    pub precision: &'static str,
    /// Engine worker count.
    pub workers: usize,
    /// Inferences per measured wave.
    pub jobs: usize,
    /// Host wall time of the steady wave, milliseconds.
    pub host_ms: f64,
    /// Served inferences per host second.
    pub images_per_s: f64,
    /// Every served output bit-identical to the host reference.
    pub identical: bool,
    /// Engine outcome counters balance at quiescence.
    pub balanced: bool,
    /// Programs linked after the warmup wave (must be 0).
    pub post_warmup_links: u64,
    /// GL objects created after the warmup wave (must be 0).
    pub post_warmup_objects: u64,
    /// `f32` tensors that crossed the host boundary, all workers, whole
    /// run (gate: 0 on the quantized path).
    pub f32_transfers: u64,
    /// Quantized (u8/i16) tensors that crossed the host boundary.
    pub quant_transfers: u64,
}

/// A16 — end-to-end quantized CNN inference as a served workload: u8
/// activations and i16 weights flow GPU-side through every layer, with
/// per-layer pass accounting and a quant-vs-f32 throughput ablation at
/// 1/2/4 workers.
///
/// CI gates on the deterministic contracts: bit-identity to the host
/// reference on every row, balanced counters, zero post-warmup
/// links/objects, **zero f32 host transfers on the quantized rows** (and
/// nonzero quantized transfers), nonzero f32 transfers on the f32 rows.
/// The images/s column is advisory on shared single-core CI hosts.
#[derive(Debug, Clone)]
pub struct A16Report {
    /// Per-layer accounting of the quantized graph (direct run).
    pub layers: Vec<A16LayerRow>,
    /// Served path rows, quant and f32 at each worker count.
    pub paths: Vec<A16PathRow>,
}

impl A16Report {
    /// Whether every path row was bit-identical to the host reference.
    pub fn identical(&self) -> bool {
        self.paths.iter().all(|r| r.identical)
    }

    /// Whether every path row's engine counters balanced.
    pub fn balanced(&self) -> bool {
        self.paths.iter().all(|r| r.balanced)
    }

    /// Whether the transfer counters prove the quantized path never
    /// widened to f32 at the host boundary (and the f32 path did).
    pub fn transfers_consistent(&self) -> bool {
        self.paths.iter().all(|r| match r.precision {
            "quant" => r.f32_transfers == 0 && r.quant_transfers > 0,
            _ => r.f32_transfers > 0,
        })
    }

    /// Formats the report as the stable multi-line block
    /// `scripts/ci_perf_gate.py` parses.
    pub fn format(&self) -> String {
        let mut lines = vec![format!(
            "a16 config    img {side}x{side}   conv 3x3 x2   dense {di}->{do_}   \
             weights i16   activations u8",
            side = gpes_kernels::cnn::IMG_SIDE,
            di = gpes_kernels::cnn::DENSE_INPUTS,
            do_ = gpes_kernels::cnn::DENSE_OUTPUTS,
        )];
        for row in &self.layers {
            lines.push(format!(
                "a16 layer     pass {:<16} output_texels {:>5}   ops/texel {:>8.1}",
                row.pass, row.output_texels, row.ops_per_texel,
            ));
        }
        for row in &self.paths {
            lines.push(format!(
                "a16 path      precision {:<6} workers {}   jobs {:>4} {:>9.2} ms \
                 {:>8.1} images/s   identical {}   balanced {}   post_warmup_links {}   \
                 post_warmup_objects {}   f32_transfers {}   quant_transfers {}",
                row.precision,
                row.workers,
                row.jobs,
                row.host_ms,
                row.images_per_s,
                if row.identical { "yes" } else { "NO" },
                if row.balanced { "yes" } else { "NO" },
                row.post_warmup_links,
                row.post_warmup_objects,
                row.f32_transfers,
                row.quant_transfers,
            ));
        }
        lines.join("\n")
    }
}

/// Runs A16: the [`gpes_kernels::cnn`] graph once directly for per-layer
/// accounting, then served waves of `jobs` inferences on 1/2/4-worker
/// engines at both precisions, with the i16 weights uploaded once per
/// worker as [`gpes_core::ResidentInput`]s and per-request u8 images
/// entering (and i16 scores leaving) through the typed tensor path.
///
/// # Errors
///
/// Propagates simulator/engine failures.
pub fn a16_quant_cnn(jobs: usize) -> Result<A16Report, ComputeError> {
    use gpes_core::{Engine, PipelineJob, ResidentInput, SourceSeed, TensorData};
    use gpes_kernels::cnn::{self, CnnOutput, Precision};
    use std::sync::Arc;

    const IMAGES: usize = 4;
    let side = cnn::IMG_SIDE as usize;
    let weights = cnn::CnnWeights::demo(1601);
    let images: Vec<Vec<u8>> = (0..IMAGES)
        .map(|i| data::random_u8(side * side, 1610 + i as u64, 255))
        .collect();
    let references: Vec<CnnOutput> = images
        .iter()
        .map(|img| cnn::cpu_reference(img, &weights, PackBias::default()))
        .collect();

    // ---- direct run: per-layer pass accounting ------------------------
    let mut layers = Vec::new();
    {
        let mut cc = ComputeContext::new(64, 64)?;
        let spec = cnn::pipeline_spec(Precision::Quantized)?;
        let served = spec.build(&mut cc)?;
        let (t1, t2, td) = cnn::weight_tensors(Precision::Quantized, &weights);
        let w1 = cc.upload_any(&t1)?;
        let w2 = cc.upload_any(&t2)?;
        let wd = cc.upload_any_matrix(cnn::DENSE_OUTPUTS as u32, cnn::DENSE_INPUTS as u32, &td)?;
        let img = cc.upload_any_matrix(
            cnn::IMG_SIDE,
            cnn::IMG_SIDE,
            &cnn::img_tensor(Precision::Quantized, &images[0]),
        )?;
        let seeds = [
            SourceSeed::any("img", &img),
            SourceSeed::any("w1", &w1),
            SourceSeed::any("w2", &w2),
            SourceSeed::any("wd", &wd),
        ];
        // Warmup run (pool allocations), then the accounted run.
        for accounted in [false, true] {
            let run = served.pipeline().run_seeded(&mut cc, &seeds)?;
            let scores = run.read_any(&mut cc, "scores")?;
            let top = run.read_any(&mut cc, "top")?;
            run.finish(&mut cc);
            let log = cc.take_pass_log();
            if !accounted {
                continue;
            }
            let direct = CnnOutput {
                scores: scores.as_i16().unwrap_or(&[]).to_vec(),
                top: top.as_i16().unwrap_or(&[0])[0],
            };
            if direct != references[0] {
                return Err(ComputeError::BadKernel {
                    message: "a16 direct quantized run diverged from the host reference".into(),
                });
            }
            layers.extend(log.iter().map(|r| A16LayerRow {
                pass: r.kernel.clone(),
                output_texels: r.output_texels,
                ops_per_texel: r.ops_per_texel(),
            }));
        }
    }

    // ---- served waves: quant vs f32 at 1/2/4 workers ------------------
    let mut paths = Vec::new();
    for precision in [Precision::Quantized, Precision::F32] {
        let spec = Arc::new(cnn::pipeline_spec(precision)?);
        let (t1, t2, td) = cnn::weight_tensors(precision, &weights);
        let image_tensors: Vec<Arc<TensorData>> = images
            .iter()
            .map(|img| Arc::new(cnn::img_tensor(precision, img)))
            .collect();
        for workers in [1usize, 2, 4] {
            // Fresh residents per engine so each run pays (and counts)
            // its own per-worker weight uploads.
            let r1 = ResidentInput::new_tensor(t1.clone());
            let r2 = ResidentInput::new_tensor(t2.clone());
            let rd = ResidentInput::new_tensor(td.clone());
            let engine = Engine::builder().workers(workers).build()?;
            let (host_ms, _links, post_links, post_objects, identical) = a11_serve_steady(
                &engine,
                |engine| {
                    let handles: Vec<_> = (0..jobs)
                        .map(|i| {
                            engine.submit_pipeline(
                                PipelineJob::new(&spec)
                                    .source_tensor_shared(&image_tensors[i % IMAGES])
                                    .source_resident(&r1)
                                    .source_resident(&r2)
                                    .source_resident(&rd)
                                    .read("scores")
                                    .read("top"),
                            )
                        })
                        .collect::<Result<_, _>>()?;
                    let mut identical = true;
                    for (i, h) in handles.into_iter().enumerate() {
                        let result = h.wait()?;
                        let served = match precision {
                            Precision::Quantized => CnnOutput {
                                scores: result
                                    .tensor("scores")
                                    .and_then(|t| t.as_i16())
                                    .unwrap_or(&[])
                                    .to_vec(),
                                top: result
                                    .tensor("top")
                                    .and_then(|t| t.as_i16())
                                    .unwrap_or(&[0])[0],
                            },
                            Precision::F32 => CnnOutput {
                                scores: result
                                    .output("scores")
                                    .unwrap_or(&[])
                                    .iter()
                                    .map(|&v| v as i16)
                                    .collect(),
                                top: result.output("top").unwrap_or(&[0.0])[0] as i16,
                            },
                        };
                        identical &= served == references[i % IMAGES];
                    }
                    Ok(identical)
                },
                jobs,
            )?;
            let stats = engine
                .worker_stats()
                .iter()
                .fold(gpes_core::ContextStats::default(), |acc, s| acc.merged(s));
            let snapshot = engine.snapshot();
            engine.shutdown();
            paths.push(A16PathRow {
                precision: precision.tag(),
                workers,
                jobs,
                host_ms,
                images_per_s: jobs as f64 / (host_ms / 1e3),
                identical,
                balanced: snapshot.counters_balanced(),
                post_warmup_links: post_links,
                post_warmup_objects: post_objects,
                f32_transfers: stats.f32_host_transfers,
                quant_transfers: stats.quantized_host_transfers,
            });
        }
    }

    Ok(A16Report { layers, paths })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a16_quant_cnn_serves_bit_identically_without_f32_round_trips() {
        let report = a16_quant_cnn(8).expect("a16");
        assert!(!report.layers.is_empty(), "{}", report.format());
        assert_eq!(report.paths.len(), 6, "{}", report.format());
        assert!(report.identical(), "{}", report.format());
        assert!(report.balanced(), "{}", report.format());
        assert!(report.transfers_consistent(), "{}", report.format());
        for row in &report.paths {
            assert_eq!(row.post_warmup_links, 0, "{}", report.format());
            assert_eq!(row.post_warmup_objects, 0, "{}", report.format());
        }
    }

    #[test]
    fn a13_chaos_heals_without_corruption_or_hangs() {
        let report = a13_chaos(256, 32).expect("a13");
        assert_eq!(report.rows.len(), 4);
        let mut injected_under_chaos = 0u64;
        let mut retried_total = 0u64;
        for row in &report.rows {
            let s = &row.snapshot;
            assert!(!row.hung, "{}", report.format());
            assert!(row.identical(), "{}", report.format());
            assert!(s.counters_balanced(), "{}", report.format());
            assert!(s.completed > 0, "{}", report.format());
            assert!(
                s.recovered_contexts >= 1,
                "every row arms a one-shot context loss: {}",
                report.format()
            );
            assert!(s.queue_depth_high_water <= report.queue_capacity as u64);
            if row.rate > 0.0 {
                injected_under_chaos += s.faults_injected;
            }
            retried_total += s.retried;
        }
        assert!(injected_under_chaos > 0, "{}", report.format());
        assert!(retried_total >= 1, "{}", report.format());
    }

    #[test]
    fn a14_registry_isolates_tenants() {
        let report = a14_registry(256, 12).expect("a14");
        let s = &report.snapshot;
        assert!(report.all_invalid_typed(), "{}", report.format());
        assert!(report.invalid_total >= 8, "{}", report.format());
        assert!(report.identical(), "{}", report.format());
        assert!(report.quota_rejections > 0, "{}", report.format());
        assert_eq!(report.post_warmup_links, 0, "{}", report.format());
        assert_eq!(report.post_warmup_gl_objects, 0, "{}", report.format());
        assert!(s.counters_balanced(), "{}", report.format());
        assert!(s.completed > 0, "{}", report.format());
        for row in &report.rows {
            assert_eq!(row.wrong, 0, "{}", report.format());
            match row.tenant.as_str() {
                "mallory" => {
                    assert_eq!(row.admitted, 0, "{}", report.format());
                    assert_eq!(row.rejected, report.invalid_total, "{}", report.format());
                }
                "noisy" => {
                    assert_eq!(row.admitted, 1, "{}", report.format());
                    assert_eq!(row.rejected, report.quota_rejections, "{}", report.format());
                    assert!(row.jobs >= report.noisy_jobs, "{}", report.format());
                }
                _ => {
                    assert_eq!(row.admitted, 1, "{}", report.format());
                    assert_eq!(row.rejected, 0, "{}", report.format());
                    assert!(row.jobs > 0, "{}", report.format());
                }
            }
        }
        for counters in &s.tenants {
            assert_eq!(
                counters.in_flight,
                0,
                "quiescent engine must hold no permits: {}",
                report.format()
            );
        }
    }

    #[test]
    fn a12_saturation_balances_counters_and_stays_steady() {
        let report = a12_latency_under_load(256, 48).expect("a12");
        let s = &report.snapshot;
        assert!(s.counters_balanced(), "{}", report.format());
        assert!(s.rejected > 0, "saturation must observe QueueFull");
        assert!(s.shed > 0, "expired deadlines must shed");
        assert!(s.completed > 0 && s.failed == 0, "{}", report.format());
        assert!(report.identical, "{}", report.format());
        assert_eq!(report.post_warmup_links, 0, "{}", report.format());
        assert_eq!(report.post_warmup_gl_objects, 0, "{}", report.format());
        assert!(s.queue_depth_high_water <= 8);
        assert!(!s.queue_latency.is_empty() && !s.service_latency.is_empty());
    }

    #[test]
    fn a11_engine_pipelines_are_identical_and_reach_steady_state() {
        let rows = a11_pipeline_serving().expect("a11");
        // 3 workloads × (1 direct + 3 engine-pipeline + 2 per-pass).
        assert_eq!(rows.len(), 18);
        for row in &rows {
            // Every mode must reproduce the direct reference bit-exactly.
            assert!(row.identical, "{}", row.format());
        }
        for row in rows.iter().filter(|r| r.mode == "engine-pipeline") {
            // The CI gate's contract: steady-state pipeline serving
            // links nothing and allocates nothing.
            assert_eq!(row.post_warmup_links, 0, "{}", row.format());
            assert_eq!(row.post_warmup_gl_objects, 0, "{}", row.format());
        }
    }

    #[test]
    fn a10_shared_cache_links_once_process_wide() {
        let rows = a10_serving(512, 12).expect("a10");
        assert_eq!(rows.len(), 10);
        for row in rows.iter().filter(|r| r.cache == "shared") {
            // Shared-cache links equal the mix size at every pool size
            // and nothing links after warmup — the numbers CI gates on.
            let mix_size = if row.mix == "hot3" { 3 } else { 24 };
            assert_eq!(row.links, mix_size, "{}", row.format());
            assert_eq!(row.post_warmup_links, 0, "{}", row.format());
        }
        // Per-context caches at any pool size link at least the whole
        // mix; the outputs were asserted bit-identical inside
        // a10_serving.
        for row in rows.iter().filter(|r| r.cache == "per-context") {
            let mix_size = if row.mix == "hot3" { 3 } else { 24 };
            assert!(row.links >= mix_size, "{}", row.format());
        }
    }

    #[test]
    fn a9_retained_mode_compiles_nothing_in_the_loop() {
        let rows = a9_host_cache(512, 4).expect("a9");
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            let (rebuild, retained) = (&pair[0], &pair[1]);
            assert_eq!(rebuild.workload, retained.workload);
            assert!(
                retained.programs_linked < rebuild.programs_linked,
                "{} vs {}",
                rebuild.format(),
                retained.format()
            );
            assert!(retained.textures_created < rebuild.textures_created);
            assert!(retained.pool_hits > 0);
        }
        // The retained srad loop compiles exactly its two kernels.
        assert_eq!(rows[1].programs_linked, 2);
    }

    #[test]
    fn a15_spmd_is_identical_and_actually_batches() {
        let report = a15_spmd(512, 12).expect("a15");
        assert_eq!(report.vm.len(), 6);
        assert!(report.identical(), "{}", report.format());
        assert!(report.batches_consistent(), "{}", report.format());
        for row in &report.vm {
            assert!(row.fragments_per_s > 0.0, "{}", report.format());
        }
        assert_eq!(report.mix.len(), 2);
        assert_eq!(report.codec.len(), 4);
        for row in &report.codec {
            assert!(row.texels_per_s > 0.0, "{}", report.format());
        }
        assert!(report.serve_identical, "{}", report.format());
        assert!(report.serve_balanced, "{}", report.format());
        assert!(report.serve_spmd_batches > 0, "{}", report.format());
        assert_eq!(report.serve_exec_mode, "spmd8", "{}", report.format());
    }

    #[test]
    fn a8_executors_agree_and_report_throughput() {
        let rows = a8_executor(1024).expect("a8");
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.matches_oracle, "{}", row.format());
            assert!(row.fragments_per_s > 0.0);
        }
    }

    #[test]
    fn a1_bias_rounding_interaction() {
        use gpes_gles2::StoreRounding as SR;
        let rows = a1_pack_bias().expect("a1");
        assert_eq!(rows.len(), 6);
        for row in &rows {
            let expect_broken = row.bias == PackBias::HalfTexel && row.rounding == SR::Nearest;
            if expect_broken {
                // (b+0.5)/255 sits exactly on the round-to-nearest
                // boundary: every byte except 255 shifts up by one.
                assert_eq!(row.mismatches, 255, "{}", row.format());
            } else {
                assert_eq!(row.mismatches, 0, "{}", row.format());
            }
        }
        // Margins: half-texel 0.5, quarter-texel 0.25, paper δ ≈ 0.0039.
        let margin = |bias| {
            rows.iter()
                .find(|r| r.bias == bias)
                .expect("row")
                .min_margin
        };
        assert!(margin(PackBias::HalfTexel) > 0.4);
        assert!((0.2..0.3).contains(&margin(PackBias::QuarterTexel)));
        assert!(margin(PackBias::PaperDelta) < 0.01);
    }

    #[test]
    fn a4_all_readback_paths_agree() {
        let result = a4_readback(500).expect("a4");
        assert!(result.all_equal);
        assert_eq!(result.direct_passes, 1);
        assert_eq!(result.copy_shader_passes, 2, "kernel + copy pass");
    }

    #[test]
    fn a3_produces_throughput_numbers() {
        let rows = a3_dispatch(2048).expect("a3");
        assert_eq!(rows.len(), 3);
        for row in rows {
            assert!(row.fragments_per_s > 0.0);
        }
    }

    #[test]
    fn a6_half_float_is_not_enough() {
        let rows = a6_half_float(512).expect("a6");
        assert_eq!(rows.len(), 3);
        let exact = &rows[0];
        let vc4 = &rows[1];
        let fp16 = &rows[2];
        // Paper path on an exact GPU: bit-exact.
        assert_eq!(exact.min_bits, 23, "{}", exact.format_row());
        // Paper path on the VideoCore-like model: ≈15 bits (§V).
        assert!((12..23).contains(&vc4.min_bits), "{}", vc4.format_row());
        // fp16 extension: ≤10 bits of mantissa and not core ES 2 —
        // "neither enough nor portable".
        assert!(fp16.min_bits <= 10, "{}", fp16.format_row());
        assert!(
            fp16.mean_bits < vc4.mean_bits,
            "fp16 must be worse than the paper path"
        );
        assert!(!fp16.core_es2 && exact.core_es2);
        assert!(fp16.max_magnitude < 1.0e5);
    }

    #[test]
    fn a7_packing_reduces_per_value_work() {
        let rows = a7_channel_packing(512).expect("a7");
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.correct, "{}", row.format_row());
        }
        // Packed variants shade fewer fragments per value…
        assert!(rows[1].invocations_per_value < rows[0].invocations_per_value * 0.3);
        assert!(rows[3].invocations_per_value < rows[2].invocations_per_value * 0.6);
        // …and fetch fewer texels per value.
        assert!(rows[1].fetches_per_value < rows[0].fetches_per_value);
        assert!(rows[3].fetches_per_value < rows[2].fetches_per_value);
    }

    #[test]
    fn a5_both_formats_compute_correctly() {
        let rows = a5_strzodka_baseline(501).expect("a5");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.correct, "{}", row.format_row());
            assert!(row.alu_ops_per_value > 0.0);
        }
        // The §VI trade-off table.
        let paper = &rows[0];
        let baseline = &rows[1];
        assert!(paper.memcpy_compatible && !baseline.memcpy_compatible);
        assert!(paper.exact_bits > baseline.exact_bits);
        assert!(baseline.values_per_texel > paper.values_per_texel);
    }
}
