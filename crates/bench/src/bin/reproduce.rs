//! `reproduce` — regenerates every table and figure of the paper's
//! evaluation section on the simulated platform.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p gpes-bench --bin reproduce -- [e1|e2|f1|f2|a1|a3|a4|…|a11|sweep|all]
//! ```

use gpes_bench::{ablations, e1, e2, figures};

fn heading(title: &str) {
    println!();
    println!("==== {title} ====");
}

fn run_e1() -> Result<(), Box<dyn std::error::Error>> {
    heading("E1: §V speedup table (modelled Raspberry Pi 1, measured shader profiles)");
    println!("workloads: sum on 2 x 1Mi elements; gemm on 1024x1024 matrices");
    println!("(functional validation runs on the simulator at calibration sizes)");
    for row in e1::run(1 << 20, 1024)? {
        println!("{}", row.format());
    }
    println!();
    println!("note: absolute times are analytic estimates; the paper's exact");
    println!("experimental conditions are under-specified (see EXPERIMENTS.md).");
    println!("The reproduced *shape*: the GPU wins on every configuration and");
    println!("integer speedups exceed floating-point speedups.");
    Ok(())
}

fn run_sweep() -> Result<(), Box<dyn std::error::Error>> {
    heading("E1 sweep: sum (int) across sizes — locating the crossover");
    for row in e1::sum_sweep(&[256, 1024, 4096, 16384, 65536, 1 << 18, 1 << 20, 1 << 22])? {
        println!("{}", row.format());
    }
    heading("E1 sweep: sgemm (fp) across sizes");
    for row in e1::gemm_sweep(&[16, 32, 64, 128, 256, 512, 1024])? {
        println!("{}", row.format());
    }
    Ok(())
}

fn run_e2() -> Result<(), Box<dyn std::error::Error>> {
    heading("E2: §V precision (mantissa agreement, 23 = bit-exact fp32)");
    for row in e2::run(4096)? {
        println!("{}", row.format());
    }
    let samples = gpes_kernels::data::random_f32(4096, 299, 1.0e20);
    println!(
        "host-side transform exact on 4096 random values: {}",
        e2::host_transform_exact(&samples)
    );
    println!();
    println!("paper: \"accurate … within the 15 most significant bits of the");
    println!("mantissa\" on the GPU; \"the same transformations on the CPU are");
    println!("precise\" — reproduced by Vc4Sfu vs Exact rows above.");
    Ok(())
}

fn run_f1() -> Result<(), Box<dyn std::error::Error>> {
    heading("F1: the graphics pipeline of Figure 1, as stage counters");
    let stats = figures::pipeline_trace(1000)?;
    println!("{}", figures::format_pipeline(&stats));
    Ok(())
}

fn run_f2() {
    heading("F2: Figure 2 — CPU (IEEE 754) vs GPU texel byte layout");
    println!(
        "{:>16}  {:<22} rotated texel bytes",
        "value", "ieee bytes (LE)"
    );
    for &v in figures::F2_SAMPLES {
        println!("{}", figures::float_layout_row(v));
    }
}

fn run_a1() -> Result<(), Box<dyn std::error::Error>> {
    heading("A1/A2: output byte bias x framebuffer store rounding");
    for row in ablations::a1_pack_bias()? {
        println!("{}", row.format());
    }
    Ok(())
}

fn run_a3() -> Result<(), Box<dyn std::error::Error>> {
    heading("A3: fragment dispatch parallelism (simulator host throughput)");
    for row in ablations::a3_dispatch(1 << 16)? {
        println!("{}", row.format());
    }
    Ok(())
}

fn run_a4() -> Result<(), Box<dyn std::error::Error>> {
    heading("A4: readback strategies (workaround #7)");
    let result = ablations::a4_readback(1000)?;
    println!(
        "all strategies bit-identical: {}\n\
         kernel-ordering / direct-FBO passes: {}\n\
         copy-shader passes: {} (one extra full-screen pass)",
        result.all_equal, result.direct_passes, result.copy_shader_passes
    );
    Ok(())
}

fn run_a5() -> Result<(), Box<dyn std::error::Error>> {
    heading("A5: §VI related work — paper u32 codec vs Strzodka VMV'02 virtual-16");
    for row in ablations::a5_strzodka_baseline(4096)? {
        println!("{}", row.format_row());
    }
    println!();
    println!("paper §VI: the baseline's custom split format costs a per-element");
    println!("CPU transformation both ways and caps precision at 16 bits, while");
    println!("the paper's 2's-complement codec uploads unmodified integers and");
    println!("keeps 24 exact bits — at half the texel density, float included.");
    Ok(())
}

fn run_a6() -> Result<(), Box<dyn std::error::Error>> {
    heading("A6: §II.5-6 — vendor half-float extensions vs the paper's packing");
    for row in ablations::a6_half_float(4096)? {
        println!("{}", row.format_row());
    }
    println!();
    println!("paper: fp16 extensions are \"neither enough nor portable\" — the");
    println!("extension path needs two vendor extensions and keeps 10 mantissa");
    println!("bits with a 65504 range cap; the paper's RGBA8 packing runs on");
    println!("core ES 2 and keeps 15-23 bits at full f32 range.");
    Ok(())
}

fn run_a7() -> Result<(), Box<dyn std::error::Error>> {
    heading("A7: channel packing (the §V 'not optimised' headroom)");
    for row in ablations::a7_channel_packing(4096)? {
        println!("{}", row.format_row());
    }
    println!();
    println!("packing all texel channels cuts fragment invocations and texture");
    println!("fetches per value — one of the optimisations §V says would");
    println!("increase performance further.");
    Ok(())
}

fn run_a8() -> Result<(), Box<dyn std::error::Error>> {
    heading("A8: shader executor — bytecode VM vs tree-walking interpreter");
    for row in ablations::a8_executor(1 << 13)? {
        println!("{}", row.format());
    }
    println!();
    println!("the VM lowers each linked shader once to slot-addressed bytecode;");
    println!("the tree-walker stays available as the differential-testing oracle");
    println!("(outputs and op profiles are asserted bit-identical).");
    Ok(())
}

fn run_a9() -> Result<(), Box<dyn std::error::Error>> {
    heading("A9: host compile/bind split — rebuild-per-pass vs retained pipeline");
    for row in ablations::a9_host_cache(1 << 12, 24)? {
        println!("{}", row.format());
    }
    println!();
    println!("`rebuild/pass` re-generates and links shaders inside the iteration");
    println!("loop (the pre-split idiom, program cache off); `retained` declares");
    println!("the dag once through Pipeline: in-loop compiles drop to zero and");
    println!("steady-state iteration allocates no GL objects (pool hits instead).");
    Ok(())
}

fn run_a10() -> Result<(), Box<dyn std::error::Error>> {
    heading("A10: concurrent serving — shared vs per-context program caches");
    for row in ablations::a10_serving(1 << 12, 48)? {
        println!("{}", row.format());
    }
    println!();
    println!("an Engine serves kernel mixes from worker pools; with the");
    println!("process-wide shared cache each kernel links exactly once");
    println!("(post-warmup links stay 0 at every pool size), while");
    println!("per-context caches relink on every worker — visible in the");
    println!("wide24 wall-clock even on one core. All served outputs are");
    println!("asserted bit-identical to direct serial dispatch. jobs/s");
    println!("scaling across workers tracks physical cores; counters are");
    println!("host-independent and are what CI gates on.");
    Ok(())
}

fn run_a11() -> Result<(), Box<dyn std::error::Error>> {
    heading("A11: pipeline serving — engine jobs vs direct runs vs per-pass DAGs");
    for row in ablations::a11_pipeline_serving()? {
        println!("{}", row.format());
    }
    println!();
    println!("whole retained pipelines (fft/srad/reduce) served as single engine");
    println!("jobs: workers cache the built pipeline by spec hash, so the");
    println!("steady-state wave links zero programs and creates zero GL objects");
    println!("(the rows CI gates on), and every served output is asserted");
    println!("bit-identical to the direct retained-Pipeline run. The per-pass");
    println!("rows flatten the same passes into Submission DAGs — correct, but");
    println!("every intermediate of the DAG is live at once, so deep chains");
    println!("(fft: 12 same-shape steps) overflow the texture-pool bucket and");
    println!("keep allocating every wave (the nonzero objects column) where the");
    println!("retained pipeline ping-pongs in two or three buffers.");
    Ok(())
}

fn run_a12() -> Result<(), Box<dyn std::error::Error>> {
    heading("A12: serving latency under saturation — bounded admission observed");
    let report = ablations::a12_latency_under_load(1 << 12, 192)?;
    println!("{}", report.format());
    println!();
    println!("an open-loop producer floods a 2-worker engine past its queue");
    println!("bound: admission rejects with QueueFull instead of blocking,");
    println!("expired deadlines are shed at dequeue before any GPU work, and");
    println!("cancellation revokes queued jobs. The snapshot's outcome counters");
    println!("balance exactly (submitted = completed + rejected + shed +");
    println!("cancelled + aborted) and the queue/service histograms separate");
    println!("time-waiting from time-serving. CI gates on the counter balance");
    println!("and the zero post-warmup links/objects rows; the timing line is");
    println!("advisory (host-dependent).");
    Ok(())
}

fn run_a13() -> Result<(), Box<dyn std::error::Error>> {
    heading("A13: chaos serving — deterministic fault injection, self-healing gated");
    let report = ablations::a13_chaos(1 << 12, 96)?;
    println!("{}", report.format());
    println!();
    println!("the a12 open-loop load re-run under seeded per-worker FaultPlans:");
    println!("every failure site (link, alloc, upload, framebuffer, readback)");
    println!("armed at the row's rate, plus a one-shot context loss a few");
    println!("operations in. Workers retry transient failures and rebuild lost");
    println!("contexts (re-adopting shared programs, re-uploading residents");
    println!("lazily), so completed outputs stay bit-identical to the");
    println!("fault-free reference at every rate — chaos may slow or fail jobs");
    println!("with typed errors, never corrupt them. CI gates on identical");
    println!("outputs, balanced counters (a retried job still counts once), at");
    println!("least one recovered context per row, injected faults under");
    println!("nonzero rates, and no hung waiters.");
    Ok(())
}

fn run_a14() -> Result<(), Box<dyn std::error::Error>> {
    heading("A14: multi-tenant dynamic kernel registry — admission and quotas gated");
    let report = ablations::a14_registry(1 << 10, 24)?;
    println!("{}", report.format());
    println!();
    println!("five tenants share one 2-worker engine. alpha/beta/gamma register");
    println!("kernels from GLSL source through the staged admission pipeline");
    println!("(signature -> parse -> Appendix-A strictness -> sema) and serve");
    println!("steady waves; mallory hammers admission with garbage, undeclared");
    println!("identifiers, non-constant loops and oversized outputs; noisy is");
    println!("quota-capped at two in-flight jobs and floods from its own thread.");
    println!("CI gates on: every invalid source rejected with a typed error and");
    println!("zero panics, every dynamically-registered output bit-identical to");
    println!("the compiled-in path, at least one typed quota rejection, zero");
    println!("post-warmup links/objects (the hostile tenants cost their");
    println!("neighbours nothing), and balanced counters.");
    Ok(())
}

fn run_a15() -> Result<(), Box<dyn std::error::Error>> {
    heading("A15: SPMD lane VM — scalar vs spmd4 vs spmd8, codec slice paths");
    let report = ablations::a15_spmd(1 << 13, 48)?;
    println!("{}", report.format());
    println!();
    println!("the SPMD VM shades band fragments in lockstep lanes over one");
    println!("shared bytecode walk, with masked divergence for branches and");
    println!("discard; outputs are bit-identical to the scalar VM and the");
    println!("tree-walker (gated above and by the differential suites). The");
    println!("codec rows compare the old per-value encode/decode loops with");
    println!("the single-pass slice paths the buffers now call. CI gates on");
    println!("the identical/balanced/spmd_batches columns; throughput and");
    println!("speedup numbers are advisory on shared single-core CI hosts.");
    Ok(())
}

fn run_a16() -> Result<(), Box<dyn std::error::Error>> {
    heading("A16: quantized CNN serving — u8/i16 end-to-end, quant vs f32 paths");
    let report = ablations::a16_quant_cnn(24)?;
    println!("{}", report.format());
    println!();
    println!("a 16x16 u8 image runs conv-pool-conv-pool-dense-max entirely");
    println!("GPU-side: activations stay u8 textures between passes, weights");
    println!("are i16 ResidentInputs uploaded once per worker, and the scores");
    println!("come back as i16 — the f32_transfers column counts every f32");
    println!("tensor that crossed the host boundary and must read 0 on the");
    println!("quantized rows. CI gates on bit-identity to the host reference,");
    println!("balanced counters, zero post-warmup links/objects and the");
    println!("transfer contract; images/s is advisory on single-core hosts");
    println!("(worker counts mostly shift queueing, not throughput).");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match what.as_str() {
        "e1" => run_e1()?,
        "sweep" => run_sweep()?,
        "e2" => run_e2()?,
        "f1" => run_f1()?,
        "f2" => run_f2(),
        "a1" | "a2" => run_a1()?,
        "a3" => run_a3()?,
        "a4" => run_a4()?,
        "a5" => run_a5()?,
        "a6" => run_a6()?,
        "a7" => run_a7()?,
        "a8" => run_a8()?,
        "a9" => run_a9()?,
        "a10" => run_a10()?,
        "a11" => run_a11()?,
        "a12" => run_a12()?,
        "a13" => run_a13()?,
        "a14" => run_a14()?,
        "a15" => run_a15()?,
        "a16" => run_a16()?,
        "all" => {
            run_e1()?;
            run_sweep()?;
            run_e2()?;
            run_f1()?;
            run_f2();
            run_a1()?;
            run_a3()?;
            run_a4()?;
            run_a5()?;
            run_a6()?;
            run_a7()?;
            run_a8()?;
            run_a9()?;
            run_a10()?;
            run_a11()?;
            run_a12()?;
            run_a13()?;
            run_a14()?;
            run_a15()?;
            run_a16()?;
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use e1|sweep|e2|f1|f2|a1|a3|a4|a5|a6|a7|a8|a9|a10|a11|a12|a13|a14|a15|a16|all"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}
