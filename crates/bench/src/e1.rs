//! Experiment E1 — the paper's §V speedup table.
//!
//! Method: run each benchmark *functionally* on the simulator at a
//! calibration size, validate against the CPU reference, and take the
//! **measured per-element operation profile** from the interpreter. Scale
//! that profile to the paper-scale workload (per-element shader work is
//! size-independent for `sum` and linear in `K` for `sgemm`), then feed
//! it to the `gpes-perf` device models alongside the counted CPU
//! workload. Absolute times are modelled; the profile driving them is
//! measured, not assumed.

use gpes_core::{ComputeContext, ComputeError, ScalarType};
use gpes_glsl::exec::OpProfile;
use gpes_kernels::{data, sgemm, sum};
use gpes_perf::{
    estimate_gpu, gpu_run_from_passes, readback_bytes_for, upload_bytes_for, Arm11Cpu, CpuWorkload,
    GpuEstimate, GpuRun, Vc4Gpu,
};

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Benchmark label, e.g. `"sum (int)"`.
    pub label: String,
    /// Problem size description.
    pub size: String,
    /// Modelled CPU seconds.
    pub cpu_s: f64,
    /// Modelled GPU breakdown.
    pub gpu: GpuEstimate,
    /// Whether the calibration run's output matched the CPU reference.
    pub validated: bool,
    /// The paper's reported speedup, where applicable.
    pub paper_speedup: Option<f64>,
}

impl E1Row {
    /// GPU-over-CPU speedup.
    pub fn speedup(&self) -> f64 {
        self.cpu_s / self.gpu.total()
    }

    /// Formats the row for the harness output.
    pub fn format(&self) -> String {
        let paper = match self.paper_speedup {
            Some(p) => format!("{p:.1}x"),
            None => "-".into(),
        };
        format!(
            "{:<12} {:<12} cpu {:>10.2} ms   gpu {:>9.2} ms   speedup {:>6.2}x   paper {:>5}   validated {}",
            self.label,
            self.size,
            self.cpu_s * 1e3,
            self.gpu.total() * 1e3,
            self.speedup(),
            paper,
            if self.validated { "yes" } else { "NO" },
        )
    }
}

fn scale_profile(profile: &OpProfile, factor: f64) -> OpProfile {
    let scale = |v: u64| (v as f64 * factor).round() as u64;
    OpProfile {
        alu_ops: scale(profile.alu_ops),
        sfu_ops: scale(profile.sfu_ops),
        tex_fetches: scale(profile.tex_fetches),
        branches: scale(profile.branches),
        calls: scale(profile.calls),
        invocations: scale(profile.invocations),
    }
}

/// Calibrates `sum` for one element type and scales to `target_n`.
fn sum_row<FB, FW>(
    label: &str,
    target_n: usize,
    calib_n: usize,
    build_and_check: FB,
    workload: FW,
    paper_speedup: f64,
) -> Result<E1Row, ComputeError>
where
    FB: FnOnce(
        &mut ComputeContext,
        usize,
    ) -> Result<(bool, Vec<gpes_core::PassRecord>), ComputeError>,
    FW: FnOnce(usize) -> CpuWorkload,
{
    let mut cc = ComputeContext::new(256, 256)?;
    let (validated, passes) = build_and_check(&mut cc, calib_n)?;
    let run_small = gpu_run_from_passes(&passes, 1, 0, 0);
    let factor = target_n as f64 / calib_n as f64;
    let run = GpuRun {
        fs_profile: scale_profile(&run_small.fs_profile, factor),
        passes: 1,
        programs_compiled: 1,
        upload_bytes: 2 * upload_bytes_for(ScalarType::U32, target_n),
        readback_bytes: readback_bytes_for(target_n),
        ..GpuRun::default()
    };
    let gpu = estimate_gpu(&Vc4Gpu::raspberry_pi1(), &run);
    let cpu = Arm11Cpu::raspberry_pi1_baseline();
    Ok(E1Row {
        label: label.into(),
        size: format!("n={target_n}"),
        cpu_s: cpu.time(&workload(target_n)),
        gpu,
        validated,
        paper_speedup: Some(paper_speedup),
    })
}

/// Calibrates sgemm at two small sizes and extrapolates per-fragment work
/// linearly in `K` to the target square size.
fn sgemm_row(
    label: &str,
    float: bool,
    target: usize,
    paper_speedup: f64,
) -> Result<E1Row, ComputeError> {
    let (k1, k2) = (8usize, 24usize);
    let mut profiles = Vec::new();
    let mut validated = true;
    for &k_dim in &[k1, k2] {
        let mut cc = ComputeContext::new(64, 64)?;
        let frags = k_dim * k_dim;
        if float {
            let a = data::random_f32(frags, 101, 2.0);
            let b = data::random_f32(frags, 102, 2.0);
            let c = data::random_f32(frags, 103, 2.0);
            let ga = cc.upload_matrix(k_dim as u32, k_dim as u32, &a)?;
            let gb = cc.upload_matrix(k_dim as u32, k_dim as u32, &b)?;
            let gc = cc.upload_matrix(k_dim as u32, k_dim as u32, &c)?;
            let kern = sgemm::build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.5)?;
            let gpu = cc.run_f32(&kern)?;
            let cpu = sgemm::cpu_reference_f32(k_dim, k_dim, k_dim, &a, &b, &c, 1.0, 0.5);
            validated &= gpu == cpu;
        } else {
            let a = data::random_i32(frags, 104, 128);
            let b = data::random_i32(frags, 105, 128);
            let ga = cc.upload_matrix(k_dim as u32, k_dim as u32, &a)?;
            let gb = cc.upload_matrix(k_dim as u32, k_dim as u32, &b)?;
            let kern = sgemm::build_i32(&mut cc, &ga, &gb)?;
            let gpu: Vec<i32> = cc.run_and_read(&kern)?;
            let cpu = sgemm::cpu_reference_i32(k_dim, k_dim, k_dim, &a, &b);
            validated &= gpu == cpu;
        }
        let passes = cc.take_pass_log();
        let run = gpu_run_from_passes(&passes, 1, 0, 0);
        profiles.push((k_dim as f64, frags as f64, run.fs_profile));
    }

    // Per-fragment work is a + b·K: fit from the two calibration points,
    // then extrapolate to the target (fragments = target², K = target).
    let per_frag = |field: fn(&OpProfile) -> u64| {
        let (ka, fa, pa) = &profiles[0];
        let (kb, fb, pb) = &profiles[1];
        let ya = field(pa) as f64 / fa;
        let yb = field(pb) as f64 / fb;
        let slope = (yb - ya) / (kb - ka);
        let intercept = ya - slope * ka;
        move |k: f64| intercept + slope * k
    };
    let t = target as f64;
    let frags = t * t;
    let fs_profile = OpProfile {
        alu_ops: (per_frag(|p| p.alu_ops)(t) * frags) as u64,
        sfu_ops: (per_frag(|p| p.sfu_ops)(t) * frags) as u64,
        tex_fetches: (per_frag(|p| p.tex_fetches)(t) * frags) as u64,
        branches: (per_frag(|p| p.branches)(t) * frags) as u64,
        calls: (per_frag(|p| p.calls)(t) * frags) as u64,
        invocations: frags as u64,
    };
    let matrices = if float { 3 } else { 2 };
    let run = GpuRun {
        fs_profile,
        passes: 1,
        programs_compiled: 1,
        upload_bytes: matrices * upload_bytes_for(ScalarType::F32, target * target),
        readback_bytes: readback_bytes_for(target * target),
        ..GpuRun::default()
    };
    let gpu = estimate_gpu(&Vc4Gpu::raspberry_pi1(), &run);
    let cpu = Arm11Cpu::raspberry_pi1_baseline();
    Ok(E1Row {
        label: label.into(),
        size: format!("{target}x{target}"),
        cpu_s: cpu.time(&sgemm::cpu_workload(target, float)),
        gpu,
        validated,
        paper_speedup: Some(paper_speedup),
    })
}

/// Runs the full E1 experiment at the paper-scale sizes.
///
/// # Errors
///
/// Propagates simulator failures (none are expected).
pub fn run(sum_n: usize, gemm_size: usize) -> Result<Vec<E1Row>, ComputeError> {
    let calib = 4096usize.min(sum_n);
    let mut rows = Vec::new();
    rows.push(sum_row(
        "sum (int)",
        sum_n,
        calib,
        |cc, n| {
            let a = data::random_u32(n, 106, 1 << 22);
            let b = data::random_u32(n, 107, 1 << 22);
            let ga = cc.upload(&a)?;
            let gb = cc.upload(&b)?;
            let k = sum::build_u32(cc, &ga, &gb)?;
            let gpu: Vec<u32> = cc.run_and_read(&k)?;
            let ok = gpu == sum::cpu_reference(&a, &b);
            Ok((ok, cc.take_pass_log()))
        },
        sum::cpu_workload_int,
        7.2,
    )?);
    rows.push(sum_row(
        "sum (fp)",
        sum_n,
        calib,
        |cc, n| {
            let a = data::random_f32(n, 108, 1000.0);
            let b = data::random_f32(n, 109, 1000.0);
            let ga = cc.upload(&a)?;
            let gb = cc.upload(&b)?;
            let k = sum::build_f32(cc, &ga, &gb)?;
            let gpu = cc.run_f32(&k)?;
            let ok = gpu == sum::cpu_reference(&a, &b);
            Ok((ok, cc.take_pass_log()))
        },
        sum::cpu_workload_f32,
        6.5,
    )?);
    rows.push(sgemm_row("sgemm (int)", false, gemm_size, 6.5)?);
    rows.push(sgemm_row("sgemm (fp)", true, gemm_size, 6.3)?);
    Ok(rows)
}

/// Size sweep over square gemm dimensions — exposes where the modelled
/// speedup passes through the paper's 6.3–6.5× band (the paper's
/// "matrix sizes of 1024 … elements" is ambiguous between 32×32 and
/// 1024×1024; see EXPERIMENTS.md).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn gemm_sweep(sizes: &[usize]) -> Result<Vec<E1Row>, ComputeError> {
    let mut rows = Vec::new();
    for &size in sizes {
        let mut row = sgemm_row("sgemm (fp)", true, size, 6.3)?;
        row.paper_speedup = None;
        rows.push(row);
    }
    Ok(rows)
}

/// Size sweep used to locate the GPU/CPU crossover for `sum`.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn sum_sweep(sizes: &[usize]) -> Result<Vec<E1Row>, ComputeError> {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut row = sum_row(
            "sum (int)",
            n,
            n.min(4096),
            |cc, cn| {
                let a = data::random_u32(cn, 110, 1 << 22);
                let b = data::random_u32(cn, 111, 1 << 22);
                let ga = cc.upload(&a)?;
                let gb = cc.upload(&b)?;
                let k = sum::build_u32(cc, &ga, &gb)?;
                let gpu: Vec<u32> = cc.run_and_read(&k)?;
                let ok = gpu == sum::cpu_reference(&a, &b);
                Ok((ok, cc.take_pass_log()))
            },
            sum::cpu_workload_int,
            7.2,
        )?;
        row.paper_speedup = None;
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_rows_are_validated_and_gpu_wins_at_scale() {
        let rows = run(1 << 20, 256).expect("e1");
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.validated, "{} failed validation", row.label);
            assert!(
                row.speedup() > 1.0,
                "{} should favour the GPU at paper scale: {}",
                row.label,
                row.format()
            );
        }
        // Ordering property the paper reports: integer speedups exceed
        // floating-point speedups for the same benchmark.
        assert!(rows[0].speedup() > rows[1].speedup(), "sum int vs fp");
        assert!(rows[2].speedup() > rows[3].speedup(), "sgemm int vs fp");
    }

    #[test]
    fn sweep_shows_overhead_dominated_small_sizes() {
        let rows = sum_sweep(&[256, 1 << 20]).expect("sweep");
        assert!(rows[0].speedup() < rows[1].speedup());
    }
}
