//! # gpes-bench — experiment harness for the DATE 2016 reproduction
//!
//! Each module regenerates one artefact of the paper's evaluation (see
//! `DESIGN.md` §4 for the index):
//!
//! * [`e1`] — the §V speedup table (`sum`/`sgemm` × int/fp),
//! * [`e2`] — the §V precision result (15-mantissa-bit accuracy),
//! * [`figures`] — Figure 1 (pipeline trace) and Figure 2 (byte layout),
//! * [`ablations`] — A1 pack-bias, A3 dispatch scaling, A4 readback paths.
//!
//! The `reproduce` binary prints them all:
//!
//! ```text
//! cargo run --release -p gpes-bench --bin reproduce -- all
//! ```

#![warn(missing_docs)]

pub mod ablations;
pub mod e1;
pub mod e2;
pub mod figures;
