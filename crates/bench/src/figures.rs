//! Figures F1 and F2 as executable demonstrations.

use gpes_core::codec::float32;
use gpes_core::{ComputeContext, ComputeError, Kernel, ScalarType};
use gpes_gles2::DrawStats;

/// F1 — the graphics pipeline of Figure 1, observed through stage
/// counters of one GPGPU draw: vertex shading → primitive assembly →
/// rasterisation → fragment shading → framebuffer conversion.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn pipeline_trace(n: usize) -> Result<DrawStats, ComputeError> {
    let mut cc = ComputeContext::new(128, 128)?;
    let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let arr = cc.upload(&data)?;
    let k = Kernel::builder("trace")
        .input("x", &arr)
        .output(ScalarType::F32, n)
        .body("return fetch_x(idx) * 2.0;")
        .build(&mut cc)?;
    let _ = cc.run_f32(&k)?;
    Ok(cc.pass_log()[0].stats)
}

/// Renders F1 stage counters as the familiar pipeline diagram.
pub fn format_pipeline(stats: &DrawStats) -> String {
    format!(
        "vertex shader      : {:>8} invocations ({} ALU ops)\n\
         primitive assembly : {:>8} triangles in, {} rasterised\n\
         rasteriser         : {:>8} fragments covered\n\
         fragment shader    : {:>8} invocations ({} ALU, {} SFU, {} fetches)\n\
         framebuffer        : {:>8} pixels written ({} discarded)",
        stats.vertices_shaded,
        stats.vs_profile.alu_ops,
        stats.triangles_in,
        stats.triangles_rasterized,
        stats.fragments_shaded,
        stats.fragments_shaded,
        stats.fs_profile.alu_ops,
        stats.fs_profile.sfu_ops,
        stats.fs_profile.tex_fetches,
        stats.pixels_written,
        stats.fragments_discarded,
    )
}

/// F2 — one line of the Figure 2 byte-layout table for a value: the IEEE
/// 754 bytes next to the rotated texture bytes.
pub fn float_layout_row(v: f32) -> String {
    let ieee = v.to_bits().to_le_bytes();
    let rotated = float32::encode(v);
    format!(
        "{v:>16e}  ieee[{:02x} {:02x} {:02x} {:02x}]  texel[{:02x} {:02x} {:02x} {:02x}]  (b3=exponent {}, sign in b2 bit7: {})",
        ieee[0],
        ieee[1],
        ieee[2],
        ieee[3],
        rotated[0],
        rotated[1],
        rotated[2],
        rotated[3],
        rotated[3],
        rotated[2] >> 7,
    )
}

/// Sample values used by the F2 demonstration.
pub const F2_SAMPLES: &[f32] = &[
    1.0,
    -1.0,
    0.5,
    -2.0,
    255.0,
    std::f32::consts::PI,
    -6.25e-3,
    1.0e20,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_trace_counts_are_consistent() {
        let stats = pipeline_trace(100).expect("trace");
        assert_eq!(stats.vertices_shaded, 6);
        assert_eq!(stats.triangles_in, 2);
        assert_eq!(stats.triangles_rasterized, 2);
        assert_eq!(stats.fragments_shaded, 100);
        assert_eq!(stats.pixels_written, 100);
        let rendered = format_pipeline(&stats);
        assert!(rendered.contains("vertex shader"));
        assert!(rendered.contains("framebuffer"));
    }

    #[test]
    fn f2_rows_show_rotation() {
        // 1.0: IEEE LE bytes [00 00 80 3f] → texel [00 00 00 7f]
        let row = float_layout_row(1.0);
        assert!(row.contains("texel[00 00 00 7f]"), "{row}");
        // -2.0: sign bit moves into b2's top bit; exponent byte becomes 0x80.
        let row = float_layout_row(-2.0);
        assert!(row.contains("texel[00 00 80 80]"), "{row}");
        assert!(row.contains("sign in b2 bit7: 1"), "{row}");
    }
}
