//! A3 bench target: fragment dispatch scaling across simulator threads —
//! the stand-in for QPU data parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpes_core::ComputeContext;
use gpes_gles2::Dispatch;
use gpes_kernels::{data, sum};
use std::hint::black_box;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_dispatch");
    group.sample_size(10);
    let n = 1usize << 14;
    let a = data::random_f32(n, 20, 100.0);
    let b = data::random_f32(n, 21, 100.0);
    for (label, dispatch) in [
        ("serial", Dispatch::Serial),
        ("threads2", Dispatch::Parallel(2)),
        ("threads4", Dispatch::Parallel(4)),
        ("threads8", Dispatch::Parallel(8)),
    ] {
        group.bench_with_input(BenchmarkId::new("sum_fp", label), &dispatch, |bench, &d| {
            let mut cc = ComputeContext::new(256, 256).expect("context");
            cc.set_dispatch(d);
            let ga = cc.upload(&a).expect("a");
            let gb = cc.upload(&b).expect("b");
            let k = sum::build_f32(&mut cc, &ga, &gb).expect("kernel");
            bench.iter(|| black_box(cc.run_f32(&k).expect("run")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
