//! A6 bench target: the fp16 extension data path vs the paper's RGBA8
//! packing, plus the raw half-float conversion cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpes_bench::ablations;
use gpes_gles2::half;
use gpes_kernels::data;
use std::hint::black_box;

fn bench_half_float(c: &mut Criterion) {
    let mut group = c.benchmark_group("a6_halffloat");
    group.sample_size(10);

    group.bench_function("a6_comparison_512", |bench| {
        bench.iter(|| black_box(ablations::a6_half_float(512).expect("a6")));
    });

    let values = data::random_f32(4096, 661, 1.0e4);
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("f32_to_f16_narrowing", |bench| {
        bench.iter(|| {
            let mut acc = 0u32;
            for &v in &values {
                acc = acc.wrapping_add(half::f32_to_f16_bits(v) as u32);
            }
            black_box(acc)
        });
    });
    group.bench_function("f16_to_f32_widening", |bench| {
        let halves: Vec<u16> = values.iter().map(|&v| half::f32_to_f16_bits(v)).collect();
        bench.iter(|| {
            let mut acc = 0.0f32;
            for &h in &halves {
                acc += half::f16_bits_to_f32(h);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_half_float);
criterion_main!(benches);
