//! GLSL interpreter throughput: arithmetic loop inside one fragment
//! invocation (isolates the interpreter from the rasteriser).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpes_glsl::exec::{FloatModel, NoTextures};
use gpes_glsl::interp::Interpreter;
use gpes_glsl::{compile, ShaderKind};
use std::hint::black_box;

fn bench_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_loop");
    group.sample_size(20);
    for &iters in &[100u32, 1000] {
        let src = format!(
            "precision highp float;\n\
             void main() {{\n\
               float s = 0.0;\n\
               for (int i = 0; i < {iters}; i++) {{\n\
                 s += fract(float(i) * 0.37) * 1.5 - 0.25;\n\
               }}\n\
               gl_FragColor = vec4(s);\n\
             }}"
        );
        let shader = compile(ShaderKind::Fragment, &src).expect("compile");
        group.throughput(Throughput::Elements(iters as u64));
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, _| {
            let tex = NoTextures;
            let mut interp =
                Interpreter::with_model(&shader, &tex, FloatModel::Exact).expect("interp");
            b.iter(|| {
                interp.run_main().expect("run");
                black_box(interp.frag_color())
            });
        });
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_float_models");
    group.sample_size(20);
    let src = "precision highp float;\n\
               void main() {\n\
                 float s = 1.0;\n\
                 for (int i = 0; i < 200; i++) { s = exp2(log2(s + 1.0)); }\n\
                 gl_FragColor = vec4(s / 256.0);\n\
               }";
    let shader = compile(ShaderKind::Fragment, src).expect("compile");
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{model:?}")),
            &model,
            |b, &model| {
                let tex = NoTextures;
                let mut interp = Interpreter::with_model(&shader, &tex, model).expect("interp");
                b.iter(|| {
                    interp.run_main().expect("run");
                    black_box(interp.frag_color())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_loop, bench_models);
criterion_main!(benches);
