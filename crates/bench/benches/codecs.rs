//! Codec micro-benchmarks: host encode/decode and shader-mirror
//! pack/unpack throughput for every §IV format.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpes_core::codec::{float32, sbyte, sint, ubyte, uint, FloatSpecials, PackBias};
use gpes_kernels::data;
use std::hint::black_box;

fn bench_host(c: &mut Criterion) {
    let n = 4096usize;
    let floats = data::random_f32(n, 30, 1.0e9);
    let uints = data::random_u32(n, 31, 1 << 24);
    let ints = data::random_i32(n, 32, 1 << 24);

    let mut group = c.benchmark_group("codec_host");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("f32_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &v in &floats {
                acc ^= float32::decode(float32::encode(v)).to_bits();
            }
            black_box(acc)
        })
    });
    group.bench_function("u32_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &v in &uints {
                acc ^= uint::decode(uint::encode(v));
            }
            black_box(acc)
        })
    });
    group.bench_function("i32_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for &v in &ints {
                acc ^= sint::decode(sint::encode(v));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_mirror(c: &mut Criterion) {
    let n = 4096usize;
    let floats = data::random_f32(n, 33, 1.0e9);
    let mut group = c.benchmark_group("codec_mirror");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("f32_unpack_pack", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &v in &floats {
                let up = float32::mirror_unpack(float32::encode(v), FloatSpecials::Preserve);
                let bytes = float32::mirror_pack(up, PackBias::HalfTexel, FloatSpecials::Preserve);
                acc ^= bytes[0] ^ bytes[3];
            }
            black_box(acc)
        })
    });
    group.bench_function("byte_unpack_pack", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for i in 0..n {
                let v = (i & 0xFF) as u8;
                acc ^= ubyte::mirror_pack(ubyte::mirror_unpack(v), PackBias::HalfTexel);
                acc ^= sbyte::mirror_pack(sbyte::mirror_unpack(v), PackBias::HalfTexel);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_host, bench_mirror);
criterion_main!(benches);
