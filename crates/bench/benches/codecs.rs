//! Codec micro-benchmarks: host encode/decode and shader-mirror
//! pack/unpack throughput for every §IV format.
//!
//! Throughput is reported in **texels/s** — the unit the GPU transfer
//! path actually moves. For most codecs one value is one texel; for
//! strzodka16 two values share a texel, so its element count is halved.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpes_core::codec::{
    float32, sbyte, sint, strzodka16, ubyte, uint, ushort, FloatSpecials, PackBias,
};
use gpes_kernels::data;
use std::hint::black_box;

fn bench_host(c: &mut Criterion) {
    let n = 4096usize;
    let floats = data::random_f32(n, 30, 1.0e9);
    let uints = data::random_u32(n, 31, 1 << 24);
    let ints = data::random_i32(n, 32, 1 << 24);

    let mut group = c.benchmark_group("codec_host");
    group.sample_size(20);
    // One value per RGBA texel for the 32-bit codecs.
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("f32_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &v in &floats {
                acc ^= float32::decode(float32::encode(v)).to_bits();
            }
            black_box(acc)
        })
    });
    group.bench_function("u32_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &v in &uints {
                acc ^= uint::decode(uint::encode(v));
            }
            black_box(acc)
        })
    });
    group.bench_function("i32_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for &v in &ints {
                acc ^= sint::decode(sint::encode(v));
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The vectorised slice paths the upload/readback hot loops actually
/// call ([`gpes_core::Buffer`] delegates to these).
fn bench_slices(c: &mut Criterion) {
    let n = 4096usize;
    let floats = data::random_f32(n, 40, 1.0e9);
    let uints = data::random_u32(n, 41, 1 << 24);
    let shorts: Vec<u16> = data::random_u32(n, 42, u16::MAX as u32 + 1)
        .into_iter()
        .map(|v| v as u16)
        .collect();
    let bytes_in = data::random_u8(n, 43, 255);

    let mut group = c.benchmark_group("codec_slice");
    group.sample_size(20);

    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("f32_encode", |b| {
        b.iter(|| black_box(float32::encode_slice(&floats, n)))
    });
    let f32_fb = float32::encode_slice(&floats, n);
    group.bench_function("f32_decode", |b| {
        b.iter(|| black_box(float32::decode_slice(&f32_fb, n)))
    });
    group.bench_function("u32_encode", |b| {
        b.iter(|| black_box(uint::encode_slice(&uints, n)))
    });
    let u32_fb = uint::encode_slice(&uints, n);
    group.bench_function("u32_decode", |b| {
        b.iter(|| black_box(uint::decode_slice(&u32_fb, n)))
    });
    group.bench_function("u16_encode", |b| {
        b.iter(|| black_box(ushort::encode_slice(&shorts, n)))
    });
    // Readback sees full RGBA pixels with the pair in (R, A).
    let u16_fb: Vec<u8> = ushort::encode_slice(&shorts, n)
        .chunks_exact(2)
        .flat_map(|p| [p[0], 0, 0, p[1]])
        .collect();
    group.bench_function("u16_decode", |b| {
        b.iter(|| black_box(ushort::decode_slice(&u16_fb, n)))
    });
    group.bench_function("u8_encode", |b| {
        b.iter(|| black_box(ubyte::encode_slice(&bytes_in, n)))
    });

    // Two u16 values per RGBA texel for the Strzodka'02 baseline.
    let texels = n.div_ceil(2);
    group.throughput(Throughput::Elements(texels as u64));
    group.bench_function("strzodka16_encode", |b| {
        b.iter(|| black_box(strzodka16::encode_texels(&shorts, texels)))
    });
    let v16_fb = strzodka16::encode_texels(&shorts, texels);
    group.bench_function("strzodka16_decode", |b| {
        b.iter(|| black_box(strzodka16::decode_texels(&v16_fb, n)))
    });
    group.finish();
}

fn bench_mirror(c: &mut Criterion) {
    let n = 4096usize;
    let floats = data::random_f32(n, 33, 1.0e9);
    let mut group = c.benchmark_group("codec_mirror");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("f32_unpack_pack", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &v in &floats {
                let up = float32::mirror_unpack(float32::encode(v), FloatSpecials::Preserve);
                let bytes = float32::mirror_pack(up, PackBias::HalfTexel, FloatSpecials::Preserve);
                acc ^= bytes[0] ^ bytes[3];
            }
            black_box(acc)
        })
    });
    group.bench_function("byte_unpack_pack", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for i in 0..n {
                let v = (i & 0xFF) as u8;
                acc ^= ubyte::mirror_pack(ubyte::mirror_unpack(v), PackBias::HalfTexel);
                acc ^= sbyte::mirror_pack(sbyte::mirror_unpack(v), PackBias::HalfTexel);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_host, bench_slices, bench_mirror);
criterion_main!(benches);
