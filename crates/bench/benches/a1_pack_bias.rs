//! A1 bench target: shader-side cost of the two output bias modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpes_core::{ComputeContext, Kernel, PackBias, ScalarType};
use std::hint::black_box;

fn bench_bias(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_pack_bias");
    group.sample_size(10);
    let bytes: Vec<u8> = (0..=255).collect();
    for bias in [
        PackBias::QuarterTexel,
        PackBias::HalfTexel,
        PackBias::PaperDelta,
    ] {
        group.bench_with_input(
            BenchmarkId::new("u8_identity", format!("{bias:?}")),
            &bias,
            |bench, &bias| {
                let mut cc = ComputeContext::new(32, 32).expect("context");
                cc.set_pack_bias(bias);
                let arr = cc.upload(&bytes).expect("upload");
                let k = Kernel::builder("ident")
                    .input("x", &arr)
                    .output(ScalarType::U8, bytes.len())
                    .body("return fetch_x(idx);")
                    .build(&mut cc)
                    .expect("kernel");
                bench.iter(|| {
                    let out: Vec<u8> = cc.run_and_read(&k).expect("run");
                    black_box(out)
                });
            },
        );
    }
    // Mirror (pure CPU) packing for reference.
    for bias in [
        PackBias::QuarterTexel,
        PackBias::HalfTexel,
        PackBias::PaperDelta,
    ] {
        group.bench_with_input(
            BenchmarkId::new("mirror_pack", format!("{bias:?}")),
            &bias,
            |bench, &bias| {
                bench.iter(|| {
                    let mut acc = 0u32;
                    for b in 0..=255u32 {
                        acc = acc.wrapping_add(
                            gpes_core::codec::ubyte::mirror_pack(b as f32, bias) as u32,
                        );
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bias);
criterion_main!(benches);
