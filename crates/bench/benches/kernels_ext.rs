//! Bench targets for the extension workloads: FFT (paper ref. [6]),
//! the Rodinia-style kernels (§III-8) and the vertex-vs-fragment stage
//! choice (§III-1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpes_core::vertex_compute::VertexKernel;
use gpes_core::{ComputeContext, Kernel, ScalarType};
use gpes_kernels::{backprop, data, fft, pathfinder, srad};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(10);
    for n in [64usize, 256] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("gpu", n), &n, |bench, &n| {
            let re = data::random_f32(n, 641, 1.0);
            let im = data::random_f32(n, 642, 1.0);
            let mut cc = ComputeContext::new(32, 32).expect("context");
            bench.iter(|| {
                black_box(fft::run_gpu(&mut cc, &re, &im, fft::Direction::Forward).expect("fft"))
            });
        });
        group.bench_with_input(BenchmarkId::new("cpu_mirror", n), &n, |bench, &n| {
            let re = data::random_f32(n, 641, 1.0);
            let im = data::random_f32(n, 642, 1.0);
            bench.iter(|| black_box(fft::cpu_reference(&re, &im, fft::Direction::Forward)));
        });
    }
    group.finish();
}

fn bench_rodinia(c: &mut Criterion) {
    let mut group = c.benchmark_group("rodinia");
    group.sample_size(10);
    group.bench_function("pathfinder_16x64", |bench| {
        let wall: Vec<f32> = data::random_f32(16 * 64, 643, 9.0)
            .into_iter()
            .map(f32::abs)
            .collect();
        let mut cc = ComputeContext::new(64, 64).expect("context");
        bench.iter(|| black_box(pathfinder::run_gpu(&mut cc, 16, 64, &wall).expect("run")));
    });
    group.bench_function("srad_16x16_2iter", |bench| {
        let img: Vec<f32> = data::random_f32(256, 644, 40.0)
            .into_iter()
            .map(|v| v.abs() + 10.0)
            .collect();
        let mut cc = ComputeContext::new(32, 32).expect("context");
        bench.iter(|| {
            black_box(
                srad::run_gpu(&mut cc, 16, 16, &img, srad::SradParams::default(), 2).expect("run"),
            )
        });
    });
    group.bench_function("backprop_64_32_10", |bench| {
        let input = data::random_f32(64, 645, 1.0);
        let layers = vec![
            (
                data::random_f32(64 * 32, 646, 0.2),
                data::random_f32(32, 647, 0.1),
                backprop::Activation::Relu,
            ),
            (
                data::random_f32(32 * 10, 648, 0.2),
                data::random_f32(10, 649, 0.1),
                backprop::Activation::Identity,
            ),
        ];
        let mut cc = ComputeContext::new(32, 32).expect("context");
        bench.iter(|| black_box(backprop::forward_gpu(&mut cc, &input, &layers).expect("run")));
    });
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_choice");
    group.sample_size(10);
    const N: usize = 1024;
    group.throughput(Throughput::Elements(N as u64));
    let x = data::random_f32(N, 650, 100.0);
    let y = data::random_f32(N, 651, 100.0);

    group.bench_function("fragment_saxpy", |bench| {
        let mut cc = ComputeContext::new(64, 64).expect("context");
        let gx = cc.upload(&x).expect("x");
        let gy = cc.upload(&y).expect("y");
        let k = Kernel::builder("saxpy_f")
            .input("x", &gx)
            .input("y", &gy)
            .uniform_f32("alpha", 2.5)
            .output(ScalarType::F32, N)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);")
            .build(&mut cc)
            .expect("kernel");
        bench.iter(|| black_box(cc.run_f32(&k).expect("run")));
    });
    group.bench_function("vertex_saxpy", |bench| {
        let mut cc = ComputeContext::new(64, 64).expect("context");
        let vk = VertexKernel::builder("saxpy_v")
            .input("x", &x)
            .input("y", &y)
            .uniform_f32("alpha", 2.5)
            .output(ScalarType::F32, N)
            .body("return alpha * x + y;")
            .build(&mut cc)
            .expect("kernel");
        bench.iter(|| black_box(vk.run_and_read::<f32>(&mut cc).expect("run")));
    });
    group.finish();
}

criterion_group!(benches, bench_fft, bench_rodinia, bench_stages);
criterion_main!(benches);
