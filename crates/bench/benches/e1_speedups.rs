//! E1 bench target: end-to-end simulator cost of the paper's two
//! benchmarks (host time; the modelled device times are printed by the
//! `reproduce` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpes_core::ComputeContext;
use gpes_kernels::{data, sgemm, sum};
use std::hint::black_box;

fn bench_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_sum");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        let a32 = data::random_u32(n, 1, 1 << 22);
        let b32 = data::random_u32(n, 2, 1 << 22);
        group.bench_with_input(BenchmarkId::new("int", n), &n, |bench, _| {
            let mut cc = ComputeContext::new(128, 128).expect("context");
            let ga = cc.upload(&a32).expect("a");
            let gb = cc.upload(&b32).expect("b");
            let k = sum::build_u32(&mut cc, &ga, &gb).expect("kernel");
            bench.iter(|| {
                let out: Vec<u32> = cc.run_and_read(&k).expect("run");
                black_box(out)
            });
        });
        let af = data::random_f32(n, 3, 1000.0);
        let bf = data::random_f32(n, 4, 1000.0);
        group.bench_with_input(BenchmarkId::new("fp", n), &n, |bench, _| {
            let mut cc = ComputeContext::new(128, 128).expect("context");
            let ga = cc.upload(&af).expect("a");
            let gb = cc.upload(&bf).expect("b");
            let k = sum::build_f32(&mut cc, &ga, &gb).expect("kernel");
            bench.iter(|| black_box(cc.run_f32(&k).expect("run")));
        });
    }
    group.finish();
}

fn bench_sgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_sgemm");
    group.sample_size(10);
    for &size in &[8usize, 16] {
        let a = data::random_f32(size * size, 5, 2.0);
        let b = data::random_f32(size * size, 6, 2.0);
        let zeros = vec![0.0f32; size * size];
        group.bench_with_input(BenchmarkId::new("fp", size), &size, |bench, _| {
            let mut cc = ComputeContext::new(64, 64).expect("context");
            let ga = cc.upload_matrix(size as u32, size as u32, &a).expect("a");
            let gb = cc.upload_matrix(size as u32, size as u32, &b).expect("b");
            let gc = cc
                .upload_matrix(size as u32, size as u32, &zeros)
                .expect("c");
            let k = sgemm::build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.0).expect("kernel");
            bench.iter(|| black_box(cc.run_f32(&k).expect("run")));
        });
        let ai = data::random_i32(size * size, 7, 100);
        let bi = data::random_i32(size * size, 8, 100);
        group.bench_with_input(BenchmarkId::new("int", size), &size, |bench, _| {
            let mut cc = ComputeContext::new(64, 64).expect("context");
            let ga = cc.upload_matrix(size as u32, size as u32, &ai).expect("a");
            let gb = cc.upload_matrix(size as u32, size as u32, &bi).expect("b");
            let k = sgemm::build_i32(&mut cc, &ga, &gb).expect("kernel");
            bench.iter(|| {
                let out: Vec<i32> = cc.run_and_read(&k).expect("run");
                black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sum, bench_sgemm);
criterion_main!(benches);
