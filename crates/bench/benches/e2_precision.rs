//! E2 bench target: cost of the float identity round trip under each
//! simulated float model (the accuracy numbers come from `reproduce e2`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpes_core::{ComputeContext, Kernel, ScalarType};
use gpes_glsl::exec::FloatModel;
use gpes_kernels::data;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_roundtrip");
    group.sample_size(10);
    let values = data::random_f32(1024, 10, 1.0e9);
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16] {
        group.bench_with_input(
            BenchmarkId::new("identity", format!("{model:?}")),
            &model,
            |bench, &model| {
                let mut cc = ComputeContext::new(64, 64).expect("context");
                cc.set_float_model(model);
                let arr = cc.upload(&values).expect("upload");
                let k = Kernel::builder("identity")
                    .input("x", &arr)
                    .output(ScalarType::F32, values.len())
                    .body("return fetch_x(idx);")
                    .build(&mut cc)
                    .expect("kernel");
                bench.iter(|| black_box(cc.run_f32(&k).expect("run")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
