//! Rasteriser fill-rate: a constant-colour fragment shader over growing
//! targets, isolating pipeline overhead from shader cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpes_gles2::{Context, PrimitiveMode};
use std::hint::black_box;

const VS: &str = "attribute vec2 a_pos;\nvoid main() { gl_Position = vec4(a_pos, 0.0, 1.0); }";
const FS: &str =
    "precision highp float;\nvoid main() { gl_FragColor = vec4(0.5, 0.25, 1.0, 1.0); }";
const QUAD: [f32; 12] = [
    -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
];

fn bench_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("raster_fill");
    group.sample_size(10);
    for &side in &[32u32, 128, 256] {
        group.throughput(Throughput::Elements(side as u64 * side as u64));
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let mut gl = Context::new(side, side).expect("context");
            let prog = gl.create_program(VS, FS).expect("program");
            gl.use_program(prog).expect("use");
            gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
            b.iter(|| {
                let stats = gl
                    .draw_arrays(PrimitiveMode::Triangles, 0, 6)
                    .expect("draw");
                black_box(stats.fragments_shaded)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fill);
criterion_main!(benches);
