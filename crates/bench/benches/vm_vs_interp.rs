//! Executor ablation: fragments/second through the full pipeline for the
//! tree-walking interpreter, the scalar bytecode VM, and the SPMD lane
//! VM, on the two shader families the paper's evaluation leans on —
//! `conv3x3` (texture-heavy byte path) and `sgemm` (ALU/loop-heavy
//! float path).
//!
//! All executors produce bit-identical outputs and profiles (asserted
//! by the differential suites); this bench quantifies the host-side
//! speedup of lowering shaders once instead of re-walking the AST per
//! fragment, and of shading band fragments in lockstep lanes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpes_core::{ComputeContext, ExecMode};
use gpes_gles2::Dispatch;
use gpes_kernels::{conv3x3, data, sgemm};
use std::hint::black_box;

const MODES: [(&str, ExecMode); 4] = [
    ("interp", ExecMode::TreeWalker),
    ("scalar", ExecMode::Scalar),
    ("spmd4", ExecMode::Spmd { lanes: 4 }),
    ("spmd8", ExecMode::Spmd { lanes: 8 }),
];

fn bench_conv3x3(c: &mut Criterion) {
    let mut group = c.benchmark_group("executors_conv3x3");
    group.sample_size(10);
    let side = 48u32;
    for (label, mode) in MODES {
        group.throughput(Throughput::Elements(u64::from(side * side)));
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            let mut cc = ComputeContext::new(128, 128).expect("context");
            cc.set_exec_mode(mode);
            cc.set_dispatch(Dispatch::Serial);
            let img = data::random_u8((side * side) as usize, 71, 255);
            let gm = cc.upload_matrix(side, side, &img).expect("upload");
            let k = conv3x3::build(&mut cc, &gm, &conv3x3::Filter3x3::box_blur()).expect("kernel");
            b.iter(|| {
                let out: Vec<u8> = cc.run_and_read(&k).expect("run");
                black_box(out)
            });
        });
    }
    group.finish();
}

fn bench_sgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("executors_sgemm");
    group.sample_size(10);
    let n = 24usize;
    for (label, mode) in MODES {
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            let mut cc = ComputeContext::new(64, 64).expect("context");
            cc.set_exec_mode(mode);
            cc.set_dispatch(Dispatch::Serial);
            let a = data::random_f32(n * n, 72, 2.0);
            let bm = data::random_f32(n * n, 73, 2.0);
            let cm = data::random_f32(n * n, 74, 2.0);
            let ga = cc.upload_matrix(n as u32, n as u32, &a).expect("a");
            let gb = cc.upload_matrix(n as u32, n as u32, &bm).expect("b");
            let gc = cc.upload_matrix(n as u32, n as u32, &cm).expect("c");
            let k = sgemm::build_f32(&mut cc, &ga, &gb, &gc, 1.0, 0.5).expect("kernel");
            b.iter(|| black_box(cc.run_f32(&k).expect("run")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv3x3, bench_sgemm);
criterion_main!(benches);
