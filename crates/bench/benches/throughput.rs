//! Serving-engine throughput: jobs/sec over the a10 kernel mix as the
//! worker pool scales, shared vs per-context program caches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpes_core::serve::CachePolicy;
use gpes_core::{Engine, Job, KernelSpec};
use std::hint::black_box;
use std::sync::Arc;

const N: usize = 1 << 12;
const JOBS: usize = 24;

fn specs() -> Vec<Arc<KernelSpec>> {
    vec![
        Arc::new(
            KernelSpec::new("saxpy")
                .input("x")
                .input("y")
                .uniform_f32("alpha", 2.0)
                .output(N)
                .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
        ),
        Arc::new(
            KernelSpec::new("sq_diff")
                .input("x")
                .input("y")
                .output(N)
                .body("float d = fetch_x(idx) - fetch_y(idx); return d * d;"),
        ),
    ]
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(JOBS as u64));
    let x: Arc<Vec<f32>> = Arc::new(gpes_kernels::data::random_f32(N, 31, 50.0));
    let y: Arc<Vec<f32>> = Arc::new(gpes_kernels::data::random_f32(N, 32, 50.0));
    for workers in [1usize, 2, 4] {
        for (label, policy) in [
            ("shared", CachePolicy::Shared),
            ("per_context", CachePolicy::PerContext),
        ] {
            let specs = specs();
            let id = BenchmarkId::new(label, workers);
            group.bench_with_input(id, &workers, |bench, &w| {
                let engine = Engine::builder()
                    .workers(w)
                    .cache_policy(policy)
                    .build()
                    .expect("engine");
                bench.iter(|| {
                    let handles: Vec<_> = (0..JOBS)
                        .map(|i| {
                            engine
                                .submit(
                                    Job::new(&specs[i % specs.len()])
                                        .data_shared(&x)
                                        .data_shared(&y),
                                )
                                .expect("submit")
                        })
                        .collect();
                    for h in handles {
                        black_box(h.wait().expect("job"));
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
