//! A5/A7 bench targets: per-texel cost of the §IV codecs against the
//! Strzodka'02 baseline (A5) and the channel-packed layouts (A7).
//!
//! Throughput is **texels/s** — the packed layouts carry 2 (strzodka16)
//! or 4 (u8x4) values per texel, so their texel counts differ from the
//! shared element count `N`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpes_core::codec::strzodka16;
use gpes_core::{ComputeContext, Kernel};
use gpes_kernels::data;
use std::hint::black_box;

const N: usize = 4096;

fn bench_formats(c: &mut Criterion) {
    let mut group = c.benchmark_group("a5_formats");
    group.sample_size(10);

    // Paper u32 codec add: one value per texel.
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::new("add", "paper_u32"), |bench| {
        let a = data::random_u32(N, 551, u16::MAX as u32);
        let b = data::random_u32(N, 552, u16::MAX as u32);
        let mut cc = ComputeContext::new(128, 128).expect("context");
        let ga = cc.upload(&a).expect("a");
        let gb = cc.upload(&b).expect("b");
        let k = gpes_kernels::sum::build_u32(&mut cc, &ga, &gb).expect("kernel");
        bench.iter(|| {
            let out: Vec<u32> = cc.run_and_read(&k).expect("run");
            black_box(out)
        });
    });

    // Strzodka virtual-16 add: two values per texel.
    group.throughput(Throughput::Elements(N.div_ceil(2) as u64));
    group.bench_function(BenchmarkId::new("add", "strzodka16"), |bench| {
        let a: Vec<u16> = data::random_u32(N, 553, u16::MAX as u32 + 1)
            .into_iter()
            .map(|v| v as u16)
            .collect();
        let b: Vec<u16> = data::random_u32(N, 554, u16::MAX as u32 + 1)
            .into_iter()
            .map(|v| v as u16)
            .collect();
        let mut cc = ComputeContext::new(128, 128).expect("context");
        let side = (N.div_ceil(2) as f64).sqrt().ceil() as u32;
        let texels = side as usize * side as usize;
        let ta = cc
            .upload_texels(side, side, &strzodka16::encode_texels(&a, texels))
            .expect("ta");
        let tb = cc
            .upload_texels(side, side, &strzodka16::encode_texels(&b, texels))
            .expect("tb");
        let k = Kernel::builder("v16_add")
            .input_texels("a", &ta)
            .input_texels("b", &tb)
            .functions(strzodka16::GLSL)
            .output_texels(texels)
            .body(
                "vec4 ta = fetch_a_texel(idx);\n\
                 vec4 tb = fetch_b_texel(idx);\n\
                 vec2 r0 = gpes_v16_add(gpes_v16_from_bytes(ta.xy), gpes_v16_from_bytes(tb.xy));\n\
                 vec2 r1 = gpes_v16_add(gpes_v16_from_bytes(ta.zw), gpes_v16_from_bytes(tb.zw));\n\
                 return vec4(gpes_v16_pack(r0), gpes_v16_pack(r1));",
            )
            .build(&mut cc)
            .expect("kernel");
        bench.iter(|| {
            let bytes = cc.run_and_read_texels(&k).expect("run");
            black_box(strzodka16::decode_texels(&bytes, N))
        });
    });

    // Host-side interop transforms (§VI's CPU cost argument).
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(
        BenchmarkId::new("host_encode", "paper_u32_memcpy"),
        |bench| {
            let a = data::random_u32(N, 555, u32::MAX);
            bench.iter(|| {
                let bytes: Vec<u8> = a.iter().flat_map(|v| v.to_le_bytes()).collect();
                black_box(bytes)
            });
        },
    );
    group.throughput(Throughput::Elements(N.div_ceil(2) as u64));
    group.bench_function(
        BenchmarkId::new("host_encode", "strzodka16_transform"),
        |bench| {
            let a: Vec<u16> = data::random_u32(N, 556, u16::MAX as u32 + 1)
                .into_iter()
                .map(|v| v as u16)
                .collect();
            bench.iter(|| black_box(strzodka16::encode_texels(&a, N.div_ceil(2))));
        },
    );
    group.finish();

    let mut group = c.benchmark_group("a7_packing");
    group.sample_size(10);
    // Scalar u8: one value per texel.
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("u8_scalar", |bench| {
        let a = data::random_u8(N, 557, 127);
        let b = data::random_u8(N, 558, 127);
        let mut cc = ComputeContext::new(128, 128).expect("context");
        let ga = cc.upload(&a).expect("a");
        let gb = cc.upload(&b).expect("b");
        let k = gpes_kernels::sum::build_u8(&mut cc, &ga, &gb).expect("kernel");
        bench.iter(|| {
            let out: Vec<u8> = cc.run_and_read(&k).expect("run");
            black_box(out)
        });
    });
    // Packed u8x4: four values per texel.
    group.throughput(Throughput::Elements(N.div_ceil(4) as u64));
    group.bench_function("u8_packed_x4", |bench| {
        let a = data::random_u8(N, 559, 127);
        let b = data::random_u8(N, 560, 127);
        let mut cc = ComputeContext::new(128, 128).expect("context");
        let side = (N.div_ceil(4) as f64).sqrt().ceil() as u32;
        let pad = |d: &[u8]| {
            let mut v = d.to_vec();
            v.resize(side as usize * side as usize * 4, 0);
            v
        };
        let ta = cc.upload_texels(side, side, &pad(&a)).expect("ta");
        let tb = cc.upload_texels(side, side, &pad(&b)).expect("tb");
        let k = Kernel::builder("sum_u8x4")
            .input_texels("a", &ta)
            .input_texels("b", &tb)
            .output_texels(side as usize * side as usize)
            .body(
                "vec4 av = floor(fetch_a_texel(idx) * 255.0 + 0.5);\n\
                 vec4 bv = floor(fetch_b_texel(idx) * 255.0 + 0.5);\n\
                 return (mod(av + bv, 256.0) + 0.25) / 255.0;",
            )
            .build(&mut cc)
            .expect("kernel");
        bench.iter(|| {
            let out = cc.run_and_read_texels(&k).expect("run");
            black_box(out)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
