//! # gpes-perf — analytic timing models for the paper's platform
//!
//! Reproducing the §V speedup numbers of *“Towards General Purpose
//! Computations on Low-End Mobile GPUs”* requires wall-clock estimates for
//! a Raspberry Pi 1 (VideoCore IV GPU + ARM1176 CPU) that this repository
//! only simulates functionally. This crate supplies:
//!
//! * [`device::Vc4Gpu`] / [`device::Arm11Cpu`] — parameter models with
//!   documented provenance (peak 24 GFLOPS matches the figure the paper
//!   cites; every assumed constant is marked),
//! * [`estimate`] — converts **measured interpreter operation profiles**
//!   (from `gpes-gles2` draw stats) into GPU wall time, and counted CPU
//!   workloads into ARM1176 wall time,
//! * [`collect`] — adapters from `gpes-core` pass logs.
//!
//! The model's purpose is the *shape* of the paper's results (GPU wins by
//! mid-single-digit factors; integer speedups exceed floating-point
//! speedups because the ARM's fp ops are relatively slower while the GPU
//! treats both paths nearly identically). Absolute times depend on
//! under-specified experimental conditions; see `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod collect;
pub mod device;
pub mod estimate;

pub use collect::{gpu_run_from_passes, readback_bytes_for, upload_bytes_for};
pub use device::{Arm11Cpu, CpuWorkload, Vc4Gpu};
pub use estimate::{estimate_gpu, Comparison, GpuEstimate, GpuRun};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end sanity: run a real kernel through the simulator, feed
    /// its measured profile into the model, and check the GPU beats the
    /// modelled CPU on a compute-dense workload.
    #[test]
    fn model_consumes_real_simulator_profiles() {
        use gpes_core::{ComputeContext, Kernel, ScalarType};

        let n = 4096usize;
        let mut cc = ComputeContext::new(128, 128).expect("context");
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
        let a = cc.upload(&data).expect("upload");
        let k = Kernel::builder("sum")
            .input("a", &a)
            .output(ScalarType::F32, n)
            .body("return fetch_a(idx) + 1.0;")
            .build(&mut cc)
            .expect("build");
        let _ = cc.run_f32(&k).expect("run");

        let passes = cc.take_pass_log();
        let run = gpu_run_from_passes(
            &passes,
            1,
            upload_bytes_for(ScalarType::F32, a.layout().texel_count()),
            readback_bytes_for(k.output_layout().texel_count()),
        );
        assert!(run.fs_profile.invocations >= n as u64);
        assert!(run.fs_profile.tex_fetches >= n as u64);

        let est = estimate_gpu(&Vc4Gpu::raspberry_pi1(), &run);
        assert!(est.total() > 0.0);
        assert!(est.exec_s > 0.0);
    }
}
