//! Device parameter models: the VideoCore IV GPU and ARM1176 CPU of the
//! Raspberry Pi 1, the paper's evaluation platform.
//!
//! Every constant is either taken from public documentation or is an
//! explicit calibration assumption (marked *assumed*); `EXPERIMENTS.md`
//! discusses the sensitivity.

/// VideoCore IV 3D GPU model.
///
/// Peak arithmetic: 12 QPUs × 4 physical lanes × 2 ops (dual-issue
/// add+mul) × 250 MHz = **24 GFLOPS**, matching the Raspberry Pi FAQ
/// figure the paper cites.
#[derive(Debug, Clone, PartialEq)]
pub struct Vc4Gpu {
    /// Shader core clock (Hz). VideoCore IV: 250 MHz.
    pub clock_hz: f64,
    /// Number of QPUs. VideoCore IV: 12.
    pub qpus: f64,
    /// Physical SIMD lanes per QPU: 4.
    pub lanes_per_qpu: f64,
    /// Peak ops per lane per cycle (dual-issue add+mul): 2.
    pub dual_issue: f64,
    /// Achieved issue efficiency for compiler-generated (non-hand-tuned)
    /// shader code. *Assumed* 0.5 — the paper stresses its implementation
    /// "is not optimised".
    pub alu_efficiency: f64,
    /// Compression factor for codec arithmetic: the QPU has hardware
    /// pack/unpack modifiers (8888/16a/16b modes) that the driver's
    /// peephole applies to byte-extraction patterns. *Assumed* 3.0 — the
    /// dominant idealisation in this model.
    pub codec_hw_assist: f64,
    /// Cycles per special-function (SFU) operation: 4 (recip, rsqrt,
    /// exp2, log2 each take 4 cycles with no result forwarding).
    pub sfu_cycles: f64,
    /// Aggregate texture fetch throughput (texels/s). One TMU per slice,
    /// 3 slices, ~1 texel/cycle each with cache hits: ~0.75 G/s. *Assumed
    /// 0.9 G/s* including cache locality of sequential GPGPU access.
    pub tex_throughput: f64,
    /// Host→GPU upload bandwidth (B/s). The VC4 shares SDRAM with the
    /// CPU; texture uploads are burst DMA copies. *Assumed* 3.0 GB/s
    /// (LPDDR2-800 peak is 3.2 GB/s).
    pub upload_bw: f64,
    /// GPU→host readback bandwidth (B/s). `glReadPixels` is slower than
    /// upload but still a DMA burst on this UMA system. *Assumed* 1.0 GB/s.
    pub readback_bw: f64,
    /// Shader program compile+link time (s). *Assumed* 2 ms.
    pub compile_s: f64,
    /// Fixed per-draw overhead: state validation, control lists, binning
    /// (s). *Assumed* 150 µs.
    pub draw_overhead_s: f64,
}

impl Vc4Gpu {
    /// The Raspberry Pi 1 preset.
    pub fn raspberry_pi1() -> Vc4Gpu {
        Vc4Gpu {
            clock_hz: 250.0e6,
            qpus: 12.0,
            lanes_per_qpu: 4.0,
            dual_issue: 2.0,
            alu_efficiency: 0.5,
            codec_hw_assist: 3.0,
            sfu_cycles: 4.0,
            tex_throughput: 0.9e9,
            upload_bw: 3.0e9,
            readback_bw: 1.0e9,
            compile_s: 2.0e-3,
            draw_overhead_s: 150.0e-6,
        }
    }

    /// Peak arithmetic rate (scalar ops/s) — the "24 GFLOPS" headline.
    pub fn peak_flops(&self) -> f64 {
        self.clock_hz * self.qpus * self.lanes_per_qpu * self.dual_issue
    }

    /// Achieved ALU throughput for interpreted shader arithmetic.
    pub fn alu_throughput(&self) -> f64 {
        self.peak_flops() * self.alu_efficiency
    }

    /// SFU throughput (ops/s): one SFU result per QPU per `sfu_cycles`,
    /// times 4 lanes sharing the issue slot.
    pub fn sfu_throughput(&self) -> f64 {
        self.clock_hz * self.qpus * self.lanes_per_qpu / self.sfu_cycles
    }
}

impl Default for Vc4Gpu {
    fn default() -> Self {
        Vc4Gpu::raspberry_pi1()
    }
}

/// ARM1176JZF-S CPU model (the Raspberry Pi 1 application core).
#[derive(Debug, Clone, PartialEq)]
pub struct Arm11Cpu {
    /// Core clock (Hz): 700 MHz stock.
    pub clock_hz: f64,
    /// Effective cycles per integer ALU op.
    pub int_op_cycles: f64,
    /// Effective cycles per VFP11 floating-point op. Higher than integer
    /// — the source of the paper's "fp versions have lower speedups,
    /// since in the CPU the integer operations are faster than the fp
    /// ones".
    pub fp_op_cycles: f64,
    /// Effective cycles per load (L1-hit weighted).
    pub load_cycles: f64,
    /// Effective cycles per store.
    pub store_cycles: f64,
    /// Loop control overhead per iteration (compare, branch, index math).
    pub loop_overhead_cycles: f64,
    /// Penalty per L1 miss (SDRAM ~95 ns on the Pi 1): ~65 cycles.
    pub cache_miss_cycles: f64,
}

impl Arm11Cpu {
    /// Baseline matching the paper's framing: a plain scalar C
    /// implementation compiled without aggressive optimisation
    /// (the paper states its own code "is not optimised"; research
    /// baselines of the era typically weren't either).
    pub fn raspberry_pi1_baseline() -> Arm11Cpu {
        Arm11Cpu {
            clock_hz: 700.0e6,
            int_op_cycles: 2.0,
            fp_op_cycles: 7.0,
            load_cycles: 4.0,
            store_cycles: 3.0,
            loop_overhead_cycles: 6.0,
            cache_miss_cycles: 65.0,
        }
    }

    /// An optimistically tuned CPU (for the sensitivity ablation): `-O2`
    /// quality scheduling, software pipelining of loads.
    pub fn raspberry_pi1_tuned() -> Arm11Cpu {
        Arm11Cpu {
            clock_hz: 700.0e6,
            int_op_cycles: 1.0,
            fp_op_cycles: 2.0,
            load_cycles: 1.5,
            store_cycles: 1.2,
            loop_overhead_cycles: 2.0,
            cache_miss_cycles: 65.0,
        }
    }
}

impl Default for Arm11Cpu {
    fn default() -> Self {
        Arm11Cpu::raspberry_pi1_baseline()
    }
}

/// An abstract CPU workload in counted operations (filled in by each
/// benchmark's reference implementation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuWorkload {
    /// Integer ALU operations.
    pub int_ops: f64,
    /// Floating point operations.
    pub fp_ops: f64,
    /// Memory loads.
    pub loads: f64,
    /// Memory stores.
    pub stores: f64,
    /// Loop iterations executed.
    pub iterations: f64,
    /// L1 cache misses.
    pub cache_misses: f64,
}

impl Arm11Cpu {
    /// Estimated wall time for a workload (seconds).
    pub fn time(&self, w: &CpuWorkload) -> f64 {
        let cycles = w.int_ops * self.int_op_cycles
            + w.fp_ops * self.fp_op_cycles
            + w.loads * self.load_cycles
            + w.stores * self.store_cycles
            + w.iterations * self.loop_overhead_cycles
            + w.cache_misses * self.cache_miss_cycles;
        cycles / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc4_peak_is_24_gflops() {
        let gpu = Vc4Gpu::raspberry_pi1();
        assert_eq!(gpu.peak_flops(), 24.0e9);
        assert_eq!(gpu.alu_throughput(), 12.0e9);
        assert!((gpu.sfu_throughput() - 3.0e9).abs() < 1.0);
    }

    #[test]
    fn cpu_int_faster_than_fp() {
        let cpu = Arm11Cpu::raspberry_pi1_baseline();
        assert!(cpu.fp_op_cycles > cpu.int_op_cycles);
        let tuned = Arm11Cpu::raspberry_pi1_tuned();
        assert!(tuned.fp_op_cycles > tuned.int_op_cycles);
    }

    #[test]
    fn workload_time_scales_linearly() {
        let cpu = Arm11Cpu::raspberry_pi1_baseline();
        let w1 = CpuWorkload {
            int_ops: 1.0e6,
            loads: 2.0e6,
            stores: 1.0e6,
            iterations: 1.0e6,
            ..CpuWorkload::default()
        };
        let mut w2 = w1;
        w2.int_ops *= 2.0;
        w2.loads *= 2.0;
        w2.stores *= 2.0;
        w2.iterations *= 2.0;
        let t1 = cpu.time(&w1);
        let t2 = cpu.time(&w2);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        // 1M iterations of (2 loads + add + store + loop) ≈ 19 cycles each.
        assert!((t1 - 19.0e6 / 700.0e6).abs() < 1e-9);
    }

    #[test]
    fn fp_workload_is_slower_than_int() {
        let cpu = Arm11Cpu::raspberry_pi1_baseline();
        let int = CpuWorkload {
            int_ops: 1.0e6,
            ..CpuWorkload::default()
        };
        let fp = CpuWorkload {
            fp_ops: 1.0e6,
            ..CpuWorkload::default()
        };
        assert!(cpu.time(&fp) > cpu.time(&int));
    }
}
