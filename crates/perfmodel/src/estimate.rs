//! Wall-time estimation: interpreter operation profiles → VideoCore IV
//! seconds, counted CPU workloads → ARM1176 seconds, and the speedup
//! comparison the paper's §V table reports.

use crate::device::{Arm11Cpu, CpuWorkload, Vc4Gpu};
use gpes_glsl::exec::OpProfile;

/// Aggregate description of everything one GPU benchmark run did.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuRun {
    /// Summed fragment-stage profile over all passes.
    pub fs_profile: OpProfile,
    /// Summed vertex-stage profile over all passes (negligible for
    /// fragment kernels — six vertices per quad — but dominant for the
    /// §III-1 vertex-compute path, where every work item is a vertex).
    pub vs_profile: OpProfile,
    /// Number of draw passes.
    pub passes: u64,
    /// Programs compiled (kernel compilation is part of wall time in §V).
    pub programs_compiled: u64,
    /// Bytes uploaded host→GPU (input textures).
    pub upload_bytes: u64,
    /// Bytes read back GPU→host (`glReadPixels`).
    pub readback_bytes: u64,
}

/// Wall-time breakdown for a GPU run (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuEstimate {
    /// Shader compilation.
    pub compile_s: f64,
    /// Input upload.
    pub upload_s: f64,
    /// Kernel execution (ALU/SFU/TMU, whichever binds).
    pub exec_s: f64,
    /// Result readback.
    pub readback_s: f64,
    /// Per-draw fixed overheads.
    pub overhead_s: f64,
}

impl GpuEstimate {
    /// Total wall time.
    pub fn total(&self) -> f64 {
        self.compile_s + self.upload_s + self.exec_s + self.readback_s + self.overhead_s
    }
}

/// Estimates GPU wall time for a run on a device.
pub fn estimate_gpu(gpu: &Vc4Gpu, run: &GpuRun) -> GpuEstimate {
    // Both programmable stages execute on the same QPUs (the VideoCore
    // IV has a unified shader core), so their op counts pool.
    let alu_ops = run.fs_profile.alu_ops + run.vs_profile.alu_ops;
    let sfu_ops = run.fs_profile.sfu_ops + run.vs_profile.sfu_ops;
    let tex_fetches = run.fs_profile.tex_fetches + run.vs_profile.tex_fetches;
    let alu_effective = alu_ops as f64 / gpu.codec_hw_assist;
    let branch_ops = (run.fs_profile.branches
        + run.vs_profile.branches
        + run.fs_profile.calls
        + run.vs_profile.calls) as f64;
    let alu_s = (alu_effective + branch_ops) / gpu.alu_throughput();
    let sfu_s = sfu_ops as f64 / gpu.sfu_throughput();
    let tex_s = tex_fetches as f64 / gpu.tex_throughput;
    // ALU and SFU share issue slots; the TMU pipeline overlaps with both.
    let exec_s = (alu_s + sfu_s).max(tex_s);
    GpuEstimate {
        compile_s: run.programs_compiled as f64 * gpu.compile_s,
        upload_s: run.upload_bytes as f64 / gpu.upload_bw,
        exec_s,
        readback_s: run.readback_bytes as f64 / gpu.readback_bw,
        overhead_s: run.passes as f64 * gpu.draw_overhead_s,
    }
}

/// One row of the paper's §V comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Label, e.g. `"sum (int)"`.
    pub label: String,
    /// Modelled CPU wall time (s).
    pub cpu_s: f64,
    /// Modelled GPU wall time with breakdown.
    pub gpu: GpuEstimate,
}

impl Comparison {
    /// Builds a comparison row.
    pub fn new(
        label: impl Into<String>,
        cpu: &Arm11Cpu,
        workload: &CpuWorkload,
        gpu: &Vc4Gpu,
        run: &GpuRun,
    ) -> Comparison {
        Comparison {
            label: label.into(),
            cpu_s: cpu.time(workload),
            gpu: estimate_gpu(gpu, run),
        }
    }

    /// GPU-over-CPU speedup (the paper's headline metric).
    pub fn speedup(&self) -> f64 {
        self.cpu_s / self.gpu.total()
    }

    /// Formats the row like the harness/EXPERIMENTS.md tables.
    pub fn row(&self) -> String {
        format!(
            "{:<14} cpu {:>9.3} ms   gpu {:>9.3} ms  (compile {:.3} + upload {:.3} + exec {:.3} + read {:.3} + ovh {:.3})   speedup {:>5.2}x",
            self.label,
            self.cpu_s * 1e3,
            self.gpu.total() * 1e3,
            self.gpu.compile_s * 1e3,
            self.gpu.upload_s * 1e3,
            self.gpu.exec_s * 1e3,
            self.gpu.readback_s * 1e3,
            self.gpu.overhead_s * 1e3,
            self.speedup(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_like_run(n: u64) -> GpuRun {
        GpuRun {
            fs_profile: OpProfile {
                alu_ops: 65 * n,
                sfu_ops: 0,
                tex_fetches: 2 * n,
                branches: 0,
                calls: 3 * n,
                invocations: n,
            },
            passes: 1,
            programs_compiled: 1,
            upload_bytes: 8 * n,
            readback_bytes: 4 * n,
            ..GpuRun::default()
        }
    }

    #[test]
    fn estimate_has_all_components() {
        let gpu = Vc4Gpu::raspberry_pi1();
        let est = estimate_gpu(&gpu, &sum_like_run(1 << 20));
        assert!(est.compile_s > 0.0);
        assert!(est.upload_s > 0.0);
        assert!(est.exec_s > 0.0);
        assert!(est.readback_s > 0.0);
        assert!(est.overhead_s > 0.0);
        let sum = est.compile_s + est.upload_s + est.exec_s + est.readback_s + est.overhead_s;
        assert!((est.total() - sum).abs() < 1e-15);
    }

    #[test]
    fn exec_scales_with_ops() {
        let gpu = Vc4Gpu::raspberry_pi1();
        let small = estimate_gpu(&gpu, &sum_like_run(1 << 10));
        let large = estimate_gpu(&gpu, &sum_like_run(1 << 20));
        assert!(large.exec_s > small.exec_s * 500.0);
    }

    #[test]
    fn tex_bound_kernels_hide_alu() {
        let gpu = Vc4Gpu::raspberry_pi1();
        // Tiny ALU per fetch → TMU-bound.
        let run = GpuRun {
            fs_profile: OpProfile {
                alu_ops: 1_000,
                tex_fetches: 1_000_000_000,
                ..OpProfile::default()
            },
            passes: 1,
            programs_compiled: 0,
            upload_bytes: 0,
            readback_bytes: 0,
            ..GpuRun::default()
        };
        let est = estimate_gpu(&gpu, &run);
        let tex_s = 1.0e9 / gpu.tex_throughput;
        assert!((est.exec_s - tex_s).abs() / tex_s < 1e-9);
    }

    #[test]
    fn vertex_stage_work_is_costed() {
        // The unified shader core pools both stages: a vertex-compute
        // kernel's work must not be invisible to the model.
        let gpu = Vc4Gpu::raspberry_pi1();
        let mut run = sum_like_run(1 << 16);
        let base = estimate_gpu(&gpu, &run).exec_s;
        run.vs_profile.alu_ops = run.fs_profile.alu_ops;
        run.vs_profile.sfu_ops = run.fs_profile.sfu_ops;
        let with_vs = estimate_gpu(&gpu, &run).exec_s;
        assert!(with_vs > base * 1.5, "{with_vs} vs {base}");
    }

    #[test]
    fn comparison_speedup_and_row() {
        let gpu = Vc4Gpu::raspberry_pi1();
        let cpu = Arm11Cpu::raspberry_pi1_baseline();
        let n = 1u64 << 22;
        let workload = CpuWorkload {
            int_ops: n as f64,
            loads: 2.0 * n as f64,
            stores: n as f64,
            iterations: n as f64,
            cache_misses: 3.0 * n as f64 / 8.0,
            ..CpuWorkload::default()
        };
        let cmp = Comparison::new("sum (int)", &cpu, &workload, &gpu, &sum_like_run(n));
        assert!(
            cmp.speedup() > 1.0,
            "GPU should win at 4M elements: {}",
            cmp.row()
        );
        assert!(cmp.row().contains("speedup"));
    }
}
