//! Bridging the simulator's measurements into the timing model.

use crate::estimate::GpuRun;
use gpes_core::PassRecord;

/// Builds a [`GpuRun`] from a compute context's pass log plus transfer
/// bookkeeping (the simulator knows shader work exactly; upload/readback
/// byte counts come from the benchmark harness).
pub fn gpu_run_from_passes(
    passes: &[PassRecord],
    programs_compiled: u64,
    upload_bytes: u64,
    readback_bytes: u64,
) -> GpuRun {
    let mut run = GpuRun {
        passes: passes.len() as u64,
        programs_compiled,
        upload_bytes,
        readback_bytes,
        ..GpuRun::default()
    };
    for pass in passes {
        run.fs_profile.merge(&pass.stats.fs_profile);
        run.vs_profile.merge(&pass.stats.vs_profile);
    }
    run
}

/// Texture bytes occupied by `len` elements of a scalar type, as uploaded
/// (used for upload accounting).
pub fn upload_bytes_for(scalar: gpes_core::ScalarType, texel_count: usize) -> u64 {
    (texel_count * scalar.bytes_per_element()) as u64
}

/// Framebuffer bytes read back for a given output texel count
/// (`glReadPixels` always returns RGBA8).
pub fn readback_bytes_for(texel_count: usize) -> u64 {
    (texel_count * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpes_core::ScalarType;
    use gpes_gles2::DrawStats;
    use gpes_glsl::exec::OpProfile;

    #[test]
    fn merges_pass_profiles() {
        let mk = |alu: u64| PassRecord {
            kernel: "k".into(),
            stats: DrawStats {
                fs_profile: OpProfile {
                    alu_ops: alu,
                    tex_fetches: 1,
                    ..OpProfile::default()
                },
                ..DrawStats::default()
            },
            output_texels: 16,
            reused_target: false,
        };
        let run = gpu_run_from_passes(&[mk(10), mk(32)], 2, 100, 50);
        assert_eq!(run.fs_profile.alu_ops, 42);
        assert_eq!(run.fs_profile.tex_fetches, 2);
        assert_eq!(run.passes, 2);
        assert_eq!(run.programs_compiled, 2);
        assert_eq!(run.upload_bytes, 100);
        assert_eq!(run.readback_bytes, 50);
    }

    #[test]
    fn byte_accounting() {
        assert_eq!(upload_bytes_for(ScalarType::F32, 100), 400);
        assert_eq!(upload_bytes_for(ScalarType::U8, 100), 100);
        assert_eq!(readback_bytes_for(100), 400);
    }
}
