//! Neural-network inference on the GPU — the paper's reference [17]
//! ("Deep Learning on the Raspberry Pi"): a small MLP forward pass where
//! every fully-connected layer is one fragment kernel.
//!
//! The network solves XOR with hand-derived weights (so the result is
//! checkable by eye), then a wider random network shows layer chaining
//! through render-to-texture.
//!
//! ```text
//! cargo run --release --example mlp
//! ```

use gpes::kernels::backprop::{self, Activation};
use gpes::kernels::data;
use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cc = ComputeContext::new(64, 64)?;

    // ---- XOR with a hand-built 2-2-1 network -------------------------------
    // Hidden: h0 = σ(20·(x0 + x1) − 10) ≈ OR, h1 = σ(20·(x0 + x1) − 30) ≈ AND
    // Output: y = σ(20·h0 − 20·h1 − 10) ≈ OR AND NOT AND = XOR.
    let hidden = (
        vec![20.0f32, 20.0, 20.0, 20.0], // weights 2x2 (in x out)
        vec![-10.0f32, -30.0],
        Activation::Sigmoid,
    );
    let output = (
        vec![20.0f32, -20.0], // weights 2x1
        vec![-10.0f32],
        Activation::Sigmoid,
    );
    println!("XOR via a 2-2-1 MLP, one kernel per layer:");
    for (a, b) in [(0.0f32, 0.0f32), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
        let layers = vec![hidden.clone(), output.clone()];
        let y = backprop::forward_gpu(&mut cc, &[a, b], &layers)?[0];
        let expected = (a != b) as i32;
        println!("  {a} xor {b} -> {y:.4}  (expect ~{expected})");
        assert_eq!((y > 0.5) as i32, expected);
    }

    // ---- a wider network, validated against the CPU reference --------------
    let dims = [64usize, 128, 32, 10];
    let mut layers = Vec::new();
    for (i, w) in dims.windows(2).enumerate() {
        let (ind, outd) = (w[0], w[1]);
        let act = if i + 2 == dims.len() {
            Activation::Identity
        } else {
            Activation::Relu
        };
        layers.push((
            data::random_f32(ind * outd, 900 + i as u64, (2.0 / ind as f32).sqrt()),
            data::random_f32(outd, 950 + i as u64, 0.1),
            act,
        ));
    }
    let input = data::random_f32(dims[0], 999, 1.0);
    cc.take_pass_log();
    let gpu = backprop::forward_gpu(&mut cc, &input, &layers)?;
    let cpu = backprop::cpu_reference(&input, &layers);
    let max_rel = gpu
        .iter()
        .zip(&cpu)
        .map(|(g, c)| (g - c).abs() / c.abs().max(1e-6))
        .fold(0.0f32, f32::max);
    println!(
        "\n{}-{}-{}-{} network logits (GPU):",
        dims[0], dims[1], dims[2], dims[3]
    );
    for (i, v) in gpu.iter().enumerate() {
        println!("  class {i}: {v:>9.4}");
    }
    println!("max relative deviation vs CPU reference: {max_rel:.2e}");
    println!("\nper-layer passes:");
    for pass in cc.pass_log() {
        println!(
            "  {:<16} {:>6} fragments, {:>8} ALU ops",
            pass.kernel, pass.stats.fragments_shaded, pass.stats.fs_profile.alu_ops
        );
    }
    Ok(())
}
