//! Serving-engine demo: a pool of worker contexts drains a queue of
//! compute requests behind one process-wide program cache.
//!
//! Run with `cargo run --example serving_engine`.

use gpes::core::serve::StepInput;
use gpes::glsl::Value;
use gpes::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 2048;
    const REQUESTS: usize = 32;

    let engine = Engine::builder().workers(4).build()?;
    println!(
        "engine up: {} workers, shared program cache ({} entries)",
        engine.workers(),
        engine.cache().map(|c| c.len()).unwrap_or(0),
    );

    // One spec, many requests — the serving analog of CNNdroid running
    // one compiled layer over a stream of inputs.
    let saxpy = Arc::new(
        KernelSpec::new("saxpy")
            .input("x")
            .input("y")
            .uniform_f32("alpha", 1.0)
            .output(N)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
    );
    let x: Arc<Vec<f32>> = Arc::new((0..N).map(|i| i as f32 * 0.25).collect());
    let y: Arc<Vec<f32>> = Arc::new((0..N).map(|i| 100.0 - i as f32 * 0.125).collect());

    let start = Instant::now();
    let handles: Vec<_> = (0..REQUESTS)
        .map(|r| {
            let job = Job::new(&saxpy)
                .data_shared(&x)
                .data_shared(&y)
                .uniform_f32("alpha", r as f32 + 0.5);
            engine.submit(job).expect("submit")
        })
        .collect();
    for (r, handle) in handles.into_iter().enumerate() {
        let out = handle.wait()?;
        let expect = (r as f32 + 0.5) * x[7] + y[7];
        assert_eq!(out[7], expect);
    }
    let elapsed = start.elapsed();
    println!(
        "{REQUESTS} saxpy requests ({N} elements each) in {:.1} ms — {:.0} jobs/s",
        elapsed.as_secs_f64() * 1e3,
        REQUESTS as f64 / elapsed.as_secs_f64(),
    );

    // A batched DAG: blur → gain chained on the GPU, one queue trip.
    let blur = Arc::new(
        KernelSpec::new("blur3")
            .input("x")
            .uniform_f32("last", N as f32 - 1.0)
            .output(N)
            .body(
                "float a = fetch_x(max(idx - 1.0, 0.0));\n\
                 float b = fetch_x(idx);\n\
                 float c = fetch_x(min(idx + 1.0, last));\n\
                 return (a + b + c) / 3.0;",
            ),
    );
    let gain = Arc::new(
        KernelSpec::new("gain")
            .input("x")
            .uniform_f32("gain", 1.0)
            .output(N)
            .body("return fetch_x(idx) * gain;"),
    );
    let mut sub = Submission::new();
    let s0 = sub.step(&blur, vec![StepInput::Data(Arc::clone(&x))], vec![]);
    let s1 = sub.step(
        &gain,
        vec![s0.into()],
        vec![("gain".to_owned(), Value::Float(2.0))],
    );
    sub.read(s1);
    let batch = engine.submit_batch(sub)?.wait()?;
    println!(
        "batch DAG blur→gain done; output[1] = {}",
        batch.output(s1).expect("marked step")[1]
    );

    // A whole retained pipeline as one job: x ← blur(x) four times, all
    // iterations on the worker's GPU, the built pipeline cached by spec
    // hash so repeat submissions link nothing and allocate nothing.
    let smooth = Arc::new(
        PipelineSpec::builder("smooth4")
            .source_len("x", N)
            .pass(PassSpec::new(&blur).read("x", "x").write_len("x", N))
            .iterations(4)
            .build()?,
    );
    // Constant inputs can be made resident: uploaded once per worker,
    // then referenced by every later job without a host→GPU transfer.
    let resident_x = ResidentInput::new(x.as_ref().clone());
    for wave in 0..3 {
        let job = PipelineJob::new(&smooth)
            .source_resident(&resident_x)
            .read("x");
        let result = engine.submit_pipeline(job)?.wait()?;
        println!(
            "pipeline wave {wave}: smooth4 output[1] = {}",
            result.output("x").expect("marked buffer")[1]
        );
    }
    let residents = engine.resident_stats();
    println!(
        "resident uploads {} / hits {} across {} workers",
        residents.iter().map(|s| s.uploads).sum::<u64>(),
        residents.iter().map(|s| s.hits).sum::<u64>(),
        engine.workers(),
    );

    println!(
        "programs linked process-wide: {} (over {} dispatches on {} workers)",
        engine.programs_linked(),
        REQUESTS + 2,
        engine.workers(),
    );

    // Traffic-shaped serving: a deliberately tight queue so admission
    // visibly pushes back. try_submit never blocks — a full queue is a
    // typed QueueFull the caller handles (here: drain one completion
    // and retry); expired deadlines are shed before any GPU work, and
    // a CompletionSet multiplexes every in-flight handle on one wait.
    let bounded = Engine::builder().workers(2).queue_capacity(4).build()?;
    let mut set = CompletionSet::new();
    let (mut admitted, mut rejected) = (0u32, 0u32);
    while admitted < 24 {
        let mut job = Job::new(&saxpy)
            .data_shared(&x)
            .data_shared(&y)
            .uniform_f32("alpha", 2.0);
        if admitted.is_multiple_of(6) {
            // An SLO the queue has already blown: shed, not executed.
            job = job.timeout(std::time::Duration::ZERO);
        }
        match bounded.try_submit(job) {
            Ok(handle) => {
                set.insert(handle);
                admitted += 1;
            }
            Err(ComputeError::QueueFull { .. }) => {
                rejected += 1;
                if let Some((_token, result)) = set.wait_any() {
                    match result {
                        Ok(_) | Err(ComputeError::DeadlineExceeded { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    while let Some((_token, result)) = set.wait_any() {
        match result {
            Ok(_) | Err(ComputeError::DeadlineExceeded { .. }) => {}
            Err(e) => return Err(e.into()),
        }
    }
    let snap = bounded.snapshot();
    println!(
        "bounded engine: {admitted} admitted, {rejected} rejected at the bound; \
         snapshot: {} completed, {} rejected, {} shed (balanced: {})",
        snap.completed,
        snap.rejected,
        snap.shed,
        snap.counters_balanced(),
    );
    println!(
        "queue wait   {}\nservice time {}",
        snap.queue_latency.format_summary(),
        snap.service_latency.format_summary(),
    );

    // Self-healing under injected faults: a seeded FaultPlan arms every
    // driver failure site and loses the worker's GL context mid-wave.
    // The engine retries transient failures and rebuilds the lost
    // context (shared programs re-adopted, residents re-uploaded
    // lazily), so every wave still completes bit-identically — chaos
    // shows up only in the snapshot's diagnostic counters.
    let chaotic = Engine::builder()
        .workers(1)
        .fault_plan(
            FaultPlan::new(0xC0FFEE)
                .fail_next(FaultSite::Readback, 3)
                .lose_context_after(10),
        )
        .retry_policy(RetryPolicy {
            max_attempts: 6,
            backoff: std::time::Duration::ZERO,
        })
        .build()?;
    let reference = {
        let handle = engine.submit(
            Job::new(&saxpy)
                .data_shared(&x)
                .data_shared(&y)
                .uniform_f32("alpha", 3.5),
        )?;
        handle.wait()?
    };
    for wave in 0..8 {
        let out = chaotic
            .submit(
                Job::new(&saxpy)
                    .data_shared(&x)
                    .data_shared(&y)
                    .uniform_f32("alpha", 3.5),
            )?
            .wait()?;
        assert_eq!(out, reference, "wave {wave} diverged under chaos");
    }
    let chaos = chaotic.snapshot();
    println!(
        "chaos engine: 8 waves bit-identical through {} injected faults — \
         {} retried, {} context rebuilt, {} failed (balanced: {})",
        chaos.faults_injected,
        chaos.retried,
        chaos.recovered_contexts,
        chaos.failed,
        chaos.counters_balanced(),
    );
    assert_eq!(chaos.recovered_contexts, 1);
    Ok(())
}
