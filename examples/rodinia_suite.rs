//! The §III-8 claim as a runnable demonstration: "most GPGPU kernels
//! provide a single output. In fact all benchmarks of Rodinia suite fit
//! in these two cases" (single-output, or split into one kernel per
//! output).
//!
//! Runs the whole Rodinia-style suite through the framework, validates
//! every kernel against its CPU reference, and reports how each one maps
//! onto the single-output fragment model.
//!
//! ```text
//! cargo run --release --example rodinia_suite
//! ```

use gpes::kernels::{backprop, data, gaussian, hotspot, kmeans, nn, pathfinder, srad};
use gpes::prelude::*;

struct SuiteRow {
    name: &'static str,
    mapping: &'static str,
    passes: usize,
    fragments: u64,
    validated: bool,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();

    // nn — one output per record: the single-output case.
    {
        let mut cc = ComputeContext::new(64, 64)?;
        let n = 1500;
        let lat = data::random_f32(n, 1, 90.0);
        let lng = data::random_f32(n, 2, 180.0);
        let ga = cc.upload(&lat)?;
        let gb = cc.upload(&lng)?;
        let k = nn::build(&mut cc, &ga, &gb, [12.0, -7.5])?;
        let gpu = cc.run_f32(&k)?;
        let validated = gpu == nn::cpu_reference(&lat, &lng, [12.0, -7.5]);
        rows.push(finish(&mut cc, "nn", "single output", validated));
    }

    // hotspot — one temperature per cell, iterated: single output chained.
    {
        let mut cc = ComputeContext::new(64, 64)?;
        let (r, c) = (24usize, 24usize);
        let t = data::random_f32(r * c, 3, 80.0);
        let p = data::random_f32(r * c, 4, 5.0);
        let gt = cc.upload_matrix(r as u32, c as u32, &t)?;
        let gp = cc.upload_matrix(r as u32, c as u32, &p)?;
        let k = hotspot::build(&mut cc, &gt, &gp, hotspot::HotspotParams::default())?;
        let gpu = cc.run_f32(&k)?;
        let validated =
            gpu == hotspot::cpu_reference(r, c, &t, &p, hotspot::HotspotParams::default());
        rows.push(finish(
            &mut cc,
            "hotspot",
            "single output, chained",
            validated,
        ));
    }

    // pathfinder — DP row sweep: single output per row, chained passes.
    {
        let mut cc = ComputeContext::new(64, 64)?;
        let (r, c) = (12usize, 48usize);
        let wall: Vec<f32> = data::random_f32(r * c, 5, 9.0)
            .into_iter()
            .map(f32::abs)
            .collect();
        let gpu = pathfinder::run_gpu(&mut cc, r, c, &wall)?;
        let validated = gpu == pathfinder::cpu_reference(r, c, &wall);
        rows.push(finish(
            &mut cc,
            "pathfinder",
            "single output, chained",
            validated,
        ));
    }

    // srad — wants coefficient AND image per step: the split case.
    {
        let mut cc = ComputeContext::new(64, 64)?;
        let (r, c) = (16usize, 16usize);
        let img: Vec<f32> = data::random_f32(r * c, 6, 40.0)
            .into_iter()
            .map(|v| v.abs() + 10.0)
            .collect();
        let gpu = srad::run_gpu(&mut cc, r, c, &img, srad::SradParams::default(), 2)?;
        let validated = gpu == srad::cpu_reference(r, c, &img, srad::SradParams::default(), 2);
        rows.push(finish(
            &mut cc,
            "srad",
            "SPLIT: 2 kernels/step (§III-8)",
            validated,
        ));
    }

    // kmeans — assignment is single-output (u8 indices); the reduction
    // half stays on the CPU, as the paper's model favours.
    {
        let mut cc = ComputeContext::new(64, 64)?;
        let points: Vec<(f32, f32)> = data::random_f32(800, 7, 30.0)
            .into_iter()
            .zip(data::random_f32(800, 8, 30.0))
            .collect();
        let centroids = vec![(-20.0, -20.0), (0.0, 0.0), (20.0, 20.0), (30.0, -10.0)];
        let gpu = kmeans::run_gpu(&mut cc, &points, &centroids)?;
        let validated = gpu == kmeans::cpu_reference(&points, &centroids);
        rows.push(finish(
            &mut cc,
            "kmeans",
            "single output (u8 argmin)",
            validated,
        ));
    }

    // gaussian — Fan1 (multipliers) + Fan2 (update): the split case,
    // chained over elimination columns.
    {
        let mut cc = ComputeContext::new(64, 64)?;
        let n = 12;
        let mut a = data::random_f32(n * n, 9, 1.0);
        for i in 0..n {
            a[i * n + i] += n as f32 + 1.0;
        }
        let b = data::random_f32(n, 10, 10.0);
        let gpu = gaussian::solve_gpu(&mut cc, n, &a, &b)?;
        let validated = gpu == gaussian::cpu_reference(n, &a, &b)?;
        rows.push(finish(
            &mut cc,
            "gaussian",
            "SPLIT: Fan1+Fan2 per column",
            validated,
        ));
    }

    // backprop — one neuron per fragment, one kernel per layer.
    {
        let mut cc = ComputeContext::new(64, 64)?;
        let input = data::random_f32(32, 11, 1.0);
        let layers = vec![
            (
                data::random_f32(32 * 16, 12, 0.25),
                data::random_f32(16, 13, 0.1),
                backprop::Activation::Sigmoid,
            ),
            (
                data::random_f32(16 * 4, 14, 0.25),
                data::random_f32(4, 15, 0.1),
                backprop::Activation::Identity,
            ),
        ];
        let gpu = backprop::forward_gpu(&mut cc, &input, &layers)?;
        let cpu = backprop::cpu_reference(&input, &layers);
        let validated = gpu
            .iter()
            .zip(&cpu)
            .all(|(g, c)| (g - c).abs() <= 4.0 * f32::EPSILON * c.abs().max(1.0));
        rows.push(finish(
            &mut cc,
            "backprop",
            "single output, one kernel/layer",
            validated,
        ));
    }

    println!("§III-8: every Rodinia-style kernel fits the single-output model");
    println!();
    println!(
        "{:<12} {:<34} {:>6} {:>10}  validated",
        "kernel", "mapping", "passes", "fragments"
    );
    println!("{}", "-".repeat(78));
    let mut all_ok = true;
    for row in &rows {
        println!(
            "{:<12} {:<34} {:>6} {:>10}  {}",
            row.name,
            row.mapping,
            row.passes,
            row.fragments,
            if row.validated { "yes" } else { "NO" }
        );
        all_ok &= row.validated;
    }
    println!("{}", "-".repeat(78));
    println!("all kernels bit-exact (or ulp-bounded for exp()) vs CPU: {all_ok}");
    assert!(all_ok);
    Ok(())
}

fn finish(
    cc: &mut ComputeContext,
    name: &'static str,
    mapping: &'static str,
    validated: bool,
) -> SuiteRow {
    let log = cc.take_pass_log();
    SuiteRow {
        name,
        mapping,
        passes: log.len(),
        fragments: log.iter().map(|p| p.stats.fragments_shaded).sum(),
        validated,
    }
}
