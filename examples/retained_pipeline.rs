//! The compile/bind split and the retained `Pipeline` API: a heat-diffusion
//! loop declared once and iterated with zero in-loop shader compiles and —
//! in steady state — zero new GL objects.
//!
//! ```text
//! cargo run --example retained_pipeline [steps]
//! ```

use gpes::kernels::{data, hotspot};
use gpes::prelude::*;
use gpes_glsl::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let (rows, cols) = (24usize, 24usize);
    let t0 = vec![20.0f32; rows * cols];
    let mut p = vec![0.0f32; rows * cols];
    p[rows / 2 * cols + cols / 2] = 400.0; // one hot cell in the middle

    let mut cc = ComputeContext::new(64, 64)?;
    let params = hotspot::HotspotParams::default();
    let out = hotspot::run_gpu(&mut cc, rows, cols, &t0, &p, params, steps)?;
    let centre = out[rows / 2 * cols + cols / 2];
    let corner = out[0];
    println!("hotspot after {steps} Jacobi steps on a {rows}x{cols} grid:");
    println!("  centre cell: {centre:.2} (heated)   corner cell: {corner:.2}");

    let stats = cc.stats();
    println!("\nhost-side object churn ({} passes executed):", steps);
    println!("  programs linked:     {}", stats.programs_linked);
    println!("  program cache hits:  {}", stats.program_cache_hits);
    println!("  textures created:    {}", stats.textures_created);
    println!("  texture pool hits:   {}", stats.texture_pool_hits);

    // The same machinery, hand-declared: a saxpy-style update iterated
    // with a per-iteration uniform.
    let x = cc.upload(&data::random_f32(1024, 11, 1.0))?;
    let k = Kernel::builder("scale_step")
        .input("x", &x)
        .uniform_f32("gain", 1.0)
        .output(ScalarType::F32, 1024)
        .body("return fetch_x(idx) * gain;")
        .build(&mut cc)?;
    let before = cc.stats();
    let pipe = Pipeline::builder("geometric")
        .source("x", &x)
        .pass(
            Pass::new(&k)
                .read("x", "x")
                .write_len("x", 1024)
                .uniform_per_iter("gain", |i| Value::Float(1.0 + 1.0 / (i + 1) as f32)),
        )
        .iterations(12)
        .build()?;
    let out = pipe.run_and_read::<f32>(&mut cc, "x")?;
    let after = cc.stats();
    println!(
        "\n12-iteration pipeline over 1024 elements: first element {:.3}",
        out[0]
    );
    println!(
        "  programs linked during the loop: {}   new textures: {}",
        after.programs_linked - before.programs_linked,
        after.textures_created - before.textures_created,
    );
    assert_eq!(after.programs_linked, before.programs_linked);
    Ok(())
}
