//! Figure 1 as runnable code: watch one GPGPU draw traverse the graphics
//! pipeline stage by stage.
//!
//! ```text
//! cargo run --example pipeline_trace
//! ```

use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cc = ComputeContext::new(64, 64)?;
    let data: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5).collect();
    let arr = cc.upload(&data)?;

    let kernel = Kernel::builder("trace")
        .input("x", &arr)
        .output(ScalarType::F32, data.len())
        .body("return fetch_x(idx) + 1.0;")
        .build(&mut cc)?;
    let _ = cc.run_f32(&kernel)?;
    let stats = cc.pass_log()[0].stats;

    println!("the graphics pipeline (Figure 1), one GPGPU pass:\n");
    println!("  [vertex data]    6 vertices of the screen-covering quad");
    println!("        |          (two triangles — ES 2 has no quad primitive)");
    println!("        v");
    println!(
        "  [vertex shader]  {} invocations (pass-through)",
        stats.vertices_shaded
    );
    println!("        v");
    println!(
        "  [assembly]       {} triangles in, {} rasterised",
        stats.triangles_in, stats.triangles_rasterized
    );
    println!("        v");
    println!("  [rasteriser]     top-left fill rule: shared diagonal shaded once");
    println!("        v");
    println!(
        "  [fragment shader]{:>6} invocations  ({} ALU / {} SFU / {} fetches)",
        stats.fragments_shaded,
        stats.fs_profile.alu_ops,
        stats.fs_profile.sfu_ops,
        stats.fs_profile.tex_fetches
    );
    println!("        v");
    println!(
        "  [framebuffer]    {} pixels written as clamped bytes (eq. 2)",
        stats.pixels_written
    );
    println!("        v");
    println!("  [glReadPixels]   the only road back to the CPU (workaround #7)");

    // The quad pass shades the whole near-square output texture, so the
    // fragment count is the padded texel count (32x32 for 1000 elements),
    // not the payload length.
    let texels = kernel.output_layout().texel_count() as u64;
    assert_eq!(stats.fragments_shaded, texels);
    assert!(texels >= data.len() as u64);
    Ok(())
}
