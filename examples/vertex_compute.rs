//! Vertex-stage compute (§III-1): the same saxpy computed in *both*
//! programmable stages — inputs as vertex attributes + a pass-through
//! fragment shader, versus inputs as textures + a pass-through vertex
//! shader — producing identical bytes.
//!
//! ```text
//! cargo run --example vertex_compute
//! ```

use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cc = ComputeContext::new(64, 64)?;
    let n = 24usize;
    let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5).collect();
    let y: Vec<f32> = (0..n).map(|i| 100.0 - i as f32).collect();
    let alpha = 4.0f32;

    // Stage 1 candidate: vertex shader computes, fragment shader packs.
    // Work items travel as POINTS, one per output pixel; inputs ride in
    // vertex attributes (works even without vertex texture fetch).
    let vk = VertexKernel::builder("saxpy_vertex")
        .input("x", &x)
        .input("y", &y)
        .uniform_f32("alpha", alpha)
        .output(ScalarType::F32, n)
        .body("return alpha * x + y;")
        .build(&mut cc)?;
    let via_vertex: Vec<f32> = vk.run_and_read(&mut cc)?;

    // Stage 2 candidate: the usual fragment-stage kernel.
    let gx = cc.upload(&x)?;
    let gy = cc.upload(&y)?;
    let fk = Kernel::builder("saxpy_fragment")
        .input("x", &gx)
        .input("y", &gy)
        .uniform_f32("alpha", alpha)
        .output(ScalarType::F32, n)
        .body("return alpha * fetch_x(idx) + fetch_y(idx);")
        .build(&mut cc)?;
    let via_fragment = cc.run_f32(&fk)?;

    println!("vertex-stage result:   {:?}", &via_vertex[..6]);
    println!("fragment-stage result: {:?}", &via_fragment[..6]);
    println!("bit-identical: {}", via_vertex == via_fragment);
    assert_eq!(via_vertex, via_fragment);

    println!("\nwhere the arithmetic ran (operation profiles):");
    for pass in cc.pass_log() {
        println!(
            "  {:<16} vs-stage ALU {:>5}   fs-stage ALU {:>5}",
            pass.kernel, pass.stats.vs_profile.alu_ops, pass.stats.fs_profile.alu_ops
        );
    }
    println!("\nthe vertex kernel's computation shader:");
    for line in vk.vertex_source().lines() {
        println!("  {line}");
    }
    Ok(())
}
