//! Figure 2 + the §V precision experiment, interactively:
//! byte layouts of the float rotation, and mantissa accuracy under the
//! three simulated float models.
//!
//! ```text
//! cargo run --release --example precision_probe
//! ```

use gpes::core::codec::float32;
use gpes::kernels::data;
use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 2 — IEEE 754 vs rotated texel layout");
    println!("{:>14}  {:<14} {:<14}", "value", "ieee (LE)", "texel");
    for v in [1.0f32, -1.0, 0.5, 255.0, std::f32::consts::PI, -6.25e-3] {
        let ieee = v.to_bits().to_le_bytes();
        let tex = float32::encode(v);
        println!(
            "{v:>14}  {:02x} {:02x} {:02x} {:02x}    {:02x} {:02x} {:02x} {:02x}",
            ieee[0], ieee[1], ieee[2], ieee[3], tex[0], tex[1], tex[2], tex[3]
        );
    }

    println!("\n§V precision — scale-by-3 kernel vs exact CPU (4096 random values)");
    let values = data::random_f32(4096, 42, 1.0e10);
    for model in [FloatModel::Exact, FloatModel::Vc4Sfu, FloatModel::Mediump16] {
        let mut cc = ComputeContext::new(128, 128)?;
        cc.set_float_model(model);
        let arr = cc.upload(&values)?;
        let kernel = Kernel::builder("scale3")
            .input("x", &arr)
            .output(ScalarType::F32, values.len())
            .body("return fetch_x(idx) * 3.0;")
            .build(&mut cc)?;
        let out = cc.run_f32(&kernel)?;
        let mut min_bits = 23u32;
        let mut sum_bits = 0u64;
        for (&v, &o) in values.iter().zip(&out) {
            let bits = float32::mantissa_agreement_bits(v * 3.0, o);
            min_bits = min_bits.min(bits);
            sum_bits += bits as u64;
        }
        println!(
            "  {:<10}  min {:>2} bits   mean {:>5.2} bits of 23",
            format!("{model:?}"),
            min_bits,
            sum_bits as f64 / values.len() as f64
        );
    }
    println!("\npaper: GPU accurate within the 15 most significant mantissa bits;");
    println!("       the same transformations on the CPU are precise (Exact row).");
    Ok(())
}
