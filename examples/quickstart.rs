//! Quickstart: element-wise `a + b` on the simulated GLES2 GPU.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compute context whose default framebuffer ("screen") is 64x64 —
    // final results are read back through it, as ES 2 requires.
    let mut cc = ComputeContext::new(64, 64)?;

    let a: Vec<f32> = (0..16).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..16).map(|i| (i * 100) as f32).collect();

    // Upload: each f32 becomes 4 texel bytes with the paper's §IV-E
    // sign/exponent rotation.
    let ga = cc.upload(&a)?;
    let gb = cc.upload(&b)?;

    // A kernel is a GLSL ES 1.00 fragment program; the framework adds the
    // codec library, fetch helpers and output packing around your body.
    let kernel = Kernel::builder("add")
        .input("a", &ga)
        .input("b", &gb)
        .output(ScalarType::F32, a.len())
        .body("return fetch_a(idx) + fetch_b(idx);")
        .build(&mut cc)?;

    let result = cc.run_f32(&kernel)?;
    println!("a + b = {result:?}");
    assert_eq!(
        result,
        (0..16).map(|i| (i * 101) as f32).collect::<Vec<_>>()
    );

    // The generated fragment shader is plain GLSL ES 1.00 — paste it into
    // a real GLES2 app unchanged.
    println!("\n--- generated fragment shader ---");
    for line in kernel.fragment_source().lines().take(12) {
        println!("{line}");
    }
    println!(
        "… ({} lines total)",
        kernel.fragment_source().lines().count()
    );

    let stats = cc.pass_log().last().expect("one pass ran").stats;
    println!("\nfragments shaded: {}", stats.fragments_shaded);
    println!(
        "fragment ops: {} ALU, {} SFU, {} texture fetches",
        stats.fs_profile.alu_ops, stats.fs_profile.sfu_ops, stats.fs_profile.tex_fetches
    );
    Ok(())
}
