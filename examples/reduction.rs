//! Multi-pass GPU reduction: summing a million-ish element array through
//! render-to-texture chains (workaround #7 in action).
//!
//! ```text
//! cargo run --release --example reduction [n]
//! ```

use gpes::kernels::data;
use gpes::kernels::reduce::{self, ReduceOp};
use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    println!("reducing {n} random f32 values on the GPU");

    let values = data::random_f32(n, 7, 100.0);
    let mut cc = ComputeContext::new(256, 256)?;
    let arr = cc.upload(&values)?;

    let gpu_sum = reduce::gpu_reduce(&mut cc, &arr, ReduceOp::Sum)?;
    let cpu_sum = reduce::cpu_reference(&values, ReduceOp::Sum);
    println!("gpu tree-sum: {gpu_sum}");
    println!(
        "cpu tree-sum: {cpu_sum}  (same fold order → bit-identical: {})",
        gpu_sum == cpu_sum
    );

    let gpu_max = reduce::gpu_reduce(&mut cc, &arr, ReduceOp::Max)?;
    println!("gpu max:      {gpu_max}");

    println!(
        "\npasses executed (each renders into a texture {}x smaller):",
        reduce::FANIN
    );
    for (i, pass) in cc.pass_log().iter().enumerate() {
        println!(
            "  pass {:>2}: {:<12} {:>8} fragments",
            i + 1,
            pass.kernel,
            pass.stats.fragments_shaded
        );
    }
    Ok(())
}
