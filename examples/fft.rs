//! GPU FFT over the graphics pipeline — the paper's reference [6]
//! (`GPU_FFT` on the VideoCore IV) redone portably with the §III/§IV
//! framework: each Stockham stage is two single-output fragment kernels
//! (workaround #8), chained through render-to-texture (workaround #7).
//!
//! ```text
//! cargo run --release --example fft [n]
//! ```

use gpes::kernels::data;
use gpes::kernels::fft::{self, Direction};
use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    if !n.is_power_of_two() {
        return Err(format!("n = {n} must be a power of two").into());
    }

    // A noisy two-tone signal.
    let tone = |k: f32, j: usize| (2.0 * std::f32::consts::PI * k * j as f32 / n as f32).sin();
    let noise = data::random_f32(n, 42, 0.1);
    let re: Vec<f32> = (0..n)
        .map(|j| 1.0 * tone(3.0, j) + 0.5 * tone(17.0, j) + noise[j])
        .collect();
    let im = vec![0.0f32; n];

    let mut cc = ComputeContext::new(64, 64)?;
    let (fre, fim) = fft::run_gpu(&mut cc, &re, &im, Direction::Forward)?;

    // The CPU mirror executes the same butterflies in the same order.
    let (cre, cim) = fft::cpu_reference(&re, &im, Direction::Forward);
    println!(
        "GPU vs CPU mirror bit-identical: {}",
        fre == cre && fim == cim
    );

    println!("\nstrongest spectrum bins (|X[k]|, first half):");
    let mut bins: Vec<(usize, f32)> = (0..n / 2)
        .map(|k| (k, (fre[k] * fre[k] + fim[k] * fim[k]).sqrt()))
        .collect();
    bins.sort_by(|a, b| b.1.total_cmp(&a.1));
    for &(k, mag) in bins.iter().take(5) {
        println!("  bin {k:>4}: {mag:>10.3}");
    }
    println!("(tones were injected at bins 3 and 17)");

    // Round trip: inverse of the forward transform, scaled by 1/N.
    let (ire, _iim) = fft::run_gpu(&mut cc, &fre, &fim, Direction::Inverse)?;
    let max_err = re
        .iter()
        .zip(&ire)
        .map(|(orig, inv)| (orig - inv / n as f32).abs())
        .fold(0.0f32, f32::max);
    println!("\nifft(fft(x))/N max error: {max_err:.2e}");

    let passes = cc.pass_log().len();
    println!(
        "\n{} fragment passes total ({} stages x 2 kernels x 2 transforms) — \n\
         the butterfly's two outputs forced the §III-8 kernel split.",
        passes,
        n.ilog2()
    );
    Ok(())
}
