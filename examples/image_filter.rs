//! Image processing through the GPGPU framework: the native-byte path
//! (§IV-A) running 3×3 filters over a procedurally generated image.
//!
//! ```text
//! cargo run --example image_filter
//! ```

use gpes::kernels::conv3x3::{self, Filter3x3};
use gpes::prelude::*;

const W: u32 = 48;
const H: u32 = 16;

fn render(label: &str, pixels: &[u8]) {
    const RAMP: &[u8] = b" .:-=+*#%@";
    println!("{label}:");
    for row in (0..H as usize).rev() {
        let line: String = (0..W as usize)
            .map(|col| {
                let v = pixels[row * W as usize + col] as usize;
                RAMP[v * (RAMP.len() - 1) / 255] as char
            })
            .collect();
        println!("  {line}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A procedural "photo": two blobs on a gradient.
    let mut image = vec![0u8; (W * H) as usize];
    for y in 0..H as i32 {
        for x in 0..W as i32 {
            let blob = |cx: i32, cy: i32, r: f32| -> f32 {
                let d2 = ((x - cx).pow(2) + (y - cy).pow(2)) as f32;
                (255.0 * (-d2 / (r * r)).exp()).min(255.0)
            };
            let gradient = x as f32 / W as f32 * 60.0;
            let v = (blob(12, 8, 5.0) + blob(34, 6, 4.0) + gradient).min(255.0);
            image[(y * W as i32 + x) as usize] = v as u8;
        }
    }
    render("input", &image);

    let mut cc = ComputeContext::new(64, 64)?;
    let gm = cc.upload_matrix(H, W, &image)?;

    for (name, filter) in [
        ("box blur", Filter3x3::box_blur()),
        ("sharpen", Filter3x3::sharpen()),
        ("sobel x", Filter3x3::sobel_x()),
    ] {
        let kernel = conv3x3::build(&mut cc, &gm, &filter)?;
        let gpu: Vec<u8> = cc.run_and_read(&kernel)?;
        let cpu = conv3x3::cpu_reference(H as usize, W as usize, &image, &filter, cc.pack_bias());
        assert_eq!(gpu, cpu, "{name} must match the CPU reference");
        println!();
        render(name, &gpu);
    }
    Ok(())
}
