//! The paper's second benchmark: `C ← α·A·B + β·C` on the GPU, validated
//! against the CPU bit-for-bit.
//!
//! ```text
//! cargo run --release --example sgemm [size]
//! ```

use gpes::kernels::{data, sgemm};
use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let (alpha, beta) = (1.25f32, -0.5f32);

    println!("sgemm {size}x{size}, alpha={alpha}, beta={beta}");
    let a = data::random_f32(size * size, 1, 4.0);
    let b = data::random_f32(size * size, 2, 4.0);
    let c = data::random_f32(size * size, 3, 4.0);

    let mut cc = ComputeContext::new(256, 256)?;
    let ga = cc.upload_matrix(size as u32, size as u32, &a)?;
    let gb = cc.upload_matrix(size as u32, size as u32, &b)?;
    let gc = cc.upload_matrix(size as u32, size as u32, &c)?;

    let kernel = sgemm::build_f32(&mut cc, &ga, &gb, &gc, alpha, beta)?;
    let gpu = cc.run_f32(&kernel)?;
    let cpu = sgemm::cpu_reference_f32(size, size, size, &a, &b, &c, alpha, beta);

    let identical = gpu == cpu;
    println!("GPU result bit-identical to CPU reference: {identical}");
    assert!(identical, "same accumulation order must be bit-exact");

    let pass = cc.pass_log().last().expect("pass");
    println!(
        "fragments: {}   ops/texel: {:.1}   texture fetches: {}",
        pass.stats.fragments_shaded,
        pass.ops_per_texel(),
        pass.stats.fs_profile.tex_fetches,
    );
    println!("C[0][0..4] = {:?}", &gpu[..4.min(gpu.len())]);
    Ok(())
}
