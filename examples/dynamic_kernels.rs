//! Dynamic kernel registry demo: tenants submit GLSL kernel source at
//! the serving boundary. Source is admitted through the staged pipeline
//! (signature → parse → Appendix-A strictness → semantic analysis),
//! registered under the tenant's quota ledger, and then served exactly
//! like a compiled-in kernel — while a second tenant discovers that
//! quotas and admission push back with typed errors, never panics.
//!
//! Run with `cargo run --example dynamic_kernels`.

use gpes::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 1024;

    let engine = Engine::builder().workers(2).build()?;
    let registry = engine.registry();

    // ---- Tenant "acme": a well-behaved customer ------------------------
    // Ships kernel source at runtime; nothing about this kernel was known
    // at compile time.
    let window = registry.register(
        "acme",
        KernelSpec::new("hamming_window")
            .input("x")
            .uniform_f32("len", N as f32 - 1.0)
            .output(N)
            .body(
                "float w = 0.54 - 0.46 * cos(2.0 * 3.141592653589793 * idx / len);\n\
                 return w * fetch_x(idx);",
            ),
    )?;
    println!(
        "acme registered `hamming_window` (fingerprint {:#018x})",
        window.fingerprint(),
    );

    let signal: Vec<f32> = (0..N).map(|i| (i as f32 * 0.02).sin()).collect();
    let out = engine.submit(window.job().data(signal.clone()))?.wait()?;
    println!(
        "acme served its dynamic kernel: out[0] = {:.4}, out[{}] = {:.4}",
        out[0],
        N / 2,
        out[N / 2],
    );

    // Identical source registered again — same fingerprint, so the
    // process-wide program cache links nothing new.
    let links_before = engine.programs_linked();
    let again = registry.register(
        "acme",
        KernelSpec::new("hamming_window")
            .input("x")
            .uniform_f32("len", N as f32 - 1.0)
            .output(N)
            .body(
                "float w = 0.54 - 0.46 * cos(2.0 * 3.141592653589793 * idx / len);\n\
                 return w * fetch_x(idx);",
            ),
    )?;
    engine.submit(again.job().data(signal.clone()))?.wait()?;
    println!(
        "re-registered identical source: fingerprints match ({}) and {} new links",
        window.fingerprint() == again.fingerprint(),
        engine.programs_linked() - links_before,
    );

    // ---- Tenant "freeloader": runs into its quotas ---------------------
    // An explicitly zero kernel budget: admission refuses with a typed
    // quota error before any source is even compiled.
    registry.set_quotas("freeloader", TenantQuotas::default().max_kernels(0));
    match registry.register(
        "freeloader",
        KernelSpec::new("wants_in")
            .input("x")
            .output(N)
            .body("return fetch_x(idx);"),
    ) {
        Err(e @ ComputeError::QuotaExceeded { .. }) => {
            println!("freeloader rejected (typed): {e}");
        }
        other => panic!("expected a quota rejection, got {other:?}"),
    }

    // Malformed source from any tenant is refused at the failing stage —
    // the engine, its workers and the other tenants never notice.
    match registry.register(
        "freeloader",
        KernelSpec::new("subtle_typo")
            .input("x")
            .output(N)
            .body("return fetch_x(idxx);"),
    ) {
        Err(e @ ComputeError::AdmissionRejected { .. }) => {
            println!("malformed source rejected (typed): {e}");
        }
        other => panic!("expected an admission rejection, got {other:?}"),
    }

    // The ledger keeps per-tenant score; tenant-tagged rejections also
    // feed the engine's global counters, so the balance identity holds.
    for counters in registry.tenant_counters() {
        println!(
            "tenant {:<12} admitted {}   rejected {}   jobs {}",
            counters.tenant, counters.admitted, counters.rejected, counters.jobs,
        );
    }
    let snapshot = engine.snapshot();
    println!(
        "engine: {} completed, {} rejected (balanced: {})",
        snapshot.completed,
        snapshot.rejected,
        snapshot.counters_balanced(),
    );
    Ok(())
}
