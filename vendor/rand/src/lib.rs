//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the `rand 0.8` API
//! surface it needs: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is SplitMix64 — *not* the ChaCha12 generator of the real
//! `StdRng` — so sequences differ from upstream `rand`. The workspace only
//! relies on per-seed determinism, which this provides. See
//! `vendor/README.md` for the swap-back-to-crates.io recipe.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose sequence is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, matching the subset of `rand::Rng` used
/// by this workspace.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports `a..b` and `a..=b` over the primitive integer types and
    /// `f32`/`f64`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample itself — the object backing
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                ((self.start as i128) + (r as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = (rng.next_u64() as u128) % span;
                ((lo as i128) + (r as i128)) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (self.start as f64 + (self.end as f64 - self.start as f64) * unit) as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                (v as $t).clamp(lo, hi)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64, not
    /// ChaCha12 — sequences differ from upstream, determinism does not).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014) — public domain.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..=1000), b.gen_range(0u32..=1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..=u32::MAX)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..=u32::MAX)).collect();
        assert_ne!(va, vb);
    }
}
