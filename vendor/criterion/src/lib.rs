//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal benchmark harness with the same spelling as the real
//! `criterion`: [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size`/`throughput`/`bench_function`/
//! `bench_with_input`/`finish`), [`Bencher::iter`], [`BenchmarkId`] and
//! [`Throughput`].
//!
//! It measures for real — each benchmark runs a short warm-up then timed
//! iterations and prints a mean per-iteration time (and throughput when
//! declared) — but does no statistical analysis, outlier rejection, or
//! HTML reporting. The measurement budget per benchmark is intentionally
//! tiny (default ≈60 ms) so a full `cargo bench` stays fast; raise it with
//! `CRITERION_SHIM_MS`. See `vendor/README.md` for the swap-back recipe.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the workspace's benches use).
pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(60);
    Duration::from_millis(ms.max(1))
}

/// The benchmark context handed to `criterion_group!` target functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: budget() }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let budget = self.budget;
        run_one(&id.to_string(), None, budget, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its sample from a
    /// wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the amount of work one iteration represents, enabling
    /// elements/bytes-per-second reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, self.criterion.budget, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, self.criterion.budget, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` until the measurement budget is
    /// spent, recording the total for the mean report.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (not recorded).
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(label: &str, throughput: Option<Throughput>, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<50} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let mut line = format!(
        "{label:<50} {:>12}  ({} iters)",
        format_time(per_iter),
        bencher.iters
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  {:.3} Melem/s", n as f64 / per_iter / 1.0e6));
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            line.push_str(&format!("  {:.3} MB/s", n as f64 / per_iter / 1.0e6));
        }
        None => {}
    }
    println!("{line}");
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1.0e-3 {
        format!("{:.3} ms", seconds * 1.0e3)
    } else if seconds >= 1.0e-6 {
        format!("{:.3} µs", seconds * 1.0e6)
    } else {
        format!("{:.1} ns", seconds * 1.0e9)
    }
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes (binary prefixes upstream).
    Bytes(u64),
    /// Iteration processes this many bytes (decimal prefixes upstream).
    BytesDecimal(u64),
}

/// A benchmark identifier: a function name, an optional parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name: Some(name),
            parameter: None,
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => f.write_str(n),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("?"),
        }
    }
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        std::env::set_var("CRITERION_SHIM_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(count > 0);
    }
}
