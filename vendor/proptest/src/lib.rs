//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing engine with the same spelling as the
//! real `proptest`: the [`proptest!`] macro (both `name: Type` and
//! `name in strategy` parameter forms, plus `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], [`prop_oneof!`], [`Just`],
//! range/collection/regex-literal strategies and `num::f32` class
//! strategies.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case seed
//!   and generated inputs (via the assertion message) but is not minimised.
//! * **Bounded cases.** The effective case count is
//!   `min(requested, PROPTEST_CASES)` with `PROPTEST_CASES` defaulting to
//!   64, so the full suite stays fast; export `PROPTEST_CASES=1024` for a
//!   deeper run. Setting the variable always wins, in both directions.
//! * **Deterministic.** Every test derives its RNG stream from the test
//!   path and case index, so failures reproduce without a seed file.
//!
//! See `vendor/README.md` for the swap-back-to-crates.io recipe.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic stream used to drive all strategies, delegating to the
/// sibling `vendor/rand` shim (one SplitMix64 implementation per
/// workspace, mirroring upstream where proptest builds on rand).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
}

impl TestRng {
    /// Creates a generator whose output is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Derives a stable 64-bit seed from a test's path (FNV-1a).
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Requested number of cases (before the `PROPTEST_CASES` bound).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config requesting exactly `cases` cases (still subject to the
    /// `PROPTEST_CASES` bound — see [`effective_cases`]).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Default ceiling applied when `PROPTEST_CASES` is unset, keeping
/// `cargo test -q` fast (ISSUE 1 satellite: bounded case count).
pub const DEFAULT_CASE_BOUND: u32 = 64;

/// Resolves the number of cases actually run: `PROPTEST_CASES` wins when
/// set (in either direction); otherwise `requested` capped at
/// [`DEFAULT_CASE_BOUND`].
pub fn effective_cases(requested: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
    {
        Some(n) => n.max(1),
        None => requested.clamp(1, DEFAULT_CASE_BOUND),
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A failed property case (the `Err` of a generated test body).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of one type — the (non-shrinking) counterpart of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy for heterogeneous collections
    /// ([`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value, like `proptest::prop::Just`.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of one value type — the
/// engine behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

// Range sampling delegates to the vendor/rand shim so the workspace has
// exactly one uniform-sampling implementation.
macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_single(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample_single(self.clone(), rng)
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

// ---------------------------------------------------------------------------
// Arbitrary + any()
// ---------------------------------------------------------------------------

/// Whole-domain generation for a type, backing the `name: Type` parameter
/// form of [`proptest!`] and [`any`].
pub trait Arbitrary: Sized {
    /// Draws a value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy over a type's whole [`Arbitrary`] domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------------

/// `&str` patterns act as string strategies, like in the real `proptest`.
///
/// Only the shapes this workspace uses are supported: a sequence of
/// literal characters and `[...]` character classes (with `a-b` ranges and
/// `\n`/`\t`/`\\` escapes), each optionally followed by `{min,max}`.
/// Unsupported syntax panics with a clear message rather than silently
/// generating the wrong distribution.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut out = String::new();
    while i < chars.len() {
        // 1. one atom: a char class or a literal character
        let atom: Vec<char> = if chars[i] == '[' {
            let (set, next) = parse_class(&chars, i + 1, pattern);
            i = next;
            set
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                unescape(chars.get(i).copied(), pattern)
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // 2. optional {min,max} repetition
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{}} in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = body
                .split_once(',')
                .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
            i = close + 1;
            (
                lo.trim().parse::<usize>().expect("bad repetition bound"),
                hi.trim().parse::<usize>().expect("bad repetition bound"),
            )
        } else {
            (1, 1)
        };
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(atom[rng.below(atom.len() as u64) as usize]);
        }
    }
    out
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some('\\') => '\\',
        Some(c @ ('[' | ']' | '{' | '}' | '-' | '#')) => c,
        other => panic!("unsupported escape {other:?} in pattern {pattern:?}"),
    }
}

/// Parses a `[...]` body starting just after the `[`; returns the expanded
/// character set and the index just past the `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(chars.get(i).copied(), pattern)
        } else {
            chars[i]
        };
        // range `a-b` (a `-` that is not last and not first)
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(c <= hi, "inverted class range in pattern {pattern:?}");
            for code in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "unclosed character class in pattern {pattern:?}"
    );
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    (set, i + 1) // skip ']'
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — a `Vec` strategy with bounded length.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// num:: class strategies
// ---------------------------------------------------------------------------

/// Numeric class strategies (`proptest::num`).
pub mod num {
    /// `f32` strategies by floating-point class, combinable with `|`.
    pub mod f32 {
        use crate::{Strategy, TestRng};

        /// A set of `f32` classes acting as a strategy over their union.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct FloatClasses(u8);

        /// Normal (non-zero, non-subnormal, finite) values.
        pub const NORMAL: FloatClasses = FloatClasses(1);
        /// Subnormal values.
        pub const SUBNORMAL: FloatClasses = FloatClasses(2);
        /// Positive and negative zero.
        pub const ZERO: FloatClasses = FloatClasses(4);
        /// Positive and negative infinity.
        pub const INFINITE: FloatClasses = FloatClasses(8);
        /// Quiet NaNs.
        pub const QUIET_NAN: FloatClasses = FloatClasses(16);

        impl std::ops::BitOr for FloatClasses {
            type Output = FloatClasses;
            fn bitor(self, rhs: FloatClasses) -> FloatClasses {
                FloatClasses(self.0 | rhs.0)
            }
        }

        impl Strategy for FloatClasses {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                let classes: Vec<u8> = (0..5)
                    .map(|i| 1u8 << i)
                    .filter(|m| self.0 & m != 0)
                    .collect();
                assert!(!classes.is_empty(), "empty f32 class strategy");
                let class = classes[rng.below(classes.len() as u64) as usize];
                let sign = (rng.next_u64() & 1) << 31;
                let bits = match class {
                    1 => {
                        // normal: exponent 1..=254, any mantissa
                        let exp = 1 + rng.below(254) as u32;
                        let mant = rng.next_u32() & 0x007F_FFFF;
                        (sign as u32) | (exp << 23) | mant
                    }
                    2 => {
                        // subnormal: exponent 0, non-zero mantissa
                        let mant = 1 + rng.below(0x007F_FFFF) as u32;
                        (sign as u32) | mant
                    }
                    4 => sign as u32,
                    8 => (sign as u32) | 0x7F80_0000,
                    _ => (sign as u32) | 0x7FC0_0000 | (rng.next_u32() & 0x003F_FFFF),
                };
                f32::from_bits(bits)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!(),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+),
            )));
        }
    };
}

/// Fails the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed at {}:{}: {} = {:?}, {} = {:?}",
                file!(),
                line!(),
                stringify!($lhs),
                lhs,
                stringify!($rhs),
                rhs,
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed at {}:{}: {} = {:?}, {} = {:?}: {}",
                file!(),
                line!(),
                stringify!($lhs),
                lhs,
                stringify!($rhs),
                rhs,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current property case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed at {}:{}: both sides = {:?}",
                file!(),
                line!(),
                lhs,
            )));
        }
    }};
}

/// Uniform choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests. Supports the two parameter spellings of the
/// real `proptest!` (`name: Type` whole-domain and `name in strategy`) and
/// the leading `#![proptest_config(..)]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let cases = $crate::effective_cases(cfg.cases);
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let mut rng = $crate::TestRng::from_seed(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bindings!(rng; $($params)*);
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed on case {}/{} (seed {:#x}): {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        seed,
                        e,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let u = (0u32..=10).generate(&mut rng);
            assert!(u <= 10);
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn pattern_strategy_matches_class() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "[ -~]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        let t = "[a-c]{3,3}".generate(&mut rng);
        assert_eq!(t.len(), 3);
        assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
    }

    #[test]
    fn float_classes_generate_their_class() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let v = num::f32::NORMAL.generate(&mut rng);
            assert!(v.is_normal(), "{v} not normal");
            let s = num::f32::SUBNORMAL.generate(&mut rng);
            assert!(
                s != 0.0 && !s.is_normal() && s.is_finite(),
                "{s} not subnormal"
            );
            let z = num::f32::ZERO.generate(&mut rng);
            assert_eq!(z, 0.0);
            let m = (num::f32::NORMAL | num::f32::ZERO).generate(&mut rng);
            assert!(m.is_finite());
        }
    }

    #[test]
    fn oneof_and_collections() {
        let mut rng = TestRng::from_seed(4);
        let strat = prop_oneof![Just("a".to_owned()), Just("b".to_owned()), "[xy]{1,2}"];
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(["a", "b"].contains(&s.as_str()) || s.chars().all(|c| c == 'x' || c == 'y'));
        }
        let v = collection::vec(0u8..=255, 2..5).generate(&mut rng);
        assert!((2..5).contains(&v.len()));
    }

    #[test]
    fn effective_cases_bounds() {
        // No env override in the test environment is assumed; if one is
        // set the bound below still holds for the unset-path clamp logic.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(effective_cases(256), DEFAULT_CASE_BOUND);
            assert_eq!(effective_cases(24), 24);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front end itself: typed params, strategy params,
        /// arrays, and mixed lists all bind.
        #[test]
        fn macro_binds_all_forms(bits: u32, flags: [bool; 4], v in -10i32..=10, s in "[a-z]{0,8}") {
            prop_assert!(u64::from(bits) <= u64::from(u32::MAX));
            prop_assert_eq!(flags.len(), 4);
            prop_assert!((-10..=10).contains(&v));
            prop_assert!(s.len() <= 8);
        }
    }
}
