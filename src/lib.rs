//! # gpes — General Purpose computations on OpenGL ES 2 GPUs
//!
//! Umbrella crate for the reproduction of *“Towards General Purpose
//! Computations on Low-End Mobile GPUs”* (Trompouki & Kosmidis, DATE 2016).
//!
//! The workspace is organised bottom-up:
//!
//! * [`glsl`] — a GLSL ES 1.00 subset compiler + interpreter,
//! * [`gles2`] — a software OpenGL ES 2.0 subset (the simulated driver/GPU),
//! * [`core`] — the paper's contribution: a GPGPU framework over ES 2,
//! * [`perf`] — VideoCore IV / ARM1176 analytic timing models,
//! * [`kernels`] — benchmark kernels (`sum`, `sgemm`, …) with CPU references.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use gpes::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cc = ComputeContext::new(64, 64)?;
//! let a = cc.upload(&[1.0f32, 2.0, 3.0, 4.0])?;
//! let b = cc.upload(&[10.0f32, 20.0, 30.0, 40.0])?;
//! let kernel = Kernel::builder("add")
//!     .input("a", &a)
//!     .input("b", &b)
//!     .output(ScalarType::F32, 4)
//!     .body("return fetch_a(idx) + fetch_b(idx);")
//!     .build(&mut cc)?;
//! let out = cc.run_f32(&kernel)?;
//! assert_eq!(out, vec![11.0, 22.0, 33.0, 44.0]);
//! # Ok(())
//! # }
//! ```

pub use gpes_core as core;
pub use gpes_gles2 as gles2;
pub use gpes_glsl as glsl;
pub use gpes_kernels as kernels;
pub use gpes_perf as perf;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use gpes_core::{
        AnyGpuArray, Bindings, CompletionSet, ComputeContext, ComputeError, ContextStats, Engine,
        EngineSnapshot, FloatSpecials, GpuArray, GpuMatrix, GpuTexels, Job, Kernel, KernelBuilder,
        KernelRegistry, KernelSpec, LatencyHistogram, MultiOutputBuilder, MultiOutputKernel,
        OutputShape, PackBias, Pass, PassSpec, Pipeline, PipelineJob, PipelineResult, PipelineSpec,
        Readback, RegisteredKernel, ResidentInput, ResidentStats, RetryPolicy, ScalarType,
        SharedProgramCache, StepHandle, Submission, TenantCounters, TenantId, TenantQuotas,
        TensorData, VertexKernel,
    };
    pub use gpes_gles2::{Context, Dispatch, FaultPlan, FaultSite, StoreRounding};
    pub use gpes_glsl::exec::FloatModel;
}
