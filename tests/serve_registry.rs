//! Tier-1 integration tests for the multi-tenant dynamic kernel
//! registry: source admission (typed stage-tagged rejections, never a
//! panic), bit-identity between dynamically registered kernels and the
//! compiled-in path, per-tenant quotas (kernels, resident bytes,
//! in-flight jobs) with tenant-scoped FIFO eviction, and the snapshot's
//! per-tenant counters riding alongside an intact balance identity.

use gpes::core::{AdmissionStage, QuotaResource};
use gpes::kernels::{data, saxpy};
use gpes::prelude::*;

/// The bundled saxpy kernel re-expressed as a serving-boundary spec —
/// same body string as `gpes::kernels::saxpy::build`.
fn saxpy_spec(n: usize, alpha: f32) -> KernelSpec {
    KernelSpec::new("saxpy")
        .input("x")
        .input("y")
        .uniform_f32("alpha", alpha)
        .output(n)
        .body("return alpha * fetch_x(idx) + fetch_y(idx);")
}

#[test]
fn registered_kernel_matches_compiled_in_bit_exactly() {
    let n = 256;
    let alpha = 2.5;
    let x = data::random_f32(n, 7, 100.0);
    let y = data::random_f32(n, 8, 100.0);

    // Compiled-in path: the bundled kernel on a direct context.
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let gx = cc.upload(&x).expect("x");
    let gy = cc.upload(&y).expect("y");
    let k = saxpy::build(&mut cc, &gx, &gy, alpha).expect("kernel");
    let direct = cc.run_f32(&k).expect("run");

    // Dynamic path: the same source admitted at the serving boundary.
    let engine = Engine::builder().workers(2).build().expect("engine");
    let registered = engine
        .registry()
        .register("tenant-a", saxpy_spec(n, alpha))
        .expect("admits");
    let served = engine
        .submit(registered.job().data(x.clone()).data(y.clone()))
        .expect("submit")
        .wait()
        .expect("wait");

    assert_eq!(served, direct, "dynamic path must be bit-identical");
    assert_eq!(served, saxpy::cpu_reference(&x, &y, alpha));
    engine.shutdown();
}

#[test]
fn admission_rejects_each_stage_typed() {
    let engine = Engine::builder().build().expect("engine");
    let registry = engine.registry();

    // Signature: no output declared.
    let err = registry
        .register("t", KernelSpec::new("no_out").body("return 1.0;"))
        .unwrap_err();
    assert!(matches!(
        err,
        ComputeError::AdmissionRejected {
            stage: AdmissionStage::Signature,
            ..
        }
    ));

    // Signature: reserved input name.
    let err = registry
        .register(
            "t",
            KernelSpec::new("bad_name")
                .input("gl_x")
                .output(4)
                .body("return fetch_gl_x(idx);"),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ComputeError::AdmissionRejected {
            stage: AdmissionStage::Signature,
            ..
        }
    ));

    // Signature: output beyond the driver's texture limits.
    let err = registry
        .register(
            "t",
            KernelSpec::new("huge")
                .output(usize::MAX / 2)
                .body("return 1.0;"),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ComputeError::AdmissionRejected {
            stage: AdmissionStage::Signature,
            ..
        }
    ));

    // Parse: body that is not GLSL.
    let err = registry
        .register(
            "t",
            KernelSpec::new("garbage").output(4).body("return ((({;"),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ComputeError::AdmissionRejected {
            stage: AdmissionStage::Parse,
            ..
        }
    ));

    // Strict: an Appendix-A violation (non-constant loop bound) that a
    // permissive simulator would happily run.
    let err = registry
        .register(
            "t",
            KernelSpec::new("loopy")
                .uniform_f32("n", 4.0)
                .output(4)
                .body(
                    "float s = 0.0;\n\
                     for (int i = 0; float(i) < n; i++) { s += 1.0; }\n\
                     return s;",
                ),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ComputeError::AdmissionRejected {
            stage: AdmissionStage::Strict,
            ..
        }
    ));

    // Sema: undeclared identifier.
    let err = registry
        .register(
            "t",
            KernelSpec::new("undeclared")
                .output(4)
                .body("return nonexistent;"),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ComputeError::AdmissionRejected {
            stage: AdmissionStage::Sema,
            ..
        }
    ));

    // Every rejection was charged to the tenant, nothing was admitted.
    let counters = registry.tenant_counters();
    assert_eq!(counters.len(), 1);
    assert_eq!(counters[0].tenant, "t");
    assert_eq!(counters[0].admitted, 0);
    assert_eq!(counters[0].rejected, 6);
    engine.shutdown();
}

#[test]
fn admission_never_links_rejected_source() {
    let engine = Engine::builder().build().expect("engine");
    let registry = engine.registry();
    let links_before = engine.cache().expect("shared").stats().links;
    let _ = registry.register("t", KernelSpec::new("bad").output(4).body("return ((;"));
    assert_eq!(
        engine.cache().expect("shared").stats().links,
        links_before,
        "rejected source must not reach the linker"
    );
    engine.shutdown();
}

#[test]
fn kernel_quota_bans_and_evicts_fifo() {
    let engine = Engine::builder().build().expect("engine");
    let registry = engine.registry();

    // A zero budget bans registration with a typed error.
    registry.set_quotas("banned", TenantQuotas::default().max_kernels(0));
    let err = registry
        .register("banned", saxpy_spec(16, 1.0))
        .unwrap_err();
    assert!(matches!(
        err,
        ComputeError::QuotaExceeded {
            resource: QuotaResource::RegisteredKernels,
            ..
        }
    ));

    // A budget of 2 keeps the newest two; older registrations are
    // FIFO-evicted and counted.
    registry.set_quotas("small", TenantQuotas::default().max_kernels(2));
    for alpha in [1.0, 2.0, 3.0] {
        registry
            .register("small", saxpy_spec(16, alpha).uniform_f32("tag", alpha))
            .expect("admits");
    }
    let counters = registry.tenant_counters();
    let small = counters.iter().find(|c| c.tenant == "small").expect("row");
    assert_eq!(small.admitted, 3);
    assert_eq!(small.evicted, 1);
    engine.shutdown();
}

#[test]
fn retire_removes_registration() {
    let engine = Engine::builder().build().expect("engine");
    let registry = engine.registry();
    let k = registry.register("t", saxpy_spec(16, 1.5)).expect("admits");
    assert!(registry.retire(&k), "first retire removes");
    assert!(!registry.retire(&k), "second retire is a no-op");
    engine.shutdown();
}

#[test]
fn in_flight_quota_rejects_typed_and_balances() {
    // One worker, and a tenant allowed a single in-flight job.
    let engine = Engine::builder().workers(1).build().expect("engine");
    let registry = engine.registry();
    registry.set_quotas("greedy", TenantQuotas::default().max_in_flight(1));
    let k = registry
        .register("greedy", saxpy_spec(64, 2.0))
        .expect("admits");
    let x = vec![1.0f32; 64];
    let y = vec![2.0f32; 64];

    // Flood: with a quota of 1, at least one submission must be refused
    // with the typed quota error (timing decides exactly how many).
    let mut handles = Vec::new();
    let mut quota_rejections = 0u64;
    for _ in 0..32 {
        match engine.try_submit(k.job().data(x.clone()).data(y.clone())) {
            Ok(h) => handles.push(h),
            Err(ComputeError::QuotaExceeded {
                tenant,
                resource: QuotaResource::InFlightJobs,
            }) => {
                assert_eq!(tenant, "greedy");
                quota_rejections += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(quota_rejections > 0, "flood must trip the in-flight quota");
    for h in handles {
        h.wait().expect("accepted jobs complete");
    }

    let snapshot = engine.snapshot();
    assert!(snapshot.counters_balanced(), "identity must hold");
    assert_eq!(snapshot.rejected, quota_rejections);
    let row = snapshot
        .tenants
        .iter()
        .find(|c| c.tenant == "greedy")
        .expect("tenant row");
    assert_eq!(row.rejected, quota_rejections);
    assert_eq!(row.jobs, 32 - quota_rejections);
    assert_eq!(row.in_flight, 0, "permits all released");
    engine.shutdown();
}

#[test]
fn in_flight_permit_releases_after_wait() {
    let engine = Engine::builder().workers(1).build().expect("engine");
    let registry = engine.registry();
    registry.set_quotas("serial", TenantQuotas::default().max_in_flight(1));
    let k = registry
        .register("serial", saxpy_spec(8, 1.0))
        .expect("admits");
    // A strictly sequential caller never trips its own quota: the permit
    // is released before `wait()` returns.
    for _ in 0..5 {
        engine
            .submit(k.job().data(vec![1.0; 8]).data(vec![2.0; 8]))
            .expect("submit")
            .wait()
            .expect("wait");
    }
    engine.shutdown();
}

#[test]
fn resident_quota_rejects_oversized_and_evicts_own_oldest() {
    let engine = Engine::builder().build().expect("engine");
    let registry = engine.registry();
    // Budget: 100 floats (400 bytes).
    registry.set_quotas("res", TenantQuotas::default().max_resident_bytes(400));

    // A single resident over the whole budget is refused typed.
    let err = registry
        .register_resident("res", vec![0.0f32; 101])
        .unwrap_err();
    assert!(matches!(
        err,
        ComputeError::QuotaExceeded {
            resource: QuotaResource::ResidentBytes,
            ..
        }
    ));

    // Aggregate overflow FIFO-evicts the tenant's own oldest resident.
    let first = registry
        .register_resident("res", vec![1.0f32; 60])
        .expect("fits");
    let second = registry
        .register_resident("res", vec![2.0f32; 60])
        .expect("fits after evicting first");
    assert!(first.is_evicted(), "oldest resident evicted for room");
    assert!(!second.is_evicted(), "newest resident stays live");

    // A different tenant's residents are untouched by `res`'s pressure.
    let other = registry
        .register_resident("other", vec![3.0f32; 60])
        .expect("independent budget");
    assert!(!other.is_evicted());
    engine.shutdown();
}

#[test]
fn builder_cache_caps_apply() {
    // A shared cache capped at 1 program evicts on the second distinct
    // kernel; the default (512) would keep both.
    let engine = Engine::builder()
        .shared_cache_capacity(1)
        .build()
        .expect("engine");
    let registry = engine.registry();
    let k1 = registry.register("t", saxpy_spec(16, 1.0)).expect("k1");
    let k2 = registry
        .register(
            "t",
            KernelSpec::new("double")
                .input("x")
                .output(16)
                .body("return 2.0 * fetch_x(idx);"),
        )
        .expect("k2");
    let x = vec![1.0f32; 16];
    engine
        .submit(k1.job().data(x.clone()).data(x.clone()))
        .expect("submit")
        .wait()
        .expect("k1 runs");
    engine
        .submit(k2.job().data(x))
        .expect("submit")
        .wait()
        .expect("k2 runs");
    let stats = engine.cache().expect("shared").stats();
    assert!(
        stats.evictions >= 1,
        "cap of 1 must evict on the second program (evictions = {})",
        stats.evictions
    );
    engine.shutdown();
}

#[test]
fn builder_resident_cap_applies() {
    // Per-worker resident cap of 1: the second resident displaces the
    // first, visible as an eviction in the snapshot's resident stats.
    let engine = Engine::builder()
        .workers(1)
        .resident_cache_capacity(1)
        .build()
        .expect("engine");
    let registry = engine.registry();
    let k = registry.register("t", saxpy_spec(8, 1.0)).expect("k");
    let a = ResidentInput::new(vec![1.0f32; 8]);
    let b = ResidentInput::new(vec![2.0f32; 8]);
    let y = vec![0.0f32; 8];
    for resident in [&a, &b, &a] {
        engine
            .submit(k.job().resident(resident).data(y.clone()))
            .expect("submit")
            .wait()
            .expect("runs");
    }
    let snapshot = engine.snapshot();
    assert!(
        snapshot.residents.evictions >= 2,
        "cap of 1 must displace on each alternation (evictions = {})",
        snapshot.residents.evictions
    );
    engine.shutdown();
}

#[test]
fn registered_kernels_share_one_link_across_tenants() {
    // The fingerprint is the program-cache key: identical source from
    // different tenants links exactly once.
    let engine = Engine::builder().workers(2).build().expect("engine");
    let registry = engine.registry();
    let ka = registry.register("a", saxpy_spec(32, 2.0)).expect("a");
    let kb = registry.register("b", saxpy_spec(32, 2.0)).expect("b");
    assert_eq!(ka.fingerprint(), kb.fingerprint());
    let x = vec![1.0f32; 32];
    for k in [&ka, &kb] {
        engine
            .submit(k.job().data(x.clone()).data(x.clone()))
            .expect("submit")
            .wait()
            .expect("runs");
    }
    assert_eq!(
        engine.cache().expect("shared").stats().links,
        1,
        "identical source must link once process-wide"
    );
    engine.shutdown();
}
