//! Tier-1 integration tests for the compile/bind split: cached programs,
//! rebindable dispatches, the retained `Pipeline`, and the steady-state
//! zero-new-GL-objects guarantee.

use gpes::glsl::Value;
use gpes::prelude::*;

/// Builds the two-kernel "blur then gain" chain used by the differential
/// tests: `mid = (x[i-1] + x[i] + x[i+1]) / 3`, `x' = mid * gain`.
fn build_chain(cc: &mut ComputeContext, x: &GpuArray<f32>, n: usize) -> (Kernel, Kernel) {
    let blur = Kernel::builder("blur3")
        .input("x", x)
        .uniform_f32("last", n as f32 - 1.0)
        .output(ScalarType::F32, n)
        .body(
            "float a = fetch_x(max(idx - 1.0, 0.0));\n\
             float b = fetch_x(idx);\n\
             float c = fetch_x(min(idx + 1.0, last));\n\
             return (a + b + c) / 3.0;",
        )
        .build(cc)
        .expect("blur");
    let gain = Kernel::builder("gain")
        .input("m", x)
        .uniform_f32("gain", 1.0)
        .output(ScalarType::F32, n)
        .body("return fetch_m(idx) * gain;")
        .build(cc)
        .expect("gain");
    (blur, gain)
}

fn source_data(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 * 0.37).sin() * 8.0 + 0.25)
        .collect()
}

/// A pass log without the pool provenance flag (the manual path allocates
/// fresh targets where the pipeline recycles; everything else must match).
fn log_essence(log: Vec<gpes::core::PassRecord>) -> Vec<(String, gpes::gles2::DrawStats, u64)> {
    log.into_iter()
        .map(|p| (p.kernel, p.stats, p.output_texels))
        .collect()
}

#[test]
fn pipeline_matches_manual_chain_bit_for_bit() {
    let n = 300usize;
    let iterations = 6usize;
    let data = source_data(n);

    // Manual path: the pre-split idiom — rebuild and rebind by hand every
    // iteration (the program cache makes the rebuilds free, but each
    // dispatch is driven explicitly).
    let mut manual_cc = ComputeContext::new(32, 32).expect("context");
    let mut current = manual_cc.upload(&data).expect("upload");
    let (blur, gain) = build_chain(&mut manual_cc, &current, n);
    for step in 0..iterations {
        let mid: GpuArray<f32> = manual_cc
            .run_to_array_with(&blur, &Bindings::new().input("x", &current))
            .expect("blur pass");
        let next: GpuArray<f32> = manual_cc
            .run_to_array_with(
                &gain,
                &Bindings::new()
                    .input("m", &mid)
                    .uniform_f32("gain", 1.0 + step as f32 * 0.125),
            )
            .expect("gain pass");
        manual_cc.recycle_array(current);
        manual_cc.recycle_array(mid);
        current = next;
    }
    let manual_out = manual_cc
        .read_array(&current, Readback::DirectFbo)
        .expect("read");
    let manual_log = log_essence(manual_cc.take_pass_log());

    // Pipeline path: the same dag declared once.
    let mut pipe_cc = ComputeContext::new(32, 32).expect("context");
    let x = pipe_cc.upload(&data).expect("upload");
    let (blur, gain) = build_chain(&mut pipe_cc, &x, n);
    let pipeline = Pipeline::builder("blur_gain")
        .source("x", &x)
        .pass(Pass::new(&blur).read("x", "x").write_len("mid", n))
        .pass(
            Pass::new(&gain)
                .read("m", "mid")
                .write_len("x", n)
                .uniform_per_iter("gain", |step| Value::Float(1.0 + step as f32 * 0.125)),
        )
        .iterations(iterations)
        .build()
        .expect("pipeline");
    let run = pipeline.run(&mut pipe_cc).expect("run");
    let pipe_out: Vec<f32> = run.read(&mut pipe_cc, "x").expect("read");
    run.finish(&mut pipe_cc);
    let pipe_log = log_essence(pipe_cc.take_pass_log());

    assert_eq!(pipe_out, manual_out, "outputs must be bit-identical");
    assert_eq!(pipe_log, manual_log, "pass logs must be identical");

    // And the retained run again, byte-identical, with zero new objects.
    let before = pipe_cc.stats();
    let again: Vec<f32> = pipeline
        .run_and_read(&mut pipe_cc, "x")
        .expect("second run");
    assert_eq!(again, pipe_out);
    let after = pipe_cc.stats();
    assert_eq!(
        after.gl_objects_created(),
        before.gl_objects_created(),
        "steady-state iteration must create no GL objects"
    );
}

#[test]
fn screen_routed_final_pass_matches_texture_readback() {
    // run_and_read routes the final pass to the default framebuffer
    // (workaround #7 kernel ordering); bytes must equal the run() +
    // direct-FBO path.
    let n = 120usize;
    let data = source_data(n);
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let x = cc.upload(&data).expect("upload");
    let (blur, _) = build_chain(&mut cc, &x, n);
    let pipeline = Pipeline::builder("blur_only")
        .source("x", &x)
        .pass(Pass::new(&blur).read("x", "x").write_len("x", n))
        .iterations(4)
        .build()
        .expect("pipeline");
    let via_screen: Vec<f32> = pipeline.run_and_read(&mut cc, "x").expect("screen");
    let run = pipeline.run(&mut cc).expect("run");
    let via_texture: Vec<f32> = run.read(&mut cc, "x").expect("read");
    run.finish(&mut cc);
    assert_eq!(via_screen, via_texture);
}

#[test]
fn bindings_mismatches_are_rejected() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let a = cc.upload(&[1.0f32, 2.0]).expect("a");
    let wrong_type = cc.upload(&[1u32, 2]).expect("u32");
    let k = Kernel::builder("scale")
        .input("x", &a)
        .uniform_f32("gain", 2.0)
        .output(ScalarType::F32, 2)
        .body("return fetch_x(idx) * gain;")
        .build(&mut cc)
        .expect("build");

    // Unknown input name.
    let err = cc
        .run_f32_with(&k, &Bindings::new().input("nope", &a))
        .unwrap_err();
    assert!(err.to_string().contains("no input"), "{err}");
    // Input element-type (encoding) mismatch.
    let err = cc
        .run_f32_with(&k, &Bindings::new().input("x", &wrong_type))
        .unwrap_err();
    assert!(err.to_string().contains("declared"), "{err}");
    // Unknown uniform.
    let err = cc
        .run_f32_with(&k, &Bindings::new().uniform_f32("missing", 1.0))
        .unwrap_err();
    assert!(err.to_string().contains("no uniform"), "{err}");
    // Uniform type mismatch.
    let err = cc
        .run_f32_with(
            &k,
            &Bindings::new().uniform("gain", Value::Vec2([1.0, 2.0])),
        )
        .unwrap_err();
    assert!(err.to_string().contains("bound"), "{err}");
    // Output shape override beyond the texture limit (default max side is
    // 4096, so anything past 4096² texels cannot be laid out).
    let err = cc
        .run_to_array_with::<f32>(&k, &Bindings::new().output_len(100_000_000))
        .unwrap_err();
    assert!(matches!(err, ComputeError::TooLarge { .. }));
    // A valid override set still dispatches fine afterwards.
    let ok = cc
        .run_f32_with(&k, &Bindings::new().uniform_f32("gain", -1.0))
        .expect("valid dispatch");
    assert_eq!(ok, vec![-1.0, -2.0]);
}

#[test]
fn pipeline_wiring_mismatches_are_rejected_at_build() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let a = cc.upload(&[1.0f32, 2.0]).expect("a");
    let k = Kernel::builder("id")
        .input("x", &a)
        .output(ScalarType::F32, 2)
        .body("return fetch_x(idx);")
        .build(&mut cc)
        .expect("build");

    // No write declared.
    let err = Pipeline::builder("p")
        .source("x", &a)
        .pass(Pass::new(&k).read("x", "x"))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("writes no buffer"), "{err}");
    // Read of an undeclared buffer.
    let err = Pipeline::builder("p")
        .pass(Pass::new(&k).read("x", "ghost").write_len("out", 2))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("no buffer"), "{err}");
    // Read wired to an input the kernel does not declare.
    let err = Pipeline::builder("p")
        .source("x", &a)
        .pass(Pass::new(&k).read("y", "x").write_len("out", 2))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("no input"), "{err}");
    // Uniform override for an undeclared uniform.
    let err = Pipeline::builder("p")
        .source("x", &a)
        .pass(
            Pass::new(&k)
                .read("x", "x")
                .write_len("out", 2)
                .uniform("gain", Value::Float(1.0)),
        )
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("no uniform"), "{err}");
    // A read that no source or earlier pass can satisfy on the first
    // iteration is rejected at build instead of failing at runtime.
    let err = Pipeline::builder("p")
        .pass(Pass::new(&k).read("x", "later").write_len("out", 2))
        .pass(Pass::new(&k).read("x", "out").write_len("later", 2))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("before its first write"), "{err}");
    // Ping-pong over unknown buffers.
    let err = Pipeline::builder("p")
        .source("x", &a)
        .pass(Pass::new(&k).read("x", "x").write_len("out", 2))
        .ping_pong("out", "ghost")
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("unknown buffer"), "{err}");
    // Element-type mismatch between a buffer and the reading input.
    let u = cc.upload(&[1u32, 2]).expect("u32");
    let err = Pipeline::builder("p")
        .source("x", &u)
        .pass(Pass::new(&k).read("x", "x").write_len("out", 2))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("wants"), "{err}");
}

#[test]
fn ping_ponged_buffers_read_identically_through_both_apis() {
    // run_and_read must not screen-route a ping-ponged name: the swap
    // after the final iteration re-points it, so the two read paths must
    // agree (regression test for the screen-routing/ping-pong interaction).
    let n = 64usize;
    let data = source_data(n);
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let x = cc.upload(&data).expect("upload");
    let (blur, _) = build_chain(&mut cc, &x, n);
    let pipeline = Pipeline::builder("pp")
        .source("x", &x)
        .pass(Pass::new(&blur).read("x", "x").write_len("x_next", n))
        .ping_pong("x", "x_next")
        .iterations(3)
        .build()
        .expect("pipeline");
    let run = pipeline.run(&mut cc).expect("run");
    let via_run: Vec<f32> = run.read(&mut cc, "x").expect("read");
    run.finish(&mut cc);
    let via_read: Vec<f32> = pipeline.run_and_read(&mut cc, "x").expect("rar");
    assert_eq!(via_run, via_read);
    // The post-swap *back* buffer also agrees across APIs (it holds the
    // previous generation).
    let run = pipeline.run(&mut cc).expect("run 2");
    let back_a: Vec<f32> = run.read(&mut cc, "x_next").expect("read back");
    run.finish(&mut cc);
    let back_b: Vec<f32> = pipeline.run_and_read(&mut cc, "x_next").expect("rar back");
    assert_eq!(back_a, back_b);
}

#[test]
fn conflicting_buffer_kinds_rejected_at_build() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let a = cc.upload(&[1.0f32, 2.0]).expect("a");
    let scalar_k = Kernel::builder("scalar")
        .input("x", &a)
        .output(ScalarType::F32, 2)
        .body("return fetch_x(idx);")
        .build(&mut cc)
        .expect("scalar kernel");
    let texel_k = Kernel::builder("texel")
        .input_raw("x", &a)
        .output_texels(2)
        .body("return fetch_x_texel(idx);")
        .build(&mut cc)
        .expect("texel kernel");
    // Two passes writing `b` with different element kinds: whichever
    // order they appear in, the dag is rejected.
    let err = Pipeline::builder("p")
        .source("x", &a)
        .pass(Pass::new(&scalar_k).read("x", "x").write_len("b", 2))
        .pass(Pass::new(&texel_k).read("x", "x").write_len("b", 2))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("holds"), "{err}");
    let err = Pipeline::builder("p")
        .source("x", &a)
        .pass(Pass::new(&texel_k).read("x", "x").write_len("b", 2))
        .pass(Pass::new(&scalar_k).read("x", "x").write_len("b", 2))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("holds"), "{err}");
}

#[test]
fn new_uniform_types_flow_end_to_end() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let a = cc.upload(&[1.0f32, 2.0, 3.0]).expect("a");
    let mut k = Kernel::builder("mix")
        .input("x", &a)
        .uniform_i32("steps", 2)
        .uniform_vec3("w", [0.5, 0.25, 0.125])
        .uniform_vec4("o", [1.0, 2.0, 3.0, 4.0])
        .output(ScalarType::F32, 3)
        .body(
            "float acc = fetch_x(idx) * w.x + w.y + w.z + o.w;\n\
             for (int i = 0; i < 8; i++) { if (i < steps) acc += 1.0; }\n\
             return acc;",
        )
        .build(&mut cc)
        .expect("build");
    let out = cc.run_f32(&k).expect("run");
    assert_eq!(out, vec![6.875, 7.375, 7.875]);
    // Typed updates through Kernel::set_uniform and Bindings overrides.
    k.set_uniform("steps", Value::Int(0)).expect("set i32");
    let out = cc.run_f32(&k).expect("run");
    assert_eq!(out, vec![4.875, 5.375, 5.875]);
    let mut b = Bindings::new();
    b.set_uniform("w", Value::Vec3([1.0, 0.0, 0.0]));
    b.set_uniform("o", Value::Vec4([0.0, 0.0, 0.0, 0.0]));
    let out = cc.run_f32_with(&k, &b).expect("run");
    assert_eq!(out, vec![1.0, 2.0, 3.0]);
    // Type mismatch through the typed setter is caught.
    assert!(k.set_uniform("steps", Value::Float(1.0)).is_err());
    assert!(k.set_uniform("ghost", Value::Int(1)).is_err());
}

#[test]
fn steady_state_iteration_creates_no_gl_objects() {
    // Warm every cache with one full run, then assert the second run of
    // each ported multi-pass workload allocates nothing.
    let (rows, cols) = (12usize, 10usize);
    let img: Vec<f32> = (0..rows * cols).map(|i| 30.0 + (i % 17) as f32).collect();
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let params = gpes::kernels::srad::SradParams::default();
    let _ = gpes::kernels::srad::run_gpu(&mut cc, rows, cols, &img, params, 3).expect("warmup");
    let warm = cc.stats();
    let _ = gpes::kernels::srad::run_gpu(&mut cc, rows, cols, &img, params, 9).expect("steady");
    let steady = cc.stats();
    assert_eq!(
        steady.gl_objects_created(),
        warm.gl_objects_created(),
        "srad steady state: no new programs or textures"
    );
    assert!(steady.program_cache_hits > warm.program_cache_hits);
    assert!(steady.texture_pool_hits > warm.texture_pool_hits);
}
