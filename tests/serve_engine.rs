//! Tier-1 integration tests for the serving engine: process-wide program
//! sharing (exactly one link under thread races), cache eviction bounds,
//! and bit-identity between `Engine` dispatch and direct `run_*_with`
//! calls — single jobs, batched multi-kernel DAGs, and whole retained
//! pipelines served as engine jobs. Plus the failure-path contracts:
//! `until` predicates that never fire surface `IterationCap` (not a
//! hang), and evicted `ResidentInput`s fail validation.

use gpes::core::serve::StepInput;
use gpes::core::SharedCacheStats;
use gpes::glsl::Value;
use gpes::kernels::{data, fft, reduce, srad};
use gpes::prelude::*;
use std::sync::Arc;

fn saxpy_spec(n: usize) -> Arc<KernelSpec> {
    Arc::new(
        KernelSpec::new("saxpy")
            .input("x")
            .input("y")
            .uniform_f32("alpha", 2.0)
            .output(n)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
    )
}

fn blur_spec(n: usize) -> Arc<KernelSpec> {
    Arc::new(
        KernelSpec::new("blur3")
            .input("x")
            .uniform_f32("last", n as f32 - 1.0)
            .output(n)
            .body(
                "float a = fetch_x(max(idx - 1.0, 0.0));\n\
                 float b = fetch_x(idx);\n\
                 float c = fetch_x(min(idx + 1.0, last));\n\
                 return (a + b + c) / 3.0;",
            ),
    )
}

fn gain_spec(n: usize) -> Arc<KernelSpec> {
    Arc::new(
        KernelSpec::new("gain")
            .input("x")
            .uniform_f32("gain", 1.0)
            .output(n)
            .body("return fetch_x(idx) * gain;"),
    )
}

fn ramp(n: usize, scale: f32) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 - n as f32 / 2.0) * scale)
        .collect()
}

// ---- shared cache concurrency -------------------------------------------

#[test]
fn racing_contexts_link_each_source_exactly_once() {
    // N threads, each with its own context, all building the same two
    // kernels at the same time: the process must link exactly 2 programs.
    const THREADS: usize = 8;
    let cache = Arc::new(SharedProgramCache::new());
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut cc = ComputeContext::new(32, 32).expect("context");
            cc.set_shared_program_cache(cache);
            let x = cc.upload(&ramp(16, 0.5)).expect("x");
            let y = cc.upload(&ramp(16, 0.25)).expect("y");
            barrier.wait();
            let k1 = Kernel::builder("add")
                .input("a", &x)
                .input("b", &y)
                .output(ScalarType::F32, 16)
                .body("return fetch_a(idx) + fetch_b(idx);")
                .build(&mut cc)
                .expect("k1");
            let k2 = Kernel::builder("mul")
                .input("a", &x)
                .input("b", &y)
                .output(ScalarType::F32, 16)
                .body("return fetch_a(idx) * fetch_b(idx);")
                .build(&mut cc)
                .expect("k2");
            let s = cc.run_f32(&k1).expect("run add");
            let p = cc.run_f32(&k2).expect("run mul");
            assert_eq!(s.len(), 16);
            assert_eq!(p.len(), 16);
            let stats = cc.stats();
            assert_eq!(stats.programs_linked, 0, "worker {t} linked locally");
            assert_eq!(stats.programs_adopted, 2);
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    let stats: SharedCacheStats = cache.stats();
    assert_eq!(stats.links, 2, "one link per distinct source, process-wide");
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 2 * THREADS as u64 - 2);
    assert_eq!(cache.len(), 2);
}

#[test]
fn shared_cache_capacity_is_bounded() {
    // Push far more distinct kernels through one context than the cache
    // capacity holds: the cache must stay at its bound and report the
    // evictions.
    let cache = Arc::new(SharedProgramCache::with_capacity(4));
    let mut cc = ComputeContext::new(32, 32).expect("context");
    cc.set_shared_program_cache(Arc::clone(&cache));
    let x = cc.upload(&ramp(8, 1.0)).expect("x");
    for i in 0..12 {
        let k = Kernel::builder("scale")
            .input("a", &x)
            .output(ScalarType::F32, 8)
            .body(format!("return fetch_a(idx) * {i}.0;"))
            .build(&mut cc)
            .expect("build");
        cc.run_f32(&k).expect("run");
    }
    assert_eq!(cache.len(), 4);
    let stats = cache.stats();
    assert_eq!(stats.links, 12);
    assert_eq!(stats.evictions, 8);
}

// ---- engine differential -------------------------------------------------

/// The direct (no-engine) reference for a saxpy job.
fn direct_saxpy(n: usize, x: &[f32], y: &[f32], alpha: f32) -> Vec<f32> {
    let mut cc = ComputeContext::new(256, 256).expect("context");
    let gx = cc.upload(x).expect("x");
    let gy = cc.upload(y).expect("y");
    let k = Kernel::builder("saxpy")
        .input("x", &gx)
        .input("y", &gy)
        .uniform_f32("alpha", 2.0)
        .output(ScalarType::F32, n)
        .body("return alpha * fetch_x(idx) + fetch_y(idx);")
        .build(&mut cc)
        .expect("build");
    let b = Bindings::new().uniform_f32("alpha", alpha);
    let out: GpuArray<f32> = cc.run_to_array_with(&k, &b).expect("run");
    cc.read_array(&out, Readback::DirectFbo).expect("read")
}

#[test]
fn engine_output_is_bit_identical_to_direct_dispatch() {
    let n = 1000;
    let engine = Engine::builder().workers(3).build().expect("engine");
    let spec = saxpy_spec(n);
    let mut handles = Vec::new();
    for j in 0..12 {
        let x = ramp(n, 0.01 * (j + 1) as f32);
        let y = ramp(n, 0.003 * (j + 1) as f32);
        let alpha = 0.5 + j as f32;
        let job = Job::new(&spec)
            .data(x.clone())
            .data(y.clone())
            .uniform_f32("alpha", alpha);
        handles.push((x, y, alpha, engine.submit(job).expect("submit")));
    }
    for (x, y, alpha, handle) in handles {
        let served = handle.wait().expect("job");
        let direct = direct_saxpy(n, &x, &y, alpha);
        // Bit-identical, not approximately equal: same codecs, same
        // shader, same dispatch semantics.
        assert_eq!(served, direct);
    }
    // Every kernel is one generated source: one process-wide link even
    // with 3 workers racing over 12 jobs.
    assert_eq!(engine.programs_linked(), 1);
}

#[test]
fn batch_dag_matches_chained_direct_dispatch_bitwise() {
    let n = 512;
    let input = ramp(n, 0.02);
    let gain = 3.5f32;

    // Direct reference: blur → gain chained through run_to_array_with.
    let direct = {
        let mut cc = ComputeContext::new(256, 256).expect("context");
        let gx = cc.upload(&input).expect("x");
        let blur = Kernel::builder("blur3")
            .input("x", &gx)
            .uniform_f32("last", n as f32 - 1.0)
            .output(ScalarType::F32, n)
            .body(
                "float a = fetch_x(max(idx - 1.0, 0.0));\n\
                 float b = fetch_x(idx);\n\
                 float c = fetch_x(min(idx + 1.0, last));\n\
                 return (a + b + c) / 3.0;",
            )
            .build(&mut cc)
            .expect("blur");
        let mid: GpuArray<f32> = cc.run_to_array(&blur).expect("run blur");
        let gaink = Kernel::builder("gain")
            .input("x", &mid)
            .uniform_f32("gain", 1.0)
            .output(ScalarType::F32, n)
            .body("return fetch_x(idx) * gain;")
            .build(&mut cc)
            .expect("gain");
        let b = Bindings::new().uniform_f32("gain", gain);
        let out: GpuArray<f32> = cc.run_to_array_with(&gaink, &b).expect("run gain");
        cc.read_array(&out, Readback::DirectFbo).expect("read")
    };

    // Served: one submission, two steps, intermediate stays on the GPU.
    let engine = Engine::builder().workers(2).build().expect("engine");
    let mut sub = Submission::new();
    let b = sub.step(
        &blur_spec(n),
        vec![StepInput::Data(Arc::new(input.clone()))],
        vec![],
    );
    let g = sub.step(
        &gain_spec(n),
        vec![b.into()],
        vec![("gain".to_owned(), Value::Float(gain))],
    );
    sub.read(g);
    let result = engine
        .submit_batch(sub)
        .expect("submit")
        .wait()
        .expect("batch");
    assert_eq!(result.output(g).expect("read output"), direct.as_slice());
    assert!(result.output(b).is_none(), "unmarked step is not read back");
}

#[test]
fn submission_validation_rejects_bad_dags() {
    let engine = Engine::builder().build().expect("engine");
    let spec = gain_spec(8);

    // Forward reference.
    let mut sub = Submission::new();
    sub.step(&spec, vec![StepInput::Step(0)], vec![]);
    assert!(engine.submit_batch(sub).is_err());

    // Arity mismatch.
    let mut sub = Submission::new();
    sub.step(&spec, vec![], vec![]);
    assert!(engine.submit_batch(sub).is_err());

    // Empty submission.
    assert!(engine.submit_batch(Submission::new()).is_err());

    // Arity mismatch on a single job.
    assert!(engine.submit(Job::new(&spec)).is_err());

    // Execution errors surface on the handle, not at submit.
    let broken = Arc::new(
        KernelSpec::new("broken")
            .input("x")
            .output(8)
            .body("return nonsense(idx);"),
    );
    let handle = engine
        .submit(Job::new(&broken).data(vec![0.0; 8]))
        .expect("submit");
    assert!(handle.wait().is_err());
}

#[test]
fn per_context_policy_relinks_per_worker_and_shared_does_not() {
    let n = 256;
    let spec = saxpy_spec(n);
    let x = Arc::new(ramp(n, 0.1));
    let y = Arc::new(ramp(n, 0.2));
    let run = |engine: &Engine| {
        let mut handles = Vec::new();
        for _ in 0..8 {
            let job = Job::new(&spec).data_shared(&x).data_shared(&y);
            handles.push(engine.submit(job).expect("submit"));
        }
        let mut outputs = Vec::new();
        for h in handles {
            outputs.push(h.wait().expect("job"));
        }
        outputs
    };

    let shared = Engine::builder().workers(4).build().expect("engine");
    let shared_out = run(&shared);
    assert_eq!(shared.programs_linked(), 1);

    let per_ctx = Engine::builder()
        .workers(4)
        .cache_policy(gpes::core::serve::CachePolicy::PerContext)
        .build()
        .expect("engine");
    let per_ctx_out = run(&per_ctx);
    // Identical outputs either way…
    assert_eq!(shared_out, per_ctx_out);
    // …but each worker that saw the kernel paid its own link. The queue
    // does not guarantee every worker ran a job, so the bound is 1..=4 —
    // and always at least the shared engine's single link.
    let links = per_ctx.programs_linked();
    assert!((1..=4).contains(&links), "links = {links}");
    let touched = per_ctx
        .worker_stats()
        .iter()
        .filter(|s| s.programs_linked > 0)
        .count() as u64;
    assert_eq!(links, touched, "one link per worker that served a job");
}

#[test]
fn worker_contexts_reach_steady_state_over_repeated_jobs() {
    // A serving loop must stop allocating GL objects once warmed up:
    // programs come from the shared cache, textures from each worker's
    // recycling pool.
    let n = 300;
    let engine = Engine::builder().workers(2).build().expect("engine");
    let spec = saxpy_spec(n);
    let submit_wave = |count: usize| {
        let handles: Vec<_> = (0..count)
            .map(|_| {
                engine
                    .submit(Job::new(&spec).data(ramp(n, 0.5)).data(ramp(n, 0.25)))
                    .expect("submit")
            })
            .collect();
        for h in handles {
            h.wait().expect("job");
        }
    };
    let gl_objects = || -> u64 {
        engine
            .worker_stats()
            .iter()
            .map(ContextStats::gl_objects_created)
            .sum()
    };
    // The contract is convergence: some full wave must allocate nothing.
    // (The queue does not promise every worker a job per wave, so "warm
    // with k jobs then assert frozen" would race scheduling — a worker
    // can see its first job arbitrarily late. A leak never freezes and
    // still fails the loop cap.)
    let mut prev = gl_objects();
    let mut steady = false;
    for _ in 0..16 {
        submit_wave(16);
        let now = gl_objects();
        if now == prev {
            steady = true;
            break;
        }
        prev = now;
    }
    assert!(steady, "steady-state serving must stop allocating");
}

// ---- pipeline serving ----------------------------------------------------

#[test]
fn engine_served_fft_pipeline_is_bit_identical_to_direct_run() {
    let n = 64;
    let re = data::random_f32(n, 801, 1.0);
    let im = data::random_f32(n, 802, 1.0);
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let (dre, dim) = fft::run_gpu(&mut cc, &re, &im, fft::Direction::Forward).expect("direct");

    let engine = Engine::builder().workers(2).build().expect("engine");
    let spec = Arc::new(fft::pipeline_spec(n, fft::Direction::Forward).expect("spec"));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let job = PipelineJob::new(&spec)
            .source(re.clone())
            .source(im.clone())
            .read("re")
            .read("im");
        handles.push(engine.submit_pipeline(job).expect("submit"));
    }
    for handle in handles {
        let result = handle.wait().expect("pipeline job");
        assert_eq!(result.output("re").expect("re"), dre.as_slice());
        assert_eq!(result.output("im").expect("im"), dim.as_slice());
    }
    // Two stage kernels, one process-wide link each, however many
    // workers served the six jobs.
    assert_eq!(engine.programs_linked(), 2);
}

#[test]
fn engine_served_srad_and_reduce_match_direct_runs() {
    let (rows, cols) = (9usize, 7usize);
    let img: Vec<f32> = data::random_f32(rows * cols, 803, 40.0)
        .into_iter()
        .map(|v| v.abs() + 10.0)
        .collect();
    let params = srad::SradParams::default();
    let values = data::random_f32(500, 804, 25.0);
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let direct_srad = srad::run_gpu(&mut cc, rows, cols, &img, params, 4).expect("srad");
    let arr = cc.upload(&values).expect("upload");
    let direct_reduce = reduce::gpu_reduce(&mut cc, &arr, reduce::ReduceOp::Sum).expect("reduce");

    let engine = Engine::builder().workers(2).build().expect("engine");
    let srad_spec = Arc::new(srad::pipeline_spec(rows, cols, params, 4).expect("spec"));
    let reduce_spec =
        Arc::new(reduce::pipeline_spec(values.len(), reduce::ReduceOp::Sum).expect("spec"));
    let srad_job = PipelineJob::new(&srad_spec).source(img.clone()).read("j");
    let reduce_job = PipelineJob::new(&reduce_spec)
        .source(values.clone())
        .read("x");
    let h1 = engine.submit_pipeline(srad_job).expect("submit srad");
    let h2 = engine.submit_pipeline(reduce_job).expect("submit reduce");
    assert_eq!(
        h1.wait().expect("srad").output("j").expect("j"),
        direct_srad.as_slice()
    );
    assert_eq!(
        h2.wait().expect("reduce").output("x").expect("x"),
        &[direct_reduce][..]
    );
}

#[test]
fn pipeline_serving_reaches_steady_state_with_zero_links_and_objects() {
    // The a11 gate's contract, as a test: once every worker has built the
    // pipeline for the spec, a full serving wave links nothing and
    // creates no GL objects — the pipeline cache, program caches and
    // texture pools absorb everything.
    let n = 256;
    let engine = Engine::builder().workers(2).build().expect("engine");
    let spec = Arc::new(reduce::pipeline_spec(n, reduce::ReduceOp::Sum).expect("spec"));
    let values = Arc::new(data::random_f32(n, 805, 10.0));
    let expected = reduce::cpu_reference(&values, reduce::ReduceOp::Sum);
    let submit_wave = |count: usize| {
        let handles: Vec<_> = (0..count)
            .map(|_| {
                engine
                    .submit_pipeline(PipelineJob::new(&spec).source_shared(&values).read("x"))
                    .expect("submit")
            })
            .collect();
        for h in handles {
            let out = h.wait().expect("job");
            assert_eq!(out.output("x").expect("x"), &[expected][..]);
        }
    };
    let gl_objects = || -> u64 {
        engine
            .worker_stats()
            .iter()
            .map(ContextStats::gl_objects_created)
            .sum()
    };
    let mut prev = (gl_objects(), engine.programs_linked());
    let mut steady = false;
    for _ in 0..16 {
        submit_wave(12);
        let now = (gl_objects(), engine.programs_linked());
        if now == prev {
            steady = true;
            break;
        }
        prev = now;
    }
    assert!(
        steady,
        "steady-state pipeline serving must stop linking and allocating"
    );
}

#[test]
fn pipeline_job_validation_rejects_bad_requests() {
    let engine = Engine::builder().build().expect("engine");
    let spec = Arc::new(reduce::pipeline_spec(16, reduce::ReduceOp::Sum).expect("spec"));
    // Source arity.
    assert!(engine
        .submit_pipeline(PipelineJob::new(&spec).read("x"))
        .is_err());
    // Declared source length.
    assert!(engine
        .submit_pipeline(PipelineJob::new(&spec).source(vec![0.0; 5]).read("x"))
        .is_err());
    // No readback marked.
    assert!(engine
        .submit_pipeline(PipelineJob::new(&spec).source(vec![0.0; 16]))
        .is_err());
    // Unknown read buffer.
    assert!(engine
        .submit_pipeline(PipelineJob::new(&spec).source(vec![0.0; 16]).read("nope"))
        .is_err());
    // Malformed specs are rejected at spec build, on the caller's thread.
    let gain = gain_spec(8);
    assert!(matches!(
        PipelineSpec::builder("unwired")
            .source("x")
            .pass(PassSpec::new(&gain).write_len("y", 8))
            .build(),
        Err(ComputeError::BadKernel { .. })
    ));
}

#[test]
fn until_predicate_never_firing_is_a_typed_error_not_a_hang() {
    let n = 8;
    let step = Arc::new(
        KernelSpec::new("decay")
            .input("x")
            .output(n)
            .body("return fetch_x(idx) * 0.5;"),
    );
    let spec = Arc::new(
        PipelineSpec::builder("nonconverging")
            .source_len("x", n)
            .pass(PassSpec::new(&step).read("x", "x").write_len("x", n))
            .until(|_| false)
            .iteration_cap(8)
            .build()
            .expect("spec"),
    );
    let engine = Engine::builder().build().expect("engine");
    let handle = engine
        .submit_pipeline(PipelineJob::new(&spec).source(vec![1.0; n]).read("x"))
        .expect("submit");
    match handle.wait() {
        Err(ComputeError::IterationCap { pipeline, cap }) => {
            assert_eq!(pipeline, "nonconverging");
            assert_eq!(cap, 8);
        }
        other => panic!("expected IterationCap, got {other:?}"),
    }
    // The engine survives the failed job and keeps serving.
    let ok = engine
        .submit(Job::new(&gain_spec(4)).data(vec![1.0, 2.0, 3.0, 4.0]))
        .expect("submit")
        .wait()
        .expect("job");
    assert_eq!(ok, vec![1.0, 2.0, 3.0, 4.0]);
}

// ---- resident inputs -----------------------------------------------------

#[test]
fn resident_inputs_upload_once_per_worker_and_serve_hits() {
    let n = 300;
    let engine = Engine::builder().workers(1).build().expect("engine");
    let spec = saxpy_spec(n);
    let x = ResidentInput::new(ramp(n, 0.5));
    let y = ramp(n, 0.25);
    let direct = direct_saxpy(n, &ramp(n, 0.5), &y, 2.0);
    for _ in 0..5 {
        let served = engine
            .submit(Job::new(&spec).resident(&x).data(y.clone()))
            .expect("submit")
            .wait()
            .expect("job");
        assert_eq!(served, direct, "resident path must stay bit-identical");
    }
    let stats: Vec<ResidentStats> = engine.resident_stats();
    let total: ResidentStats =
        stats
            .iter()
            .fold(ResidentStats::default(), |acc, s| ResidentStats {
                uploads: acc.uploads + s.uploads,
                hits: acc.hits + s.hits,
                evictions: acc.evictions + s.evictions,
                resident_textures: acc.resident_textures + s.resident_textures,
            });
    assert_eq!(total.uploads, 1, "one upload on the single worker");
    assert_eq!(total.hits, 4, "four later jobs reuse the texture");
    assert_eq!(total.resident_textures, 1);
    assert_eq!(total.evictions, 0);
}

#[test]
fn resident_input_used_after_eviction_is_a_validation_error() {
    let n = 64;
    let engine = Engine::builder().build().expect("engine");
    let spec = gain_spec(n);
    let resident = ResidentInput::new(ramp(n, 1.0));
    engine
        .submit(Job::new(&spec).resident(&resident))
        .expect("submit")
        .wait()
        .expect("job before eviction");
    resident.evict();
    assert!(resident.is_evicted());
    // Kernel jobs, DAG steps and pipeline sources all reject it.
    match engine.submit(Job::new(&spec).resident(&resident)) {
        Err(ComputeError::BadKernel { message }) => {
            assert!(message.contains("evicted"), "message: {message}");
        }
        Err(other) => panic!("expected BadKernel, got {other:?}"),
        Ok(_) => panic!("evicted resident must fail validation"),
    }
    let mut sub = Submission::new();
    sub.step(&spec, vec![StepInput::Resident(resident.clone())], vec![]);
    assert!(engine.submit_batch(sub).is_err());
    let pipe = Arc::new(reduce::pipeline_spec(n, reduce::ReduceOp::Sum).expect("spec"));
    assert!(engine
        .submit_pipeline(PipelineJob::new(&pipe).source_resident(&resident).read("x"))
        .is_err());
    // The worker reclaims the evicted texture at its next task boundary
    // — it does not need to see the dead handle again.
    engine
        .submit(Job::new(&spec).data(ramp(n, 1.0)))
        .expect("submit")
        .wait()
        .expect("job after eviction");
    let total: u64 = engine.resident_stats().iter().map(|s| s.evictions).sum();
    let held: u64 = engine
        .resident_stats()
        .iter()
        .map(|s| s.resident_textures)
        .sum();
    assert_eq!(total, 1, "the sweep reclaimed the evicted residency");
    assert_eq!(held, 0, "no resident textures remain");
}

// ---- bounded admission, deadlines, cancellation --------------------------

use gpes::core::serve::CompletionSet;
use std::time::{Duration, Instant};

/// A pipeline slow enough (hundreds of serial passes) that the submitting
/// thread can observe the engine *while the worker is busy*.
fn slow_pipeline(n: usize, iters: usize) -> Arc<PipelineSpec> {
    let step = Arc::new(
        KernelSpec::new("slow_step")
            .input("x")
            .output(n)
            .body("return fetch_x(idx) + 1.0;"),
    );
    Arc::new(
        PipelineSpec::builder("slow")
            .source_len("x", n)
            .pass(PassSpec::new(&step).read("x", "x").write_len("x", n))
            .iterations(iters)
            .build()
            .expect("spec"),
    )
}

fn slow_job(spec: &Arc<PipelineSpec>, n: usize) -> PipelineJob {
    PipelineJob::new(spec).source(vec![0.0; n]).read("x")
}

/// Spins until the engine has dequeued down to `depth` queued tasks —
/// used to order a test step after a worker has picked up earlier work.
fn wait_queue_depth_at_most(engine: &Engine, depth: usize) {
    let give_up = Instant::now() + Duration::from_secs(120);
    while engine.queue_depth() > depth {
        assert!(Instant::now() < give_up, "queue never drained to {depth}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn try_submit_rejects_with_queue_full_when_the_bound_is_hit() {
    let n = 512;
    let engine = Engine::builder()
        .workers(1)
        .queue_capacity(1)
        .build()
        .expect("engine");
    let spec = slow_pipeline(n, 240);
    // Occupy the single worker, then flood: with capacity 1, the second
    // pending submission must be turned away while the worker is busy.
    let busy = engine.submit_pipeline(slow_job(&spec, n)).expect("submit");
    let gain = gain_spec(8);
    let mut accepted = Vec::new();
    let mut rejections = 0u64;
    for _ in 0..64 {
        match engine.try_submit(Job::new(&gain).data(vec![1.0; 8])) {
            Ok(handle) => accepted.push(handle),
            Err(ComputeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 1);
                rejections += 1;
            }
            Err(other) => panic!("expected QueueFull, got {other:?}"),
        }
    }
    assert!(rejections > 0, "a bounded queue must reject under flood");
    busy.wait().expect("busy job");
    for handle in accepted {
        assert_eq!(handle.wait().expect("accepted job"), vec![1.0; 8]);
    }
    let snap = engine.snapshot();
    assert_eq!(snap.rejected, rejections);
    assert_eq!(snap.queue_capacity, 1);
    assert!(snap.queue_depth_high_water >= 1);
    assert!(
        snap.counters_balanced(),
        "quiescent counters must balance: {snap:?}"
    );
}

#[test]
fn expired_deadlines_are_shed_before_execution() {
    let engine = Engine::builder().workers(1).build().expect("engine");
    let gain = gain_spec(8);
    // A deadline already in the past is shed at dequeue, deterministically.
    let handle = engine
        .submit(Job::new(&gain).data(vec![1.0; 8]).timeout(Duration::ZERO))
        .expect("submit");
    match handle.wait() {
        Err(ComputeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // Batches and pipelines shed the same way.
    let mut sub = Submission::new();
    let s = sub.step(&gain, vec![StepInput::Data(Arc::new(vec![1.0; 8]))], vec![]);
    sub.read(s);
    sub.deadline(Instant::now() - Duration::from_millis(1));
    assert!(matches!(
        engine.submit_batch(sub).expect("submit").wait(),
        Err(ComputeError::DeadlineExceeded { .. })
    ));
    let pipe = slow_pipeline(8, 2);
    assert!(matches!(
        engine
            .submit_pipeline(slow_job(&pipe, 8).timeout(Duration::ZERO))
            .expect("submit")
            .wait(),
        Err(ComputeError::DeadlineExceeded { .. })
    ));
    let snap = engine.snapshot();
    assert_eq!(snap.shed, 3);
    assert_eq!(snap.completed, 0, "shed work never reached a worker");
    // A generous deadline does not interfere with normal service.
    let ok = engine
        .submit(
            Job::new(&gain)
                .data(vec![2.0; 8])
                .timeout(Duration::from_secs(60)),
        )
        .expect("submit")
        .wait()
        .expect("job");
    assert_eq!(ok, vec![2.0; 8]);
    assert!(engine.snapshot().counters_balanced());
}

#[test]
fn cancel_revokes_queued_work_exactly_once() {
    let n = 512;
    let engine = Engine::builder().workers(1).build().expect("engine");
    let spec = slow_pipeline(n, 240);
    let busy = engine.submit_pipeline(slow_job(&spec, n)).expect("submit");
    let gain = gain_spec(8);
    let queued = engine
        .submit(Job::new(&gain).data(vec![3.0; 8]))
        .expect("submit");
    let won = queued.cancel();
    // Cancelling twice can never win twice.
    assert!(!queued.cancel());
    match queued.wait() {
        Err(ComputeError::Cancelled) => assert!(won, "Cancelled result implies cancel() won"),
        Ok(data) => {
            assert!(!won, "cancel() winning implies a Cancelled result");
            assert_eq!(data, vec![3.0; 8]);
        }
        other => panic!("expected Cancelled or Ok, got {other:?}"),
    }
    busy.wait().expect("busy job");
    let snap = engine.snapshot();
    assert_eq!(snap.cancelled, u64::from(won));
    assert!(snap.counters_balanced());
    // Cancelling a finished job is a no-op.
    let done = engine
        .submit(Job::new(&gain).data(vec![1.0; 8]))
        .expect("submit");
    done.wait_timeout(Duration::from_secs(120))
        .expect("finish")
        .expect("job");
    assert!(!done.cancel());
}

#[test]
fn nonblocking_waits_poll_and_bound_without_losing_the_result() {
    let n = 512;
    let engine = Engine::builder().workers(1).build().expect("engine");
    let spec = slow_pipeline(n, 240);
    let handle = engine.submit_pipeline(slow_job(&spec, n)).expect("submit");
    assert!(handle.try_wait().is_none(), "job cannot be done instantly");
    assert!(!handle.is_finished());
    assert!(
        handle.wait_timeout(Duration::from_micros(1)).is_none(),
        "a 1 µs bound must expire first"
    );
    // The timeout expiring left the job running and the handle valid.
    let result = handle
        .wait_deadline(Instant::now() + Duration::from_secs(120))
        .expect("job finishes well within the deadline")
        .expect("job");
    assert_eq!(result.output("x").expect("x"), &vec![240.0; n][..]);
    // The result was taken: later polls are a typed error, not a hang.
    match handle.try_wait() {
        Some(Err(ComputeError::EngineInternal { .. })) => {}
        other => panic!("expected EngineInternal, got {other:?}"),
    }
}

#[test]
fn completion_set_multiplexes_handles_on_one_condvar() {
    let n = 256;
    let engine = Engine::builder().workers(2).build().expect("engine");
    let spec = saxpy_spec(n);
    let x = ramp(n, 0.5);
    let y = ramp(n, 0.25);
    let direct = direct_saxpy(n, &x, &y, 2.0);
    let mut set = CompletionSet::new();
    assert!(set.wait_any().is_none(), "empty set yields nothing");
    for _ in 0..16 {
        let handle = engine
            .submit(Job::new(&spec).data(x.clone()).data(y.clone()))
            .expect("submit");
        set.insert(handle);
    }
    assert_eq!(set.len(), 16);
    let mut seen = 0;
    while let Some((_token, result)) = set.wait_any() {
        assert_eq!(
            result.expect("job"),
            direct,
            "served results stay bit-identical"
        );
        seen += 1;
    }
    assert_eq!(seen, 16);
    assert!(set.is_empty());
    // A handle that already finished is immediately ready on insert.
    let done = engine
        .submit(Job::new(&spec).data(x.clone()).data(y.clone()))
        .expect("submit");
    let give_up = Instant::now() + Duration::from_secs(120);
    while !done.is_finished() {
        assert!(Instant::now() < give_up, "job never finished");
        std::thread::sleep(Duration::from_millis(1));
    }
    set.insert(done);
    let (_token, result) = set.try_next().expect("already-finished member");
    assert_eq!(result.expect("job"), direct);
    // And an empty set times out rather than hanging.
    assert!(set.wait_any_timeout(Duration::from_millis(1)).is_none());
}

#[test]
fn unobserved_job_errors_surface_in_the_snapshot() {
    let n = 8;
    let engine = Engine::builder().workers(1).build().expect("engine");
    let step = Arc::new(
        KernelSpec::new("decay")
            .input("x")
            .output(n)
            .body("return fetch_x(idx) * 0.5;"),
    );
    let failing = Arc::new(
        PipelineSpec::builder("nonconverging")
            .source_len("x", n)
            .pass(PassSpec::new(&step).read("x", "x").write_len("x", n))
            .until(|_| false)
            .iteration_cap(4)
            .build()
            .expect("spec"),
    );
    // Drop the handle before the job fails: the late error is counted.
    drop(
        engine
            .submit_pipeline(slow_job(&failing, n))
            .expect("submit"),
    );
    // Drop the handle after the job failed: the stored error is counted.
    let handle = engine
        .submit_pipeline(slow_job(&failing, n))
        .expect("submit");
    // A marker job through the same single worker proves both failing
    // jobs are done (FIFO order).
    let gain = gain_spec(4);
    engine
        .submit(Job::new(&gain).data(vec![1.0; 4]))
        .expect("submit")
        .wait()
        .expect("marker");
    assert!(handle.is_finished());
    drop(handle);
    let snap = engine.snapshot();
    assert_eq!(snap.unobserved_errors, 2);
    assert_eq!(snap.failed, 2);
    assert_eq!(snap.completed, 3);
    assert!(snap.counters_balanced());
    // An *observed* error is not double-counted.
    assert!(engine
        .submit_pipeline(slow_job(&failing, n))
        .expect("submit")
        .wait()
        .is_err());
    assert_eq!(engine.snapshot().unobserved_errors, 2);
}

#[test]
fn no_wait_hangs_across_shutdown_worker_panic_and_drop_orderings() {
    let n = 512;
    let gain = gain_spec(8);

    // (a) Explicit shutdown with work still queued: queued tasks abort
    // with a typed error; nothing hangs.
    let engine = Engine::builder().workers(1).build().expect("engine");
    let spec = slow_pipeline(n, 240);
    let busy = engine.submit_pipeline(slow_job(&spec, n)).expect("submit");
    let queued: Vec<_> = (0..4)
        .map(|_| {
            engine
                .submit(Job::new(&gain).data(vec![1.0; 8]))
                .expect("submit")
        })
        .collect();
    // Let the worker dequeue the slow job so it is genuinely running
    // (not merely queued) when the shutdown drain happens.
    wait_queue_depth_at_most(&engine, 4);
    engine.shutdown();
    // The running job finished; the queued ones either ran before the
    // drain or were aborted with the shutdown error — never a hang.
    busy.wait().expect("running job finishes across shutdown");
    for handle in queued {
        match handle.wait() {
            Ok(data) => assert_eq!(data, vec![1.0; 8]),
            Err(ComputeError::EngineShutdown) => {}
            other => panic!("expected Ok or EngineShutdown, got {other:?}"),
        }
    }

    // (b) A worker panic mid-job resolves that job with a typed error
    // and the engine keeps serving on a replaced context.
    let engine = Engine::builder().workers(1).build().expect("engine");
    let bomb = Arc::new(
        KernelSpec::new("bomb")
            .input("x")
            .uniform_f32("boom", 1.0)
            .output(n)
            .body("return fetch_x(idx) * boom;"),
    );
    let panicking = Arc::new(
        PipelineSpec::builder("panics")
            .source_len("x", n)
            .pass(
                PassSpec::new(&bomb)
                    .read("x", "x")
                    .write_len("x", n)
                    .uniform_per_iter("boom", |_| panic!("injected worker panic")),
            )
            .iterations(2)
            .build()
            .expect("spec"),
    );
    match engine
        .submit_pipeline(slow_job(&panicking, n))
        .expect("submit")
        .wait()
    {
        Err(ComputeError::EngineInternal { message }) => {
            assert!(message.contains("panicked"), "message: {message}");
        }
        other => panic!("expected EngineInternal, got {other:?}"),
    }
    let ok = engine
        .submit(Job::new(&gain).data(vec![2.0; 8]))
        .expect("submit")
        .wait()
        .expect("job after panic");
    assert_eq!(ok, vec![2.0; 8]);
    let snap = engine.snapshot();
    assert_eq!(snap.failed, 1);
    assert!(snap.counters_balanced());
    engine.shutdown();

    // (c) Dropping the engine with handles still held: every handle
    // resolves (result or typed abort) before the drop returns.
    let engine = Engine::builder().workers(1).build().expect("engine");
    let busy = engine.submit_pipeline(slow_job(&spec, n)).expect("submit");
    wait_queue_depth_at_most(&engine, 0);
    let tail = engine
        .submit(Job::new(&gain).data(vec![4.0; 8]))
        .expect("submit");
    drop(engine);
    busy.wait().expect("running job finishes across drop");
    match tail.wait() {
        Ok(data) => assert_eq!(data, vec![4.0; 8]),
        Err(ComputeError::EngineShutdown) => {}
        other => panic!("expected Ok or EngineShutdown, got {other:?}"),
    }
}
