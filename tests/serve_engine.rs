//! Tier-1 integration tests for the serving engine: process-wide program
//! sharing (exactly one link under thread races), cache eviction bounds,
//! and bit-identity between `Engine` dispatch and direct `run_*_with`
//! calls — single jobs and batched multi-kernel DAGs alike.

use gpes::core::serve::StepInput;
use gpes::core::SharedCacheStats;
use gpes::glsl::Value;
use gpes::prelude::*;
use std::sync::Arc;

fn saxpy_spec(n: usize) -> Arc<KernelSpec> {
    Arc::new(
        KernelSpec::new("saxpy")
            .input("x")
            .input("y")
            .uniform_f32("alpha", 2.0)
            .output(n)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
    )
}

fn blur_spec(n: usize) -> Arc<KernelSpec> {
    Arc::new(
        KernelSpec::new("blur3")
            .input("x")
            .uniform_f32("last", n as f32 - 1.0)
            .output(n)
            .body(
                "float a = fetch_x(max(idx - 1.0, 0.0));\n\
                 float b = fetch_x(idx);\n\
                 float c = fetch_x(min(idx + 1.0, last));\n\
                 return (a + b + c) / 3.0;",
            ),
    )
}

fn gain_spec(n: usize) -> Arc<KernelSpec> {
    Arc::new(
        KernelSpec::new("gain")
            .input("x")
            .uniform_f32("gain", 1.0)
            .output(n)
            .body("return fetch_x(idx) * gain;"),
    )
}

fn ramp(n: usize, scale: f32) -> Vec<f32> {
    (0..n)
        .map(|i| (i as f32 - n as f32 / 2.0) * scale)
        .collect()
}

// ---- shared cache concurrency -------------------------------------------

#[test]
fn racing_contexts_link_each_source_exactly_once() {
    // N threads, each with its own context, all building the same two
    // kernels at the same time: the process must link exactly 2 programs.
    const THREADS: usize = 8;
    let cache = Arc::new(SharedProgramCache::new());
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut cc = ComputeContext::new(32, 32).expect("context");
            cc.set_shared_program_cache(cache);
            let x = cc.upload(&ramp(16, 0.5)).expect("x");
            let y = cc.upload(&ramp(16, 0.25)).expect("y");
            barrier.wait();
            let k1 = Kernel::builder("add")
                .input("a", &x)
                .input("b", &y)
                .output(ScalarType::F32, 16)
                .body("return fetch_a(idx) + fetch_b(idx);")
                .build(&mut cc)
                .expect("k1");
            let k2 = Kernel::builder("mul")
                .input("a", &x)
                .input("b", &y)
                .output(ScalarType::F32, 16)
                .body("return fetch_a(idx) * fetch_b(idx);")
                .build(&mut cc)
                .expect("k2");
            let s = cc.run_f32(&k1).expect("run add");
            let p = cc.run_f32(&k2).expect("run mul");
            assert_eq!(s.len(), 16);
            assert_eq!(p.len(), 16);
            let stats = cc.stats();
            assert_eq!(stats.programs_linked, 0, "worker {t} linked locally");
            assert_eq!(stats.programs_adopted, 2);
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    let stats: SharedCacheStats = cache.stats();
    assert_eq!(stats.links, 2, "one link per distinct source, process-wide");
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 2 * THREADS as u64 - 2);
    assert_eq!(cache.len(), 2);
}

#[test]
fn shared_cache_capacity_is_bounded() {
    // Push far more distinct kernels through one context than the cache
    // capacity holds: the cache must stay at its bound and report the
    // evictions.
    let cache = Arc::new(SharedProgramCache::with_capacity(4));
    let mut cc = ComputeContext::new(32, 32).expect("context");
    cc.set_shared_program_cache(Arc::clone(&cache));
    let x = cc.upload(&ramp(8, 1.0)).expect("x");
    for i in 0..12 {
        let k = Kernel::builder("scale")
            .input("a", &x)
            .output(ScalarType::F32, 8)
            .body(format!("return fetch_a(idx) * {i}.0;"))
            .build(&mut cc)
            .expect("build");
        cc.run_f32(&k).expect("run");
    }
    assert_eq!(cache.len(), 4);
    let stats = cache.stats();
    assert_eq!(stats.links, 12);
    assert_eq!(stats.evictions, 8);
}

// ---- engine differential -------------------------------------------------

/// The direct (no-engine) reference for a saxpy job.
fn direct_saxpy(n: usize, x: &[f32], y: &[f32], alpha: f32) -> Vec<f32> {
    let mut cc = ComputeContext::new(256, 256).expect("context");
    let gx = cc.upload(x).expect("x");
    let gy = cc.upload(y).expect("y");
    let k = Kernel::builder("saxpy")
        .input("x", &gx)
        .input("y", &gy)
        .uniform_f32("alpha", 2.0)
        .output(ScalarType::F32, n)
        .body("return alpha * fetch_x(idx) + fetch_y(idx);")
        .build(&mut cc)
        .expect("build");
    let b = Bindings::new().uniform_f32("alpha", alpha);
    let out: GpuArray<f32> = cc.run_to_array_with(&k, &b).expect("run");
    cc.read_array(&out, Readback::DirectFbo).expect("read")
}

#[test]
fn engine_output_is_bit_identical_to_direct_dispatch() {
    let n = 1000;
    let engine = Engine::builder().workers(3).build().expect("engine");
    let spec = saxpy_spec(n);
    let mut handles = Vec::new();
    for j in 0..12 {
        let x = ramp(n, 0.01 * (j + 1) as f32);
        let y = ramp(n, 0.003 * (j + 1) as f32);
        let alpha = 0.5 + j as f32;
        let job = Job::new(&spec)
            .data(x.clone())
            .data(y.clone())
            .uniform_f32("alpha", alpha);
        handles.push((x, y, alpha, engine.submit(job).expect("submit")));
    }
    for (x, y, alpha, handle) in handles {
        let served = handle.wait().expect("job");
        let direct = direct_saxpy(n, &x, &y, alpha);
        // Bit-identical, not approximately equal: same codecs, same
        // shader, same dispatch semantics.
        assert_eq!(served, direct);
    }
    // Every kernel is one generated source: one process-wide link even
    // with 3 workers racing over 12 jobs.
    assert_eq!(engine.programs_linked(), 1);
}

#[test]
fn batch_dag_matches_chained_direct_dispatch_bitwise() {
    let n = 512;
    let input = ramp(n, 0.02);
    let gain = 3.5f32;

    // Direct reference: blur → gain chained through run_to_array_with.
    let direct = {
        let mut cc = ComputeContext::new(256, 256).expect("context");
        let gx = cc.upload(&input).expect("x");
        let blur = Kernel::builder("blur3")
            .input("x", &gx)
            .uniform_f32("last", n as f32 - 1.0)
            .output(ScalarType::F32, n)
            .body(
                "float a = fetch_x(max(idx - 1.0, 0.0));\n\
                 float b = fetch_x(idx);\n\
                 float c = fetch_x(min(idx + 1.0, last));\n\
                 return (a + b + c) / 3.0;",
            )
            .build(&mut cc)
            .expect("blur");
        let mid: GpuArray<f32> = cc.run_to_array(&blur).expect("run blur");
        let gaink = Kernel::builder("gain")
            .input("x", &mid)
            .uniform_f32("gain", 1.0)
            .output(ScalarType::F32, n)
            .body("return fetch_x(idx) * gain;")
            .build(&mut cc)
            .expect("gain");
        let b = Bindings::new().uniform_f32("gain", gain);
        let out: GpuArray<f32> = cc.run_to_array_with(&gaink, &b).expect("run gain");
        cc.read_array(&out, Readback::DirectFbo).expect("read")
    };

    // Served: one submission, two steps, intermediate stays on the GPU.
    let engine = Engine::builder().workers(2).build().expect("engine");
    let mut sub = Submission::new();
    let b = sub.step(
        &blur_spec(n),
        vec![StepInput::Data(Arc::new(input.clone()))],
        vec![],
    );
    let g = sub.step(
        &gain_spec(n),
        vec![StepInput::Step(b)],
        vec![("gain".to_owned(), Value::Float(gain))],
    );
    sub.read(g);
    let result = engine
        .submit_batch(sub)
        .expect("submit")
        .wait()
        .expect("batch");
    assert_eq!(result.output(g).expect("read output"), direct.as_slice());
    assert!(result.output(b).is_none(), "unmarked step is not read back");
}

#[test]
fn submission_validation_rejects_bad_dags() {
    let engine = Engine::builder().build().expect("engine");
    let spec = gain_spec(8);

    // Forward reference.
    let mut sub = Submission::new();
    sub.step(&spec, vec![StepInput::Step(0)], vec![]);
    assert!(engine.submit_batch(sub).is_err());

    // Arity mismatch.
    let mut sub = Submission::new();
    sub.step(&spec, vec![], vec![]);
    assert!(engine.submit_batch(sub).is_err());

    // Empty submission.
    assert!(engine.submit_batch(Submission::new()).is_err());

    // Arity mismatch on a single job.
    assert!(engine.submit(Job::new(&spec)).is_err());

    // Execution errors surface on the handle, not at submit.
    let broken = Arc::new(
        KernelSpec::new("broken")
            .input("x")
            .output(8)
            .body("return nonsense(idx);"),
    );
    let handle = engine
        .submit(Job::new(&broken).data(vec![0.0; 8]))
        .expect("submit");
    assert!(handle.wait().is_err());
}

#[test]
fn per_context_policy_relinks_per_worker_and_shared_does_not() {
    let n = 256;
    let spec = saxpy_spec(n);
    let x = Arc::new(ramp(n, 0.1));
    let y = Arc::new(ramp(n, 0.2));
    let run = |engine: &Engine| {
        let mut handles = Vec::new();
        for _ in 0..8 {
            let job = Job::new(&spec).data_shared(&x).data_shared(&y);
            handles.push(engine.submit(job).expect("submit"));
        }
        let mut outputs = Vec::new();
        for h in handles {
            outputs.push(h.wait().expect("job"));
        }
        outputs
    };

    let shared = Engine::builder().workers(4).build().expect("engine");
    let shared_out = run(&shared);
    assert_eq!(shared.programs_linked(), 1);

    let per_ctx = Engine::builder()
        .workers(4)
        .cache_policy(gpes::core::serve::CachePolicy::PerContext)
        .build()
        .expect("engine");
    let per_ctx_out = run(&per_ctx);
    // Identical outputs either way…
    assert_eq!(shared_out, per_ctx_out);
    // …but each worker that saw the kernel paid its own link. The queue
    // does not guarantee every worker ran a job, so the bound is 1..=4 —
    // and always at least the shared engine's single link.
    let links = per_ctx.programs_linked();
    assert!((1..=4).contains(&links), "links = {links}");
    let touched = per_ctx
        .worker_stats()
        .iter()
        .filter(|s| s.programs_linked > 0)
        .count() as u64;
    assert_eq!(links, touched, "one link per worker that served a job");
}

#[test]
fn worker_contexts_reach_steady_state_over_repeated_jobs() {
    // A serving loop must stop allocating GL objects once warmed up:
    // programs come from the shared cache, textures from each worker's
    // recycling pool.
    let n = 300;
    let engine = Engine::builder().workers(2).build().expect("engine");
    let spec = saxpy_spec(n);
    let submit_wave = |count: usize| {
        let handles: Vec<_> = (0..count)
            .map(|_| {
                engine
                    .submit(Job::new(&spec).data(ramp(n, 0.5)).data(ramp(n, 0.25)))
                    .expect("submit")
            })
            .collect();
        for h in handles {
            h.wait().expect("job");
        }
    };
    let gl_objects = || -> u64 {
        engine
            .worker_stats()
            .iter()
            .map(ContextStats::gl_objects_created)
            .sum()
    };
    // The contract is convergence: some full wave must allocate nothing.
    // (The queue does not promise every worker a job per wave, so "warm
    // with k jobs then assert frozen" would race scheduling — a worker
    // can see its first job arbitrarily late. A leak never freezes and
    // still fails the loop cap.)
    let mut prev = gl_objects();
    let mut steady = false;
    for _ in 0..16 {
        submit_wave(16);
        let now = gl_objects();
        if now == prev {
            steady = true;
            break;
        }
        prev = now;
    }
    assert!(steady, "steady-state serving must stop allocating");
}
