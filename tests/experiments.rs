//! The paper's experiments as CI-checked assertions: every qualitative
//! claim that `EXPERIMENTS.md` records must keep holding.

use gpes::prelude::*;
use gpes_bench::{ablations, e1, e2, figures};

/// E1 — the §V speedup shape: the GPU wins every paper-scale
/// configuration, and integer speedups exceed floating-point speedups.
#[test]
fn e1_shape_holds() {
    // Reduced paper scale keeps the functional calibration quick in CI.
    let rows = e1::run(1 << 18, 256).expect("e1");
    for row in &rows {
        assert!(row.validated, "{} output mismatch", row.label);
        assert!(row.speedup() > 1.0, "{}", row.format());
    }
    let speedup = |label: &str| {
        rows.iter()
            .find(|r| r.label == label)
            .map(|r| r.speedup())
            .expect("row")
    };
    assert!(speedup("sum (int)") > speedup("sum (fp)"));
    assert!(speedup("sgemm (int)") > speedup("sgemm (fp)"));
}

/// E1 — overheads dominate small problems: the GPU loses below the
/// crossover, as any real accelerator does.
#[test]
fn e1_crossover_exists() {
    let rows = e1::sum_sweep(&[512, 1 << 20]).expect("sweep");
    assert!(rows[0].speedup() < 1.0, "{}", rows[0].format());
    assert!(rows[1].speedup() > 1.0, "{}", rows[1].format());
}

/// E2 — the §V precision claim: exact on the CPU-equivalent model,
/// ≈15 mantissa bits under the VideoCore-like SFU model.
#[test]
fn e2_precision_claims_hold() {
    let values = gpes::kernels::data::random_f32(1024, 99, 1.0e10);
    let exact = e2::scale_accuracy(FloatModel::Exact, &values).expect("exact");
    assert_eq!(exact.min_bits, 23);
    assert_eq!(exact.exact_fraction, 1.0);

    let vc4 = e2::scale_accuracy(FloatModel::Vc4Sfu, &values).expect("vc4");
    assert!(
        (12..=19).contains(&vc4.min_bits),
        "paper reports ≈15 bits; got {}",
        vc4.format()
    );

    assert!(
        e2::host_transform_exact(&values),
        "CPU transforms are precise"
    );
}

/// F1 — the pipeline trace counters stay self-consistent.
#[test]
fn f1_pipeline_trace() {
    let stats = figures::pipeline_trace(321).expect("trace");
    assert_eq!(stats.vertices_shaded, 6);
    assert_eq!(stats.triangles_rasterized, 2);
    // 321 elements land in an 18×18 texture: 321 live + 3 padding texels
    // are all shaded (the viewport covers the whole output texture).
    assert_eq!(stats.fragments_shaded, 324);
}

/// F2 — the byte layout of Figure 2.
#[test]
fn f2_layout_examples() {
    assert!(figures::float_layout_row(1.0).contains("texel[00 00 00 7f]"));
    assert!(figures::float_layout_row(-2.0).contains("texel[00 00 80 80]"));
}

/// A1/A2 — bias × rounding interaction (including the half-texel
/// fragility under nearest stores).
#[test]
fn a1_bias_interaction() {
    let rows = ablations::a1_pack_bias().expect("a1");
    let broken: Vec<_> = rows.iter().filter(|r| r.mismatches > 0).collect();
    assert_eq!(broken.len(), 1, "exactly one fragile configuration");
    assert_eq!(broken[0].bias, PackBias::HalfTexel);
}

/// A4 — all readback strategies agree bit-exactly.
#[test]
fn a4_readback_agreement() {
    let result = ablations::a4_readback(333).expect("a4");
    assert!(result.all_equal);
}

/// A5 — the §VI related-work trade-offs hold on real runs: both formats
/// compute correctly, the paper's codec keeps more exact bits and memcpy
/// interop, the baseline packs denser.
#[test]
fn a5_strzodka_tradeoffs() {
    let rows = ablations::a5_strzodka_baseline(777).expect("a5");
    assert!(rows.iter().all(|r| r.correct));
    let paper = &rows[0];
    let baseline = &rows[1];
    assert!(paper.exact_bits > baseline.exact_bits);
    assert!(paper.memcpy_compatible && !baseline.memcpy_compatible);
    assert!(baseline.values_per_texel == 2 * paper.values_per_texel);
    assert!(paper.covers_float && !baseline.covers_float);
}

/// A6 — "neither enough nor portable": the fp16 extension path is both
/// less precise than the paper's packing and not core ES 2.
#[test]
fn a6_half_float_claims() {
    let rows = ablations::a6_half_float(768).expect("a6");
    let paper_exact = &rows[0];
    let paper_vc4 = &rows[1];
    let fp16 = &rows[2];
    assert_eq!(paper_exact.min_bits, 23);
    assert!(paper_vc4.min_bits >= 12);
    assert!(fp16.min_bits <= 10);
    assert!(fp16.mean_bits < paper_vc4.mean_bits);
    assert!(!fp16.core_es2);
}

/// A7 — channel packing cuts the per-value fragment work (the §V
/// "not optimised" headroom).
#[test]
fn a7_packing_headroom() {
    let rows = ablations::a7_channel_packing(1024).expect("a7");
    assert!(rows.iter().all(|r| r.correct));
    // u8: 4 values per fragment → ≥3x fewer invocations per value.
    assert!(rows[1].invocations_per_value * 3.0 < rows[0].invocations_per_value);
    // Modelled device time per value improves as well.
    assert!(rows[1].modeled_ns_per_value < rows[0].modeled_ns_per_value);
    assert!(rows[3].modeled_ns_per_value < rows[2].modeled_ns_per_value);
}
